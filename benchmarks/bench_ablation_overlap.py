"""Ablation: I/O-compute overlap headroom (the post-Lemma-1 claim).

Converts measured merge schedules into wall-clock makespans under the
serial and pipelined disciplines across CPU-cost regimes, quantifying
the paper's statement that SRM "overlaps I/O operations and internal
computation, which is important in practice".
"""

from __future__ import annotations

from repro.analysis import merge_makespan, simulate_merge_timeline
from repro.core import MergeJob, simulate_merge
from repro.disks import DISK_1996
from repro.workloads import random_partition_runs

from conftest import paper_scale

D, B = 8, 16


def test_overlap_headroom(benchmark, report):
    blocks = 120 if paper_scale() else 60
    runs = random_partition_runs(4 * D, blocks * B, rng=21)
    job = MergeJob.from_key_runs(runs, B, D, rng=22)

    def run():
        stats = simulate_merge(job)
        t_io = DISK_1996.op_time_ms(B)
        n_writes = -(-stats.n_blocks // D)
        io_ms = (stats.total_reads + n_writes) * t_io
        balanced_us = io_ms / stats.n_blocks * 1000 / B
        rows = []
        for label, cpu in [
            ("io-bound (cpu/10)", balanced_us / 10),
            ("balanced", balanced_us),
            ("cpu-bound (cpu*10)", balanced_us * 10),
        ]:
            est = merge_makespan(stats, DISK_1996, B, cpu)
            rows.append((label, est))
        return stats, rows

    stats, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"merge of {stats.n_blocks} blocks on D = {D} (1996-era disks)",
        f"{'regime':<20} {'serial ms':>10} {'pipelined ms':>13} "
        f"{'speedup':>8} {'pipe eff.':>10}",
    ]
    for label, est in rows:
        lines.append(
            f"{label:<20} {est.serial_ms:>10.0f} {est.pipelined_ms:>13.0f} "
            f"{est.speedup:>8.2f} {est.overlap_efficiency:>10.2f}"
        )
    report("ablation_overlap", "\n".join(lines))

    speedups = {label: est.speedup for label, est in rows}
    assert speedups["balanced"] >= max(
        speedups["io-bound (cpu/10)"], speedups["cpu-bound (cpu*10)"]
    )
    assert speedups["balanced"] > 1.3
    for _, est in rows:
        assert est.pipelined_ms <= est.serial_ms + 1e-9


def test_event_driven_timeline(benchmark, report):
    """The discrete-event execution: prefetch vs demand, measured."""
    blocks = 120 if paper_scale() else 60
    runs = random_partition_runs(4 * D, blocks * B, rng=23)
    job = MergeJob.from_key_runs(runs, B, D, rng=24)
    t_io = DISK_1996.op_time_ms(B)
    cpu = t_io * 1000 / B  # balanced regime

    def run():
        fast = simulate_merge_timeline(job, DISK_1996, B, cpu, prefetch=True)
        slow = simulate_merge_timeline(job, DISK_1996, B, cpu, prefetch=False)
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"balanced merge of {job.n_blocks} blocks, D = {D} (event simulation)",
        f"{'mode':<10} {'makespan ms':>12} {'cpu stall ms':>13} "
        f"{'cpu util':>9} {'io util':>8}",
        f"{'demand':<10} {slow.makespan_ms:>12.0f} {slow.cpu_stall_ms:>13.0f} "
        f"{slow.cpu_utilization:>9.2f} {slow.io_utilization:>8.2f}",
        f"{'prefetch':<10} {fast.makespan_ms:>12.0f} {fast.cpu_stall_ms:>13.0f} "
        f"{fast.cpu_utilization:>9.2f} {fast.io_utilization:>8.2f}",
        f"prefetch speedup: {slow.makespan_ms / fast.makespan_ms:.2f}x",
    ]
    report("ablation_timeline", "\n".join(lines))
    assert fast.makespan_ms < slow.makespan_ms
    assert fast.cpu_stall_ms < slow.cpu_stall_ms
