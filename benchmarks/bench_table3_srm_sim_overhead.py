"""Table 3: average-case overhead ``v(k, D)`` from simulating SRM itself.

Runs the block-level SRM merge simulator on §9.3 random-partition
inputs over the paper's 3x3 grid.  Default run length is 100 blocks/run
(the measured v converges from above with run length; the paper used
1000); ``REPRO_FULL=1`` switches to paper scale.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import PAPER_TABLE3, max_abs_deviation, render_comparison, table3

from conftest import paper_scale


def test_table3_grid(benchmark, report):
    blocks_per_run = 1000 if paper_scale() else 100
    block_size = 8

    def run():
        return table3(
            blocks_per_run=blocks_per_run, block_size=block_size, rng=1996
        )

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    dev = max_abs_deviation(PAPER_TABLE3, grid)
    text = render_comparison(PAPER_TABLE3, grid, fmt="{:.3f}")
    text += (
        f"\nblocks/run = {blocks_per_run}, B = {block_size}"
        f"\nmax |paper - measured| = {dev:.3f}"
    )
    report("table3", text)
    benchmark.extra_info["max_abs_deviation"] = dev
    # v ~ 1.0 except the k=5, D=50 corner (paper: 1.2).  Shorter runs
    # bias v upward slightly, hence the asymmetric tolerance.
    assert dev <= 0.12
    assert np.all(grid.values >= 1.0)
    assert grid.value(5, 50) == max(grid.values.flat)
