"""Ablation: how tight are the occupancy bounds (Theorem 2 / Lemma 6)?

Compares, across the SRM operating range:

* Monte-Carlo ``C(kD, D)`` (ground truth up to sampling noise),
* the finite-size generating-function bound (inequalities (24)-(26)),
* the Theorem 2 case-2 asymptotic expansion,

and validates Lemma 6 end to end: the simulator's measured reads never
exceed ``I_0 + sum L'_i`` on average-case merges.
"""

from __future__ import annotations

import math

from repro.core import lemma6_read_bound, simulate_merge
from repro.occupancy import (
    expected_max_occupancy,
    gf_expected_max_bound,
    theorem2_case2_bound,
)
from repro.workloads import random_partition_job

from conftest import paper_scale


def test_occupancy_bounds(benchmark, report):
    trials = 4000 if paper_scale() else 1000
    grid = [(5, 50), (20, 50), (100, 50), (20, 200), (100, 1000)]

    def run():
        rows = []
        for k, d in grid:
            mc = expected_max_occupancy(k * d, d, n_trials=trials, rng=5).mean / k
            gf = gf_expected_max_bound(k * d, d) / k
            r = k / math.log(d)
            t2 = theorem2_case2_bound(r, d) / k
            rows.append((k, d, mc, gf, t2))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'k':>5} {'D':>6} {'MC v':>8} {'GF bound':>9} {'Thm2 c2':>9}"]
    for k, d, mc, gf, t2 in rows:
        lines.append(f"{k:>5} {d:>6} {mc:>8.3f} {gf:>9.3f} {t2:>9.3f}")
    report("ablation_bounds", "\n".join(lines))

    for k, d, mc, gf, t2 in rows:
        assert gf >= mc - 0.05          # the GF bound is a real bound
        assert gf <= 2.0 * mc + 0.5      # ...and not absurdly loose


def test_lemma6_bound_on_merges(benchmark, report):
    blocks = 120 if paper_scale() else 50

    def run():
        rows = []
        for k, d in [(2, 8), (4, 8), (2, 16)]:
            job = random_partition_job(k, d, blocks, 8, rng=50 + k + d)
            stats = simulate_merge(job)
            bound = lemma6_read_bound(job)
            rows.append((k, d, stats.total_reads, bound.total))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'k':>4} {'D':>4} {'measured reads':>15} {'Lemma 6 bound':>14}"]
    for k, d, reads, bound in rows:
        lines.append(f"{k:>4} {d:>4} {reads:>15} {bound:>14}")
    report("ablation_lemma6", "\n".join(lines))
    for _, _, reads, bound in rows:
        assert reads <= bound
