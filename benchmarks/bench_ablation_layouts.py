"""Ablation: run-placement strategies (§3 randomization vs §8 stagger).

Merges identical run sets under every layout strategy on two workloads —
the lockstep adversary and §9.3 average-case partitions — and reports
the measured read overhead v.  Demonstrates the claim that motivates
SRM's randomization: deterministic placement has a catastrophic worst
case, the randomized one does not.
"""

from __future__ import annotations

from repro.core import LayoutStrategy, MergeJob, simulate_merge
from repro.workloads import interleaved_runs, random_partition_runs

from conftest import paper_scale

D, B = 8, 8
K = 2
R = K * D


def _measure(runs, strategy, seed=11):
    job = MergeJob.from_key_runs(runs, B, D, strategy=strategy, rng=seed)
    return simulate_merge(job)


def test_layout_ablation(benchmark, report):
    blocks_per_run = 200 if paper_scale() else 64
    workloads = {
        "lockstep adversary": interleaved_runs(R, blocks_per_run * B),
        "random partition": random_partition_runs(R, blocks_per_run * B, rng=7),
    }

    def run():
        results = {}
        for wname, runs in workloads.items():
            for strategy in LayoutStrategy:
                results[(wname, strategy.value)] = _measure(runs, strategy)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"R = {R}, D = {D}, {blocks_per_run} blocks/run",
             f"{'workload':<20} {'layout':<13} {'reads':>7} {'v':>7} {'flushed':>9}"]
    for (wname, lname), stats in results.items():
        lines.append(
            f"{wname:<20} {lname:<13} {stats.total_reads:>7} "
            f"{stats.overhead_v:>7.2f} {stats.blocks_flushed:>9}"
        )
    report("ablation_layouts", "\n".join(lines))

    adv_worst = results[("lockstep adversary", "worst_case")]
    adv_rand = results[("lockstep adversary", "randomized")]
    avg_rand = results[("random partition", "randomized")]
    # The §3 adversary hurts the worst-case layout badly...
    assert adv_worst.overhead_v > 2.0
    assert adv_worst.blocks_flushed > 0
    # ...while randomization keeps both workloads near-perfect.
    assert adv_rand.overhead_v < 1.3
    assert avg_rand.overhead_v < 1.3
