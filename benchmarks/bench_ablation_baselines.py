"""Ablation: the three-way baseline comparison (§2.1–2.2 in numbers).

SRM vs DSM vs the Pai-Schaffer-Varman one-run-per-disk scheme on
identical inputs and comparable memory.  The paper's claims, executed:

* PSV "uses significantly more I/Os" — the transposition pass between
  merge passes re-reads and re-writes all data, and the merge order is
  pinned at D;
* DSM is simple and fully parallel but pays ``ln(kD)/ln(k+1+kD/2B)``
  extra passes;
* SRM gets DSM's write parallelism and near-perfect reads at the full
  merge order.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import dsm_mergesort, psv_mergesort
from repro.core import DSMConfig, SRMConfig, srm_mergesort
from repro.disks import ParallelDiskSystem, StripedFile
from repro.workloads import uniform_permutation

from conftest import paper_scale

D, B = 4, 8
RUN_LENGTH = 128


def test_three_way_baseline_comparison(benchmark, report):
    n = 32_768 if paper_scale() else 16_384
    keys = uniform_permutation(n, rng=31)
    srm_cfg = SRMConfig.from_k(2, D, B)
    dsm_cfg = DSMConfig.matching_srm(srm_cfg)

    def run():
        rows = {}
        sys_a = ParallelDiskSystem(D, B)
        r = srm_mergesort(
            sys_a, StripedFile.from_records(sys_a, keys), srm_cfg,
            rng=32, run_length=RUN_LENGTH,
        )
        assert np.array_equal(r.peek_sorted(), np.sort(keys))
        rows["SRM"] = (srm_cfg.merge_order, r.n_merge_passes, 0,
                       r.io.parallel_ios)
        sys_b = ParallelDiskSystem(D, B)
        rb = dsm_mergesort(
            sys_b, StripedFile.from_records(sys_b, keys), dsm_cfg,
            run_length=RUN_LENGTH,
        )
        assert np.array_equal(rb.peek_sorted(), np.sort(keys))
        rows["DSM"] = (dsm_cfg.merge_order, rb.n_merge_passes, 0,
                       rb.io.parallel_ios)
        sys_c = ParallelDiskSystem(D, B)
        rc = psv_mergesort(
            sys_c, StripedFile.from_records(sys_c, keys),
            run_length=RUN_LENGTH, buffer_blocks_per_run=4,
        )
        assert np.array_equal(rc.peek_sorted(), np.sort(keys))
        rows["PSV"] = (D, rc.n_merge_passes, rc.n_transpositions,
                       rc.total_parallel_ios)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"N = {n}, D = {D}, B = {B}, runs of {RUN_LENGTH} records",
        f"{'algorithm':<10} {'merge order':>12} {'passes':>7} "
        f"{'transpositions':>15} {'parallel I/Os':>14}",
    ]
    for name, (order, passes, transp, ios) in rows.items():
        lines.append(
            f"{name:<10} {order:>12} {passes:>7} {transp:>15} {ios:>14}"
        )
    report("ablation_baselines", "\n".join(lines))

    assert rows["SRM"][3] < rows["DSM"][3] < rows["PSV"][3]
