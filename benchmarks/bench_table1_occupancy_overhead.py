"""Table 1: the worst-case-expectation overhead ``v(k, D) = C(kD, D)/k``.

Regenerates the paper's full 6x5 grid by Monte-Carlo ball throwing
(exactly the authors' method) and checks every cell against the
published value.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import PAPER_TABLE1, max_abs_deviation, render_comparison, table1

from conftest import paper_scale


def _trials() -> int:
    return 2000 if paper_scale() else 400


def test_table1_grid(benchmark, report):
    grid = benchmark.pedantic(
        lambda: table1(n_trials=_trials(), rng=1996), rounds=1, iterations=1
    )
    text = render_comparison(PAPER_TABLE1, grid)
    dev = max_abs_deviation(PAPER_TABLE1, grid)
    text += f"\nmax |paper - measured| = {dev:.3f}"
    report("table1", text)
    benchmark.extra_info["max_abs_deviation"] = dev
    # The paper reports 2 significant digits; Monte-Carlo noise plus
    # their rounding justifies a 0.1 tolerance per cell.
    assert dev <= 0.12
    # Structure: v >= 1 everywhere, decreasing in k, increasing in D.
    assert np.all(grid.values >= 1.0)
    assert np.all(np.diff(grid.values, axis=0) <= 0.05)
    assert np.all(np.diff(grid.values, axis=1) >= -0.05)
