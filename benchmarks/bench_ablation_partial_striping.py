"""Ablation: partial striping — the SRM→DSM interpolation (§2.2, [VS94]).

Grouping the D physical disks into clusters of g and running SRM on the
logical array interpolates between plain SRM (g = 1) and DSM's logical
single disk (g = D).  Under a fixed memory budget, growing g shrinks
the merge order (block size inflates by g), costing extra merge passes
— the quantitative reason the paper keeps g = 1 whenever D = O(B).
"""

from __future__ import annotations

import numpy as np

from repro.core import merge_order_profile, partial_striping_sort
from repro.workloads import uniform_permutation

from conftest import paper_scale

D, B = 8, 8
MEMORY = 1200


def test_partial_striping_interpolation(benchmark, report):
    n = 120_000 if paper_scale() else 48_000
    keys = uniform_permutation(n, rng=5)

    # Short initial runs (160 of them) so the merge-order gap changes
    # the pass count: R = 39 at g = 1 finishes in 2 passes, R = 7 at
    # g = 8 needs 3.
    run_length = 300

    def run():
        rows = []
        for g, order in merge_order_profile(MEMORY, D, B):
            out, res, ps = partial_striping_sort(
                keys, MEMORY, D, B, group_size=g, rng=6, run_length=run_length
            )
            assert np.array_equal(out, np.sort(keys))
            rows.append(
                (g, ps.logical_disks, ps.logical_block, order,
                 res.n_merge_passes, res.io.parallel_ios)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"N = {n}, physical D = {D}, B = {B}, memory = {MEMORY} records",
        f"{'g':>3} {'D_l':>4} {'B_l':>5} {'R':>5} {'passes':>7} {'I/Os':>8}",
    ]
    for g, dl, bl, r, passes, ios in rows:
        lines.append(f"{g:>3} {dl:>4} {bl:>5} {r:>5} {passes:>7} {ios:>8}")
    lines.append("g = 1 is plain SRM; g = D is DSM's logical single disk.")
    report("ablation_partial_striping", "\n".join(lines))

    orders = [r for _, _, _, r, _, _ in rows]
    assert all(a >= b for a, b in zip(orders, orders[1:]))
    # Full striping (g = D) costs an extra pass and more I/Os than SRM.
    assert rows[0][4] < rows[-1][4]
    assert rows[0][5] < rows[-1][5]


def test_channel_constrained_array(benchmark, report):
    """§1's D vs D' model: SRM on a bandwidth-limited channel."""
    from repro.core import SRMConfig, srm_mergesort
    from repro.disks import ParallelDiskSystem, StripedFile

    n = 32_000 if not paper_scale() else 96_000
    cfg = SRMConfig.from_k(2, 8, 8)
    keys = uniform_permutation(n, rng=7)

    def run():
        rows = []
        for width in (None, 4, 2, 1):
            system = ParallelDiskSystem(8, 8, channel_width=width)
            infile = StripedFile.from_records(system, keys)
            res = srm_mergesort(system, infile, cfg, rng=8, run_length=512)
            rows.append((width or 8, res.io.parallel_ios, system.channel_rounds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"N = {n}, D' = 8 disks, B = 8",
             f"{'channel D':>10} {'parallel ops':>13} {'channel rounds':>15}"]
    for width, ops, rounds in rows:
        lines.append(f"{width:>10} {ops:>13} {rounds:>15}")
    lines.append("parallel-op count is channel-independent; the channel")
    lines.append("rounds scale ~ D'/D, as the §1 two-parameter model predicts.")
    report("ablation_channel", "\n".join(lines))

    ops = {w: o for w, o, _ in rows}
    rounds = {w: r for w, _, r in rows}
    assert len(set(ops.values())) == 1          # schedule unchanged
    assert rounds[1] > rounds[2] > rounds[4] >= rounds[8]
    assert rounds[1] <= 8 * rounds[8]
