"""Ablation: run formation method (memory-load sort vs replacement selection).

§2.1 notes replacement selection produces runs of expected length ~2M,
halving the run count; on nearly-sorted data it collapses the input to
a handful of runs.  This bench sorts identical inputs both ways and
compares run counts, merge passes and total parallel I/Os.
"""

from __future__ import annotations

import numpy as np

from repro.core import SRMConfig, srm_sort
from repro.workloads import nearly_sorted, uniform_permutation

from conftest import paper_scale


def test_run_formation_ablation(benchmark, report):
    n = 60_000 if paper_scale() else 24_000
    cfg = SRMConfig.from_k(3, 4, 16)
    run_length = 512

    inputs = {
        "uniform random": uniform_permutation(n, rng=1),
        "nearly sorted (2%)": nearly_sorted(n, 0.02, rng=2),
    }

    def run():
        rows = []
        for iname, keys in inputs.items():
            for method in ("load_sort", "replacement_selection"):
                out, res = srm_sort(
                    keys, cfg, rng=3, run_length=run_length, formation=method
                )
                assert np.array_equal(out, np.sort(keys))
                rows.append(
                    (iname, method, res.runs_formed, res.n_merge_passes,
                     res.io.parallel_ios)
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"N = {n}, D = 4, B = 16, memory = {run_length} records",
             f"{'input':<20} {'formation':<24} {'runs':>6} {'passes':>7} {'I/Os':>8}"]
    for iname, method, runs, passes, ios in rows:
        lines.append(f"{iname:<20} {method:<24} {runs:>6} {passes:>7} {ios:>8}")
    report("ablation_run_formation", "\n".join(lines))

    by = {(r[0], r[1]): r for r in rows}
    # Replacement selection forms fewer runs on random input...
    assert by[("uniform random", "replacement_selection")][2] < by[
        ("uniform random", "load_sort")
    ][2]
    # ...and collapses nearly-sorted input to almost nothing.
    assert by[("nearly sorted (2%)", "replacement_selection")][2] <= 3
    assert (
        by[("nearly sorted (2%)", "replacement_selection")][4]
        < by[("nearly sorted (2%)", "load_sort")][4]
    )
