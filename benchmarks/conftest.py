"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables/figures
(or an ablation) and both *asserts* agreement with the published values
and *emits* a paper-vs-measured report:

* to stdout (bypassing pytest capture, so it lands in bench_output.txt),
* to ``benchmarks/out/<name>.txt`` for EXPERIMENTS.md.

Set ``REPRO_FULL=1`` for paper-scale parameters (slower).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def paper_scale() -> bool:
    """True when the REPRO_FULL=1 environment flag requests full scale."""
    return os.environ.get("REPRO_FULL", "0") == "1"


def emit_report(name: str, text: str) -> None:
    """Print a report (uncaptured) and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    stream = sys.__stdout__ or sys.stdout
    stream.write(f"\n===== {name} =====\n{text}\n")
    stream.flush()


@pytest.fixture
def report():
    """Fixture handing benches the emit_report helper."""
    return emit_report
