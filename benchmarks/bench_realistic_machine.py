"""Full-sort comparison at realistic scale (§10's workstation scenario).

Uses the full-sort block-level simulator to measure SRM's complete I/O
schedule on millions of records, against an exact operation count for
DSM on the same memory (DSM's schedule is deterministic, so it can be
counted without simulation: every superblock is one parallel I/O).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import dsm_exact_cost
from repro.core import DSMConfig, SRMConfig, simulate_mergesort

from conftest import paper_scale


def test_realistic_machine(benchmark, report):
    # D = 10 disks, B = 100-record blocks, k = 10 (memory 25k records):
    # tight memory so several merge passes happen, as in the paper's
    # N >> M regime.  REPRO_FULL quadruples N.
    n = 16_000_000 if paper_scale() else 4_000_000
    srm_cfg = SRMConfig.from_k(10, 10, 100)
    dsm_cfg = DSMConfig.matching_srm(srm_cfg)
    run_length = srm_cfg.memory_records

    def run():
        sim = simulate_mergesort(n, srm_cfg, run_length=run_length, rng=1996)
        cost = dsm_exact_cost(n, run_length, dsm_cfg)
        return sim, cost.parallel_reads, cost.parallel_writes

    sim, d_reads, d_writes = benchmark.pedantic(run, rounds=1, iterations=1)
    srm_ios = sim.parallel_ios
    dsm_ios = d_reads + d_writes
    ratio = srm_ios / dsm_ios
    lines = [
        f"N = {n:,} records, D = 10, B = 100, memory = {run_length:,} records",
        f"SRM: R = {srm_cfg.merge_order}, {sim.runs_formed} runs, "
        f"{sim.n_merge_passes} merge passes, v = {sim.mean_overhead_v:.3f}",
        f"     {sim.parallel_reads:,} reads + {sim.parallel_writes:,} writes "
        f"= {srm_ios:,} parallel I/Os",
        f"DSM: R = {dsm_cfg.merge_order}, "
        f"{d_reads:,} reads + {d_writes:,} writes = {dsm_ios:,} parallel I/Os",
        f"I/O ratio SRM/DSM = {ratio:.3f}",
    ]
    report("realistic_machine", "\n".join(lines))
    benchmark.extra_info["io_ratio"] = ratio

    assert sim.mean_overhead_v < 1.15       # average-case: near-zero overhead
    assert srm_ios < dsm_ios                # SRM wins outright
    assert ratio < 0.95
