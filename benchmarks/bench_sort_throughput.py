"""Throughput benchmarks: wall-clock speed of the simulation itself.

Not a paper table — these time the library's three hot paths so
performance regressions are visible:

* the block-level simulator (events/second),
* the data-moving SRM sort (records/second),
* the DSM baseline sort.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import dsm_sort
from repro.core import DSMConfig, SRMConfig, simulate_merge, srm_sort
from repro.workloads import random_partition_job, uniform_permutation


def test_simulator_throughput(benchmark):
    job = random_partition_job(k=4, n_disks=8, blocks_per_run=50, block_size=8, rng=1)
    stats = benchmark(lambda: simulate_merge(job))
    assert stats.n_blocks == 4 * 8 * 50


def test_srm_sort_throughput(benchmark):
    keys = uniform_permutation(50_000, rng=2)
    cfg = SRMConfig.from_k(4, 4, 64)

    def run():
        out, res = srm_sort(keys, cfg, rng=3)
        return out

    out = benchmark(run)
    assert np.array_equal(out, np.sort(keys))


def test_dsm_sort_throughput(benchmark):
    keys = uniform_permutation(50_000, rng=2)
    cfg = DSMConfig(n_disks=4, block_size=64, merge_order=5)

    def run():
        out, res = dsm_sort(keys, cfg, run_length=4096)
        return out

    out = benchmark(run)
    assert np.array_equal(out, np.sort(keys))
