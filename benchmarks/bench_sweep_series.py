"""Series sweeps: the Theorem 1 curves, measured.

The paper states its results as asymptotic expressions rather than
plotted figures; these sweeps regenerate the two curves those
expressions describe and check their shape:

* ``v`` versus ``D`` at fixed ``k`` — case 1's ``ln D / ln ln D``-flavor
  growth of the per-phase overhead;
* ``v`` versus ``k`` at fixed ``D`` — case 2/3's convergence to 1
  (``1 + sqrt(2/r)`` with ``r = k / ln D``), the optimality regime
  ``M = Ω(DB log D)``.

Each measured point is sandwiched between the Chung–Erdős lower bound
and the generating-function upper bound computed from the same
machinery the paper's proofs use.
"""

from __future__ import annotations

import math

from repro.core import simulate_merge
from repro.occupancy import (
    classical_expected_max_lower_bound,
    gf_expected_max_bound,
)
from repro.workloads import random_partition_job

from conftest import paper_scale


def _measured_v(k: int, d: int, blocks: int, seed: int) -> float:
    job = random_partition_job(k, d, blocks, 8, rng=seed)
    return simulate_merge(job).overhead_v


def test_v_versus_d(benchmark, report):
    """Fixed k = 4: growing D inflates the occupancy overhead."""
    blocks = 120 if paper_scale() else 60
    ds = [2, 4, 8, 16, 32, 64]

    def run():
        rows = []
        for d in ds:
            v = _measured_v(4, d, blocks, seed=70 + d)
            lo = classical_expected_max_lower_bound(4 * d, d) / 4
            hi = gf_expected_max_bound(4 * d, d) / 4
            rows.append((d, lo, v, hi))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"k = 4, {blocks} blocks/run (average-case merges)",
             f"{'D':>4} {'occupancy lower':>16} {'measured v':>11} {'GF upper':>9}"]
    for d, lo, v, hi in rows:
        lines.append(f"{d:>4} {lo:>16.3f} {v:>11.3f} {hi:>9.3f}")
    report("sweep_v_vs_D", "\n".join(lines))

    vs = [v for _, _, v, _ in rows]
    # Shape: v grows with D (within noise) and stays under the GF bound.
    assert vs[-1] > vs[0]
    for _, _, v, hi in rows:
        assert v <= hi + 0.1
    # Average-case measured v sits *below* the worst-case-expectation
    # occupancy estimate at large D (Table 3 vs Table 1 in miniature).


def test_v_versus_k(benchmark, report):
    """Fixed D = 16: v -> 1 as k grows (the §10 optimality regime)."""
    blocks = 120 if paper_scale() else 60
    ks = [1, 2, 4, 8, 16, 32]

    def run():
        rows = []
        for k in ks:
            v = _measured_v(k, 16, blocks, seed=90 + k)
            r = k / math.log(16)
            predicted = 1.0 + math.sqrt(2.0 / r) if r > 0 else float("inf")
            rows.append((k, v, predicted))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"D = 16, {blocks} blocks/run (average-case merges)",
             f"{'k':>4} {'measured v':>11} {'1+sqrt(2/r) (thm 1 c3)':>24}"]
    for k, v, pred in rows:
        lines.append(f"{k:>4} {v:>11.3f} {pred:>24.3f}")
    report("sweep_v_vs_k", "\n".join(lines))

    vs = [v for _, v, _ in rows]
    assert all(a >= b - 0.05 for a, b in zip(vs, vs[1:]))  # decreasing
    assert vs[-1] < 1.05                                   # -> optimal
    for k, v, pred in rows:
        if k >= 4:
            # Theorem 1 case 3's leading factor upper-bounds the
            # average-case measurement comfortably.
            assert v <= pred + 0.1
