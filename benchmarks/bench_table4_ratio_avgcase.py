"""Table 4: the ratio ``C'_SRM / C_DSM`` with the simulated (average-case) v.

As with Table 2, both formula fidelity (paper's v values in, paper's
ratios out) and end-to-end fidelity (our simulated v) are checked.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    max_abs_deviation,
    render_comparison,
    table3,
    table4,
)

from conftest import paper_scale


def test_table4_formula_fidelity(benchmark, report):
    grid = benchmark.pedantic(lambda: table4(PAPER_TABLE3), rounds=1, iterations=1)
    dev = max_abs_deviation(PAPER_TABLE4, grid)
    report(
        "table4_formula",
        render_comparison(PAPER_TABLE4, grid)
        + f"\n(using the paper's own v values)\nmax |paper - measured| = {dev:.3f}",
    )
    assert dev <= 0.02


def test_table4_end_to_end(benchmark, report):
    blocks_per_run = 1000 if paper_scale() else 100

    def run():
        return table4(table3(blocks_per_run=blocks_per_run, block_size=8, rng=1996))

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    dev = max_abs_deviation(PAPER_TABLE4, grid)
    report(
        "table4",
        render_comparison(PAPER_TABLE4, grid)
        + f"\nmax |paper - measured| = {dev:.3f}",
    )
    benchmark.extra_info["max_abs_deviation"] = dev
    assert dev <= 0.04
    # SRM dominates everywhere; the average case beats Table 2's
    # worst-case-expectation ratios in every cell.
    assert np.all(grid.values < 1.0)
    from repro.analysis import PAPER_TABLE2

    for i, k in enumerate(grid.ks):
        for j, d in enumerate(grid.ds):
            assert grid.values[i, j] <= PAPER_TABLE2.value(k, d) + 0.02
