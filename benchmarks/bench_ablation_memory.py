"""Ablation: memory scaling — overhead and flushing as k = R/D grows.

Section 10's argument for SRM's practical optimality is that realistic
machines have k >> 1 (many memory blocks per disk).  This bench sweeps
k at fixed D on average-case inputs and shows v -> 1 and flushing
vanishing, plus the §5.5 flush machinery absorbing the pressure at
small k ("flushing on/off" is visible as blocks_flushed going to zero
rather than a separate code path: flushing is what makes small-k merges
correct at all).
"""

from __future__ import annotations

import numpy as np

from repro.core import simulate_merge
from repro.workloads import random_partition_job

from conftest import paper_scale

D = 16
B = 8


def test_memory_scaling(benchmark, report):
    blocks_per_run = 150 if paper_scale() else 60
    ks = [1, 2, 4, 8, 16]

    def run():
        out = {}
        for k in ks:
            job = random_partition_job(k, D, blocks_per_run, B, rng=100 + k)
            out[k] = simulate_merge(job)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"D = {D}, {blocks_per_run} blocks/run, average-case inputs",
             f"{'k':>4} {'R':>6} {'v':>8} {'flush ops':>10} {'blocks flushed':>15}"]
    for k, stats in results.items():
        lines.append(
            f"{k:>4} {k * D:>6} {stats.overhead_v:>8.3f} "
            f"{stats.flush_ops:>10} {stats.blocks_flushed:>15}"
        )
    report("ablation_memory", "\n".join(lines))

    vs = np.array([results[k].overhead_v for k in ks])
    # v decreases monotonically (within noise) toward 1.
    assert np.all(np.diff(vs) <= 0.05)
    assert vs[-1] < 1.1
    # Flushing is a small-k phenomenon.
    assert results[ks[0]].blocks_flushed >= results[ks[-1]].blocks_flushed


def test_flushing_required_at_k1(benchmark, report):
    """At k = 1 (R = D, the tightest §2.2 memory) flushing must engage."""
    blocks_per_run = 100 if paper_scale() else 40

    def run():
        job = random_partition_job(1, D, blocks_per_run, B, rng=3)
        return simulate_merge(job, validate=True)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_flushing",
        f"k=1, D={D}: v = {stats.overhead_v:.3f}, flush ops = {stats.flush_ops}, "
        f"blocks flushed = {stats.blocks_flushed}, "
        f"M_R high-water = {stats.max_mr_occupied} (cap {D + D})",
    )
    assert stats.max_mr_occupied <= 2 * D
    assert stats.overhead_v >= 1.0
