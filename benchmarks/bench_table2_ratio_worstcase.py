"""Table 2: the performance ratio ``C_SRM / C_DSM`` with worst-case v.

Two checks are made:

* feeding the *published* Table 1 overheads through equations (40)/(41)
  must reproduce the published Table 2 almost exactly (formula fidelity);
* feeding our *measured* Table 1 overheads must land within Monte-Carlo
  noise of it (end-to-end fidelity).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    max_abs_deviation,
    render_comparison,
    table1,
    table2,
)

from conftest import paper_scale


def test_table2_formula_fidelity(benchmark, report):
    grid = benchmark.pedantic(lambda: table2(PAPER_TABLE1), rounds=1, iterations=1)
    dev = max_abs_deviation(PAPER_TABLE2, grid)
    report(
        "table2_formula",
        render_comparison(PAPER_TABLE2, grid)
        + f"\n(using the paper's own v values)\nmax |paper - measured| = {dev:.3f}",
    )
    benchmark.extra_info["max_abs_deviation"] = dev
    assert dev <= 0.02


def test_table2_end_to_end(benchmark, report):
    trials = 2000 if paper_scale() else 400

    def run():
        return table2(table1(n_trials=trials, rng=1996))

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    dev = max_abs_deviation(PAPER_TABLE2, grid)
    report(
        "table2",
        render_comparison(PAPER_TABLE2, grid)
        + f"\nmax |paper - measured| = {dev:.3f}",
    )
    benchmark.extra_info["max_abs_deviation"] = dev
    assert dev <= 0.04
    # SRM wins every cell, and the advantage grows with D (§9.2).
    assert np.all(grid.values < 1.0)
    for i in range(len(grid.ks)):
        assert grid.values[i, 0] > grid.values[i, -1]
