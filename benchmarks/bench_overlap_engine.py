"""Benchmark: the discrete-event overlap engine, end to end.

Runs the *same* seeded sort under every overlap discipline and reports
the simulated merge wall-clock on 1996-era disks in the balanced
regime (per-record CPU cost == its share of block service time — the
regime where the paper's post-Lemma-1 overlap claim matters most):

* demand-paced SRM (``mode="none"``: every ParRead and stripe write
  stalls the merge),
* read-ahead SRM at several window depths (``mode="prefetch"``),
* read-ahead + write-behind SRM (``mode="full"``),
* DSM under the same memory, demand-paced and ideally double-buffered
  (computed analytically from its measured merge-pass I/O counts).

Alongside the timings it checks the engine's core contract: every mode
produces byte-identical sorted output, and any read-ahead at all is
strictly faster than demand pacing.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import dsm_merge_order_formula
from repro.baselines import dsm_sort
from repro.core import DSMConfig, OverlapConfig, SRMConfig, srm_sort
from repro.disks import DISK_1996
from repro.workloads import uniform_permutation

from conftest import paper_scale

D, B, K = 4, 8, 4
T_IO = DISK_1996.op_time_ms(B)
CPU_US = T_IO * 1000.0 / B  # balanced: record cost == share of block I/O

MODES = [
    ("demand-paced", "none", 0),
    ("prefetch d=1", "prefetch", 1),
    ("prefetch d=2", "prefetch", 2),
    ("prefetch d=4", "prefetch", 4),
    ("full d=2", "full", 2),
    ("full d=4", "full", 4),
]


def test_overlap_engine_speedup(benchmark, report):
    n = 120_000 if paper_scale() else 40_000
    cfg = SRMConfig.from_k(K, D, B)
    keys = uniform_permutation(n, rng=51)
    expect = np.sort(keys)

    def run():
        rows = []
        for label, mode, depth in MODES:
            overlap = OverlapConfig(
                mode=mode, prefetch_depth=depth, cpu_us_per_record=CPU_US
            )
            out, res = srm_sort(
                keys, cfg, rng=52, run_length=512, overlap=overlap
            )
            assert np.array_equal(out, expect)  # byte-identical in every mode
            reports = res.overlap_reports
            rows.append(
                (
                    label,
                    res.simulated_merge_ms,
                    sum(r.cpu_stall_ms for r in reports),
                    sum(r.eager_reads for r in reports),
                    sum(r.demand_reads for r in reports),
                    float(np.mean([r.disk_utilization for r in reports])),
                    float(np.mean([r.cpu_utilization for r in reports])),
                )
            )

        # DSM under SRM's memory (§9.1 order formula), timed analytically
        # from its measured merge-pass I/O: demand = serial I/O + CPU,
        # double-buffered = the max(io, cpu) pipeline ideal.
        dsm_order = int(dsm_merge_order_formula(K, D, B))
        dout, dres = dsm_sort(
            keys, DSMConfig(D, B, dsm_order), run_length=512
        )
        assert np.array_equal(dout, expect)
        dsm_io_ops = sum(p.parallel_reads + p.parallel_writes for p in dres.passes)
        dsm_io_ms = dsm_io_ops * T_IO
        dsm_cpu_ms = n * dres.n_merge_passes * CPU_US / 1000.0
        dsm = {
            "order": dsm_order,
            "demand_ms": dsm_io_ms + dsm_cpu_ms,
            "overlapped_ms": max(dsm_io_ms, dsm_cpu_ms),
        }
        return rows, dsm

    rows, dsm = benchmark.pedantic(run, rounds=1, iterations=1)

    base = dict((r[0], r[1]) for r in rows)["demand-paced"]
    lines = [
        f"N = {n}, D = {D}, B = {B}, R = {K * D}, 1996-era disks,"
        f" balanced CPU ({CPU_US:.2f} us/record)",
        f"{'SRM mode':<14} {'makespan ms':>12} {'speedup':>8} "
        f"{'stall ms':>9} {'eager':>6} {'demand':>7} {'disk u':>7} {'cpu u':>6}",
    ]
    for label, ms, stall, eager, demand, du, cu in rows:
        lines.append(
            f"{label:<14} {ms:>12.0f} {base / ms:>8.2f} {stall:>9.0f} "
            f"{eager:>6} {demand:>7} {du:>7.2f} {cu:>6.2f}"
        )
    lines.append("")
    lines.append(
        f"DSM (order {dsm['order']}, same memory):"
        f" demand {dsm['demand_ms']:.0f} ms,"
        f" double-buffered {dsm['overlapped_ms']:.0f} ms"
    )
    best = min(ms for _, ms, *_ in rows)
    lines.append(
        f"overlapped SRM vs demand SRM: {base / best:.2f}x,"
        f" vs demand DSM: {dsm['demand_ms'] / best:.2f}x,"
        f" vs double-buffered DSM: {dsm['overlapped_ms'] / best:.2f}x"
    )
    report("overlap_engine", "\n".join(lines))

    times = {label: ms for label, ms, *_ in rows}
    # Any read-ahead window (depth >= 1) strictly beats demand pacing.
    for label, ms in times.items():
        if label != "demand-paced":
            assert ms < times["demand-paced"], (label, ms)
    # Write-behind on top of read-ahead never loses at equal depth.
    assert times["full d=2"] <= times["prefetch d=2"] + 1e-9
    assert times["full d=4"] <= times["prefetch d=4"] + 1e-9
