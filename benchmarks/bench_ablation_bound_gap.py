"""Ablation: how conservative is the worst-case-expectation analysis?

Table 1's ``v(k, D)`` bounds the expected reads per phase by a maximum
occupancy.  The bound treats each phase in isolation; the actual
schedule *prefetches across phases* — every ``ParRead`` grabs the
smallest block from every disk, so a phase's "deficit" disks are
backfilled while another phase's binding disk is being served.  This
bench quantifies the resulting gap: even the unit-chain workload whose
per-phase occupancy exactly matches the classical bound (lockstep runs:
every phase is ``R`` independent blocks) measures ``v ≈ 1`` end to end.

This is the *correct* reading of the paper's Tables: Table 1 is an
upper bound on worst-case expectation, Table 3 shows reality is much
better — and this bench shows reality is better even on the workload
that maximizes the per-phase bound.
"""

from __future__ import annotations

import numpy as np

from repro.core import MergeJob, lemma6_read_bound, simulate_merge
from repro.occupancy import overhead_v
from repro.workloads import interleaved_runs

from conftest import paper_scale

B = 4


def test_bound_gap(benchmark, report):
    blocks = 120 if paper_scale() else 60
    grid = [(2, 8), (5, 5), (5, 10), (5, 20)]

    def run():
        rows = []
        for k, d in grid:
            runs = interleaved_runs(k * d, blocks * B)
            vs, bounds = [], []
            for seed in range(3):
                job = MergeJob.from_key_runs(runs, B, d, rng=seed)
                stats = simulate_merge(job)
                vs.append(stats.overhead_v)
                bounds.append(
                    lemma6_read_bound(job).total * d / stats.n_blocks
                )
            v_occ = overhead_v(k, d, n_trials=1000, rng=17)
            rows.append((k, d, float(np.mean(vs)), float(np.mean(bounds)), v_occ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"lockstep (unit-chain) workload, {blocks} blocks/run",
        f"{'k':>4} {'D':>4} {'measured v':>11} {'Lemma6/blocks':>14} "
        f"{'occupancy v':>12}",
    ]
    for k, d, v, l6, vo in rows:
        lines.append(f"{k:>4} {d:>4} {v:>11.3f} {l6:>14.3f} {vo:>12.3f}")
    lines.append("measured <= Lemma6 ~ occupancy: cross-phase prefetching")
    lines.append("absorbs the per-phase imbalance the bound charges for.")
    report("ablation_bound_gap", "\n".join(lines))

    for k, d, v, l6, vo in rows:
        assert v <= l6 + 0.05          # the bound holds...
        assert v <= 1.25               # ...and reality is near-optimal
        # The per-phase bound tracks the occupancy estimate loosely: in
        # the lockstep job each phase re-realizes the SAME start-disk
        # draw (shifted), so 3 seeds = 3 occupancy samples vs 1000.
        assert abs(l6 - vo) < 0.6
