"""Figure 1: dependent vs classical occupancy (N_b=12, C=5, D=4).

Reproduces the figure's two panels (a concrete placement with maximum
occupancy 4 in the second bin for the dependent problem, 5 for the
classical one) and backs the visual intuition with the *exact* expected
maxima of both models plus Monte-Carlo confirmation.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import figure1
from repro.occupancy import (
    FIGURE1_CHAIN_LENGTHS,
    FIGURE1_N_BINS,
    dependent_max_occupancy_samples,
    max_occupancy_samples,
)


def test_figure1(benchmark, report):
    f = benchmark.pedantic(figure1, rounds=1, iterations=1)

    dep_mc = dependent_max_occupancy_samples(
        FIGURE1_CHAIN_LENGTHS, FIGURE1_N_BINS, n_trials=50_000, rng=1
    ).mean()
    cla_mc = max_occupancy_samples(12, FIGURE1_N_BINS, n_trials=50_000, rng=2).mean()

    lines = [
        "Figure 1 instance (N_b = 12 balls, C = 5 chains, D = 4 bins)",
        f"(a) dependent placement : {[int(x) for x in f.dependent_instance]} "
        f"-> max {int(f.dependent_instance.max())} in bin 2 (paper: 4 in bin 2)",
        f"(b) classical placement : {[int(x) for x in f.classical_instance]} "
        f"-> max {int(f.classical_instance.max())} in bin 2 (paper: 5 in bin 2)",
        "",
        f"exact  E[max] dependent = {f.dependent_expected_max:.4f}"
        f"   (Monte-Carlo {dep_mc:.4f})",
        f"exact  E[max] classical = {f.classical_expected_max:.4f}"
        f"   (Monte-Carlo {cla_mc:.4f})",
        "§7.2 conjecture (dependent <= classical): "
        + ("holds" if f.conjecture_holds else "VIOLATED"),
    ]
    report("figure1", "\n".join(lines))

    assert f.dependent_instance.sum() == 12
    assert f.dependent_instance.max() == 4 and np.argmax(f.dependent_instance) == 1
    assert f.classical_instance.max() == 5 and np.argmax(f.classical_instance) == 1
    assert f.conjecture_holds
    assert abs(dep_mc - f.dependent_expected_max) < 0.02
    assert abs(cla_mc - f.classical_expected_max) < 0.02
