"""Ablation: key distribution — does duplication change SRM's overhead?

The paper's analysis is distribution-free ("the actual key values ...
can be arbitrary and their relative order does not affect the bounds").
This bench checks the *average-case* counterpart empirically: the
measured overhead v on uniform, Zipf-skewed, and few-distinct-value
inputs, plus the lockstep pathological shape, all under the randomized
layout.
"""

from __future__ import annotations

import numpy as np

from repro.core import SRMConfig, srm_sort
from repro.workloads import (
    duplicate_heavy,
    uniform_permutation,
    zipf_keys,
)

from conftest import paper_scale

D, B, K = 4, 8, 4


def test_duplicate_distributions(benchmark, report):
    n = 60_000 if paper_scale() else 24_000
    cfg = SRMConfig.from_k(K, D, B)
    inputs = {
        "uniform distinct": uniform_permutation(n, rng=41),
        "zipf a=1.5": zipf_keys(n, alpha=1.5, rng=42),
        "16 distinct values": duplicate_heavy(n, 16, rng=43),
        "1 distinct value": np.zeros(n, dtype=np.int64),
    }

    def run():
        rows = []
        for name, keys in inputs.items():
            out, res = srm_sort(keys, cfg, rng=44, run_length=512)
            assert np.array_equal(out, np.sort(keys))
            vs = [s.overhead_v for s in res.merge_schedules]
            merged = sum(s.n_blocks for s in res.merge_schedules)
            cyc_per_blk = res.heap_cycles / merged if merged else 0.0
            rows.append((name, res.io.parallel_reads, res.io.parallel_writes,
                         float(np.mean(vs)) if vs else 1.0, cyc_per_blk))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"N = {n}, D = {D}, B = {B}, R = {cfg.merge_order}",
             f"{'input':<20} {'reads':>8} {'writes':>8} {'mean v':>8} "
             f"{'cyc/blk':>8}"]
    for name, reads, writes, v, cyc in rows:
        lines.append(f"{name:<20} {reads:>8} {writes:>8} {v:>8.3f} {cyc:>8.2f}")
    report("ablation_duplicates", "\n".join(lines))

    vs = {name: v for name, _, _, v, _ in rows}
    # Distribution-free in practice too: every shape stays near v = 1.
    for name, v in vs.items():
        assert v < 1.25, f"{name}: v = {v}"

    # The duplicate slow path must stay block-granular: one heap cycle
    # consumes (at least a big chunk of) one block even when every key
    # collides.  The old record-at-a-time fallback needed ~B cycles per
    # block (B = 8 here) on the all-equal input.
    cycles = {name: cyc for name, _, _, _, cyc in rows}
    assert cycles["1 distinct value"] <= 2.0, cycles
    assert cycles["16 distinct values"] <= 2.0, cycles
