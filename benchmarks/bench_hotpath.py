"""Hot-path perf harness: vectorized data planes vs. their references.

Runs :mod:`repro.bench` — the same harness behind ``repro bench`` — and
both *asserts* observational equivalence (identical output records and
I/O schedules between the loser-tree/batched merger and the heapq
reference, and between block-granular and per-record replacement
selection) and *emits* the measured throughputs.

Quick scale by default; set ``REPRO_FULL=1`` for the committed-report
scale (``M >= 1e5`` run-formation memory), where the speedup floors
(merge >= 2.5x, run formation >= 5x) are also asserted.
"""

from __future__ import annotations

import json

from conftest import paper_scale

from repro.bench import run_benchmarks


def _render(rep: dict) -> str:
    m, rs, w = rep["merge"], rep["run_formation"], rep["writer"]
    lines = [
        f"mode: {rep['mode']}",
        "",
        f"{'hot path':<16}{'vectorized rec/s':>18}{'reference rec/s':>18}"
        f"{'speedup':>9}",
        f"{'merge':<16}{m['losertree']['records_per_sec']:>18,}"
        f"{m['heapq']['records_per_sec']:>18,}{m['speedup']:>8.2f}x",
        f"{'run formation':<16}{rs['block']['records_per_sec']:>18,}"
        f"{rs['record']['records_per_sec']:>18,}{rs['speedup']:>8.2f}x",
        f"{'writer (ring)':<16}{w['records_per_sec']:>18,}"
        f"{'-':>18}{'-':>9}",
        "",
        f"merge heap cycles: losertree {m['losertree']['heap_cycles']:,}"
        f" vs heapq {m['heapq']['heap_cycles']:,}",
        "I/O equivalence: asserted (schedules, outputs, channel rounds)",
    ]
    return "\n".join(lines)


def test_hotpath_throughput(report):
    full = paper_scale()
    rep = run_benchmarks(quick=not full)

    # run_benchmarks raises if any equivalence assertion fails; these
    # document the invariant in the report payload as well.
    assert rep["merge"]["io_equivalent"]
    assert rep["run_formation"]["io_equivalent"]
    # The vectorized planes must never lose to their references.
    assert rep["merge"]["speedup"] > 1.0
    if full:
        assert rep["run_formation"]["params"]["memory_records"] >= 100_000
        assert rep["merge"]["speedup"] >= 2.5
        assert rep["run_formation"]["speedup"] >= 5.0

    report("hotpath_throughput", _render(rep))
    report("hotpath_throughput_json", json.dumps(rep, indent=2))
