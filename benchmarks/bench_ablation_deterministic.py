"""Ablation: the §8 deterministic (staggered) variant on average-case inputs.

The paper conjectures that on *random inputs* a deterministic staggered
placement matches the randomized bounds.  This bench reruns the Table 3
grid with STAGGERED starting disks and compares against RANDOMIZED:
the deterministic variant should be at least as good on average-case
inputs — while remaining the strategy an adversary defeats (see
bench_ablation_layouts).
"""

from __future__ import annotations

import numpy as np

from repro.core import LayoutStrategy, simulate_merge
from repro.workloads import random_partition_job

from conftest import paper_scale

GRID = [(5, 5), (5, 10), (5, 50), (10, 10), (50, 50)]


def test_staggered_matches_randomized_on_average_case(benchmark, report):
    blocks = 200 if paper_scale() else 80

    def run():
        rows = []
        for k, d in GRID:
            vs = {}
            for strat in (LayoutStrategy.RANDOMIZED, LayoutStrategy.STAGGERED):
                job = random_partition_job(
                    k, d, blocks, 8, rng=40 + k + d, strategy=strat
                )
                vs[strat] = simulate_merge(job).overhead_v
            rows.append((k, d, vs[LayoutStrategy.RANDOMIZED],
                         vs[LayoutStrategy.STAGGERED]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{blocks} blocks/run, average-case inputs",
             f"{'k':>4} {'D':>4} {'v randomized':>13} {'v staggered':>12}"]
    for k, d, vr, vs in rows:
        lines.append(f"{k:>4} {d:>4} {vr:>13.3f} {vs:>12.3f}")
    report("ablation_deterministic", "\n".join(lines))

    for k, d, vr, vs in rows:
        # §8's expectation: staggering is no worse than randomization on
        # average-case inputs (tolerate simulation noise).
        assert vs <= vr + 0.08
