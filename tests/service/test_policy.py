"""Unit tests for the fairness policies (selection order only —
bit-identity under every policy is covered by test_service)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SRMConfig
from repro.errors import ConfigError
from repro.service import (
    POLICIES,
    JobSpec,
    RoundRobinPolicy,
    ServiceJob,
    ShortestRemainingIOPolicy,
    WeightedFairPolicy,
    make_policy,
)
from repro.service.policy import estimate_total_rounds


def make_job(job_id, tenant, index, weight=1.0, n=400, seed=1):
    cfg = SRMConfig.from_k(2, 2, 8)
    keys = np.random.default_rng(seed).integers(0, 2**40, size=n)
    job = ServiceJob(
        spec=JobSpec(job_id=job_id, tenant=tenant, keys=keys, config=cfg)
    )
    job.admission_index = index
    job.weight = weight
    return job


class TestMakePolicy:
    def test_names_and_aliases(self):
        for name, cls in [
            ("rr", RoundRobinPolicy),
            ("round-robin", RoundRobinPolicy),
            ("wfq", WeightedFairPolicy),
            ("weighted_fair", WeightedFairPolicy),
            ("srpt", ShortestRemainingIOPolicy),
            ("shortest-io", ShortestRemainingIOPolicy),
        ]:
            assert isinstance(make_policy(name), cls)

    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigError):
            make_policy("fifo")

    def test_policies_tuple_all_constructible(self):
        for name in POLICIES:
            assert make_policy(name).name == name


class TestRoundRobin:
    def test_cycles_in_admission_order(self):
        jobs = [make_job(f"j{i}", "t0", i) for i in range(3)]
        policy = RoundRobinPolicy()
        picks = [policy.select(jobs).job_id for _ in range(7)]
        assert picks == ["j0", "j1", "j2", "j0", "j1", "j2", "j0"]

    def test_skips_departed_jobs(self):
        jobs = [make_job(f"j{i}", "t0", i) for i in range(3)]
        policy = RoundRobinPolicy()
        assert policy.select(jobs).job_id == "j0"
        remaining = [jobs[0], jobs[2]]  # j1 finished
        assert policy.select(remaining).job_id == "j2"
        assert policy.select(remaining).job_id == "j0"


class TestWeightedFair:
    def test_backlogged_lag_bound(self):
        # Two always-backlogged tenants, weights 2:1.  WFQ's classic
        # bound: the weight-normalized service gap never exceeds
        # 1/w_a + 1/w_b at any point in the schedule.
        a = make_job("a0", "a", 0, weight=2.0)
        b = make_job("b0", "b", 1, weight=1.0)
        policy = WeightedFairPolicy()
        rounds = {"a": 0, "b": 0}
        bound = 1.0 / a.weight + 1.0 / b.weight
        for _ in range(300):
            job = policy.select([a, b])
            policy.on_round(job)
            job.rounds += 1
            rounds[job.tenant] += 1
            gap = abs(rounds["a"] / a.weight - rounds["b"] / b.weight)
            assert gap <= bound + 1e-12
        # Long-run shares track the weights.
        assert rounds["a"] / rounds["b"] == pytest.approx(2.0, rel=0.05)

    def test_late_arrival_starts_at_active_floor(self):
        # Tenant b joins after a has run 50 rounds; b must not get 50
        # catch-up rounds in a row — its virtual time starts at the
        # current active minimum.
        a = make_job("a0", "a", 0)
        b = make_job("b0", "b", 1)
        policy = WeightedFairPolicy()
        for _ in range(50):
            policy.on_round(policy.select([a]))
        first_20 = []
        for _ in range(20):
            job = policy.select([a, b])
            policy.on_round(job)
            first_20.append(job.tenant)
        assert first_20.count("b") <= 11  # alternation, not monopoly

    def test_within_tenant_admission_order(self):
        j0 = make_job("j0", "t", 0)
        j1 = make_job("j1", "t", 1)
        policy = WeightedFairPolicy()
        assert policy.select([j1, j0]).job_id == "j0"


class TestShortestRemaining:
    def test_prefers_smaller_job(self):
        small = make_job("small", "t0", 1, n=200)
        big = make_job("big", "t1", 0, n=2_000)
        policy = ShortestRemainingIOPolicy()
        assert policy.select([big, small]).job_id == "small"

    def test_remaining_shrinks_with_granted_rounds(self):
        a = make_job("a", "t0", 0, n=1_000)
        b = make_job("b", "t1", 1, n=1_000, seed=2)
        a.rounds = estimate_total_rounds(a.spec) - 1  # nearly done
        policy = ShortestRemainingIOPolicy()
        assert policy.select([b, a]).job_id == "a"

    def test_estimate_monotone_in_records(self):
        cfg = SRMConfig.from_k(2, 2, 8)
        sizes = [100, 500, 2_000, 10_000]
        estimates = [
            estimate_total_rounds(
                JobSpec(job_id="j", tenant="t", keys=np.arange(n), config=cfg)
            )
            for n in sizes
        ]
        assert estimates == sorted(estimates)
        assert estimates[0] < estimates[-1]
