"""Tests for the 5-phase admission pipeline (phases 1-3 live here)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SRMConfig
from repro.errors import ConfigError
from repro.memory.pool import ServicePool
from repro.service import ADMIT, PHASES, REJECT, WAIT, AdmissionPipeline
from repro.service.jobs import JobSpec, ServiceJob

CFG = SRMConfig.from_k(2, 2, 8)
FRAMES = JobSpec(
    job_id="probe", tenant="t0", keys=np.arange(10), config=CFG
).frames_needed


def make_job(job_id="j0", tenant="t0", config=CFG):
    spec = JobSpec(
        job_id=job_id, tenant=tenant, keys=np.arange(100), config=config
    )
    return ServiceJob(spec=spec)


def make_pipeline(quota_frames=4 * FRAMES, max_slots=4, weight=1.5):
    pool = ServicePool()
    pool.create_partition("t0", quota_frames, weight=weight)
    pipeline = AdmissionPipeline(
        pool, CFG.n_disks, CFG.block_size, max_slots=max_slots
    )
    return pool, pipeline


class TestPhases:
    def test_phase_names(self):
        assert PHASES == ("validate", "reserve", "slot", "select", "dispatch")

    def test_admit_holds_frames_slot_weight_index(self):
        pool, pipeline = make_pipeline()
        job = make_job()
        assert pipeline.try_admit(job) == ADMIT
        assert job.reserved_frames == FRAMES
        assert pool.partition("t0").reserved_frames == FRAMES
        assert job.slot is not None
        assert job.weight == 1.5
        assert job.admission_index == 0
        assert pipeline.slots_in_use == 1


class TestValidate:
    def test_geometry_mismatch_rejects(self):
        _, pipeline = make_pipeline()
        job = make_job(config=SRMConfig.from_k(2, 4, 8))
        assert pipeline.try_admit(job) == REJECT
        assert "geometry" in job.error

    def test_unknown_tenant_rejects(self):
        _, pipeline = make_pipeline()
        job = make_job(tenant="nobody")
        assert pipeline.try_admit(job) == REJECT

    def test_quota_violation_rejects_not_waits(self):
        # A job that could NEVER fit must reject immediately, not queue
        # forever.
        _, pipeline = make_pipeline(quota_frames=FRAMES - 1)
        job = make_job()
        assert pipeline.try_admit(job) == REJECT
        assert "quota" in job.error


class TestReserveAndSlot:
    def test_wait_on_exhausted_frames(self):
        pool, pipeline = make_pipeline(quota_frames=FRAMES)
        first, second = make_job("j0"), make_job("j1")
        assert pipeline.try_admit(first) == ADMIT
        assert pipeline.try_admit(second) == WAIT
        assert second.quota_waits == 1
        assert second.reserved_frames == 0

    def test_slot_failure_rolls_back_reservation(self):
        # Phase 3 failing must undo phase 2: a parked job holds nothing.
        pool, pipeline = make_pipeline(max_slots=1)
        first, second = make_job("j0"), make_job("j1")
        assert pipeline.try_admit(first) == ADMIT
        reserved_before = pool.partition("t0").reserved_frames
        assert pipeline.try_admit(second) == WAIT
        assert pool.partition("t0").reserved_frames == reserved_before
        assert second.slot is None
        assert second.quota_waits == 1

    def test_release_returns_frames_and_slot_exactly_once(self):
        pool, pipeline = make_pipeline()
        job = make_job()
        pipeline.try_admit(job)
        pipeline.release(job)
        assert pool.partition("t0").reserved_frames == 0
        assert pipeline.slots_in_use == 0
        assert job.reserved_frames == 0 and job.slot is None
        # Second release is a no-op, not a double free.
        pipeline.release(job)
        assert pool.partition("t0").reserved_frames == 0
        assert pipeline.slots_in_use == 0

    def test_waiter_admits_after_release(self):
        pool, pipeline = make_pipeline(quota_frames=FRAMES)
        first, second = make_job("j0"), make_job("j1")
        pipeline.try_admit(first)
        assert pipeline.try_admit(second) == WAIT
        pipeline.release(first)
        assert pipeline.try_admit(second) == ADMIT
        assert second.admission_index == 1

    def test_needs_at_least_one_slot(self):
        pool = ServicePool()
        pool.create_partition("t0", FRAMES)
        with pytest.raises(ConfigError):
            AdmissionPipeline(pool, CFG.n_disks, CFG.block_size, max_slots=0)
