"""Tests for the gated round-steppable job driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SRMConfig
from repro.disks.system import ParallelDiskSystem
from repro.service import JobDriver, JobSpec
from repro.service.report import solo_reference


def small_spec(n=300, seed=7, job_id="j0", arrival_ms=0.0, config=None):
    cfg = config if config is not None else SRMConfig.from_k(2, 2, 8)
    keys = np.random.default_rng(seed).integers(0, 2**40, size=n)
    return JobSpec(
        job_id=job_id, tenant="t0", keys=keys, config=cfg,
        arrival_ms=arrival_ms, seed=seed + 1,
    )


def drive_to_completion(system, spec):
    """Run one driver solo, stepping round by round; returns (driver, steps)."""
    driver = JobDriver(system, spec)
    driver.start()
    system.round_hook = driver.gate.wait_turn
    steps = 0
    try:
        while not driver.step():
            steps += 1
    finally:
        system.round_hook = None
    if driver.error is not None:
        raise driver.error
    return driver, steps + 1


class TestStepIdentity:
    def test_stepped_run_matches_unstepped_solo(self):
        spec = small_spec()
        system = ParallelDiskSystem(2, 8)
        driver, _ = drive_to_completion(system, spec)
        solo_keys, solo_result, _ = solo_reference(spec)
        assert np.array_equal(driver.sorted_keys, solo_keys)
        assert driver.result.merge_schedules == solo_result.merge_schedules
        assert driver.result.runs_formed == solo_result.runs_formed
        assert system.stats.same_counts(solo_result.io)

    def test_output_is_sorted_permutation(self):
        spec = small_spec(n=257, seed=11)
        system = ParallelDiskSystem(2, 8)
        driver, _ = drive_to_completion(system, spec)
        assert np.array_equal(driver.sorted_keys, np.sort(spec.keys))


class TestTurnCounts:
    def test_one_quantum_per_charged_stripe_op(self):
        # The hook fires before every charged stripe op, so the quantum
        # count is exactly (charged ops) + 1: the setup quantum installs
        # the input and parks before the first charged op, then each
        # further quantum executes one op; the last also tears down.
        spec = small_spec(n=250, seed=3)
        system = ParallelDiskSystem(2, 8)
        driver, steps = drive_to_completion(system, spec)
        assert steps == system.stats.parallel_ios + 1

    def test_setup_quantum_charges_nothing(self):
        spec = small_spec()
        system = ParallelDiskSystem(2, 8)
        driver = JobDriver(system, spec)
        driver.start()
        system.round_hook = driver.gate.wait_turn
        try:
            done = driver.step()  # input install only
        finally:
            system.round_hook = None
        assert not done
        assert system.stats.parallel_ios == 0


class TestCancel:
    def test_cancel_mid_run_sets_aborted(self):
        spec = small_spec()
        system = ParallelDiskSystem(2, 8)
        driver = JobDriver(system, spec)
        driver.start()
        system.round_hook = driver.gate.wait_turn
        try:
            for _ in range(4):
                assert not driver.step()
            driver.cancel()
        finally:
            system.round_hook = None
        assert driver.done
        assert driver.aborted
        assert driver.error is None
        assert driver.sorted_keys is None

    def test_cancel_after_done_is_noop(self):
        spec = small_spec(n=150)
        system = ParallelDiskSystem(2, 8)
        driver, _ = drive_to_completion(system, spec)
        driver.cancel()
        assert driver.done and not driver.aborted
