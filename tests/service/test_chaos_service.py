"""Service scenarios in the chaos harness: blast-radius containment.

Faults on the shared farm land on whichever tenant's round is running,
so the contract here is isolation — every tenant completes with sorted,
uncorrupted output — not solo bit-identity (the interleaving shifts
which ops the seeded fault stream hits).
"""

from __future__ import annotations

import pytest

from repro.faults import run_service_chaos


@pytest.fixture(scope="module")
def sweep():
    return run_service_chaos(
        n_jobs=3, n_disks=4, k=2, block_size=16, seed=7
    )


def test_both_scenarios_pass(sweep):
    assert {r.scenario for r in sweep} == {
        "service_transient",
        "service_death",
    }
    for r in sweep:
        assert r.ok, (r.scenario, r.error, r.stats)
        assert r.algorithm == "service"
        assert r.identical  # every tenant sorted + uncorrupted
        assert r.stats["jobs_completed"] == 3
        assert r.stats["undetected_corruptions"] == 0


def test_transient_faults_absorbed_by_retries(sweep):
    (transient,) = [r for r in sweep if r.scenario == "service_transient"]
    assert transient.stats["transient_failures"] > 0
    assert transient.stats["retries"] > 0


def test_disk_death_charges_recovery_but_spares_neighbors(sweep):
    (death,) = [r for r in sweep if r.scenario == "service_death"]
    assert death.stats["disk_deaths"] == 1
    # Degraded-mode reads are charged: a dead disk is never free.
    assert death.io_overhead_pct > 0
    assert death.stats["n_tenants"] == 2
