"""End-to-end tests of the multi-tenant sort service.

The acceptance criteria live here: bit-identity to solo runs under
every fairness policy, work conservation (shared busy time == sum of
isolated makespans), quota/preemption edge cases, abort accounting,
and per-tenant attribution tiling the service makespan.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import SRMConfig
from repro.errors import ConfigError, ScheduleError
from repro.service import (
    POLICIES,
    JobSpec,
    ServiceConfig,
    SortService,
    TenantSpec,
    run_arrival_script,
)
from repro.service.jobs import ABORTED, COMPLETED, REJECTED
from repro.service.report import solo_reference
from repro.telemetry import Telemetry
from repro.workloads import batch_arrivals, poisson_arrivals

CFG = SRMConfig.from_k(2, 2, 8)


def spec_for(job_id, tenant, n, seed, arrival_ms=0.0, config=CFG):
    keys = np.random.default_rng(seed).integers(0, 2**40, size=n)
    return JobSpec(
        job_id=job_id, tenant=tenant, keys=keys, config=config,
        arrival_ms=arrival_ms, seed=seed + 1,
    )


def two_tenant_service(policy="rr", quota_jobs=2, max_slots=8):
    return SortService(
        ServiceConfig(
            base_config=CFG,
            tenants=(
                TenantSpec("t0", weight=2.0, default_jobs=quota_jobs),
                TenantSpec("t1", weight=1.0, default_jobs=quota_jobs),
            ),
            policy=policy,
            max_slots=max_slots,
        )
    )


class TestBitIdentity:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_policy_bit_identical_to_solo(self, policy):
        arrivals = batch_arrivals(
            4, n_tenants=2, min_records=150, max_records=450, rng=17
        )
        result = run_arrival_script(
            arrivals, CFG, policy=policy, tenant_weights={"t0": 2.0}
        )
        assert [j.state for j in result.jobs] == [COMPLETED] * 4
        assert result.verify_against_solo() == []
        assert result.throughput_vs_isolated() == pytest.approx(1.0)

    def test_single_tenant_single_job_matches_solo_exactly(self):
        spec = spec_for("only", "t0", 300, seed=5)
        svc = two_tenant_service()
        svc.submit(spec)
        result = svc.run()
        solo_keys, solo_result, solo_ms = solo_reference(spec)
        job = result.jobs[0]
        assert np.array_equal(job.driver.sorted_keys, solo_keys)
        assert job.io.same_counts(solo_result.io)
        # Alone on the farm there is nothing to interleave with: the
        # shared clock must agree with the isolated clock to the float.
        assert result.makespan_ms == solo_ms
        assert result.idle_ms == 0.0

    def test_poisson_arrivals_with_idle_gaps(self):
        arrivals = poisson_arrivals(
            4, rate_per_s=2.0, n_tenants=2, min_records=150,
            max_records=350, rng=23,
        )
        result = run_arrival_script(arrivals, CFG, policy="rr")
        assert result.verify_against_solo() == []
        # A slow stream leaves real idle windows; busy + idle tile the
        # makespan by definition.
        assert result.busy_ms + result.idle_ms == result.makespan_ms


class TestWorkConservation:
    def test_policies_share_makespan_and_busy_time(self):
        arrivals = batch_arrivals(
            4, n_tenants=2, min_records=150, max_records=450, rng=29
        )
        results = {
            p: run_arrival_script(arrivals, CFG, policy=p) for p in POLICIES
        }
        makespans = {p: r.makespan_ms for p, r in results.items()}
        assert len(set(makespans.values())) == 1  # work-conserving: same work
        for r in results.values():
            assert r.verify_against_solo() == []
            assert r.idle_ms == 0.0  # batch: never a gap
            assert r.busy_ms <= r.isolated_total_ms * (1 + 1e-9) + 1e-6

    def test_srpt_improves_p50_on_mixed_sizes(self):
        arrivals = batch_arrivals(
            4, n_tenants=2, min_records=100, max_records=900, rng=31
        )
        rr = run_arrival_script(arrivals, CFG, policy="rr")
        srpt = run_arrival_script(arrivals, CFG, policy="srpt")
        assert (
            srpt.completion_percentiles()["p50"]
            <= rr.completion_percentiles()["p50"]
        )


class TestQuotaEdges:
    def test_quota_exactly_one_job_serializes_a_tenant(self):
        # quota == frames_needed: the tenant's second job must wait for
        # the first to finish, then run — no deadlock, no corruption.
        frames = spec_for("probe", "t0", 10, 0).frames_needed
        svc = SortService(
            ServiceConfig(
                base_config=CFG,
                tenants=(TenantSpec("t0", quota_frames=frames),),
                policy="rr",
            )
        )
        j1 = svc.submit(spec_for("j1", "t0", 200, seed=41))
        j2 = svc.submit(spec_for("j2", "t0", 200, seed=43))
        result = svc.run()
        assert result.verify_against_solo() == []
        assert j2.quota_waits >= 1
        # Strict serialization: j2's first round is after j1 finished.
        assert j2.first_round_ms >= j1.completed_ms
        assert svc.pool.partition("t0").reserved_frames == 0

    def test_admission_mid_merge_of_running_neighbor(self):
        # j1 is deep in its merge when j2 arrives; admission must not
        # disturb j1's parked driver and both must stay solo-identical.
        svc = two_tenant_service()
        svc.submit(spec_for("j1", "t0", 600, seed=47, arrival_ms=0.0))
        svc.submit(spec_for("j2", "t1", 200, seed=53, arrival_ms=400.0))
        result = svc.run()
        j1, j2 = result.jobs
        assert result.verify_against_solo() == []
        assert j1.first_round_ms == 0.0
        assert j2.first_round_ms >= 400.0
        assert j1.completed_ms > 400.0  # j1 really was mid-run

    def test_waiting_with_no_active_job_is_a_deadlock_error(self):
        svc = two_tenant_service()
        spec = spec_for("j1", "t0", 200, seed=59)
        # Exhaust t0's quota out-of-band: the job waits on frames no
        # running job will ever release.
        part = svc.pool.partition("t0")
        part.try_reserve(part.capacity_frames)
        svc.submit(spec)
        with pytest.raises(ScheduleError, match="deadlock"):
            svc.run()


class TestRejectAndAbort:
    def test_geometry_mismatch_rejected_neighbors_unharmed(self):
        svc = two_tenant_service()
        bad = svc.submit(
            spec_for("bad", "t0", 200, seed=61, config=SRMConfig.from_k(2, 4, 8))
        )
        svc.submit(spec_for("good", "t1", 200, seed=67))
        result = svc.run()
        assert bad.state == REJECTED
        assert "geometry" in bad.error
        assert result.verify_against_solo() == []
        assert len(result.completed) == 1

    def test_abort_reclaims_frames_and_slot(self):
        svc = two_tenant_service()
        victim = svc.submit(spec_for("victim", "t0", 400, seed=71))
        survivor = svc.submit(spec_for("survivor", "t1", 200, seed=73))
        result = svc.run(abort_after={"victim": 3})
        assert victim.state == ABORTED
        assert victim.rounds == 3
        assert victim.driver.aborted
        # The scarce resources are back...
        assert victim.reserved_frames == 0 and victim.slot is None
        assert svc.pool.partition("t0").reserved_frames == 0
        assert svc.admission.slots_in_use == 0
        # ...and the neighbor is untouched.
        assert survivor.state == COMPLETED
        assert result.verify_against_solo() == []

    def test_freed_quota_unblocks_waiter_after_abort(self):
        frames = spec_for("probe", "t0", 10, 0).frames_needed
        svc = SortService(
            ServiceConfig(
                base_config=CFG,
                tenants=(TenantSpec("t0", quota_frames=frames),),
                policy="rr",
            )
        )
        svc.submit(spec_for("hog", "t0", 400, seed=79))
        waiter = svc.submit(spec_for("waiter", "t0", 200, seed=83))
        result = svc.run(abort_after={"hog": 2})
        assert waiter.state == COMPLETED
        assert result.verify_against_solo() == []


class TestSubmission:
    def test_duplicate_job_id_raises(self):
        svc = two_tenant_service()
        svc.submit(spec_for("dup", "t0", 100, seed=89))
        with pytest.raises(ConfigError, match="duplicate"):
            svc.submit(spec_for("dup", "t1", 100, seed=97))

    def test_duplicate_tenant_names_raise(self):
        with pytest.raises(ConfigError, match="duplicate tenant"):
            ServiceConfig(
                base_config=CFG,
                tenants=(TenantSpec("t0"), TenantSpec("t0")),
            )

    def test_empty_tenant_list_raises(self):
        with pytest.raises(ConfigError):
            ServiceConfig(base_config=CFG, tenants=())


class TestTelemetryAndAttribution:
    def test_counters_and_per_tenant_attribution(self):
        from repro.analysis.critical_path import analyze_events, tenant_attribution

        arrivals = batch_arrivals(
            3, n_tenants=2, min_records=150, max_records=350, rng=101
        )
        tel = Telemetry(run="test-serve")
        tel.attach_trace()
        result = run_arrival_script(arrivals, CFG, policy="wfq", telemetry=tel)
        events = tel.finish()

        metrics = next(
            e for e in events if e.get("type") == "metrics"
        )["metrics"]
        assert metrics["service.jobs_submitted"]["value"] == 3
        assert metrics["service.jobs_completed"]["value"] == 3
        assert metrics["service.rounds_dispatched"]["value"] == sum(
            j.rounds for j in result.jobs
        )
        job_spans = [
            e for e in events
            if e.get("type") == "span" and e.get("name") == "service_job"
        ]
        assert len(job_spans) == 3

        # The per-tenant critical-path buckets tile [0, makespan].
        att = tenant_attribution(events, "service:0")
        assert set(att) <= {"t0", "t1", "(idle)"}
        assert math.isclose(
            sum(att.values()), result.makespan_ms, rel_tol=1e-9
        )
        dom = analyze_events(events)["service:0"]
        assert dom.exact

    def test_per_job_rounds_match_parallel_ios(self):
        arrivals = batch_arrivals(
            2, n_tenants=2, min_records=150, max_records=300, rng=103
        )
        result = run_arrival_script(arrivals, CFG, policy="rr")
        for job in result.jobs:
            assert job.rounds == job.io.parallel_ios
