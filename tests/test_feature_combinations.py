"""Cross-feature integration: the extensions must compose.

Each test stacks several optional capabilities (payloads, tracing,
timing, channel constraint, partial striping, scanning, conversions)
on one workflow and checks that nothing interferes with correctness or
accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SRMConfig
from repro.core import (
    LayoutStrategy,
    partial_striping_sort,
    srm_mergesort,
    srm_sort,
)
from repro.disks import (
    DISK_1996,
    IOTrace,
    ParallelDiskSystem,
    RunScanner,
    StripedFile,
    striped_run_to_superblock_run,
)
from repro.verify import assert_sorted_permutation, check_striped_run


class TestStackedFeatures:
    def test_traced_timed_channel_constrained_sort(self, rng):
        """Trace + timing + narrow channel, all at once."""
        cfg = SRMConfig.from_k(2, 4, 8)
        system = ParallelDiskSystem(4, 8, timing=DISK_1996, channel_width=2)
        system.trace = IOTrace()
        keys = rng.permutation(4096)
        infile = StripedFile.from_records(system, keys)
        res = srm_mergesort(system, infile, cfg, rng=1, run_length=128,
                            validate=True)
        assert_sorted_permutation(res.peek_sorted(), keys)
        assert len(system.trace) == res.io.parallel_ios
        assert system.channel_rounds > res.io.parallel_ios
        assert system.elapsed_ms > 0
        # The trace's view of widths equals the counters'.
        assert sum(ev.width for ev in system.trace.events) == (
            res.io.blocks_read + res.io.blocks_written
        )

    def test_payload_sort_then_scan_then_convert(self, rng):
        """Records survive a sort, a bounded scan, and a layout change."""
        cfg = SRMConfig.from_k(2, 4, 8)
        keys = rng.permutation(2048)
        pays = keys * 13 + 1
        _, res = srm_sort(keys, cfg, rng=2, run_length=128, payloads=pays)
        system = res.system
        check_striped_run(system, res.output)

        # Scan half, convert the metadata-intact run afterwards.
        scanner = RunScanner(system, res.output)
        seen = 0
        while seen < 1000:
            seen += scanner.next_chunk().size
        sb = striped_run_to_superblock_run(system, res.output, 99)
        out = sb.read_all(system)
        assert np.array_equal(out, np.sort(keys))

    def test_partial_striping_with_payload_records(self, rng):
        """Group-striped SRM still carries payloads correctly."""
        keys = rng.permutation(3000)
        # partial_striping_sort has no payload kwarg; use the config and
        # sort directly on the logical geometry.
        from repro.core import PartialStriping

        ps = PartialStriping(8, 8, group_size=2)
        cfg = ps.srm_config(2000)
        pays = keys + 10**6
        _, res = srm_sort(keys, cfg, rng=3, run_length=512, payloads=pays)
        out_k, out_p = res.peek_sorted_records()
        assert np.array_equal(out_k, np.sort(keys))
        lookup = dict(zip(keys.tolist(), pays.tolist()))
        assert [lookup[k] for k in out_k.tolist()] == out_p.tolist()

    def test_staggered_layout_with_replacement_selection(self, rng):
        """§8 deterministic placement composes with §2.1 run formation."""
        cfg = SRMConfig.from_k(2, 4, 8)
        keys = rng.permutation(3000)
        out, res = srm_sort(
            keys, cfg, strategy=LayoutStrategy.STAGGERED, rng=4,
            run_length=150, formation="replacement_selection", validate=True,
        )
        assert np.array_equal(out, np.sort(keys))

    def test_partial_striping_sort_traced(self, rng):
        keys = rng.permutation(4000)
        out, res, ps = partial_striping_sort(
            keys, memory_records=1000, n_disks=8, block_size=8,
            group_size=4, rng=5,
        )
        assert np.array_equal(out, np.sort(keys))
        assert ps.logical_disks == 2
        # Write efficiency measured on the logical geometry.
        assert res.io.write_efficiency > 0.9
