"""Tests for the single-disk block store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disks.block import Block
from repro.disks.disk import Disk
from repro.errors import DiskFullError, InvalidIOError


def blk(v=0):
    return Block(keys=np.array([v]))


class TestAllocation:
    def test_slots_are_distinct(self):
        d = Disk(0)
        slots = [d.allocate() for _ in range(10)]
        assert len(set(slots)) == 10

    def test_freed_slots_are_recycled(self):
        d = Disk(0)
        s = d.allocate()
        d.write(s, blk())
        d.free(s)
        assert d.allocate() == s

    def test_capacity_enforced(self):
        d = Disk(0, capacity_blocks=2)
        for _ in range(2):
            d.write(d.allocate(), blk())
        with pytest.raises(DiskFullError):
            d.allocate()

    def test_capacity_counts_live_blocks_only(self):
        d = Disk(0, capacity_blocks=1)
        s = d.allocate()
        d.write(s, blk())
        d.free(s)
        d.allocate()  # does not raise


class TestReadWrite:
    def test_roundtrip(self):
        d = Disk(0)
        s = d.allocate()
        b = blk(7)
        d.write(s, b)
        assert d.read(s) is b

    def test_read_empty_slot_raises(self):
        d = Disk(0)
        s = d.allocate()
        with pytest.raises(InvalidIOError):
            d.read(s)

    def test_overwrite_live_block_raises(self):
        d = Disk(0)
        s = d.allocate()
        d.write(s, blk())
        with pytest.raises(InvalidIOError):
            d.write(s, blk())

    def test_free_then_rewrite_ok(self):
        d = Disk(0)
        s = d.allocate()
        d.write(s, blk(1))
        d.free(s)
        d.write(s, blk(2))
        assert d.read(s).first_key == 2

    def test_has_block(self):
        d = Disk(0)
        s = d.allocate()
        assert not d.has_block(s)
        d.write(s, blk())
        assert d.has_block(s)

    def test_used_blocks(self):
        d = Disk(0)
        slots = [d.allocate() for _ in range(3)]
        for s in slots:
            d.write(s, blk())
        assert d.used_blocks == 3
        d.free(slots[0])
        assert d.used_blocks == 2
