"""IOStats construction, recording, and snapshot arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disks import IOStats


class TestConstruction:
    def test_defaults_allocate_per_disk_arrays(self):
        s = IOStats(n_disks=3)
        assert s.reads_per_disk.tolist() == [0, 0, 0]
        assert s.writes_per_disk.tolist() == [0, 0, 0]
        assert s.reads_per_disk.dtype == np.int64

    def test_keyword_construction_with_arrays(self):
        s = IOStats(
            n_disks=2,
            parallel_reads=3,
            blocks_read=5,
            reads_per_disk=np.array([3, 2], dtype=np.int64),
        )
        assert s.parallel_reads == 3
        assert s.reads_per_disk.tolist() == [3, 2]
        assert s.writes_per_disk.tolist() == [0, 0]

    def test_mismatched_array_length_rejected(self):
        with pytest.raises(ValueError, match="reads_per_disk"):
            IOStats(n_disks=2, reads_per_disk=np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError, match="writes_per_disk"):
            IOStats(n_disks=2, writes_per_disk=np.zeros(1, dtype=np.int64))


class TestRecordingAndDerived:
    def test_record_and_efficiency(self):
        s = IOStats(n_disks=4)
        s.record_read([0, 1, 2, 3])
        s.record_read([0])
        s.record_write([1, 2])
        assert s.parallel_ios == 3
        assert s.blocks_read == 5
        assert s.read_efficiency == pytest.approx(5 / 8)
        assert s.write_efficiency == pytest.approx(2 / 4)
        assert s.reads_per_disk.tolist() == [2, 1, 1, 1]

    def test_idle_efficiency_is_one(self):
        s = IOStats(n_disks=4)
        assert s.read_efficiency == 1.0
        assert s.write_efficiency == 1.0


class TestSnapshots:
    def test_snapshot_is_independent(self):
        s = IOStats(n_disks=2)
        s.record_read([0])
        snap = s.snapshot()
        s.record_read([0, 1])
        assert snap.parallel_reads == 1
        assert snap.reads_per_disk.tolist() == [1, 0]

    def test_since_delta(self):
        s = IOStats(n_disks=2)
        s.record_read([0])
        before = s.snapshot()
        s.record_read([0, 1])
        s.record_write([1])
        d = s.since(before)
        assert d.parallel_reads == 1
        assert d.parallel_writes == 1
        assert d.blocks_read == 2
        assert d.reads_per_disk.tolist() == [1, 1]

    def test_since_mismatched_d_rejected(self):
        with pytest.raises(ValueError):
            IOStats(n_disks=2).since(IOStats(n_disks=3))

    def test_reset(self):
        s = IOStats(n_disks=2)
        s.record_read([0, 1])
        s.reset()
        assert s.parallel_ios == 0
        assert s.reads_per_disk.tolist() == [0, 0]
