"""Tests for striped files and forecast-format runs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disks import NO_KEY, ParallelDiskSystem, StripedFile, StripedRun
from repro.errors import DataError


class TestStripedFile:
    def test_round_robin_layout(self):
        sys = ParallelDiskSystem(n_disks=3, block_size=2)
        f = StripedFile.from_records(sys, np.arange(10))
        assert [a.disk for a in f.addresses] == [0, 1, 2, 0, 1]

    def test_roundtrip(self):
        sys = ParallelDiskSystem(n_disks=3, block_size=4)
        keys = np.array([5, 1, 9, 2, 8, 3, 7])
        f = StripedFile.from_records(sys, keys)
        assert np.array_equal(f.read_all(sys), keys)

    def test_no_io_charged_by_default(self):
        sys = ParallelDiskSystem(n_disks=2, block_size=2)
        StripedFile.from_records(sys, np.arange(8))
        assert sys.stats.parallel_writes == 0

    def test_io_charged_when_requested(self):
        sys = ParallelDiskSystem(n_disks=2, block_size=2)
        StripedFile.from_records(sys, np.arange(8), count_ios=True)
        # 4 blocks striped over 2 disks -> 2 full-stripe writes.
        assert sys.stats.parallel_writes == 2

    def test_sequential_read_is_fully_parallel(self):
        sys = ParallelDiskSystem(n_disks=4, block_size=2)
        f = StripedFile.from_records(sys, np.arange(16))  # 8 blocks
        f.read_all(sys)
        assert sys.stats.parallel_reads == 2  # ceil(8/4)
        assert sys.stats.read_efficiency == 1.0

    def test_empty_file(self):
        sys = ParallelDiskSystem(n_disks=2, block_size=2)
        f = StripedFile.from_records(sys, np.array([], dtype=np.int64))
        assert f.n_blocks == 0
        assert f.read_all(sys).size == 0


class TestStripedRun:
    def test_cyclic_layout_from_start_disk(self):
        sys = ParallelDiskSystem(n_disks=4, block_size=2)
        run = StripedRun.from_sorted_keys(sys, np.arange(20), run_id=0, start_disk=2)
        assert [a.disk for a in run.addresses] == [2, 3, 0, 1, 2, 3, 0, 1, 2, 3]

    def test_rejects_unsorted(self):
        sys = ParallelDiskSystem(n_disks=2, block_size=2)
        with pytest.raises(DataError):
            StripedRun.from_sorted_keys(sys, np.array([3, 1, 2]), 0, 0)

    def test_rejects_empty(self):
        sys = ParallelDiskSystem(n_disks=2, block_size=2)
        with pytest.raises(DataError):
            StripedRun.from_sorted_keys(sys, np.array([], dtype=np.int64), 0, 0)

    def test_perfect_write_parallelism(self):
        sys = ParallelDiskSystem(n_disks=4, block_size=2)
        StripedRun.from_sorted_keys(sys, np.arange(24), 0, start_disk=1)
        # 12 blocks over 4 disks -> exactly 3 full-stripe writes.
        assert sys.stats.parallel_writes == 3
        assert sys.stats.write_efficiency == 1.0

    def test_partial_final_stripe(self):
        sys = ParallelDiskSystem(n_disks=4, block_size=2)
        StripedRun.from_sorted_keys(sys, np.arange(10), 0, start_disk=0)  # 5 blocks
        assert sys.stats.parallel_writes == 2

    def test_first_and_last_keys_recorded(self):
        sys = ParallelDiskSystem(n_disks=2, block_size=3)
        run = StripedRun.from_sorted_keys(sys, np.arange(0, 18, 2), 0, 0)
        assert list(run.first_keys) == [0, 6, 12]
        assert list(run.last_keys) == [4, 10, 16]

    def test_forecast_format_on_disk(self):
        sys = ParallelDiskSystem(n_disks=2, block_size=2)
        run = StripedRun.from_sorted_keys(sys, np.arange(12), 0, 0)  # 6 blocks
        b0 = sys.disks[run.addresses[0].disk].read(run.addresses[0].slot)
        assert b0.forecast == (0.0, 2.0)
        b1 = sys.disks[run.addresses[1].disk].read(run.addresses[1].slot)
        assert b1.forecast == (6.0,)
        b5 = sys.disks[run.addresses[5].disk].read(run.addresses[5].slot)
        assert b5.forecast == (NO_KEY,)

    @given(n=st.integers(1, 100), d0=st.integers(0, 2))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, n, d0):
        sys = ParallelDiskSystem(n_disks=3, block_size=4)
        keys = np.arange(n, dtype=np.int64) * 3
        run = StripedRun.from_sorted_keys(sys, keys, 0, d0)
        assert np.array_equal(run.read_all(sys), keys)
