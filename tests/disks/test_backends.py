"""Tests for the pluggable storage backends (memory and mmap)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.disks import (
    BackendSpec,
    Block,
    MemoryBackend,
    MmapFileBackend,
    ParallelDiskSystem,
    make_backend,
    parse_backend,
)
from repro.disks.backends.mmapfile import (
    HEADER_WORDS,
    SlotLayout,
    open_disk_flat,
)
from repro.disks.block import NO_KEY
from repro.errors import ConfigError


def mmap_system(tmp_path, D=4, B=8, **kw):
    return ParallelDiskSystem(
        D, B, backend=MmapFileBackend(workdir=str(tmp_path)), **kw
    )


class TestSpecParsing:
    def test_default_is_memory(self):
        assert parse_backend(None).kind == "memory"
        assert isinstance(make_backend(None), MemoryBackend)

    def test_string_specs(self):
        assert parse_backend("memory").kind == "memory"
        spec = parse_backend("mmap:/some/dir")
        assert spec.kind == "mmap"
        assert spec.workdir == "/some/dir"
        assert parse_backend("mmap").workdir is None

    def test_instance_passthrough(self):
        be = MmapFileBackend()
        assert parse_backend(be) is be

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            parse_backend("tape")
        with pytest.raises(ConfigError):
            BackendSpec(kind="tape")

    def test_spec_child_scopes_workdir(self):
        spec = BackendSpec(kind="mmap", workdir="/w")
        assert spec.child("node3").workdir == os.path.join("/w", "node3")
        # memory and tempdir specs are unaffected
        assert BackendSpec(kind="memory").child("x").workdir is None
        assert BackendSpec(kind="mmap").child("x").workdir is None

    def test_backend_not_shareable(self):
        be = MmapFileBackend()
        ParallelDiskSystem(2, 4, backend=be)
        with pytest.raises(ConfigError):
            ParallelDiskSystem(2, 4, backend=be)


class TestSlotLayout:
    def test_geometry(self):
        lay = SlotLayout.for_geometry(4, 16)
        assert lay.forecast_off == HEADER_WORDS
        assert lay.key_off == HEADER_WORDS + 4
        assert lay.pay_off == lay.key_off + 16
        assert lay.slot_words == HEADER_WORDS + 4 + 32

    def test_too_many_disks_rejected(self):
        with pytest.raises(ConfigError):
            SlotLayout.for_geometry(64, 4)


class TestRoundTrip:
    def test_full_and_partial_blocks(self, tmp_path):
        sys_ = mmap_system(tmp_path, D=2, B=4)
        full = Block(keys=np.array([1, 2, 3, 4]), run_id=7, index=0)
        partial = Block(keys=np.array([9]), run_id=7, index=1)
        a = sys_.allocate(0)
        b = sys_.allocate(1)
        sys_.disks[a.disk].write(a.slot, full)
        sys_.disks[b.disk].write(b.slot, partial)
        got_f = sys_.peek(a)
        got_p = sys_.peek(b)
        assert got_f.keys.tolist() == [1, 2, 3, 4]
        assert got_f.run_id == 7 and got_f.index == 0
        # Partial final blocks keep their true record count.
        assert got_p.keys.tolist() == [9]
        assert len(got_p) == 1

    def test_payloads_round_trip(self, tmp_path):
        sys_ = mmap_system(tmp_path, D=2, B=4)
        blk = Block(
            keys=np.array([5, 6, 7]),
            payloads=np.array([50, 60, 70]),
        )
        a = sys_.allocate(0)
        sys_.disks[a.disk].write(a.slot, blk)
        got = sys_.peek(a)
        assert got.payloads is not None
        assert got.payloads.tolist() == [50, 60, 70]

    def test_no_payloads_stays_none(self, tmp_path):
        sys_ = mmap_system(tmp_path, D=2, B=4)
        a = sys_.allocate(0)
        sys_.disks[a.disk].write(a.slot, Block(keys=np.array([1])))
        assert sys_.peek(a).payloads is None

    def test_forecast_exact_int64_and_no_key(self, tmp_path):
        # Forecast keys must survive exactly — a float64 detour would
        # corrupt keys above 2**53 — and NO_KEY (inf) must round-trip.
        sys_ = mmap_system(tmp_path, D=4, B=4)
        fc = (-(2**62) - 3, NO_KEY, 2**62 + 1, 12)
        blk = Block(keys=np.array([1, 2]), forecast=fc)
        a = sys_.allocate(0)
        sys_.disks[a.disk].write(a.slot, blk)
        assert sys_.peek(a).forecast == fc

    def test_single_forecast_key(self, tmp_path):
        sys_ = mmap_system(tmp_path, D=4, B=4)
        a = sys_.allocate(0)
        sys_.disks[a.disk].write(a.slot, Block(keys=np.array([1]), forecast=(42,)))
        assert sys_.peek(a).forecast == (42,)

    def test_checksum_round_trip(self, tmp_path):
        sys_ = mmap_system(tmp_path, D=2, B=4)
        blk = Block(keys=np.array([3, 4]), payloads=np.array([30, 40])).seal()
        a = sys_.allocate(0)
        sys_.disks[a.disk].write(a.slot, blk)
        got = sys_.peek(a)
        assert got.checksum == blk.checksum
        assert got.verify()

    def test_extreme_keys(self, tmp_path):
        sys_ = mmap_system(tmp_path, D=2, B=4)
        keys = np.array([-(2**63), -1, 0, 2**63 - 1])
        a = sys_.allocate(0)
        sys_.disks[a.disk].write(a.slot, Block(keys=keys))
        assert np.array_equal(sys_.peek(a).keys, keys)


class TestStoreSemantics:
    def test_missing_slot_raises(self, tmp_path):
        sys_ = mmap_system(tmp_path)
        store = sys_.disks[0]._slots
        with pytest.raises(KeyError):
            store[5]

    def test_free_then_read_raises(self, tmp_path):
        sys_ = mmap_system(tmp_path)
        a = sys_.allocate(0)
        sys_.disks[a.disk].write(a.slot, Block(keys=np.array([1])))
        sys_.free(a)
        with pytest.raises(KeyError):
            sys_.disks[a.disk]._slots[a.slot]

    def test_slot_reuse_after_free(self, tmp_path):
        sys_ = mmap_system(tmp_path, D=1, B=4)
        a = sys_.allocate(0)
        sys_.disks[0].write(a.slot, Block(keys=np.array([1, 2, 3, 4])))
        sys_.free(a)
        b = sys_.allocate(0)
        assert b.slot == a.slot
        sys_.disks[0].write(b.slot, Block(keys=np.array([9])))
        assert sys_.peek(b).keys.tolist() == [9]

    def test_iteration_and_len(self, tmp_path):
        sys_ = mmap_system(tmp_path, D=1, B=4)
        for v in range(5):
            a = sys_.allocate(0)
            sys_.disks[0].write(a.slot, Block(keys=np.array([v])))
        store = sys_.disks[0]._slots
        assert len(store) == 5
        assert list(store) == sorted(store)
        assert all(s in store for s in store)

    def test_growth_by_doubling(self, tmp_path):
        be = MmapFileBackend(workdir=str(tmp_path), initial_slots=2)
        sys_ = ParallelDiskSystem(1, 4, backend=be)
        for v in range(40):
            a = sys_.allocate(0)
            sys_.disks[0].write(a.slot, Block(keys=np.array([v])))
        stats = be.stats()
        assert stats["file_grows"] >= 2
        assert stats["live_blocks"] == 40
        # All 40 still readable after re-mmaps.
        got = [int(sys_.disks[0]._slots[s].keys[0]) for s in sys_.disks[0]._slots]
        assert sorted(got) == list(range(40))

    def test_zero_copy_views(self, tmp_path):
        sys_ = mmap_system(tmp_path, D=1, B=4)
        a = sys_.allocate(0)
        sys_.disks[0].write(a.slot, Block(keys=np.array([1, 2, 3, 4])))
        got = sys_.peek(a)
        assert isinstance(got.keys, np.memmap) or got.keys.base is not None


class TestFilesAndCleanup:
    def test_explicit_workdir_kept(self, tmp_path):
        be = MmapFileBackend(workdir=str(tmp_path / "d"))
        sys_ = ParallelDiskSystem(2, 4, backend=be)
        a = sys_.allocate(0)
        sys_.disks[0].write(a.slot, Block(keys=np.array([1])))
        paths = be.file_paths()
        sys_.close()
        assert all(os.path.exists(p) for p in paths)

    def test_tempdir_removed_on_close(self):
        be = MmapFileBackend()
        sys_ = ParallelDiskSystem(2, 4, backend=be)
        wd = be.workdir
        assert os.path.isdir(wd)
        sys_.close()
        assert not os.path.exists(wd)

    def test_context_manager_closes(self):
        with ParallelDiskSystem(2, 4, backend="mmap") as sys_:
            wd = sys_.backend.workdir
            assert os.path.isdir(wd)
        assert not os.path.exists(wd)

    def test_worker_side_flat_decode(self, tmp_path):
        sys_ = mmap_system(tmp_path, D=2, B=4)
        blk = Block(keys=np.array([4, 5, 6]), payloads=np.array([1, 2, 3]))
        a = sys_.allocate(0)
        sys_.disks[a.disk].write(a.slot, blk)
        sys_.backend.flush()
        lay = sys_.backend.layout
        flat = open_disk_flat(sys_.backend.path_for(a.disk))
        assert lay.keys_of(flat, a.slot).tolist() == [4, 5, 6]
        assert lay.payloads_of(flat, a.slot).tolist() == [1, 2, 3]


class TestDegradedModeOnMmap:
    def test_remapped_reads_round_trip(self, tmp_path):
        # Degraded migration walks dead._slots and rewrites blocks onto
        # survivors — the slot layout must not assume full blocks.
        from repro.faults.plan import DiskDeath, FaultPlan

        sys_ = mmap_system(tmp_path, D=4, B=4)
        sys_.attach_faults(
            FaultPlan(seed=1, redundancy="parity",
                      death=DiskDeath(disk=2, after_ops=6))
        )
        addrs, blocks = [], []
        for i in range(12):
            d = i % 4
            a = sys_.allocate(d)
            blk = Block(keys=np.array([3 * i, 3 * i + 1, 3 * i + 2][: 1 + i % 3]))
            sys_.write_stripe([(a, blk)])
            addrs.append(a)
            blocks.append(blk)
        # Keep reading until the death fires and migration remaps disk 2.
        for _ in range(10):
            for a, blk in zip(addrs, blocks):
                got = sys_.read_stripe([a])[0]
                assert got.keys.tolist() == blk.keys.tolist()
            if sys_.degraded:
                break
        assert sys_.degraded
        for a, blk in zip(addrs, blocks):
            got = sys_.read_stripe([a])[0]
            assert got.keys.tolist() == blk.keys.tolist()


class TestBackendStats:
    def test_counters_accumulate(self, tmp_path):
        sys_ = mmap_system(tmp_path, D=2, B=4)
        a = sys_.allocate(0)
        sys_.disks[0].write(a.slot, Block(keys=np.array([1, 2])))
        sys_.peek(a)
        s = sys_.backend.stats()
        assert s["kind"] == "mmap"
        assert s["blocks_written"] == 1
        assert s["blocks_read"] == 1
        assert s["bytes_written"] == 16
        assert s["live_blocks"] == 1
        assert s["file_bytes"] > 0

    def test_memory_backend_stats(self):
        sys_ = ParallelDiskSystem(2, 4)
        a = sys_.allocate(0)
        sys_.disks[0].write(a.slot, Block(keys=np.array([1])))
        s = sys_.backend.stats()
        assert s["kind"] == "memory"
        assert s["live_blocks"] == 1
