"""Tests for the per-disk FIFO service queues (overlap engine substrate)."""

from __future__ import annotations

import pytest

from repro.disks import DISK_1996, DiskService, ServiceNetwork
from repro.errors import ConfigError


class TestDiskService:
    def test_idle_disk_starts_immediately(self):
        d = DiskService()
        assert d.submit(10.0, 5.0) == 15.0
        assert d.busy_ms == 5.0
        assert d.ops == 1

    def test_busy_disk_queues_fifo(self):
        d = DiskService()
        d.submit(0.0, 5.0)  # busy until 5
        assert d.submit(1.0, 5.0) == 10.0  # queued behind the first
        assert d.free_at == 10.0
        assert d.busy_ms == 10.0

    def test_late_submission_after_idle_gap(self):
        d = DiskService()
        d.submit(0.0, 5.0)
        # Disk idles from 5 to 20; the gap is not counted as busy.
        assert d.submit(20.0, 5.0) == 25.0
        assert d.busy_ms == 10.0

    def test_first_request_does_not_count_startup_as_idle(self):
        # Regression: idle_ms used to charge the 0 -> start gap before
        # any request had completed, inflating the idle-gap signal.
        d = DiskService()
        d.submit(30.0, 5.0)
        assert d.idle_ms == 0.0

    def test_idle_counts_only_inter_request_gaps(self):
        d = DiskService()
        d.submit(10.0, 5.0)  # completes at 15
        d.submit(21.0, 5.0)  # 6 ms gap
        d.submit(26.0, 5.0)  # back-to-back: no gap
        assert d.idle_ms == pytest.approx(6.0)


class TestServiceNetwork:
    def _net(self, D=3, B=4):
        return ServiceNetwork(D, DISK_1996, B)

    def test_disjoint_disks_run_concurrently(self):
        net = self._net()
        t = DISK_1996.op_time_ms(4)
        completes = net.submit([0, 1, 2], 0.0)
        assert completes == [t, t, t]  # one service time, in parallel

    def test_same_disk_serializes(self):
        net = self._net()
        t = DISK_1996.op_time_ms(4)
        first = net.submit([0], 0.0)[0]
        second = net.submit([0], 0.0)[0]
        assert first == pytest.approx(t)
        assert second == pytest.approx(2 * t)

    def test_read_write_share_a_spindle(self):
        net = self._net()
        t = DISK_1996.op_time_ms(4)
        net.submit([1], 0.0, kind="write")
        # A read behind the write on disk 1 waits; disk 0 does not.
        r1 = net.submit([1], 0.0)[0]
        r0 = net.submit([0], 0.0)[0]
        assert r1 == pytest.approx(2 * t)
        assert r0 == pytest.approx(t)

    def test_accounting_split_by_kind(self):
        net = self._net()
        t = DISK_1996.op_time_ms(4)
        net.submit([0, 1], 0.0, kind="read")
        net.submit([2], 0.0, kind="write")
        assert net.read_ops == 1
        assert net.write_ops == 1
        assert net.read_busy_ms == pytest.approx(2 * t)
        assert net.write_busy_ms == pytest.approx(t)
        assert net.busy_ms == pytest.approx(3 * t)

    def test_latest_completion(self):
        net = self._net()
        t = DISK_1996.op_time_ms(4)
        net.submit([0], 0.0)
        net.submit([0], 0.0)
        net.submit([1], 0.0)
        assert net.latest_completion_ms == pytest.approx(2 * t)

    def test_utilization(self):
        net = self._net(D=2)
        t = DISK_1996.op_time_ms(4)
        net.submit([0, 1], 0.0)
        assert net.utilization(2 * t) == pytest.approx(0.5)
        assert net.utilization(0.0) == 0.0

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            ServiceNetwork(0, DISK_1996, 4)
        with pytest.raises(ConfigError):
            ServiceNetwork(2, DISK_1996, 0)
