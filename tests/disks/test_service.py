"""Tests for the per-disk FIFO service queues (overlap engine substrate)."""

from __future__ import annotations

import pytest

from repro.disks import DISK_1996, DiskService, ServiceEwma, ServiceNetwork
from repro.errors import ConfigError


class TestDiskService:
    def test_idle_disk_starts_immediately(self):
        d = DiskService()
        assert d.submit(10.0, 5.0) == 15.0
        assert d.busy_ms == 5.0
        assert d.ops == 1

    def test_busy_disk_queues_fifo(self):
        d = DiskService()
        d.submit(0.0, 5.0)  # busy until 5
        assert d.submit(1.0, 5.0) == 10.0  # queued behind the first
        assert d.free_at == 10.0
        assert d.busy_ms == 10.0

    def test_late_submission_after_idle_gap(self):
        d = DiskService()
        d.submit(0.0, 5.0)
        # Disk idles from 5 to 20; the gap is not counted as busy.
        assert d.submit(20.0, 5.0) == 25.0
        assert d.busy_ms == 10.0

    def test_first_request_does_not_count_startup_as_idle(self):
        # Regression: idle_ms used to charge the 0 -> start gap before
        # any request had completed, inflating the idle-gap signal.
        d = DiskService()
        d.submit(30.0, 5.0)
        assert d.idle_ms == 0.0

    def test_idle_counts_only_inter_request_gaps(self):
        d = DiskService()
        d.submit(10.0, 5.0)  # completes at 15
        d.submit(21.0, 5.0)  # 6 ms gap
        d.submit(26.0, 5.0)  # back-to-back: no gap
        assert d.idle_ms == pytest.approx(6.0)


class TestServiceNetwork:
    def _net(self, D=3, B=4):
        return ServiceNetwork(D, DISK_1996, B)

    def test_disjoint_disks_run_concurrently(self):
        net = self._net()
        t = DISK_1996.op_time_ms(4)
        completes = net.submit([0, 1, 2], 0.0)
        assert completes == [t, t, t]  # one service time, in parallel

    def test_same_disk_serializes(self):
        net = self._net()
        t = DISK_1996.op_time_ms(4)
        first = net.submit([0], 0.0)[0]
        second = net.submit([0], 0.0)[0]
        assert first == pytest.approx(t)
        assert second == pytest.approx(2 * t)

    def test_read_write_share_a_spindle(self):
        net = self._net()
        t = DISK_1996.op_time_ms(4)
        net.submit([1], 0.0, kind="write")
        # A read behind the write on disk 1 waits; disk 0 does not.
        r1 = net.submit([1], 0.0)[0]
        r0 = net.submit([0], 0.0)[0]
        assert r1 == pytest.approx(2 * t)
        assert r0 == pytest.approx(t)

    def test_accounting_split_by_kind(self):
        net = self._net()
        t = DISK_1996.op_time_ms(4)
        net.submit([0, 1], 0.0, kind="read")
        net.submit([2], 0.0, kind="write")
        assert net.read_ops == 1
        assert net.write_ops == 1
        assert net.read_busy_ms == pytest.approx(2 * t)
        assert net.write_busy_ms == pytest.approx(t)
        assert net.busy_ms == pytest.approx(3 * t)

    def test_latest_completion(self):
        net = self._net()
        t = DISK_1996.op_time_ms(4)
        net.submit([0], 0.0)
        net.submit([0], 0.0)
        net.submit([1], 0.0)
        assert net.latest_completion_ms == pytest.approx(2 * t)

    def test_utilization(self):
        net = self._net(D=2)
        t = DISK_1996.op_time_ms(4)
        net.submit([0, 1], 0.0)
        assert net.utilization(2 * t) == pytest.approx(0.5)
        assert net.utilization(0.0) == 0.0

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            ServiceNetwork(0, DISK_1996, 4)
        with pytest.raises(ConfigError):
            ServiceNetwork(2, DISK_1996, 0)


class TestDegenerateUtilization:
    """Stall-only / empty timelines must not divide by zero."""

    def test_disk_utilization_zero_makespan(self):
        d = DiskService()
        assert d.utilization(0.0) == 0.0
        assert d.utilization(-1.0) == 0.0

    def test_unused_disk_reports_zero(self):
        d = DiskService()
        assert d.utilization(100.0) == 0.0
        assert d.ops == 0 and d.busy_ms == 0.0 and d.idle_ms == 0.0

    def test_per_disk_summary_zero_makespan(self):
        net = ServiceNetwork(2, DISK_1996, 4)
        rows = net.per_disk_summary(0.0)
        assert all(r["utilization"] == 0.0 for r in rows)
        assert all(r["ops"] == 0 for r in rows)

    def test_stall_only_plan_serves_nothing(self):
        # A plan that only stalls never charges service: a network that
        # receives no requests stays fully idle with clean accounting.
        from repro.faults.plan import FaultInjector, FaultPlan, StallWindow

        plan = FaultPlan(
            seed=3, stalls=(StallWindow(disk=0, start_ms=0.0, duration_ms=50.0),)
        )
        net = ServiceNetwork(2, DISK_1996, 4, faults=FaultInjector(plan, 2))
        assert net.busy_ms == 0.0
        assert net.latest_completion_ms == 0.0
        assert net.drained_completion_ms() == 0.0
        assert net.utilization(100.0) == 0.0

    def test_stalled_request_completion_counts_wait(self):
        from repro.faults.plan import FaultInjector, FaultPlan, StallWindow

        plan = FaultPlan(
            seed=3, stalls=(StallWindow(disk=0, start_ms=0.0, duration_ms=50.0),)
        )
        net = ServiceNetwork(2, DISK_1996, 4, faults=FaultInjector(plan, 2))
        t = DISK_1996.op_time_ms(4)
        done = net.submit([0], 0.0)[0]
        assert done == pytest.approx(50.0 + t)  # head held until window end
        assert net.disks[0].busy_ms == pytest.approx(t)  # wait is not service


class TestServiceEwma:
    def test_first_sample_seeds_value(self):
        e = ServiceEwma(2, alpha=0.5)
        assert e.value(0) is None
        e.observe(0, 10.0)
        assert e.value(0) == pytest.approx(10.0)

    def test_ewma_folds_with_alpha(self):
        e = ServiceEwma(1, alpha=0.5)
        e.observe(0, 10.0)
        e.observe(0, 20.0)
        assert e.value(0) == pytest.approx(15.0)
        assert e.samples[0] == 2

    def test_cost_of_unseen_disk_is_zero(self):
        e = ServiceEwma(3)
        e.observe(0, 10.0)
        assert e.cost(0) == pytest.approx(10.0)
        assert e.cost(1) == 0.0

    def test_median_over_observed_disks(self):
        e = ServiceEwma(4)
        e.observe(0, 10.0)
        e.observe(1, 20.0)
        e.observe(2, 40.0)
        assert e.median() == pytest.approx(20.0)
        e.observe(3, 30.0)
        assert e.median() == pytest.approx(25.0)

    def test_no_slow_disks_until_two_observed(self):
        # One sampled disk has no peer group to straggle behind.
        e = ServiceEwma(3)
        e.observe(1, 1000.0)
        assert e.slow_disks(1.25) == ()
        e.observe(0, 10.0)
        assert e.slow_disks(1.25) == (1,)

    def test_relative_threshold(self):
        e = ServiceEwma(3)
        for d, v in enumerate((10.0, 10.0, 40.0)):
            e.observe(d, v)
        assert e.slow_disks(1.25) == (2,)
        # A uniformly slow farm has no stragglers.
        u = ServiceEwma(3)
        for d in range(3):
            u.observe(d, 500.0)
        assert u.slow_disks(1.25) == ()

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            ServiceEwma(0)
        with pytest.raises(ConfigError):
            ServiceEwma(2, alpha=0.0)
        with pytest.raises(ConfigError):
            ServiceEwma(2, alpha=1.5)

    def test_armed_network_observes_felt_cost(self):
        # The EWMA measures what the request *felt*: straggler-scaled
        # service, and stall-window waits beyond ordinary queueing —
        # so a nominal-speed disk under repeated stalls classifies slow.
        from repro.faults.plan import FaultInjector, FaultPlan, StallWindow

        t = DISK_1996.op_time_ms(4)
        plan = FaultPlan(
            seed=3,
            latency_factors={1: 3.0},
            stalls=(StallWindow(disk=0, start_ms=0.0, duration_ms=25.0),),
        )
        net = ServiceNetwork(3, DISK_1996, 4, faults=FaultInjector(plan, 3))
        net.ewma = ServiceEwma(3)
        net.submit([0, 1, 2], 0.0)
        assert net.ewma.value(0) == pytest.approx(25.0 + t)  # stall wait felt
        assert net.ewma.value(1) == pytest.approx(3.0 * t)  # straggler felt
        assert net.ewma.value(2) == pytest.approx(t)

    def test_queue_wait_is_not_felt_cost(self):
        # Ordinary FIFO queueing behind one's own disk is not slowness.
        net = ServiceNetwork(2, DISK_1996, 4)
        net.ewma = ServiceEwma(2)
        t = DISK_1996.op_time_ms(4)
        net.submit([0], 0.0)
        net.submit([0], 0.0)  # queued behind the first
        assert net.ewma.value(0) == pytest.approx(t)
