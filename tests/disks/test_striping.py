"""Tests for cyclic striping arithmetic (paper §3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.disks.striping import (
    blocks_per_disk,
    chain_length,
    chain_position_to_block,
    chain_start_index,
    cyclic_disk,
)
from repro.errors import ConfigError


class TestCyclicDisk:
    def test_paper_rule(self):
        # "if the 0th block of a run r is on disk d_r, then the ith block
        #  resides on disk (i + d_r) mod D"
        assert cyclic_disk(start_disk=2, block_index=0, n_disks=5) == 2
        assert cyclic_disk(2, 1, 5) == 3
        assert cyclic_disk(2, 3, 5) == 0
        assert cyclic_disk(2, 8, 5) == 0

    def test_invalid_start_disk(self):
        with pytest.raises(ConfigError):
            cyclic_disk(5, 0, 5)
        with pytest.raises(ConfigError):
            cyclic_disk(-1, 0, 5)

    @given(d0=st.integers(0, 7), i=st.integers(0, 1000))
    def test_consecutive_blocks_on_consecutive_disks(self, d0, i):
        D = 8
        assert cyclic_disk(d0, i + 1, D) == (cyclic_disk(d0, i, D) + 1) % D


class TestChains:
    def test_chain_start(self):
        # run starts on disk 1 with D=4: disk 1 chain starts at block 0,
        # disk 2 at block 1, disk 0 at block 3.
        assert chain_start_index(1, 1, 4) == 0
        assert chain_start_index(1, 2, 4) == 1
        assert chain_start_index(1, 0, 4) == 3

    def test_chain_position_to_block(self):
        assert chain_position_to_block(1, 2, 0, 4) == 1
        assert chain_position_to_block(1, 2, 3, 4) == 13

    @given(
        d0=st.integers(0, 5),
        disk=st.integers(0, 5),
        pos=st.integers(0, 50),
    )
    def test_chain_blocks_live_on_their_disk(self, d0, disk, pos):
        D = 6
        blk = chain_position_to_block(d0, disk, pos, D)
        assert cyclic_disk(d0, blk, D) == disk

    def test_chain_length_examples(self):
        # 10 blocks starting on disk 0, D=4: disks get 3,3,2,2.
        assert blocks_per_disk(0, 10, 4) == [3, 3, 2, 2]
        # 4 blocks starting on disk 3, D=4: every disk gets exactly 1.
        assert blocks_per_disk(3, 4, 4) == [1, 1, 1, 1]

    def test_chain_length_zero_for_short_run(self):
        assert chain_length(0, 3, n_blocks=2, n_disks=4) == 0

    @given(
        d0=st.integers(0, 4),
        n_blocks=st.integers(0, 200),
    )
    def test_chain_lengths_sum_to_block_count(self, d0, n_blocks):
        D = 5
        assert sum(blocks_per_disk(d0, n_blocks, D)) == n_blocks

    @given(d0=st.integers(0, 4), n_blocks=st.integers(1, 200))
    def test_chain_lengths_differ_by_at_most_one(self, d0, n_blocks):
        # Cyclic striping balances a single run perfectly — the intuition
        # behind Lemma 9's ceil(l/D) per-chain occupancy.
        lengths = blocks_per_disk(d0, n_blocks, 5)
        assert max(lengths) - min(lengths) <= 1
