"""Tests for bounded-memory run scanning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disks import ParallelDiskSystem, RunScanner, StripedRun
from repro.errors import DataError


def make_run(D=4, B=2, n=30, start=1):
    sys = ParallelDiskSystem(D, B)
    run = StripedRun.from_sorted_keys(sys, np.arange(n) * 2, 0, start)
    return sys, run


class TestScanning:
    def test_chunked_scan_yields_run_in_order(self):
        sys, run = make_run()
        sc = RunScanner(sys, run)
        out = []
        while not sc.exhausted:
            out.append(sc.next_chunk())
        assert np.array_equal(np.concatenate(out), np.arange(30) * 2)

    def test_iterator_protocol(self):
        sys, run = make_run(n=10)
        assert list(RunScanner(sys, run)) == [2 * i for i in range(10)]

    def test_read_remaining(self):
        sys, run = make_run(n=25)
        sc = RunScanner(sys, run)
        first = sc.next_chunk()
        rest = sc.read_remaining()
        assert np.array_equal(
            np.concatenate([first, rest]), np.arange(25) * 2
        )
        assert sc.exhausted

    def test_io_cost_is_fully_parallel(self):
        D, B, n = 4, 2, 64  # 32 blocks
        sys, run = make_run(D=D, B=B, n=n)
        sys.stats.reset()
        RunScanner(sys, run).read_remaining()
        assert sys.stats.parallel_reads == 32 // D
        assert sys.stats.read_efficiency == 1.0

    def test_bounded_memory(self):
        # The scanner holds at most one stripe (D blocks) at a time.
        sys, run = make_run(D=4, B=2, n=64)
        sc = RunScanner(sys, run)
        while not sc.exhausted:
            sc.next_chunk()
            assert len(sc._buffer) <= 4

    def test_free_releases_slots(self):
        sys, run = make_run(n=30)
        RunScanner(sys, run, free=True).read_remaining()
        assert sys.used_blocks == 0

    def test_scan_past_end_raises(self):
        sys, run = make_run(n=4, B=2, D=2)
        sc = RunScanner(sys, run)
        sc.read_remaining()
        with pytest.raises(DataError):
            sc.next_chunk()

    def test_partial_final_block(self):
        sys = ParallelDiskSystem(3, 4)
        run = StripedRun.from_sorted_keys(sys, np.arange(13), 0, 0)
        out = RunScanner(sys, run).read_remaining()
        assert np.array_equal(out, np.arange(13))
