"""Tests for the disk timing model."""

from __future__ import annotations

import pytest

from repro.disks.timing import DISK_1996, DISK_MODERN, DiskTimingModel
from repro.errors import ConfigError


class TestTimingModel:
    def test_rotation_latency_is_half_revolution(self):
        t = DiskTimingModel(rpm=6000)
        # 6000 RPM -> 10 ms/rev -> 5 ms average latency.
        assert t.avg_rotation_ms == pytest.approx(5.0)

    def test_transfer_time_scales_with_block(self):
        t = DiskTimingModel(transfer_mb_per_s=8, record_bytes=8)
        assert t.block_transfer_ms(2000) == pytest.approx(2 * t.block_transfer_ms(1000))

    def test_op_time_composition(self):
        t = DiskTimingModel(avg_seek_ms=10, rpm=6000, transfer_mb_per_s=8)
        assert t.op_time_ms(1000) == pytest.approx(
            10 + 5 + t.block_transfer_ms(1000)
        )

    def test_stripe_time_independent_of_width(self):
        t = DISK_1996
        assert t.stripe_time_ms(1000, 1) == t.stripe_time_ms(1000, 10)

    def test_stripe_time_zero_for_idle_operation(self):
        assert DISK_1996.stripe_time_ms(1000, 0) == 0.0

    def test_modern_disk_is_faster(self):
        assert DISK_MODERN.op_time_ms(1000) < DISK_1996.op_time_ms(1000)


class TestTimingModelValidation:
    def test_rpm_must_be_positive(self):
        with pytest.raises(ConfigError):
            DiskTimingModel(rpm=0)
        with pytest.raises(ConfigError):
            DiskTimingModel(rpm=-6000)

    def test_transfer_rate_must_be_positive(self):
        with pytest.raises(ConfigError):
            DiskTimingModel(transfer_mb_per_s=0)

    def test_record_bytes_must_be_positive(self):
        with pytest.raises(ConfigError):
            DiskTimingModel(record_bytes=0)

    def test_seek_must_be_nonnegative(self):
        with pytest.raises(ConfigError):
            DiskTimingModel(avg_seek_ms=-1.0)
        # Zero seek is a legal idealised disk.
        DiskTimingModel(avg_seek_ms=0.0)
