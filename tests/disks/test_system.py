"""Tests for the parallel disk system: model constraints and accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disks import (
    Block,
    BlockAddress,
    DiskTimingModel,
    ParallelDiskSystem,
)
from repro.errors import ConfigError, InvalidIOError


def blk(v=0):
    return Block(keys=np.array([v]))


def system(D=4, B=2, **kw):
    return ParallelDiskSystem(n_disks=D, block_size=B, **kw)


class TestConstruction:
    def test_invalid_d(self):
        with pytest.raises(ConfigError):
            system(D=0)

    def test_invalid_b(self):
        with pytest.raises(ConfigError):
            system(B=0)


class TestParallelConstraint:
    def test_two_blocks_same_disk_in_one_read_rejected(self):
        sys = system()
        a1 = sys.allocate(1)
        a2 = sys.allocate(1)
        sys.write_stripe([(a1, blk())])
        sys.write_stripe([(a2, blk())])
        with pytest.raises(InvalidIOError):
            sys.read_stripe([a1, a2])

    def test_two_blocks_same_disk_in_one_write_rejected(self):
        sys = system()
        a1 = sys.allocate(2)
        a2 = sys.allocate(2)
        with pytest.raises(InvalidIOError):
            sys.write_stripe([(a1, blk()), (a2, blk())])

    def test_full_stripe_is_one_operation(self):
        sys = system(D=4)
        addrs = [sys.allocate(d) for d in range(4)]
        sys.write_stripe([(a, blk(i)) for i, a in enumerate(addrs)])
        assert sys.stats.parallel_writes == 1
        assert sys.stats.blocks_written == 4
        got = sys.read_stripe(addrs)
        assert sys.stats.parallel_reads == 1
        assert [b.first_key for b in got] == [0, 1, 2, 3]

    def test_partial_stripe_still_one_operation(self):
        sys = system(D=8)
        addrs = [sys.allocate(d) for d in (0, 3)]
        sys.write_stripe([(a, blk()) for a in addrs])
        assert sys.stats.parallel_writes == 1
        assert sys.stats.blocks_written == 2

    def test_none_entries_skipped_in_read(self):
        sys = system(D=4)
        a = sys.allocate(0)
        sys.write_stripe([(a, blk(9))])
        got = sys.read_stripe([None, a, None])
        assert got[0] is None and got[2] is None
        assert got[1].first_key == 9
        assert sys.stats.parallel_reads == 1
        assert sys.stats.blocks_read == 1

    def test_all_none_read_costs_nothing(self):
        sys = system()
        assert sys.read_stripe([None, None]) == [None, None]
        assert sys.stats.parallel_reads == 0

    def test_empty_write_costs_nothing(self):
        sys = system()
        sys.write_stripe([])
        assert sys.stats.parallel_writes == 0


class TestReadBatch:
    def test_cost_is_max_per_disk_count(self):
        # 5 blocks on disk 0, 2 on disk 1: greedy packing needs 5 reads.
        sys = system(D=3)
        addrs = []
        for d, n in [(0, 5), (1, 2)]:
            for i in range(n):
                a = sys.allocate(d)
                sys.write_stripe([(a, blk(d * 100 + i))])
                addrs.append(a)
        sys.stats.reset()
        blocks, ops = sys.read_batch(addrs)
        assert ops == 5
        assert sys.stats.parallel_reads == 5
        assert len(blocks) == 7

    def test_order_preserved(self):
        sys = system(D=4)
        addrs = []
        for i in range(10):
            a = sys.allocate(i % 4)
            sys.write_stripe([(a, blk(i))])
            addrs.append(a)
        blocks, _ = sys.read_batch(addrs)
        assert [b.first_key for b in blocks] == list(range(10))


    def test_fifo_service_order_per_disk(self):
        """Each disk serves its queued requests oldest-first.

        Regression test: the stripe packer used to ``pop()`` the *newest*
        pending request per disk (LIFO), so a caller streaming a file's
        blocks saw the tail of each disk's queue fetched first.  The
        per-op service order is observed by tracing ``read_stripe``.
        """
        sys = system(D=2)
        addrs = []
        for i in range(6):  # three requests per disk, submission order 0..5
            a = sys.allocate(i % 2)
            sys.write_stripe([(a, blk(i))])
            addrs.append(a)
        ops: list[list[int]] = []
        real = sys.read_stripe

        def spy(stripe):
            blocks = real(stripe)
            ops.append([int(b.first_key) for b in blocks if b is not None])
            return blocks

        sys.read_stripe = spy
        blocks, n_ops = sys.read_batch(addrs)
        assert n_ops == 3
        # Op t must carry the t-th submitted request of each disk:
        # (0,1) then (2,3) then (4,5) -- not (4,5),(2,3),(0,1).
        assert [sorted(op) for op in ops] == [[0, 1], [2, 3], [4, 5]]
        assert [b.first_key for b in blocks] == list(range(6))

    def test_empty_batch(self):
        sys = system()
        blocks, ops = sys.read_batch([])
        assert blocks == [] and ops == 0


class TestAccounting:
    def test_per_disk_counters(self):
        sys = system(D=3)
        a0 = sys.allocate(0)
        a2 = sys.allocate(2)
        sys.write_stripe([(a0, blk()), (a2, blk())])
        assert list(sys.stats.writes_per_disk) == [1, 0, 1]
        sys.read_stripe([a0])
        assert list(sys.stats.reads_per_disk) == [1, 0, 0]

    def test_efficiency(self):
        sys = system(D=4)
        a = sys.allocate(0)
        sys.write_stripe([(a, blk())])
        assert sys.stats.write_efficiency == 0.25
        assert sys.stats.read_efficiency == 1.0  # no reads yet

    def test_snapshot_since(self):
        sys = system(D=2)
        a = sys.allocate(0)
        sys.write_stripe([(a, blk())])
        snap = sys.stats.snapshot()
        sys.read_stripe([a])
        delta = sys.stats.since(snap)
        assert delta.parallel_reads == 1
        assert delta.parallel_writes == 0

    def test_free_releases_space(self):
        sys = system()
        a = sys.allocate(0)
        sys.write_stripe([(a, blk())])
        assert sys.used_blocks == 1
        sys.free(a)
        assert sys.used_blocks == 0


class TestTiming:
    def test_clock_advances_per_operation(self):
        t = DiskTimingModel(avg_seek_ms=10, rpm=6000, transfer_mb_per_s=8)
        sys = system(D=4, B=1000, timing=t)
        addrs = [sys.allocate(d) for d in range(4)]
        sys.write_stripe([(a, Block(keys=np.arange(1000))) for a in addrs])
        expected = t.op_time_ms(1000)
        assert sys.elapsed_ms == pytest.approx(expected)
        sys.read_stripe(addrs[:1])
        # A 1-disk operation costs the same elapsed time as a D-disk one.
        assert sys.elapsed_ms == pytest.approx(2 * expected)

    def test_no_timing_model_keeps_clock_zero(self):
        sys = system()
        a = sys.allocate(0)
        sys.write_stripe([(a, blk())])
        assert sys.elapsed_ms == 0.0
