"""Tests for the channel-constrained model (§1's D vs D' distinction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disks import Block, DiskTimingModel, ParallelDiskSystem
from repro.errors import ConfigError


def blk(v=0):
    return Block(keys=np.array([v]))


class TestChannelRounds:
    def test_default_one_round_per_op(self):
        sys = ParallelDiskSystem(8, 2)
        addrs = [sys.allocate(d) for d in range(8)]
        sys.write_stripe([(a, blk()) for a in addrs])
        assert sys.channel_rounds == 1

    def test_narrow_channel_needs_more_rounds(self):
        sys = ParallelDiskSystem(8, 2, channel_width=3)
        addrs = [sys.allocate(d) for d in range(8)]
        sys.write_stripe([(a, blk()) for a in addrs])
        # 8 blocks over a 3-block channel: ceil(8/3) = 3 rounds.
        assert sys.channel_rounds == 3
        # Still ONE parallel operation in the model's counters.
        assert sys.stats.parallel_writes == 1

    def test_narrow_channel_reads(self):
        sys = ParallelDiskSystem(4, 2, channel_width=2)
        addrs = [sys.allocate(d) for d in range(4)]
        sys.write_stripe([(a, blk()) for a in addrs])
        sys.read_stripe(addrs)
        assert sys.channel_rounds == 2 + 2

    def test_partial_op_fits_in_one_round(self):
        sys = ParallelDiskSystem(8, 2, channel_width=4)
        addrs = [sys.allocate(d) for d in (0, 5)]
        sys.write_stripe([(a, blk()) for a in addrs])
        assert sys.channel_rounds == 1

    def test_invalid_width(self):
        with pytest.raises(ConfigError):
            ParallelDiskSystem(4, 2, channel_width=0)


class TestChannelTiming:
    def test_extra_rounds_add_transfer_time_only(self):
        t = DiskTimingModel(avg_seek_ms=10, rpm=6000, transfer_mb_per_s=8)
        wide = ParallelDiskSystem(8, 1000, timing=t)
        narrow = ParallelDiskSystem(8, 1000, timing=t, channel_width=2)
        for sys in (wide, narrow):
            addrs = [sys.allocate(d) for d in range(8)]
            sys.write_stripe([(a, Block(keys=np.arange(1000))) for a in addrs])
        # Narrow channel: 3 extra rounds of pure transfer time.
        expect_extra = 3 * t.block_transfer_ms(1000)
        assert narrow.elapsed_ms - wide.elapsed_ms == pytest.approx(expect_extra)


class TestEndToEnd:
    def test_sort_on_bandwidth_limited_array(self, rng):
        """A full SRM sort works and costs more channel rounds than ops."""
        from repro.core import SRMConfig, srm_mergesort
        from repro.disks import StripedFile

        cfg = SRMConfig.from_k(2, 4, 8)
        sys = ParallelDiskSystem(4, 8, channel_width=2)
        keys = rng.permutation(4096)
        infile = StripedFile.from_records(sys, keys)
        res = srm_mergesort(sys, infile, cfg, rng=1, run_length=128)
        assert np.array_equal(res.peek_sorted(sys), np.sort(keys))
        assert sys.channel_rounds > res.io.parallel_ios
        assert sys.channel_rounds <= 2 * res.io.parallel_ios
