"""Tests for I/O trace recording and analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disks import Block, IOTrace, ParallelDiskSystem


def blk(v=0):
    return Block(keys=np.array([v]))


def traced_system(D=4, B=2):
    sys = ParallelDiskSystem(D, B)
    sys.trace = IOTrace()
    return sys


class TestRecording:
    def test_events_captured_in_order(self):
        sys = traced_system()
        a = sys.allocate(0)
        b = sys.allocate(2)
        sys.write_stripe([(a, blk()), (b, blk())])
        sys.read_stripe([a])
        assert len(sys.trace) == 2
        assert sys.trace.events[0].kind == "write"
        assert sys.trace.events[0].disks == (0, 2)
        assert sys.trace.events[1].kind == "read"
        assert sys.trace.events[1].disks == (0,)

    def test_indices_sequential(self):
        sys = traced_system()
        for d in range(3):
            a = sys.allocate(d)
            sys.write_stripe([(a, blk())])
        assert [ev.index for ev in sys.trace.events] == [0, 1, 2]

    def test_no_trace_by_default(self):
        sys = ParallelDiskSystem(2, 2)
        a = sys.allocate(0)
        sys.write_stripe([(a, blk())])  # must not raise
        assert sys.trace is None

    def test_elapsed_recorded_with_timing(self):
        from repro.disks import DISK_1996

        sys = ParallelDiskSystem(2, 2, timing=DISK_1996)
        sys.trace = IOTrace()
        a = sys.allocate(0)
        sys.write_stripe([(a, blk())])
        assert sys.trace.events[0].elapsed_ms > 0


class TestAnalyses:
    def _trace(self):
        t = IOTrace()
        t.record("read", [0, 1, 2, 3], 0.0)
        t.record("read", [0], 0.0)
        t.record("read", [0, 1], 0.0)
        t.record("write", [0, 1, 2, 3], 0.0)
        return t

    def test_disk_participation(self):
        t = self._trace()
        assert list(t.disk_participation(4, "read")) == [3, 2, 1, 1]

    def test_utilization(self):
        t = self._trace()
        u = t.utilization(4, "read")
        assert u[0] == pytest.approx(1.0)
        assert u[3] == pytest.approx(1 / 3)

    def test_utilization_empty(self):
        assert np.all(IOTrace().utilization(3) == 1.0)

    def test_width_histogram(self):
        t = self._trace()
        h = t.width_histogram(4, "read")
        assert h[1] == 1 and h[2] == 1 and h[4] == 1

    def test_mean_width(self):
        t = self._trace()
        assert t.mean_width("read") == pytest.approx((4 + 1 + 2) / 3)
        assert t.mean_width("write") == 4.0
        assert IOTrace().mean_width() == 0.0

    def test_imbalance(self):
        t = self._trace()
        # read participations 3,2,1,1 -> max/mean = 3/1.75.
        assert t.imbalance(4, "read") == pytest.approx(3 / 1.75)

    def test_summary(self):
        text = self._trace().summary(4)
        assert "4 parallel ops" in text
        assert "imbalance" in text
        assert IOTrace().summary() == "empty trace"

    def test_timeline_ascii(self):
        text = self._trace().timeline_ascii(4, width=4)
        lines = text.splitlines()
        assert len(lines) == 5  # 4 disks + footer
        assert lines[0].startswith("disk  0 |")
        # Disk 0 participates in every op -> all '#'.
        assert set(lines[0].split("|")[1]) == {"#"}

    def test_timeline_ascii_empty(self):
        assert IOTrace().timeline_ascii(2) == "(no operations)"

    def test_timeline_ascii_kind_filter(self):
        text = self._trace().timeline_ascii(4, width=3, kind="write")
        assert "1 ops" in text


class TestTraceOnSorts:
    def test_worst_case_layout_shows_imbalance(self, rng):
        """The §3 adversary is visible in the read trace."""
        from repro.core import LayoutStrategy, SRMConfig, srm_mergesort
        from repro.disks import StripedFile

        cfg = SRMConfig.from_k(2, 4, 8)
        results = {}
        for strat in (LayoutStrategy.RANDOMIZED, LayoutStrategy.WORST_CASE):
            sys = ParallelDiskSystem(4, 8)
            sys.trace = IOTrace()
            keys = np.random.default_rng(3).permutation(4096)
            infile = StripedFile.from_records(sys, keys)
            srm_mergesort(sys, infile, cfg, strategy=strat, rng=4, run_length=128)
            results[strat] = sys.trace.imbalance(4, "read")
        assert results[LayoutStrategy.WORST_CASE] >= results[LayoutStrategy.RANDOMIZED]


class TestRingBuffer:
    def test_bounded_trace_keeps_newest(self):
        t = IOTrace(max_events=3)
        for i in range(5):
            t.record("read", [i % 4], float(i))
        assert len(t) == 3
        assert t.dropped == 2
        assert t.total_recorded == 5
        # Global indices survive eviction: trace reads as the tail.
        assert [ev.index for ev in t.events] == [2, 3, 4]
        assert t.events[0].disks == (2,)

    def test_unbounded_by_default(self):
        t = IOTrace()
        for i in range(100):
            t.record("write", [0], 0.0)
        assert len(t) == 100 and t.dropped == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_events"):
            IOTrace(max_events=0)

    def test_summary_reports_drops(self):
        t = IOTrace(max_events=1)
        t.record("read", [0], 0.0)
        t.record("read", [1], 1.0)
        assert "1 dropped" in t.summary(2)

    def test_analyses_use_surviving_window(self):
        t = IOTrace(max_events=2)
        t.record("read", [0, 1, 2], 0.0)  # evicted
        t.record("read", [0], 1.0)
        t.record("read", [1], 2.0)
        assert t.mean_width("read") == 1.0
        assert list(t.disk_participation(3)) == [1, 1, 0]

    def test_on_system(self):
        sys = traced_system()
        sys.trace = IOTrace(max_events=2)
        for d in range(4):
            a = sys.allocate(d)
            sys.write_stripe([(a, blk())])
        assert len(sys.trace) == 2
        assert sys.trace.dropped == 2
        assert [ev.disks for ev in sys.trace.events] == [(2,), (3,)]
