"""Tests for blocks, splitting, and the forecast format (paper §4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.disks.block import NO_KEY, Block, attach_forecasts, split_into_blocks
from repro.errors import DataError


class TestBlock:
    def test_basic_properties(self):
        b = Block(keys=np.array([3, 5, 9]), run_id=2, index=7)
        assert len(b) == 3
        assert b.first_key == 3
        assert b.last_key == 9
        assert b.run_id == 2
        assert b.index == 7
        assert b.is_sorted()

    def test_keys_coerced_to_int64(self):
        b = Block(keys=[1, 2, 3])
        assert b.keys.dtype == np.int64

    def test_empty_block_rejected(self):
        with pytest.raises(DataError):
            Block(keys=np.array([], dtype=np.int64))

    def test_non_1d_rejected(self):
        with pytest.raises(DataError):
            Block(keys=np.zeros((2, 2)))

    def test_unsorted_detected(self):
        assert not Block(keys=np.array([5, 3])).is_sorted()

    def test_single_record_block(self):
        b = Block(keys=np.array([42]))
        assert b.first_key == b.last_key == 42


class TestSplitIntoBlocks:
    def test_exact_multiple(self):
        blocks = split_into_blocks(np.arange(12), block_size=4)
        assert len(blocks) == 3
        assert all(len(b) == 4 for b in blocks)
        assert [b.index for b in blocks] == [0, 1, 2]

    def test_partial_tail(self):
        blocks = split_into_blocks(np.arange(10), block_size=4)
        assert [len(b) for b in blocks] == [4, 4, 2]

    def test_empty_input(self):
        assert split_into_blocks(np.array([], dtype=np.int64), 4) == []

    def test_block_size_one(self):
        blocks = split_into_blocks(np.arange(3), 1)
        assert [b.first_key for b in blocks] == [0, 1, 2]

    def test_invalid_block_size(self):
        with pytest.raises(DataError):
            split_into_blocks(np.arange(3), 0)

    def test_run_id_propagates(self):
        blocks = split_into_blocks(np.arange(8), 4, run_id=9)
        assert all(b.run_id == 9 for b in blocks)

    @given(n=st.integers(1, 200), bs=st.integers(1, 16))
    def test_reassembly_roundtrip(self, n, bs):
        keys = np.arange(n, dtype=np.int64)
        blocks = split_into_blocks(keys, bs)
        back = np.concatenate([b.keys for b in blocks])
        assert np.array_equal(back, keys)


class TestAttachForecasts:
    def test_initial_block_carries_first_d_keys(self):
        # 6 blocks of 2 records, D = 3: block 0 carries k_{r,0..2}.
        blocks = split_into_blocks(np.arange(12), 2)
        attach_forecasts(blocks, n_disks=3)
        assert blocks[0].forecast == (0.0, 2.0, 4.0)

    def test_later_blocks_carry_key_i_plus_d(self):
        blocks = split_into_blocks(np.arange(12), 2)
        attach_forecasts(blocks, n_disks=3)
        # block i (i>0) carries k_{r, i+D}; with B=2, k_{r,j} = 2j.
        assert blocks[1].forecast == (8.0,)
        assert blocks[2].forecast == (10.0,)

    def test_exhausted_chain_gets_sentinel(self):
        blocks = split_into_blocks(np.arange(12), 2)
        attach_forecasts(blocks, n_disks=3)
        # blocks 3, 4, 5 have no successor at i+3.
        assert blocks[3].forecast == (NO_KEY,)
        assert blocks[5].forecast == (NO_KEY,)

    def test_run_shorter_than_d(self):
        blocks = split_into_blocks(np.arange(4), 2)  # 2 blocks
        attach_forecasts(blocks, n_disks=4)
        assert blocks[0].forecast == (0.0, 2.0, NO_KEY, NO_KEY)
        assert blocks[1].forecast == (NO_KEY,)

    def test_empty_list_ok(self):
        assert attach_forecasts([], 4) == []

    @given(n_blocks=st.integers(1, 40), d=st.integers(1, 8))
    def test_every_block_has_correct_arity(self, n_blocks, d):
        blocks = split_into_blocks(np.arange(n_blocks * 2), 2)
        attach_forecasts(blocks, d)
        assert len(blocks[0].forecast) == d
        assert all(len(b.forecast) == 1 for b in blocks[1:])
