"""Tests for run-layout conversions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disks import (
    ParallelDiskSystem,
    StripedRun,
    restripe_run,
    striped_run_to_superblock_run,
    superblock_run_to_striped_run,
)
from repro.errors import DataError
from repro.verify import check_striped_run, check_superblock_run


def striped(system, n=40, start=1, payloads=False):
    keys = np.arange(0, n * 2, 2)
    p = keys + 7 if payloads else None
    return StripedRun.from_sorted_keys(system, keys, 0, start, payloads=p)


class TestStripedToSuperblock:
    def test_roundtrip_content(self):
        system = ParallelDiskSystem(4, 4)
        run = striped(system)
        sb = striped_run_to_superblock_run(system, run, 1)
        check_superblock_run(system, sb)
        assert np.array_equal(sb.read_all(system), np.arange(0, 80, 2))

    def test_payloads_survive(self):
        system = ParallelDiskSystem(4, 4)
        run = striped(system, payloads=True)
        sb = striped_run_to_superblock_run(system, run, 1)
        blk = system.disks[sb.stripes[0][0].disk].read(sb.stripes[0][0].slot)
        assert blk.payloads is not None

    def test_input_freed(self):
        system = ParallelDiskSystem(4, 4)
        run = striped(system)
        sb = striped_run_to_superblock_run(system, run, 1)
        live = sum(len(s) for s in sb.stripes)
        assert system.used_blocks == live

    def test_costs_one_read_and_write_pass(self):
        system = ParallelDiskSystem(4, 4)
        run = striped(system, n=64)  # 64 records = 16 blocks
        system.stats.reset()
        striped_run_to_superblock_run(system, run, 1)
        assert system.stats.parallel_reads == 4
        assert system.stats.parallel_writes == 4


class TestSuperblockToStriped:
    def test_roundtrip_and_format(self):
        from repro.baselines import write_superblock_run

        system = ParallelDiskSystem(3, 4)
        sb = write_superblock_run(system, np.arange(50), 0)
        run = superblock_run_to_striped_run(system, sb, 1, start_disk=2)
        check_striped_run(system, run)
        assert run.start_disk == 2
        assert np.array_equal(run.read_all(system), np.arange(50))

    def test_feeds_srm_merge(self):
        """A converted DSM run is a first-class SRM input."""
        from repro.baselines import write_superblock_run
        from repro.core import merge_runs

        system = ParallelDiskSystem(3, 4)
        sb = write_superblock_run(system, np.arange(0, 60, 2), 0)
        a = superblock_run_to_striped_run(system, sb, 1, 0)
        b = StripedRun.from_sorted_keys(system, np.arange(1, 61, 2), 2, 1)
        res = merge_runs(system, [a, b], 3, 0, validate=True)
        out = np.concatenate(
            [system.disks[x.disk].read(x.slot).keys for x in res.output.addresses]
        )
        assert np.array_equal(out, np.arange(60))


class TestRestripe:
    def test_new_start_disk(self):
        system = ParallelDiskSystem(4, 4)
        run = striped(system, start=1)
        moved = restripe_run(system, run, 1, new_start_disk=3)
        check_striped_run(system, moved)
        assert moved.start_disk == 3
        assert np.array_equal(moved.read_all(system), np.arange(0, 80, 2))

    def test_invalid_disk(self):
        system = ParallelDiskSystem(2, 4)
        run = striped(system, start=0)
        with pytest.raises(DataError):
            restripe_run(system, run, 1, new_start_disk=5)
