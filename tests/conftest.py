"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(0xC0FFEE)


def make_sorted_keys(rng: np.random.Generator, n: int, lo: int = 0, hi: int = 10**9) -> np.ndarray:
    """Distinct sorted int64 keys for run construction."""
    keys = rng.choice(np.arange(lo, hi, dtype=np.int64), size=n, replace=False)
    keys.sort()
    return keys
