"""Critical-path attribution: the makespan must decompose exactly.

The load-bearing contract of the trace plane: for every simulated-clock
domain, the longest causal path through the trace records has length
**bit-identical** to the simulated makespan — not approximately, the
same float.  That holds for SRM demand sorts, all three overlap-engine
modes, DSM, the cluster plane (phase-rebased), and faulted runs whose
stall/recovery tails ride the same clock.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.critical_path import (
    DomainAttribution,
    analyze_collector,
    combine_attribution,
)
from repro.analysis.timeline import TimelineResult
from repro.baselines import dsm_sort
from repro.core.config import DSMConfig
from repro.cluster import ClusterConfig, cluster_sort
from repro.core import SRMConfig, srm_sort
from repro.core.config import OverlapConfig
from repro.core.events import OverlapReport
from repro.faults import FaultPlan, StallWindow
from repro.telemetry import Telemetry
from repro.telemetry.report import RunReport
from repro.workloads import uniform_permutation


def assert_all_exact(col) -> dict:
    """Every domain in *col* must decompose bit-exactly; returns them."""
    analyses = analyze_collector(col)
    assert analyses
    for dom, a in analyses.items():
        assert a.exact, f"domain {dom} not exact"
        assert not a.truncated
        assert a.total_ms == a.makespan_ms, (
            f"domain {dom}: path {a.total_ms!r} != makespan {a.makespan_ms!r}"
        )
        assert math.isclose(sum(a.attribution.values()), a.total_ms,
                            rel_tol=1e-9, abs_tol=1e-9)
    return analyses


class TestExactness:
    def test_srm_demand_path(self):
        keys = uniform_permutation(4000, rng=1)
        tel = Telemetry(algo="srm")
        col = tel.attach_trace()
        srm_sort(keys, SRMConfig.from_k(4, 4, 32), rng=2, telemetry=tel)
        analyses = assert_all_exact(col)
        # Demand paging has no overlap: reads + writes own the makespan.
        attr = combine_attribution(analyses.values())
        assert attr["read"] > 0 and attr["write"] > 0

    @pytest.mark.parametrize("mode", ["none", "prefetch", "full"])
    def test_overlap_modes(self, mode):
        keys = uniform_permutation(4000, rng=3)
        tel = Telemetry(algo="srm")
        col = tel.attach_trace()
        srm_sort(
            keys, SRMConfig.from_k(4, 4, 32), rng=4,
            overlap=OverlapConfig(mode=mode, prefetch_depth=2),
            telemetry=tel,
        )
        analyses = assert_all_exact(col)
        attr = combine_attribution(analyses.values())
        assert attr.get("compute", 0.0) > 0.0

    def test_dsm_path(self):
        keys = uniform_permutation(4000, rng=5)
        tel = Telemetry(algo="dsm")
        col = tel.attach_trace()
        dsm_sort(keys, DSMConfig.from_memory(1024, 4, 32), telemetry=tel)
        assert_all_exact(col)

    def test_cluster_phase_rebasing(self):
        keys = uniform_permutation(4000, rng=6)
        tel = Telemetry(algo="cluster")
        col = tel.attach_trace()
        _out, result = cluster_sort(
            keys, ClusterConfig(n_nodes=3), SRMConfig.from_k(4, 4, 32),
            rng=7, telemetry=tel,
        )
        analyses = assert_all_exact(col)
        clus = [a for d, a in analyses.items() if d.startswith("cluster")]
        assert len(clus) == 1
        # The rebased clock must land exactly on the reported makespan.
        assert clus[0].makespan_ms == result.makespan_ms
        lanes = {ls.lane for ls in clus[0].lanes}
        assert {"node0", "node1", "node2"} <= lanes
        assert "link" in lanes

    def test_faulted_overlap_names_the_fault(self):
        keys = uniform_permutation(4000, rng=8)
        faults = FaultPlan(
            seed=9,
            read_fail_p=0.05,
            latency_factors={1: 3.0},
            stalls=(StallWindow(disk=0, start_ms=5.0, duration_ms=40.0),),
        )
        tel = Telemetry(algo="srm")
        col = tel.attach_trace()
        srm_sort(
            keys, SRMConfig.from_k(4, 4, 32), rng=10,
            overlap=OverlapConfig(mode="full", prefetch_depth=2),
            telemetry=tel, faults=faults,
        )
        analyses = assert_all_exact(col)
        kinds = {r.kind for r in col.records}
        assert "fault_stall" in kinds or "recovery" in kinds
        attr = combine_attribution(analyses.values())
        assert attr.get("stall", 0.0) + attr.get("recovery", 0.0) > 0.0

    def test_combine_attribution_sums_domains(self):
        a = DomainAttribution(
            domain="a", makespan_ms=5.0, total_ms=5.0, exact=True,
            truncated=False, attribution={"read": 3.0, "stall": 2.0},
            path=[], lanes={}, stragglers=[], records=2, dropped=0,
        )
        b = DomainAttribution(
            domain="b", makespan_ms=4.0, total_ms=4.0, exact=True,
            truncated=False, attribution={"read": 1.0, "write": 3.0},
            path=[], lanes={}, stragglers=[], records=2, dropped=0,
        )
        combined = combine_attribution([a, b])
        assert combined["read"] == 4.0
        assert combined["stall"] == 2.0
        assert combined["write"] == 3.0
        assert all(
            v == 0.0 for k, v in combined.items()
            if k not in ("read", "stall", "write")
        )
        assert a.fraction("read") == 0.6


class TestReportCheck:
    def _events(self):
        keys = uniform_permutation(3000, rng=12)
        tel = Telemetry(algo="srm")
        tel.attach_trace()
        srm_sort(keys, SRMConfig.from_k(4, 4, 32), rng=13, telemetry=tel)
        return tel.finish()

    def test_clean_trace_passes_check(self):
        report = RunReport.from_events(self._events())
        assert report.check() == []

    def test_corrupted_trace_fails_check(self):
        events = self._events()
        # Stretch the terminal record past the declared makespan: the
        # walk still reaches zero but the total no longer matches.
        recs = [e for e in events if e["type"] == "trace"]
        terminal = max(recs, key=lambda e: (e["te"], e["i"]))
        terminal["te"] = terminal["te"] + 1.0
        report = RunReport.from_events(events)
        failures = report.check()
        assert any("critical" in f or "makespan" in f for f in failures)

    def test_render_attribution_mentions_domains(self):
        report = RunReport.from_events(self._events())
        text = report.render_attribution()
        assert "makespan attribution" in text
        assert "exact" in text


class TestZeroDurationRegressions:
    """Division-by-zero fixes on empty-input timelines (satellite #3)."""

    def test_overlap_report_zero_makespan(self):
        rep = OverlapReport(
            mode="none", prefetch_depth=0, makespan_ms=0.0, cpu_busy_ms=0.0,
            read_stall_ms=0.0, write_stall_ms=0.0, io_busy_ms=0.0,
            disk_utilization=0.0, demand_reads=0, eager_reads=0, writes=0,
        )
        assert rep.cpu_utilization == 0.0
        assert rep.cpu_stall_ms == 0.0

    def test_timeline_result_zero_makespan(self):
        res = TimelineResult(
            makespan_ms=0.0, cpu_busy_ms=0.0, io_busy_ms=0.0,
            cpu_stall_ms=0.0, total_reads=0, total_writes=0, prefetch=False,
        )
        assert res.cpu_utilization == 0.0
        assert res.io_utilization == 0.0
