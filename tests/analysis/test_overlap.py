"""Tests for the I/O-compute overlap model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import merge_makespan
from repro.core import MergeJob, simulate_merge
from repro.disks import DISK_1996
from repro.errors import ConfigError
from repro.workloads import random_partition_runs


def merged_stats(R=8, D=4, blocks=40, B=8, seed=3):
    runs = random_partition_runs(R, blocks * B, rng=seed)
    job = MergeJob.from_key_runs(runs, B, D, rng=seed + 1)
    return simulate_merge(job), B


class TestDepletionGaps:
    def test_gaps_cover_all_blocks(self):
        stats, _ = merged_stats()
        assert sum(stats.depletion_gaps) == stats.n_blocks
        assert len(stats.depletion_gaps) == stats.merge_parreads + 1


class TestMakespan:
    def test_serial_is_sum_of_resources(self):
        stats, B = merged_stats()
        est = merge_makespan(stats, DISK_1996, B, cpu_us_per_record=50)
        assert est.serial_ms == pytest.approx(est.io_ms + est.cpu_ms)

    def test_pipelined_between_bounds(self):
        stats, B = merged_stats()
        est = merge_makespan(stats, DISK_1996, B, cpu_us_per_record=50)
        assert max(est.io_ms, est.cpu_ms) * 0.99 <= est.pipelined_ms <= est.serial_ms

    def test_zero_cpu_is_pure_io(self):
        stats, B = merged_stats()
        est = merge_makespan(stats, DISK_1996, B, cpu_us_per_record=0)
        assert est.cpu_ms == 0
        assert est.pipelined_ms == pytest.approx(est.io_ms, rel=0.01)
        assert est.serial_ms == pytest.approx(est.io_ms)

    def test_overlap_helps_most_when_balanced(self):
        stats, B = merged_stats()
        t_io = DISK_1996.op_time_ms(B)
        # CPU cost that makes total compute == total I/O time.
        n_writes = -(-stats.n_blocks // stats.n_disks)
        io_ms = (stats.total_reads + n_writes) * t_io
        balanced_us = io_ms / stats.n_blocks * 1000 / B
        speedups = {}
        for label, cpu in [("io-bound", balanced_us / 20),
                           ("balanced", balanced_us),
                           ("cpu-bound", balanced_us * 20)]:
            est = merge_makespan(stats, DISK_1996, B, cpu)
            speedups[label] = est.speedup
        assert speedups["balanced"] >= speedups["io-bound"]
        assert speedups["balanced"] >= speedups["cpu-bound"]
        assert speedups["balanced"] > 1.3  # toward the 2x pipeline ideal

    def test_overlap_efficiency_close_to_one_for_smooth_schedules(self):
        stats, B = merged_stats(R=16, D=4, blocks=60)
        t_io = DISK_1996.op_time_ms(B)
        est = merge_makespan(stats, DISK_1996, B, t_io * 1000 / B)
        assert est.overlap_efficiency > 0.55

    def test_validation(self):
        stats, B = merged_stats()
        with pytest.raises(ConfigError):
            merge_makespan(stats, DISK_1996, B, cpu_us_per_record=-1)


class TestOverlapGap:
    """Predicted (analytic) vs executed (engine) makespan comparison."""

    def _gap(self, mode="full"):
        from repro.analysis import execute_merge_timeline, overlap_gap

        R, D, blocks, B, seed = 12, 4, 50, 8, 3
        runs = random_partition_runs(R, blocks * B, rng=seed)
        job = MergeJob.from_key_runs(runs, B, D, rng=seed + 1)
        stats = simulate_merge(job)
        # Identical layout seed: the executed job replays the same schedule.
        runs = random_partition_runs(R, blocks * B, rng=seed)
        job = MergeJob.from_key_runs(runs, B, D, rng=seed + 1)
        cpu = DISK_1996.op_time_ms(B) * 1000 / B
        est = merge_makespan(stats, DISK_1996, B, cpu)
        rep = execute_merge_timeline(job, DISK_1996, B, cpu, mode=mode)
        return overlap_gap(est, rep)

    def test_fields_pass_through(self):
        gap = self._gap()
        assert gap.predicted_serial_ms > gap.predicted_pipelined_ms > 0
        assert gap.executed_ms > 0

    def test_model_within_modest_factor_of_execution(self):
        gap = self._gap()
        assert 0.5 <= gap.gap_ratio <= 2.0

    def test_executed_speedup_positive_when_overlapped(self):
        gap = self._gap(mode="full")
        assert gap.executed_speedup > 1.0
