"""Tests for grid rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import TableGrid, max_abs_deviation, render_comparison


def grid(title="T"):
    return TableGrid(ks=[5, 10], ds=[5, 50], values=np.array([[1.5, 2.0], [1.2, 1.4]]), title=title)


class TestTableGrid:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TableGrid(ks=[1], ds=[1, 2], values=np.zeros((2, 2)))

    def test_value_lookup(self):
        assert grid().value(10, 50) == 1.4

    def test_render_contains_labels_and_values(self):
        text = grid().render()
        assert "D=50" in text
        assert "k=10" in text
        assert "1.50" in text
        assert text.splitlines()[0] == "T"

    def test_render_format(self):
        text = grid().render(fmt="{:.1f}")
        assert "1.5" in text and "1.50" not in text


class TestComparison:
    def test_side_by_side(self):
        text = render_comparison(grid("A"), grid("B"))
        assert "1.50/1.50" in text
        assert "paper / measured" in text

    def test_label_mismatch(self):
        other = TableGrid(ks=[5], ds=[5, 50], values=np.ones((1, 2)))
        with pytest.raises(ValueError):
            render_comparison(grid(), other)

    def test_max_abs_deviation(self):
        a = grid()
        b = TableGrid(ks=a.ks, ds=a.ds, values=a.values + 0.25)
        assert max_abs_deviation(a, b) == pytest.approx(0.25)


class TestErrors:
    def test_error_shape_validated(self):
        with pytest.raises(ValueError):
            TableGrid(ks=[1], ds=[1], values=np.ones((1, 1)),
                      errors=np.ones((2, 2)))

    def test_render_with_errors(self):
        g = TableGrid(ks=[5], ds=[5], values=np.array([[1.5]]),
                      errors=np.array([[0.02]]))
        text = g.render(show_errors=True)
        assert "1.50±0.02" in text

    def test_render_ignores_missing_errors(self):
        text = grid().render(show_errors=True)
        assert "±" not in text

    def test_table1_carries_errors(self):
        from repro.analysis import table1

        g = table1(ks=[5], ds=[5], n_trials=200, rng=1)
        assert g.errors is not None
        assert 0 < g.errors[0, 0] < 0.1

    def test_table3_errors_with_trials(self):
        from repro.analysis import table3

        g = table3(ks=[5], ds=[5], blocks_per_run=20, block_size=4,
                   n_trials=3, rng=2)
        assert g.errors is not None
        g1 = table3(ks=[5], ds=[5], blocks_per_run=20, block_size=4, rng=2)
        assert g1.errors is None
