"""Tests for predicted-vs-measured sort accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    compare_dsm_result,
    compare_srm_result,
    predict_sort,
)
from repro.baselines import dsm_sort
from repro.core import DSMConfig, SRMConfig, srm_sort


class TestPredictSort:
    def test_run_count(self):
        p = predict_sort(n_records=3200, run_length=100, merge_order=8,
                         n_disks=4, block_size=10)
        # 320 blocks, 10 blocks/run -> 32 runs.
        assert p.expected_runs == 32

    def test_pass_count_exact_power(self):
        p = predict_sort(6400, 100, 8, 4, 10)  # 64 runs, R=8
        assert p.expected_passes == 2

    def test_pass_count_one_over(self):
        p = predict_sort(6500, 100, 8, 4, 10)  # 65 runs
        assert p.expected_passes == 3

    def test_single_run_no_passes(self):
        p = predict_sort(90, 100, 8, 4, 10)
        assert p.expected_runs == 1
        assert p.expected_passes == 0
        assert p.expected_writes == pytest.approx(3)  # ceil(9 blocks / 4)

    def test_writes_scale_with_passes(self):
        p = predict_sort(6400, 100, 8, 4, 10)
        per_pass = -(-640 // 4)
        assert p.expected_writes == pytest.approx(per_pass * 3)


class TestCompareSRM:
    def test_measured_matches_prediction(self, rng):
        cfg = SRMConfig.from_k(2, 4, 8)
        keys = rng.permutation(8192)
        _, res = srm_sort(keys, cfg, rng=1, run_length=128)
        rep = compare_srm_result(res, run_length=128)
        assert rep.measured_runs == rep.prediction.expected_runs
        assert rep.measured_passes == rep.prediction.expected_passes
        # Writes essentially at the floor; reads within the v overhead.
        assert rep.write_overhead == pytest.approx(1.0, abs=0.1)
        assert 1.0 <= rep.read_overhead <= 1.4

    def test_render(self, rng):
        cfg = SRMConfig.from_k(2, 4, 8)
        keys = rng.permutation(2048)
        _, res = srm_sort(keys, cfg, rng=1, run_length=128)
        text = compare_srm_result(res, run_length=128).render()
        assert "merge passes" in text and "v =" in text

    def test_default_run_length_is_memory(self, rng):
        cfg = SRMConfig.from_k(2, 4, 8)
        keys = rng.permutation(4096)
        _, res = srm_sort(keys, cfg, rng=1)
        rep = compare_srm_result(res)
        assert rep.measured_runs == rep.prediction.expected_runs


class TestCompareDSM:
    def test_measured_matches_prediction(self, rng):
        cfg = DSMConfig(n_disks=4, block_size=8, merge_order=4)
        keys = rng.permutation(8192)
        _, res = dsm_sort(keys, cfg, run_length=128)
        rep = compare_dsm_result(res, run_length=128)
        assert rep.measured_runs == rep.prediction.expected_runs
        assert rep.measured_passes == rep.prediction.expected_passes
        # DSM reads are also perfectly parallel (superblocks), modulo
        # per-run partial superblocks.
        assert rep.read_overhead == pytest.approx(1.0, abs=0.1)
        assert rep.write_overhead == pytest.approx(1.0, abs=0.1)
