"""Tests for the §9.1 / Theorem 1 cost formulas."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    c_dsm,
    c_ratio,
    c_srm,
    dsm_merge_order_formula,
    dsm_total_ios,
    gf_expected_reads_bound,
    merge_passes,
    srm_total_ios,
    srm_write_ios,
    theorem1_case1_reads,
    theorem1_case3_reads,
)
from repro.errors import ConfigError


class TestCoefficients:
    def test_c_srm_formula(self):
        # C_SRM = (1+v)/ln(kD).
        assert c_srm(10, 10, v=1.5) == pytest.approx(2.5 / math.log(100))

    def test_c_dsm_formula(self):
        # C_DSM = 2/ln(k + 1 + kD/2B).
        k, D, B = 10, 10, 1000
        assert c_dsm(k, D, B) == pytest.approx(2 / math.log(10 + 1 + 100 / 2000))

    def test_dsm_merge_order(self):
        assert dsm_merge_order_formula(10, 4, 100) == 10 + 1 + 40 / 200

    def test_ratio_below_one_for_paper_grid(self):
        # SRM wins in every cell of Table 2, even with worst-case v <= 2.7.
        for k, d, v in [(5, 5, 1.6), (5, 1000, 2.7), (1000, 1000, 1.1)]:
            assert c_ratio(k, d, 1000, v) < 1.0

    def test_v_below_one_rejected(self):
        with pytest.raises(ConfigError):
            c_srm(10, 10, v=0.5)

    def test_degenerate_order_rejected(self):
        with pytest.raises(ConfigError):
            c_srm(1, 1, v=1.0)  # kD = 1


class TestTotals:
    def test_passes(self):
        assert merge_passes(1e9, 1e6, 100) == pytest.approx(
            math.log(1000) / math.log(100)
        )

    def test_no_pass_when_fits_in_memory(self):
        assert merge_passes(100, 1000, 10) == 0.0

    def test_srm_total_shape(self):
        # (N/DB)(2 + C_SRM ln(N/M)).
        N, M, D, B, k, v = 1e8, 1e6, 10, 1000, 10, 1.5
        expect = N / (D * B) * (2 + c_srm(k, D, v) * math.log(N / M))
        assert srm_total_ios(N, M, D, B, k, v) == pytest.approx(expect)

    def test_dsm_total_shape(self):
        N, M, D, B, k = 1e8, 1e6, 10, 1000, 10
        expect = N / (D * B) * (2 + c_dsm(k, D, B) * math.log(N / M))
        assert dsm_total_ios(N, M, D, B, k) == pytest.approx(expect)

    def test_totals_ratio_matches_c_ratio_asymptotically(self):
        # For huge N/M the additive 2 washes out and the I/O ratio tends
        # to C_SRM/C_DSM.
        N, M, D, B, k, v = 1e300, 1e6, 10, 1000, 10, 1.5
        ratio = srm_total_ios(N, M, D, B, k, v) / dsm_total_ios(N, M, D, B, k)
        assert ratio == pytest.approx(c_ratio(k, D, B, v), rel=0.01)

    def test_srm_beats_dsm_for_realistic_params(self):
        # §10's realistic machine: D=5, k large, B=1000.
        N, M_scale = 1e9, None
        for k, D in [(200, 5), (100, 10), (500, 100)]:
            B = 1000
            M = (2 * k + 4) * D * B + k * D * D
            v = 1.6  # a pessimistic worst-case overhead
            assert srm_total_ios(N, M, D, B, k, v) < dsm_total_ios(N, M, D, B, k)

    def test_write_ios_perfect_parallelism(self):
        N, M, D, B, k = 1e7, 1e5, 4, 100, 25
        writes = srm_write_ios(N, M, D, B, k)
        passes = merge_passes(N, M, k * D)
        assert writes == pytest.approx(N / (D * B) * (1 + passes))


class TestTheorem1:
    def test_case1_reads_exceed_trivial_floor(self):
        N, M, D, B, k = 1e9, 1e6, 100, 1000, 5
        bound = theorem1_case1_reads(N, M, D, B, k)
        assert bound > N / (D * B)

    def test_case1_requires_large_d(self):
        with pytest.raises(ConfigError):
            theorem1_case1_reads(1e9, 1e6, 10, 1000, 5)

    def test_case3_approaches_optimal(self):
        # As r grows the multiplicative factor tends to 1:
        # bound -> N/DB (1 + ln(N/M)/ln R).
        N, M, D, B = 1e9, 1e6, 100, 1000
        for r, slack in [(2, 1.1), (100, 1.2)]:
            R = r * D * math.log(D)
            optimal = N / (D * B) * (1 + math.log(N / M) / math.log(R))
            bound = theorem1_case3_reads(N, M, D, B, r)
            assert bound >= optimal * 0.999
            factor = (bound - N / (D * B)) / (optimal - N / (D * B))
            assert factor <= 1 + math.sqrt(2 / r) * slack + 0.1

    def test_case3_validation(self):
        with pytest.raises(ConfigError):
            theorem1_case3_reads(1e9, 1e6, 1, 1000, 2.0)
        with pytest.raises(ConfigError):
            theorem1_case3_reads(1e9, 1e6, 10, 1000, 0)


class TestGfReadsBound:
    def test_upper_bounds_measured_sort(self):
        # The finite-size bound must dominate an actual SRM run's reads.
        from repro.core import SRMConfig, srm_sort

        rng = np.random.default_rng(7)
        cfg = SRMConfig.from_k(2, 4, 8)
        keys = rng.permutation(6144)
        _, res = srm_sort(keys, cfg, rng=1, run_length=96)
        bound = gf_expected_reads_bound(
            6144, 96, cfg.n_disks, cfg.block_size, cfg.merge_order
        )
        assert res.io.parallel_reads <= bound

    def test_reduces_to_read_pass_when_in_memory(self):
        assert gf_expected_reads_bound(100, 1000, 4, 10, 8) == pytest.approx(2.5)
