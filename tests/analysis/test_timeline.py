"""Tests for the discrete-event merge timeline simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import merge_makespan, simulate_merge_timeline
from repro.core import MergeJob, simulate_merge
from repro.disks import DISK_1996
from repro.errors import ConfigError
from repro.workloads import random_partition_runs


def make_job(R=8, D=4, blocks=40, B=8, seed=3):
    runs = random_partition_runs(R, blocks * B, rng=seed)
    return MergeJob.from_key_runs(runs, B, D, rng=seed + 1), B


class TestBasics:
    def test_conservation(self):
        job, B = make_job()
        res = simulate_merge_timeline(job, DISK_1996, B, cpu_us_per_record=20)
        # Busy times never exceed the makespan; makespan covers both.
        assert res.cpu_busy_ms <= res.makespan_ms + 1e-9
        assert res.io_busy_ms <= res.makespan_ms + 1e-9
        assert res.makespan_ms >= max(res.cpu_busy_ms, res.io_busy_ms) - 1e-9

    def test_cpu_busy_is_block_count_times_cost(self):
        job, B = make_job()
        res = simulate_merge_timeline(job, DISK_1996, B, cpu_us_per_record=20)
        assert res.cpu_busy_ms == pytest.approx(job.n_blocks * B * 20 / 1000)

    def test_write_count(self):
        job, B = make_job(R=8, D=4, blocks=40)
        res = simulate_merge_timeline(job, DISK_1996, B, 20)
        assert res.total_writes == -(-job.n_blocks // 4)

    def test_zero_cpu_cost(self):
        job, B = make_job()
        res = simulate_merge_timeline(job, DISK_1996, B, 0)
        assert res.cpu_busy_ms == 0
        assert res.makespan_ms == pytest.approx(res.io_busy_ms)

    def test_validation(self):
        job, B = make_job()
        with pytest.raises(ConfigError):
            simulate_merge_timeline(job, DISK_1996, B, -1)
        with pytest.raises(ConfigError):
            simulate_merge_timeline(job, DISK_1996, 0, 1)


class TestPrefetchValue:
    def test_prefetch_never_slower(self):
        job, B = make_job()
        t_io = DISK_1996.op_time_ms(B)
        balanced = t_io * 1000 / B
        for cpu in (balanced / 10, balanced, balanced * 10):
            fast = simulate_merge_timeline(job, DISK_1996, B, cpu, prefetch=True)
            slow = simulate_merge_timeline(job, DISK_1996, B, cpu, prefetch=False)
            assert fast.makespan_ms <= slow.makespan_ms + 1e-6

    def test_prefetch_hides_stalls_when_balanced(self):
        job, B = make_job(R=16, D=4, blocks=60)
        t_io = DISK_1996.op_time_ms(B)
        cpu = t_io * 1000 / B  # cpu-per-block == io-per-op
        fast = simulate_merge_timeline(job, DISK_1996, B, cpu, prefetch=True)
        slow = simulate_merge_timeline(job, DISK_1996, B, cpu, prefetch=False)
        assert fast.cpu_stall_ms < slow.cpu_stall_ms
        assert fast.makespan_ms < 0.85 * slow.makespan_ms

    def test_read_counts_match_pure_io_simulation(self):
        # The timeline's demand-mode reads equal the count-only simulator's.
        job, B = make_job()
        res = simulate_merge_timeline(job, DISK_1996, B, 20, prefetch=False)
        stats = simulate_merge(job)
        assert res.total_reads == stats.total_reads

    def test_consistent_with_analytic_model(self):
        # The analytic pipelined estimate and the event simulation agree
        # within a modest factor on a balanced workload.
        job, B = make_job(R=12, D=4, blocks=50)
        stats = simulate_merge(job)
        t_io = DISK_1996.op_time_ms(B)
        cpu = t_io * 1000 / B
        analytic = merge_makespan(stats, DISK_1996, B, cpu)
        event = simulate_merge_timeline(job, DISK_1996, B, cpu, prefetch=True)
        ratio = event.makespan_ms / analytic.pipelined_ms
        assert 0.5 <= ratio <= 2.0

    def test_utilizations(self):
        job, B = make_job()
        t_io = DISK_1996.op_time_ms(B)
        res = simulate_merge_timeline(job, DISK_1996, B, t_io * 1000 / B)
        assert 0 < res.cpu_utilization <= 1
        assert 0 < res.io_utilization <= 1


class TestExecuteTimeline:
    """The engine-backed executor over the same event stream."""

    def _balanced(self, **kw):
        job, B = make_job(**kw)
        cpu = DISK_1996.op_time_ms(B) * 1000 / B
        return job, B, cpu

    def test_demand_mode_read_counts_match_simulator(self):
        from repro.analysis import execute_merge_timeline

        job, B, cpu = self._balanced()
        rep = execute_merge_timeline(job, DISK_1996, B, cpu, mode="none")
        stats = simulate_merge(job)
        assert rep.demand_reads == stats.total_reads
        assert rep.eager_reads == 0

    def test_overlap_beats_demand_when_balanced(self):
        from repro.analysis import execute_merge_timeline

        job, B, cpu = self._balanced(R=16, D=4, blocks=60)
        slow = execute_merge_timeline(job, DISK_1996, B, cpu, mode="none")
        fast = execute_merge_timeline(job, DISK_1996, B, cpu, mode="full")
        assert fast.makespan_ms < slow.makespan_ms
        assert fast.cpu_stall_ms < slow.cpu_stall_ms

    def test_conservation(self):
        from repro.analysis import execute_merge_timeline

        job, B, cpu = self._balanced()
        rep = execute_merge_timeline(job, DISK_1996, B, cpu)
        assert rep.makespan_ms >= rep.cpu_busy_ms - 1e-9
        assert 0.0 <= rep.disk_utilization <= 1.0
