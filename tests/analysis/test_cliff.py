"""Tests for the makespan-cliff sweep (``repro cliff``)."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    CliffPoint,
    CliffReport,
    CliffSweepConfig,
    render_cliff,
    run_cliff,
)

#: Small sweep shared by most tests (one mode, two depths, 8 points).
CFG = CliffSweepConfig.quick(n_records=3_000)


@pytest.fixture(scope="module")
def report():
    return run_cliff(CFG)


class TestSweep:
    def test_grid_shape(self, report):
        expected = (
            len(CFG.modes) * len(CFG.depths) * len(CFG.factors) * len(CFG.stalls)
        )
        assert len(report.points) == expected

    def test_all_gates_pass(self, report):
        assert report.failures() == []

    def test_every_point_sorted_and_exact(self, report):
        for p in report.points:
            assert p.sorted_ok
            assert p.exact
            assert p.makespan_ms > 0.0
            assert p.makespan_ms >= p.bound_ms - 1e-6  # gap is never negative
            assert p.dominant in p.attribution or p.dominant == "none"

    def test_faulted_points_carry_adaptive_pair(self, report):
        for p in report.points:
            faulted = p.latency_factor != 1.0 or p.n_stalls > 0
            if faulted and p.mode != "none":
                assert p.adaptive_makespan_ms is not None
                assert p.adaptive_identical is True
                assert (
                    p.adaptive_makespan_ms
                    <= p.makespan_ms * (1.0 + 1e-9)
                )
            else:
                assert p.adaptive_makespan_ms is None

    def test_straggler_moves_makespan(self, report):
        # At equal depth/stalls, a 4x straggler must cost real time.
        by_key = {
            (p.prefetch_depth, p.latency_factor, p.n_stalls): p.makespan_ms
            for p in report.points
        }
        for depth in CFG.depths:
            assert by_key[(depth, 4.0, 0)] > by_key[(depth, 1.0, 0)]

    def test_deterministic(self, report):
        again = run_cliff(CFG)
        assert [p.row() for p in again.points] == [
            p.row() for p in report.points
        ]

    def test_adaptive_off_skips_reruns(self):
        cfg = CliffSweepConfig.quick(
            n_records=2_000, adaptive=False, factors=(4.0,), stalls=(0,),
            depths=(0,),
        )
        rep = run_cliff(cfg)
        assert all(p.adaptive_makespan_ms is None for p in rep.points)


class TestReport:
    def test_jsonl_roundtrip(self, report, tmp_path):
        path = tmp_path / "grid.jsonl"
        report.write_jsonl(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        meta = [r for r in rows if r["type"] == "meta"]
        points = [r for r in rows if r["type"] == "point"]
        assert len(meta) == 1
        assert meta[0]["n_records"] == CFG.n_records
        assert len(points) == len(report.points)
        for row, p in zip(points, report.points):
            assert row["makespan_ms"] == p.makespan_ms
            assert row["dominant"] == p.dominant

    def test_render_mentions_every_point(self, report):
        text = render_cliff(report)
        assert text.count("\n") >= len(report.points)
        assert "adaptive no worse than fixed" in text

    def test_failures_catch_regressions(self):
        point = CliffPoint(
            mode="full", prefetch_depth=0, latency_factor=4.0, n_stalls=0,
            makespan_ms=100.0, cpu_busy_ms=50.0, read_stall_ms=0.0,
            write_stall_ms=0.0, io_busy_ms=80.0, disk_utilization=0.5,
            bound_ms=90.0, overlap_gap_ms=10.0, dominant="read",
            adaptive_makespan_ms=120.0, adaptive_identical=False,
        )
        rep = CliffReport(config=CFG, points=[point])
        fails = rep.failures()
        assert any("differs" in f for f in fails)
        assert any("> fixed" in f for f in fails)
        assert "FAIL" in render_cliff(rep)
