"""Tests for table regeneration against the paper's published values."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    figure1,
    table1,
    table2,
    table3,
    table4,
)


class TestPaperConstants:
    def test_shapes(self):
        assert PAPER_TABLE1.values.shape == (6, 5)
        assert PAPER_TABLE2.values.shape == (6, 5)
        assert PAPER_TABLE3.values.shape == (3, 3)
        assert PAPER_TABLE4.values.shape == (3, 3)

    def test_lookup(self):
        assert PAPER_TABLE1.value(5, 50) == 2.2
        assert PAPER_TABLE2.value(100, 50) == 0.61
        assert PAPER_TABLE4.value(50, 50) == 0.51


class TestTable1:
    def test_small_grid_matches_paper(self):
        got = table1(ks=[5, 50], ds=[5, 50], n_trials=600, rng=1)
        for k in (5, 50):
            for d in (5, 50):
                assert got.value(k, d) == pytest.approx(
                    PAPER_TABLE1.value(k, d), abs=0.12
                )

    def test_deterministic_with_seed(self):
        a = table1(ks=[5], ds=[5], n_trials=100, rng=9)
        b = table1(ks=[5], ds=[5], n_trials=100, rng=9)
        assert np.array_equal(a.values, b.values)


class TestTable2:
    def test_matches_paper_given_paper_v(self):
        # Feed the PUBLISHED Table 1 values through eq. (40)/(41): the
        # resulting ratios must match the published Table 2 closely.
        got = table2(PAPER_TABLE1)
        diff = np.abs(got.values - PAPER_TABLE2.values)
        assert diff.max() <= 0.02

    def test_srm_wins_every_cell(self):
        got = table2(PAPER_TABLE1)
        assert np.all(got.values < 1.0)

    def test_ratio_rises_with_k_at_fixed_d(self):
        # §9.2: "as k increases relative to D, the ratio gradually
        # increases toward 1".
        got = table2(PAPER_TABLE1)
        for j in range(len(got.ds)):
            col = got.values[:, j]
            assert np.all(np.diff(col) > -0.03)


class TestTable3:
    def test_small_grid_near_one(self):
        got = table3(ks=[5, 10], ds=[5], blocks_per_run=60, block_size=4, rng=2)
        for k in (5, 10):
            assert got.value(k, 5) == pytest.approx(1.0, abs=0.1)

    def test_k5_d50_cell_shows_overhead(self):
        # The one Table 3 cell with visible overhead: v(5, 50) ~ 1.2
        # (converges from above as runs get longer; 150 blocks/run is
        # already within a few percent of the paper's L = 1000).
        got = table3(ks=[5], ds=[50], blocks_per_run=150, block_size=4, rng=3)
        assert 1.08 <= got.value(5, 50) <= 1.35

    def test_trials_average(self):
        got = table3(
            ks=[5], ds=[5], blocks_per_run=30, block_size=4, n_trials=3, rng=4
        )
        assert got.values.shape == (1, 1)


class TestTable4:
    def test_matches_paper_given_paper_v(self):
        got = table4(PAPER_TABLE3)
        diff = np.abs(got.values - PAPER_TABLE4.values)
        assert diff.max() <= 0.02

    def test_average_case_beats_worst_case(self):
        # Table 4 entries are smaller than the matching Table 2 entries.
        t4 = table4(PAPER_TABLE3)
        for i, k in enumerate(t4.ks):
            for j, d in enumerate(t4.ds):
                assert t4.values[i, j] <= PAPER_TABLE2.value(k, d) + 1e-9


class TestFigure1:
    def test_instances(self):
        f = figure1()
        assert f.dependent_instance.sum() == 12
        assert f.dependent_instance.max() == 4
        assert f.classical_instance.sum() == 12
        assert f.classical_instance.max() == 5

    def test_conjecture(self):
        f = figure1()
        assert f.conjecture_holds
        assert f.dependent_expected_max < f.classical_expected_max
