"""The README's python code blocks must actually run.

Documentation that silently rots is worse than none: this test extracts
every ```python fenced block from README.md and executes it in one
shared namespace (blocks may build on earlier ones).
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

README = Path(__file__).resolve().parent.parent / "README.md"

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks() -> list[str]:
    return _BLOCK_RE.findall(README.read_text())


def test_readme_has_python_examples():
    assert len(python_blocks()) >= 2


def test_readme_python_blocks_execute():
    namespace: dict = {
        # The records block references arrays the prose introduces.
        "timestamps": np.random.default_rng(0).integers(0, 100, size=5000),
        "row_ids": np.arange(5000),
    }
    for block in python_blocks():
        exec(compile(block, "README.md", "exec"), namespace)
    # The quickstart block must have produced a real result.
    assert "result" in namespace
    assert namespace["result"].io.parallel_reads > 0


def test_readme_mentions_all_examples():
    text = README.read_text()
    examples_dir = README.parent / "examples"
    for script in examples_dir.glob("*.py"):
        assert script.name in text, f"README does not mention {script.name}"
