"""Record (key + payload) sorting tests, including stability."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Block,
    DSMConfig,
    ParallelDiskSystem,
    SRMConfig,
    StripedFile,
    StripedRun,
    dsm_sort,
    external_sort_records,
)
from repro.core import RunWriter, srm_sort
from repro.errors import ConfigError, DataError


class TestBlockPayloads:
    def test_payloads_aligned(self):
        b = Block(keys=np.array([1, 2]), payloads=np.array([10, 20]))
        assert list(b.payloads) == [10, 20]

    def test_misaligned_rejected(self):
        with pytest.raises(DataError):
            Block(keys=np.array([1, 2]), payloads=np.array([10]))

    def test_split_carries_payloads(self):
        from repro.disks import split_into_blocks

        blocks = split_into_blocks(
            np.arange(10), 4, payloads=np.arange(100, 110)
        )
        assert list(blocks[0].payloads) == [100, 101, 102, 103]
        assert list(blocks[2].payloads) == [108, 109]

    def test_split_misaligned_rejected(self):
        from repro.disks import split_into_blocks

        with pytest.raises(DataError):
            split_into_blocks(np.arange(10), 4, payloads=np.arange(5))


class TestRunsWithPayloads:
    def test_striped_run_roundtrip(self):
        sys = ParallelDiskSystem(3, 4)
        keys = np.arange(0, 40, 2)
        pays = keys * 7 + 1
        run = StripedRun.from_sorted_keys(sys, keys, 0, 1, payloads=pays)
        k, p = run.read_all_records(sys)
        assert np.array_equal(k, keys)
        assert np.array_equal(p, pays)

    def test_striped_file_roundtrip(self):
        sys = ParallelDiskSystem(3, 4)
        keys = np.array([5, 1, 9, 2])
        pays = np.array([50, 10, 90, 20])
        f = StripedFile.from_records(sys, keys, payloads=pays)
        k, p = f.read_all_records(sys)
        assert np.array_equal(k, keys)
        assert np.array_equal(p, pays)

    def test_keys_only_run_reports_none(self):
        sys = ParallelDiskSystem(2, 4)
        run = StripedRun.from_sorted_keys(sys, np.arange(10), 0, 0)
        _, p = run.read_all_records(sys)
        assert p is None

    def test_writer_carries_payloads(self):
        sys = ParallelDiskSystem(3, 2)
        w = RunWriter(sys, 0, 0)
        keys = np.arange(25)
        pays = keys + 1000
        for i in range(0, 25, 4):
            w.append(keys[i : i + 4], pays[i : i + 4])
        run = w.finalize()
        k, p = run.read_all_records(sys)
        assert np.array_equal(k, keys)
        assert np.array_equal(p, pays)

    def test_writer_rejects_inconsistent_payload_presence(self):
        sys = ParallelDiskSystem(2, 2)
        w = RunWriter(sys, 0, 0)
        w.append(np.array([1]), np.array([10]))
        with pytest.raises(DataError):
            w.append(np.array([2]))


class TestEndToEndSorting:
    def _check(self, out_keys, out_pays, keys, pays):
        # Payload must follow its key: reconstruct the mapping.
        assert np.array_equal(out_keys, np.sort(keys))
        # For distinct keys, payload-by-key must match exactly.
        lookup = dict(zip(keys.tolist(), pays.tolist()))
        assert [lookup[k] for k in out_keys.tolist()] == out_pays.tolist()

    def test_srm_sorts_records(self, rng):
        keys = rng.permutation(5000)
        pays = keys * 3 + 7
        cfg = SRMConfig.from_k(2, 4, 8)
        _, res = srm_sort(keys, cfg, rng=1, run_length=128, payloads=pays)
        out_k, out_p = res.peek_sorted_records()
        self._check(out_k, out_p, keys, pays)

    def test_dsm_sorts_records(self, rng):
        keys = rng.permutation(5000)
        pays = keys + 10**6
        cfg = DSMConfig(n_disks=4, block_size=8, merge_order=4)
        _, res = dsm_sort(keys, cfg, run_length=128, payloads=pays)
        out_k, out_p = res.peek_sorted_records()
        self._check(out_k, out_p, keys, pays)

    def test_replacement_selection_with_payloads(self, rng):
        keys = rng.permutation(2000)
        pays = keys * 11
        cfg = SRMConfig.from_k(2, 4, 8)
        _, res = srm_sort(
            keys, cfg, rng=2, run_length=100,
            formation="replacement_selection", payloads=pays,
        )
        out_k, out_p = res.peek_sorted_records()
        self._check(out_k, out_p, keys, pays)

    def test_external_sort_records_api(self, rng):
        keys = rng.permutation(4000)
        pays = keys ^ 0x5A5A
        out_k, out_p, stats = external_sort_records(
            keys, pays, memory_records=600, n_disks=4, block_size=8, rng=3
        )
        self._check(out_k, out_p, keys, pays)
        assert stats.n_records == 4000

    def test_external_sort_records_dsm(self, rng):
        keys = rng.permutation(4000)
        pays = keys + 5
        out_k, out_p, _ = external_sort_records(
            keys, pays, 600, 4, 8, algorithm="dsm"
        )
        self._check(out_k, out_p, keys, pays)

    def test_misaligned_rejected(self, rng):
        with pytest.raises(ConfigError):
            external_sort_records(
                rng.permutation(10), np.arange(5), 600, 2, 4
            )

    def test_empty(self):
        k, p, stats = external_sort_records(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64), 600, 2, 4
        )
        assert k.size == 0 and p.size == 0 and stats.n_records == 0


class TestStability:
    def test_srm_load_sort_is_stable(self, rng):
        """Equal keys keep input order: runs form in input order, the
        in-memory sort is stable, and the merge breaks ties by run id."""
        n = 6000
        keys = rng.integers(0, 40, size=n)  # heavy duplication
        pays = np.arange(n)                 # payload = input position
        out_k, out_p, _ = external_sort_records(
            keys, pays, memory_records=600, n_disks=4, block_size=8, rng=4
        )
        expect_order = np.argsort(keys, kind="stable")
        assert np.array_equal(out_k, keys[expect_order])
        assert np.array_equal(out_p, pays[expect_order])

    def test_dsm_load_sort_is_stable(self, rng):
        n = 6000
        keys = rng.integers(0, 40, size=n)
        pays = np.arange(n)
        out_k, out_p, _ = external_sort_records(
            keys, pays, 600, 4, 8, algorithm="dsm"
        )
        expect_order = np.argsort(keys, kind="stable")
        assert np.array_equal(out_p, pays[expect_order])
