"""Tests for the one-shot reproduction runner."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import run_all_experiments


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("repro_out")
    # Small-scale knobs: the point is the plumbing, not precision.
    rep = run_all_experiments(
        out_dir=out,
        rng=7,
        occupancy_trials=60,
        blocks_per_run=20,
        block_size=4,
    )
    return rep, out


class TestRunAll:
    def test_all_five_experiments(self, report):
        rep, _ = report
        assert [o.name for o in rep.outcomes] == [
            "table1", "table2", "table3", "table4", "figure1",
        ]

    def test_reports_written(self, report):
        _, out = report
        for name in ("table1", "table2", "table3", "table4", "figure1", "summary"):
            path = Path(out) / f"{name}.txt"
            assert path.exists()
            assert path.read_text().strip()

    def test_deviations_recorded(self, report):
        rep, _ = report
        grids = [o for o in rep.outcomes if o.name.startswith("table")]
        assert all(o.max_deviation is not None for o in grids)
        # Even at toy scale the formula-side tables track closely.
        table2 = next(o for o in rep.outcomes if o.name == "table2")
        assert table2.max_deviation < 0.1

    def test_figure1_has_no_deviation_metric(self, report):
        rep, _ = report
        fig = next(o for o in rep.outcomes if o.name == "figure1")
        assert fig.max_deviation is None
        assert "holds" in fig.report

    def test_summary(self, report):
        rep, _ = report
        text = rep.summary()
        assert "table3" in text and "figure1" in text
        assert rep.worst_deviation >= 0

    def test_no_output_dir_is_fine(self):
        rep = run_all_experiments(
            rng=3, occupancy_trials=30, blocks_per_run=10, block_size=4
        )
        assert len(rep.outcomes) == 5


class TestCLI:
    def test_reproduce_all_command(self, capsys, tmp_path):
        from repro.cli import main

        rc = main([
            "reproduce-all", "--trials", "30", "--blocks-per-run", "10",
            "--out", str(tmp_path / "r"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Paper reproduction summary" in out
        assert (tmp_path / "r" / "summary.txt").exists()
