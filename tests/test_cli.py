"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        p = build_parser()
        for argv in (
            ["table1"],
            ["table2", "--paper-v"],
            ["table3", "--blocks-per-run", "10"],
            ["table4", "--full"],
            ["figure1"],
            ["sort", "--n", "100"],
            ["demo"],
        ):
            args = p.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "dependent" in out and "holds" in out

    def test_sort_srm(self, capsys):
        rc = main(["sort", "--n", "2000", "--disks", "2", "--block", "8", "--k", "2"])
        assert rc == 0
        assert "correct: True" in capsys.readouterr().out

    def test_sort_dsm(self, capsys):
        rc = main(
            ["sort", "--n", "2000", "--disks", "2", "--block", "8", "--k", "2", "--dsm"]
        )
        assert rc == 0
        assert "DSM" in capsys.readouterr().out

    def test_table2_paper_v(self, capsys):
        assert main(["table2", "--paper-v"]) == 0
        out = capsys.readouterr().out
        assert "paper / measured" in out
        assert "D=1000" in out

    def test_table3_tiny(self, capsys):
        rc = main(["table3", "--blocks-per-run", "10", "--block-size", "4",
                   "--seed", "3"])
        assert rc == 0
        assert "Table 3" in capsys.readouterr().out

    def test_records(self, capsys):
        rc = main(["records", "--n", "3000", "--disks", "2", "--block", "8",
                   "--memory", "600"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stable (ties keep input order): True" in out

    def test_bounds(self, capsys):
        rc = main(["bounds", "--trials", "100"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lower" in out and "upper" in out


class TestClusterSort:
    def test_parses(self):
        args = build_parser().parse_args(
            ["cluster-sort", "--n", "100", "--nodes", "2", "--lose-node", "1"]
        )
        assert callable(args.func)
        assert args.lose_node == 1

    def test_basic(self, capsys):
        rc = main(["cluster-sort", "--n", "4000", "--nodes", "2", "--disks", "2",
                   "--block", "8", "--k", "2", "--check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "correct: True" in out
        assert "cluster check passed" in out

    def test_node_loss_with_check(self, capsys):
        rc = main(["cluster-sort", "--n", "6000", "--nodes", "4", "--disks", "2",
                   "--block", "8", "--k", "2", "--lose-node", "1", "--check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "node losses: 1" in out
        assert "cluster check passed" in out

    def test_zipf_workload(self, capsys):
        rc = main(["cluster-sort", "--n", "4000", "--nodes", "2", "--disks", "2",
                   "--block", "8", "--k", "2", "--workload", "zipf", "--check"])
        assert rc == 0
        assert "cluster check passed" in capsys.readouterr().out

    def test_telemetry_trace(self, tmp_path, capsys):
        trace = tmp_path / "cluster.jsonl"
        rc = main(["cluster-sort", "--n", "4000", "--nodes", "2", "--disks", "2",
                   "--block", "8", "--k", "2", "--telemetry", str(trace)])
        assert rc == 0
        assert trace.exists()
        import json

        events = [json.loads(line) for line in trace.read_text().splitlines()]
        spans = {e["name"] for e in events if e.get("type") == "span"}
        assert "exchange" in spans and "cluster_sort" in spans


class TestCliff:
    def test_parses(self):
        args = build_parser().parse_args(["cliff", "--quick", "--check"])
        assert callable(args.func)
        assert args.quick and args.check

    def test_quick_check_and_jsonl(self, tmp_path, capsys):
        out = tmp_path / "cliff.jsonl"
        rc = main(["cliff", "--quick", "--check", "--n", "3000",
                   "--out", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "cliff map" in stdout
        assert "cliff check passed" in stdout
        import json

        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert rows[0]["type"] == "meta"
        points = [r for r in rows if r["type"] == "point"]
        assert len(points) == 8  # quick grid: 1 mode x 2 depths x 2 x 2
        assert all(p["sorted_ok"] and p["exact"] for p in points)

    def test_custom_axes(self, capsys):
        rc = main(["cliff", "--n", "2000", "--modes", "full", "--depths", "0",
                   "--factors", "1,4", "--stall-densities", "0",
                   "--no-adaptive"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("full") >= 2


class TestServe:
    def test_parses(self):
        args = build_parser().parse_args(
            ["serve", "--policy", "wfq", "--tenants", "3", "--check"]
        )
        assert callable(args.func)
        assert args.policy == "wfq" and args.check

    def test_check_and_jsonl_report(self, tmp_path, capsys):
        out = tmp_path / "serve.jsonl"
        rc = main(["serve", "--jobs", "3", "--tenants", "2", "--disks", "2",
                   "--block", "8", "--k", "2", "--min-records", "150",
                   "--max-records", "400", "--check", "--out", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "serve check passed" in stdout
        import json

        rows = [json.loads(line) for line in out.read_text().splitlines()]
        summary = [r for r in rows if r["kind"] == "service_summary"]
        assert len(summary) == 1
        assert summary[0]["identity_failures"] == []
        assert summary[0]["n_completed"] == 3
        assert len([r for r in rows if r["kind"] == "job"]) == 3

    def test_arrivals_file_roundtrip(self, tmp_path, capsys):
        from repro.workloads import batch_arrivals, dump_arrivals

        script = tmp_path / "arrivals.json"
        dump_arrivals(
            batch_arrivals(2, n_tenants=2, min_records=150, max_records=300,
                           rng=3),
            script,
        )
        rc = main(["serve", "--disks", "2", "--block", "8", "--k", "2",
                   "--arrivals-file", str(script), "--policy", "srpt"])
        assert rc == 0
        assert "policy=srpt jobs=2" in capsys.readouterr().out

    def test_telemetry_trace_has_service_spans(self, tmp_path, capsys):
        trace = tmp_path / "serve_trace.jsonl"
        rc = main(["serve", "--jobs", "2", "--tenants", "2", "--disks", "2",
                   "--block", "8", "--k", "2", "--min-records", "150",
                   "--max-records", "300", "--telemetry", str(trace)])
        assert rc == 0
        import json

        events = [json.loads(line) for line in trace.read_text().splitlines()]
        spans = [e for e in events if e.get("type") == "span"]
        assert any(s["name"] == "service" for s in spans)
        assert sum(s["name"] == "service_job" for s in spans) == 2
        assert any(e.get("type") == "trace" for e in events)
        # The service trace passes the inspect gate: per-tenant
        # attribution line present, exact-domain check green.
        capsys.readouterr()
        assert main(["inspect", str(trace), "--attribution", "--check"]) == 0
        out = capsys.readouterr().out
        assert "per-tenant:" in out and "check passed" in out
