"""Smoke tests: every shipped example must run end to end.

Examples are executable documentation; breaking one is a regression.
Each runs in-process with stdout captured (they are sized for seconds).
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    # The deliverable requires a quickstart plus domain scenarios.
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"
