"""The DSM cost model must be operation-exact vs the implementation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import dsm_exact_cost, dsm_sort
from repro.core import DSMConfig
from repro.errors import ConfigError


class TestExactness:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 4000),
        d=st.integers(1, 4),
        order=st.integers(2, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_execution(self, seed, n, d, order):
        cfg = DSMConfig(n_disks=d, block_size=4, merge_order=order)
        run_length = 32
        keys = np.random.default_rng(seed).permutation(n)
        _, res = dsm_sort(keys, cfg, run_length=run_length)
        cost = dsm_exact_cost(n, run_length, cfg)
        assert cost.parallel_reads == res.io.parallel_reads
        assert cost.parallel_writes == res.io.parallel_writes
        assert cost.runs_formed == res.runs_formed
        assert cost.n_merge_passes == res.n_merge_passes

    def test_scales_to_paper_sizes_instantly(self):
        cfg = DSMConfig.from_memory(25_000, n_disks=10, block_size=100)
        cost = dsm_exact_cost(100_000_000, 25_000, cfg)
        assert cost.parallel_ios > 0
        assert cost.n_merge_passes >= 3

    def test_validation(self):
        cfg = DSMConfig(n_disks=2, block_size=4, merge_order=2)
        with pytest.raises(ConfigError):
            dsm_exact_cost(0, 32, cfg)
        with pytest.raises(ConfigError):
            dsm_exact_cost(100, 2, cfg)
