"""Tests for the DSM baseline (paper §9.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    dsm_mergesort,
    dsm_sort,
    merge_superblock_runs,
    write_superblock_run,
)
from repro.core import DSMConfig
from repro.disks import ParallelDiskSystem, StripedFile
from repro.errors import ConfigError, DataError


class TestSuperblockRuns:
    def test_write_layout_synchronized(self):
        sys = ParallelDiskSystem(4, 2)
        run = write_superblock_run(sys, np.arange(24), 0)
        # 12 blocks -> 3 superblocks of 4.
        assert run.n_superblocks == 3
        for stripe in run.stripes:
            assert [a.disk for a in stripe] == [0, 1, 2, 3]

    def test_each_superblock_is_one_io(self):
        sys = ParallelDiskSystem(4, 2)
        write_superblock_run(sys, np.arange(24), 0)
        assert sys.stats.parallel_writes == 3
        assert sys.stats.write_efficiency == 1.0

    def test_partial_final_superblock(self):
        sys = ParallelDiskSystem(4, 2)
        run = write_superblock_run(sys, np.arange(18), 0)  # 9 blocks
        assert run.n_superblocks == 3
        assert len(run.stripes[-1]) == 1

    def test_roundtrip(self):
        sys = ParallelDiskSystem(3, 4)
        keys = np.arange(0, 50, 2)
        run = write_superblock_run(sys, keys, 0)
        assert np.array_equal(run.read_all(sys), keys)

    def test_rejects_unsorted(self):
        sys = ParallelDiskSystem(2, 2)
        with pytest.raises(DataError):
            write_superblock_run(sys, np.array([2, 1]), 0)


class TestMergeSuperblockRuns:
    def test_merges_correctly(self):
        sys = ParallelDiskSystem(2, 2)
        a = write_superblock_run(sys, np.arange(0, 20, 2), 0)
        b = write_superblock_run(sys, np.arange(1, 21, 2), 1)
        out = merge_superblock_runs(sys, [a, b], 2)
        assert np.array_equal(out.read_all(sys), np.arange(20))

    def test_read_count_is_superblock_count(self):
        sys = ParallelDiskSystem(2, 2)
        a = write_superblock_run(sys, np.arange(0, 20, 2), 0)
        b = write_superblock_run(sys, np.arange(1, 21, 2), 1)
        sys.stats.reset()
        merge_superblock_runs(sys, [a, b], 2)
        # Each run is 5 blocks = 3 superblocks (last partial): 6 reads.
        # Output is 10 blocks = 5 full superblocks: 5 writes.
        assert sys.stats.parallel_reads == 6
        assert sys.stats.parallel_writes == 5

    def test_single_run_rejected(self):
        sys = ParallelDiskSystem(2, 2)
        a = write_superblock_run(sys, np.arange(4), 0)
        with pytest.raises(DataError):
            merge_superblock_runs(sys, [a], 1)

    def test_inputs_freed(self):
        sys = ParallelDiskSystem(2, 2)
        a = write_superblock_run(sys, np.arange(0, 20, 2), 0)
        b = write_superblock_run(sys, np.arange(1, 21, 2), 1)
        out = merge_superblock_runs(sys, [a, b], 2)
        n_out_blocks = sum(len(s) for s in out.stripes)
        assert sys.used_blocks == n_out_blocks


class TestDSMSort:
    def test_sorts(self, rng):
        cfg = DSMConfig(n_disks=4, block_size=8, merge_order=3)
        keys = rng.permutation(3000)
        out, res = dsm_sort(keys, cfg, run_length=128)
        assert np.array_equal(out, np.sort(keys))
        assert res.n_records == 3000

    def test_pass_count(self, rng):
        cfg = DSMConfig(n_disks=2, block_size=4, merge_order=3)
        keys = rng.permutation(27 * 32)
        _, res = dsm_sort(keys, cfg, run_length=32)
        # 27 runs, order 3 -> exactly 3 passes.
        assert res.runs_formed == 27
        assert res.n_merge_passes == 3

    def test_every_io_is_fully_parallel_except_tails(self, rng):
        cfg = DSMConfig(n_disks=4, block_size=4, merge_order=4)
        keys = rng.permutation(4096)
        _, res = dsm_sort(keys, cfg, run_length=256)
        assert res.io.read_efficiency == 1.0
        assert res.io.write_efficiency == 1.0

    def test_each_pass_moves_every_record_once(self, rng):
        cfg = DSMConfig(n_disks=4, block_size=4, merge_order=4)
        keys = rng.permutation(4096)
        _, res = dsm_sort(keys, cfg, run_length=256)
        superblocks = 4096 // 16
        for p in res.passes:
            assert p.parallel_reads == superblocks
            assert p.parallel_writes == superblocks

    def test_duplicates(self, rng):
        cfg = DSMConfig(n_disks=2, block_size=4, merge_order=2)
        keys = rng.integers(0, 17, size=1000)
        out, _ = dsm_sort(keys, cfg, run_length=32)
        assert np.array_equal(out, np.sort(keys))

    @given(seed=st.integers(0, 100_000), n=st.integers(1, 1500), d=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_property_sorts_any_input(self, seed, n, d):
        rng = np.random.default_rng(seed)
        keys = rng.integers(-(2**40), 2**40, size=n)
        cfg = DSMConfig(n_disks=d, block_size=3, merge_order=3)
        out, _ = dsm_sort(keys, cfg, run_length=6 * d * 3)
        assert np.array_equal(out, np.sort(keys))

    def test_geometry_mismatch(self, rng):
        sys = ParallelDiskSystem(2, 4)
        infile = StripedFile.from_records(sys, rng.permutation(64))
        with pytest.raises(ConfigError):
            dsm_mergesort(sys, infile, DSMConfig(n_disks=4, block_size=4, merge_order=2))

    def test_empty_rejected(self):
        sys = ParallelDiskSystem(2, 4)
        infile = StripedFile.from_records(sys, np.array([], dtype=np.int64))
        with pytest.raises(ConfigError):
            dsm_mergesort(sys, infile, DSMConfig(n_disks=2, block_size=4, merge_order=2))


class TestSingleDisk:
    def test_sorts(self, rng):
        from repro.baselines import single_disk_sort

        keys = rng.permutation(2000)
        out, res = single_disk_sort(keys, memory_records=128, block_size=4)
        assert np.array_equal(out, np.sort(keys))
        assert res.config.n_disks == 1

    def test_memory_too_small(self, rng):
        from repro.baselines import single_disk_sort

        with pytest.raises(ConfigError):
            single_disk_sort(rng.permutation(100), memory_records=8, block_size=4)
