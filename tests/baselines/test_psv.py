"""Tests for the Pai-Schaffer-Varman one-run-per-disk baseline (§2.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    psv_merge,
    psv_mergesort,
    write_single_disk_run,
    write_single_disk_runs_parallel,
)
from repro.disks import ParallelDiskSystem, StripedFile
from repro.errors import ConfigError, DataError


class TestSingleDiskRuns:
    def test_run_lives_on_one_disk(self):
        sys = ParallelDiskSystem(4, 2)
        run = write_single_disk_run(sys, np.arange(10), 0, disk=2)
        assert all(a.disk == 2 for a in run.addresses)
        assert run.n_blocks == 5

    def test_single_disk_write_serializes(self):
        sys = ParallelDiskSystem(4, 2)
        write_single_disk_run(sys, np.arange(10), 0, disk=1)
        # 5 blocks on one disk: 5 operations (no write parallelism!).
        assert sys.stats.parallel_writes == 5

    def test_parallel_placement_writes_stripes(self):
        sys = ParallelDiskSystem(4, 2)
        runs = write_single_disk_runs_parallel(
            sys, [np.arange(i * 8, (i + 1) * 8) for i in range(4)], 0
        )
        # 4 runs x 4 blocks written as 4 full stripes.
        assert sys.stats.parallel_writes == 4
        assert [r.disk for r in runs] == [0, 1, 2, 3]

    def test_ragged_parallel_placement(self):
        sys = ParallelDiskSystem(4, 2)
        runs = write_single_disk_runs_parallel(
            sys, [np.arange(8), np.arange(8, 12)], 0
        )
        assert runs[0].n_blocks == 4 and runs[1].n_blocks == 2

    def test_too_many_runs(self):
        sys = ParallelDiskSystem(2, 2)
        with pytest.raises(ConfigError):
            write_single_disk_runs_parallel(sys, [np.arange(2)] * 3, 0)

    def test_unsorted_rejected(self):
        sys = ParallelDiskSystem(2, 2)
        with pytest.raises(DataError):
            write_single_disk_run(sys, np.array([2, 1]), 0, 0)


class TestPSVMerge:
    def _runs(self, sys, arrays):
        return write_single_disk_runs_parallel(sys, arrays, 0)

    def test_merges_correctly(self):
        sys = ParallelDiskSystem(2, 2)
        runs = self._runs(sys, [np.arange(0, 20, 2), np.arange(1, 21, 2)])
        res = psv_merge(sys, runs, buffer_blocks_per_run=2)
        out = np.concatenate(
            [sys.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
        )
        assert np.array_equal(out, np.arange(20))

    def test_balanced_runs_read_in_full_stripes(self):
        # Lockstep interleaved runs: every read fetches one block/run.
        sys = ParallelDiskSystem(2, 2)
        N = 40
        runs = self._runs(sys, [np.arange(0, N, 2), np.arange(1, N, 2)])
        res = psv_merge(sys, runs, buffer_blocks_per_run=2)
        assert res.parallel_reads == N // 2 // 2  # blocks per run

    def test_skewed_runs_serialize_reads(self):
        # One run entirely smaller: its disk becomes the bottleneck.
        sys = ParallelDiskSystem(2, 2)
        runs = self._runs(sys, [np.arange(0, 40), np.arange(100, 140)])
        res = psv_merge(sys, runs, buffer_blocks_per_run=2)
        # 20 + 20 blocks but reads are bounded below by the binding run
        # after its buffer (2 blocks) is exhausted.
        assert res.parallel_reads >= 20

    def test_buffer_cap_respected(self):
        sys = ParallelDiskSystem(4, 2)
        arrays = [np.arange(i, 64, 4) for i in range(4)]
        runs = self._runs(sys, arrays)
        res = psv_merge(sys, runs, buffer_blocks_per_run=3)
        assert res.max_buffered_blocks <= 4 * 3 + 4

    def test_output_striped_round_robin(self):
        sys = ParallelDiskSystem(2, 2)
        runs = self._runs(sys, [np.arange(0, 8, 2), np.arange(1, 9, 2)])
        res = psv_merge(sys, runs, 2)
        assert [a.disk for a in res.output.addresses] == [0, 1, 0, 1]

    def test_same_disk_runs_rejected(self):
        sys = ParallelDiskSystem(2, 2)
        a = write_single_disk_run(sys, np.arange(4), 0, 0)
        b = write_single_disk_run(sys, np.arange(4, 8), 1, 0)
        with pytest.raises(ConfigError):
            psv_merge(sys, [a, b], 2)

    def test_single_run_rejected(self):
        sys = ParallelDiskSystem(2, 2)
        a = write_single_disk_run(sys, np.arange(4), 0, 0)
        with pytest.raises(DataError):
            psv_merge(sys, [a], 2)


class TestPSVSort:
    def test_sorts(self, rng):
        sys = ParallelDiskSystem(4, 8)
        keys = rng.permutation(4096)
        infile = StripedFile.from_records(sys, keys)
        res = psv_mergesort(sys, infile, run_length=128)
        assert np.array_equal(res.peek_sorted(), np.sort(keys))

    def test_transposition_passes_counted(self, rng):
        sys = ParallelDiskSystem(4, 8)
        keys = rng.permutation(8192)  # 64 runs, D=4 -> 3 merge passes
        infile = StripedFile.from_records(sys, keys)
        res = psv_mergesort(sys, infile, run_length=128)
        assert res.n_merge_passes == 3
        # Every pass after the first consumes striped outputs.
        assert res.n_transpositions == 2

    def test_uses_more_ios_than_srm(self, rng):
        """The paper's §2.2 contrast, executed on identical inputs."""
        from repro.core import SRMConfig, srm_mergesort

        keys = rng.permutation(8192)
        sys_a = ParallelDiskSystem(4, 8)
        res_psv = psv_mergesort(
            sys_a, StripedFile.from_records(sys_a, keys), run_length=128
        )
        sys_b = ParallelDiskSystem(4, 8)
        res_srm = srm_mergesort(
            sys_b,
            StripedFile.from_records(sys_b, keys),
            SRMConfig.from_k(2, 4, 8),
            rng=1,
            run_length=128,
        )
        assert res_psv.total_parallel_ios > res_srm.io.parallel_ios

    def test_single_run_degenerate(self, rng):
        sys = ParallelDiskSystem(4, 8)
        keys = rng.permutation(100)
        infile = StripedFile.from_records(sys, keys)
        res = psv_mergesort(sys, infile, run_length=128)
        assert res.n_merge_passes == 0
        assert np.array_equal(res.peek_sorted(), np.sort(keys))

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 2000))
    @settings(max_examples=15, deadline=None)
    def test_property_sorts(self, seed, n):
        rng = np.random.default_rng(seed)
        keys = rng.integers(-(2**40), 2**40, size=n)
        sys = ParallelDiskSystem(3, 4)
        infile = StripedFile.from_records(sys, keys)
        res = psv_mergesort(sys, infile, run_length=32)
        assert np.array_equal(res.peek_sorted(), np.sort(keys))

    def test_validation(self, rng):
        sys = ParallelDiskSystem(1, 4)
        infile = StripedFile.from_records(sys, rng.permutation(64))
        with pytest.raises(ConfigError):
            psv_mergesort(sys, infile, run_length=32)
        sys2 = ParallelDiskSystem(2, 4)
        empty = StripedFile.from_records(sys2, np.array([], dtype=np.int64))
        with pytest.raises(ConfigError):
            psv_mergesort(sys2, empty, run_length=32)