"""Tests for the top-level external_sort convenience API."""

from __future__ import annotations

import numpy as np
import pytest

from repro import external_sort
from repro.errors import ConfigError


class TestExternalSort:
    def test_srm_path(self, rng):
        keys = rng.permutation(5000)
        out, stats = external_sort(keys, memory_records=600, n_disks=4, block_size=8)
        assert np.array_equal(out, np.sort(keys))
        assert stats.algorithm == "srm"
        assert stats.n_records == 5000
        assert stats.parallel_ios == stats.parallel_reads + stats.parallel_writes

    def test_dsm_path(self, rng):
        keys = rng.permutation(5000)
        out, stats = external_sort(
            keys, memory_records=600, n_disks=4, block_size=8, algorithm="dsm"
        )
        assert np.array_equal(out, np.sort(keys))
        assert stats.algorithm == "dsm"

    def test_srm_beats_dsm_under_same_budget(self, rng):
        # 100 initial runs: DSM (R=8) needs 3 merge passes, SRM (R=23)
        # needs 2 — the regime where the merge-order advantage bites.
        keys = rng.permutation(60_000)
        _, srm = external_sort(keys, 600, 4, 8, algorithm="srm", rng=1)
        _, dsm = external_sort(keys, 600, 4, 8, algorithm="dsm")
        assert srm.merge_order > dsm.merge_order
        assert srm.merge_passes < dsm.merge_passes
        assert srm.parallel_ios < dsm.parallel_ios

    def test_replacement_selection_formation(self, rng):
        keys = rng.permutation(3000)
        out, stats = external_sort(
            keys, 600, 4, 8, formation="replacement_selection", rng=2
        )
        assert np.array_equal(out, np.sort(keys))

    def test_dsm_rejects_replacement_selection(self, rng):
        with pytest.raises(ConfigError):
            external_sort(rng.permutation(100), 600, 4, 8,
                          algorithm="dsm", formation="replacement_selection")

    def test_unknown_algorithm(self, rng):
        with pytest.raises(ConfigError):
            external_sort(rng.permutation(100), 600, 4, 8, algorithm="quicksort")

    def test_empty_input(self):
        out, stats = external_sort(np.array([], dtype=np.int64), 600, 4, 8)
        assert out.size == 0
        assert stats.n_records == 0
        assert stats.parallel_ios == 0

    def test_memory_too_small(self, rng):
        with pytest.raises(ConfigError):
            external_sort(rng.permutation(100), memory_records=10,
                          n_disks=4, block_size=8)
