"""Tests for the {M_L, M_R, M_D, M_W} buffer partition (paper §5.1-5.2)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, ScheduleError
from repro.memory import BufferPool


def pool(R=6, D=3):
    return BufferPool(merge_order=R, n_disks=D)


class TestCapacities:
    def test_paper_partition_sizes(self):
        p = pool(R=6, D=3)
        assert p.ml_capacity == 6        # R
        assert p.mr_capacity == 9        # R + D
        assert p.md_capacity == 3        # D
        assert p.mw_capacity == 6        # 2D
        assert p.total_frames == 2 * 6 + 4 * 3  # 2R + 4D

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            BufferPool(merge_order=0, n_disks=2)
        with pytest.raises(ConfigError):
            BufferPool(merge_order=2, n_disks=0)


class TestLeadingBlocks:
    def test_load_and_retire(self):
        p = pool()
        p.load_leading()
        assert p.ml_occupied == 1
        p.retire_leading()
        assert p.ml_occupied == 0

    def test_ml_overflow(self):
        p = pool(R=2, D=1)
        p.load_leading()
        p.load_leading()
        with pytest.raises(ScheduleError):
            p.load_leading()

    def test_ml_underflow(self):
        with pytest.raises(ScheduleError):
            pool().retire_leading()


class TestMr:
    def test_stage_read(self):
        p = pool()
        p.stage_read_into_mr(3)
        assert p.mr_occupied == 3
        assert p.mr_free == p.mr_capacity - 3

    def test_mr_overflow_is_lemma1_violation(self):
        p = pool(R=2, D=2)  # capacity 4
        p.stage_read_into_mr(4)
        with pytest.raises(ScheduleError):
            p.stage_read_into_mr(1)

    def test_promote_moves_frame_to_ml(self):
        p = pool()
        p.stage_read_into_mr(2)
        p.promote_to_leading()
        assert p.mr_occupied == 1
        assert p.ml_occupied == 1

    def test_promote_underflow(self):
        with pytest.raises(ScheduleError):
            pool().promote_to_leading()

    def test_flush_frees_frames(self):
        p = pool()
        p.stage_read_into_mr(5)
        p.flush(2)
        assert p.mr_occupied == 3

    def test_flush_underflow(self):
        p = pool()
        p.stage_read_into_mr(1)
        with pytest.raises(ScheduleError):
            p.flush(2)

    def test_flush_negative(self):
        with pytest.raises(ScheduleError):
            pool().flush(-1)


class TestScheduleConditions:
    def test_can_read_without_flush(self):
        p = pool(R=4, D=2)  # M_R capacity 6
        p.stage_read_into_mr(4)
        assert p.can_read_without_flush()  # 2 free = D
        p.stage_read_into_mr(1)
        assert not p.can_read_without_flush()

    def test_extra(self):
        p = pool(R=4, D=2)
        p.stage_read_into_mr(4)
        assert p.extra == 0
        p.stage_read_into_mr(2)
        assert p.extra == 2


class TestOutputBuffer:
    def test_buffer_and_drain(self):
        p = pool(R=2, D=2)  # M_W capacity 4
        for _ in range(4):
            p.buffer_output_block()
        with pytest.raises(ScheduleError):
            p.buffer_output_block()
        p.drain_output_stripe(2)
        assert p.mw_occupied == 2

    def test_drain_underflow(self):
        with pytest.raises(ScheduleError):
            pool().drain_output_stripe(1)
