"""Hardening tests for the multi-tenant memory carve-outs
(TenantPartition / ServicePool), including the double-free bug class."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, ScheduleError
from repro.memory.pool import ServicePool, TenantPartition


class TestTenantPartition:
    def test_reserve_release_roundtrip(self):
        part = TenantPartition("t0", 40)
        assert part.try_reserve(24)
        assert part.reserved_frames == 24 and part.free_frames == 16
        part.release(24)
        assert part.reserved_frames == 0 and part.free_frames == 40

    def test_reserve_beyond_free_waits_not_raises(self):
        part = TenantPartition("t0", 40)
        assert part.try_reserve(30)
        assert not part.try_reserve(11)  # must wait
        assert part.reserved_frames == 30  # failed attempt holds nothing

    def test_reserve_beyond_capacity_is_quota_violation(self):
        part = TenantPartition("t0", 40)
        with pytest.raises(ConfigError, match="never run"):
            part.try_reserve(41)

    def test_double_free_raises(self):
        # Regression for the classic bug: a job released twice must not
        # mint frames out of thin air.
        part = TenantPartition("t0", 40)
        part.try_reserve(24)
        part.release(24)
        with pytest.raises(ScheduleError, match="double free"):
            part.release(24)
        assert part.reserved_frames == 0

    def test_partial_over_release_raises(self):
        part = TenantPartition("t0", 40)
        part.try_reserve(10)
        with pytest.raises(ScheduleError):
            part.release(11)
        assert part.reserved_frames == 10

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            TenantPartition("", 40)
        with pytest.raises(ConfigError):
            TenantPartition("t0", 0)
        with pytest.raises(ConfigError):
            TenantPartition("t0", 40, weight=0.0)

    def test_invalid_amounts(self):
        part = TenantPartition("t0", 40)
        with pytest.raises(ConfigError):
            part.try_reserve(0)
        with pytest.raises(ConfigError):
            part.release(-1)

    def test_close_requires_everything_back(self):
        part = TenantPartition("t0", 40)
        part.try_reserve(8)
        with pytest.raises(ScheduleError, match="still reserved"):
            part.close()
        part.release(8)
        part.close()
        assert part.closed
        # Every transition on a closed partition is a use-after-free.
        for op in (
            lambda: part.try_reserve(1),
            lambda: part.release(0),
            lambda: part.close(),
        ):
            with pytest.raises(ScheduleError):
                op()


class TestServicePool:
    def test_partitions_are_isolated(self):
        pool = ServicePool()
        a = pool.create_partition("a", 40)
        b = pool.create_partition("b", 20)
        a.try_reserve(40)
        # a being full never eats into b.
        assert b.try_reserve(20)
        assert pool.reserved_frames == 60
        assert pool.total_frames == 60
        assert pool.tenants == ["a", "b"]

    def test_duplicate_tenant_raises(self):
        pool = ServicePool()
        pool.create_partition("a", 40)
        with pytest.raises(ConfigError):
            pool.create_partition("a", 40)

    def test_unknown_tenant_raises(self):
        with pytest.raises(ConfigError):
            ServicePool().partition("ghost")

    def test_remove_partition_closes_it(self):
        pool = ServicePool()
        part = pool.create_partition("a", 40)
        pool.remove_partition("a")
        assert part.closed
        with pytest.raises(ConfigError):
            pool.partition("a")

    def test_remove_with_outstanding_reservation_raises(self):
        pool = ServicePool()
        pool.create_partition("a", 40).try_reserve(5)
        with pytest.raises(ScheduleError):
            pool.remove_partition("a")
        assert "a" in pool.tenants  # still there, still accounted
