"""State-machine fuzz of the buffer pool against a reference model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.memory import BufferPool


class TestPoolStateMachine:
    @given(
        r=st.integers(1, 8),
        d=st.integers(1, 6),
        ops=st.lists(st.tuples(st.integers(0, 5), st.integers(1, 6)), max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_sequences_never_corrupt_counts(self, r, d, ops):
        pool = BufferPool(merge_order=r, n_disks=d)
        ml = mr = mw = 0  # reference occupancies
        for op, arg in ops:
            try:
                if op == 0:
                    pool.load_leading()
                    ml += 1
                elif op == 1:
                    pool.retire_leading()
                    ml -= 1
                elif op == 2:
                    pool.stage_read_into_mr(arg)
                    mr += arg
                elif op == 3:
                    pool.promote_to_leading()
                    mr -= 1
                    ml += 1
                elif op == 4:
                    pool.flush(arg)
                    mr -= arg
                else:
                    pool.buffer_output_block()
                    mw += 1
            except ScheduleError:
                # A rejected transition must leave state untouched.
                pass
            else:
                # Accepted transitions stay within capacity.
                assert 0 <= ml <= r
                assert 0 <= mr <= r + d
                assert 0 <= mw <= 2 * d
            assert pool.ml_occupied == ml
            assert pool.mr_occupied == mr
            assert pool.mw_occupied == mw
            assert pool.extra == max(0, mr - r)
            assert pool.can_read_without_flush() == (r + d - mr >= d)
