"""Property tests for the seeded job-arrival generators."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.workloads import (
    JobArrival,
    batch_arrivals,
    bursty_arrivals,
    dump_arrivals,
    load_arrivals,
    poisson_arrivals,
)

GENERATORS = [
    lambda rng: poisson_arrivals(10, rate_per_s=50.0, n_tenants=3, rng=rng),
    lambda rng: bursty_arrivals(
        10, burst_size=4, burst_gap_ms=500.0, n_tenants=3, rng=rng
    ),
    lambda rng: batch_arrivals(10, n_tenants=3, rng=rng),
]


@pytest.mark.parametrize("gen", GENERATORS)
class TestCommonProperties:
    def test_deterministic_for_fixed_seed(self, gen):
        assert gen(42) == gen(42)

    def test_different_seeds_differ(self, gen):
        assert gen(42) != gen(43)

    def test_sorted_by_time_then_id(self, gen):
        rows = gen(7)
        keys = [(a.arrival_ms, a.job_id) for a in rows]
        assert keys == sorted(keys)

    def test_every_tenant_participates_and_ids_unique(self, gen):
        rows = gen(7)
        assert {a.tenant for a in rows} == {"t0", "t1", "t2"}
        assert len({a.job_id for a in rows}) == len(rows)

    def test_sizes_within_range_and_nonneg_times(self, gen):
        for a in gen(7):
            assert 500 <= a.n_records <= 2_000
            assert a.arrival_ms >= 0.0
            assert a.weight == 1.0


class TestShapes:
    def test_batch_all_at_time_zero(self):
        assert all(a.arrival_ms == 0.0 for a in batch_arrivals(6, rng=1))

    def test_bursty_gap_between_bursts(self):
        rows = bursty_arrivals(
            8, burst_size=4, burst_gap_ms=1_000.0, within_gap_ms=1.0, rng=1
        )
        times = sorted(a.arrival_ms for a in rows)
        # Jobs within a burst land within ~burst_size ms; the two bursts
        # are >= 1000 ms apart.
        assert times[3] - times[0] <= 4.0
        assert times[4] - times[3] >= 1_000.0

    def test_poisson_mean_gap_tracks_rate(self):
        rows = poisson_arrivals(400, rate_per_s=100.0, rng=5)
        times = [a.arrival_ms for a in rows]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert sum(gaps) / len(gaps) == pytest.approx(10.0, rel=0.25)

    def test_explicit_weights_copied_onto_rows(self):
        rows = batch_arrivals(4, n_tenants=2, weights=(2.0, 1.0), rng=1)
        by_tenant = {a.tenant: a.weight for a in rows}
        assert by_tenant == {"t0": 2.0, "t1": 1.0}


class TestValidation:
    def test_bad_parameters_raise(self):
        with pytest.raises(ConfigError):
            poisson_arrivals(0, rate_per_s=1.0)
        with pytest.raises(ConfigError):
            poisson_arrivals(5, rate_per_s=0.0)
        with pytest.raises(ConfigError):
            batch_arrivals(5, min_records=100, max_records=50)
        with pytest.raises(ConfigError):
            bursty_arrivals(5, burst_size=0, burst_gap_ms=1.0)
        with pytest.raises(ConfigError):
            batch_arrivals(5, n_tenants=2, weights=(1.0,))
        with pytest.raises(ConfigError):
            batch_arrivals(5, n_tenants=2, weights=(1.0, -1.0))


class TestRoundTrip:
    def test_dump_load_identity(self, tmp_path):
        rows = poisson_arrivals(8, rate_per_s=20.0, n_tenants=2, rng=9)
        path = tmp_path / "arrivals.json"
        dump_arrivals(rows, path)
        assert load_arrivals(path) == rows

    def test_load_rejects_bad_rows(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(ConfigError):
            load_arrivals(path)
        path.write_text('[{"job_id": "a", "tenant": "t"}]')
        with pytest.raises(ConfigError, match="bad arrival row"):
            load_arrivals(path)

    def test_load_rejects_duplicates_and_bad_values(self, tmp_path):
        import json

        def write(rows):
            path = tmp_path / "rows.json"
            path.write_text(json.dumps(rows))
            return path

        base = {"tenant": "t", "arrival_ms": 0.0, "n_records": 10, "seed": 1}
        with pytest.raises(ConfigError, match="duplicate"):
            load_arrivals(
                write([dict(base, job_id="a"), dict(base, job_id="a")])
            )
        with pytest.raises(ConfigError):
            load_arrivals(write([dict(base, job_id="a", n_records=0)]))
        with pytest.raises(ConfigError):
            load_arrivals(write([dict(base, job_id="a", arrival_ms=-1.0)]))
        with pytest.raises(ConfigError):
            load_arrivals(write([dict(base, job_id="a", weight=0.0)]))
