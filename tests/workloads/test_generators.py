"""Tests for workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads import (
    duplicate_heavy,
    interleaved_runs,
    nearly_sorted,
    random_partition_job,
    random_partition_runs,
    reverse_sorted,
    sequential_runs,
    uniform_keys,
    uniform_permutation,
)


class TestBasicGenerators:
    def test_uniform_permutation(self):
        keys = uniform_permutation(100, rng=0)
        assert np.array_equal(np.sort(keys), np.arange(100))

    def test_uniform_keys_range(self):
        keys = uniform_keys(1000, 10, 20, rng=0)
        assert keys.min() >= 10 and keys.max() < 20

    def test_uniform_keys_empty_range(self):
        with pytest.raises(ConfigError):
            uniform_keys(10, 5, 5)

    def test_duplicate_heavy(self):
        keys = duplicate_heavy(1000, 3, rng=0)
        assert len(np.unique(keys)) <= 3

    def test_nearly_sorted_is_nearly_sorted(self):
        keys = nearly_sorted(1000, 0.05, rng=0)
        inversions = int((keys[:-1] > keys[1:]).sum())
        assert 0 < inversions <= 60
        assert np.array_equal(np.sort(keys), np.arange(1000))

    def test_nearly_sorted_zero_swaps(self):
        assert np.array_equal(nearly_sorted(50, 0.0), np.arange(50))

    def test_nearly_sorted_swaps_never_cancel(self):
        # Every kept swap contributes exactly one inversion: duplicate
        # and overlapping index draws are thinned, never applied twice
        # (the old sequential pass let a duplicate undo its first swap).
        for seed in range(5):
            keys = nearly_sorted(2000, 0.2, rng=seed)
            inversions = int((keys[:-1] > keys[1:]).sum())
            n_displaced = int((keys != np.arange(2000)).sum())
            assert inversions * 2 == n_displaced  # each swap displaces 2

    def test_nearly_sorted_deterministic(self):
        a = nearly_sorted(500, 0.1, rng=42)
        b = nearly_sorted(500, 0.1, rng=42)
        assert np.array_equal(a, b)

    def test_nearly_sorted_validation(self):
        with pytest.raises(ConfigError):
            nearly_sorted(10, 1.5)

    def test_reverse_sorted(self):
        keys = reverse_sorted(5)
        assert list(keys) == [4, 3, 2, 1, 0]


class TestRunShapes:
    def test_interleaved_lockstep(self):
        runs = interleaved_runs(3, 4)
        assert list(runs[0]) == [0, 3, 6, 9]
        assert list(runs[2]) == [2, 5, 8, 11]

    def test_sequential_disjoint(self):
        runs = sequential_runs(3, 4)
        assert list(runs[1]) == [4, 5, 6, 7]

    def test_both_cover_range(self):
        for gen in (interleaved_runs, sequential_runs):
            runs = gen(4, 5)
            allk = np.sort(np.concatenate(runs))
            assert np.array_equal(allk, np.arange(20))

    def test_validation(self):
        with pytest.raises(ConfigError):
            interleaved_runs(0, 4)
        with pytest.raises(ConfigError):
            sequential_runs(2, 0)


class TestDomainShapes:
    def test_zipf_head_heavy(self):
        from repro.workloads import zipf_keys

        keys = zipf_keys(10_000, alpha=1.5, rng=0)
        counts = np.bincount(keys)
        # The most common key dwarfs the median frequency.
        assert counts.max() > 20 * np.median(counts[counts > 0])

    def test_zipf_clipped(self):
        from repro.workloads import zipf_keys

        keys = zipf_keys(5000, alpha=1.2, n_distinct=50, rng=1)
        assert keys.max() <= 50
        assert keys.min() >= 1

    def test_zipf_tail_not_modal(self):
        # Regression: clamping with np.minimum concentrated all
        # out-of-range mass on key n_distinct, making the nominally
        # rarest key a modal value (7.6% of draws in one measured
        # case).  Rejection sampling keeps frequencies monotone.
        from repro.workloads import zipf_keys

        keys = zipf_keys(100_000, alpha=1.2, n_distinct=50, rng=1)
        counts = np.bincount(keys, minlength=51)
        assert counts.argmax() == 1
        # The last key must be far rarer than the head, and never a
        # top-10 value.
        top10 = np.argsort(counts)[::-1][:10]
        assert 50 not in top10
        assert counts[50] < counts[1] / 20

    def test_zipf_head_monotone(self):
        from repro.workloads import zipf_keys

        keys = zipf_keys(200_000, alpha=1.5, n_distinct=1000, rng=3)
        counts = np.bincount(keys, minlength=1001)
        # Expected frequencies decay like k^-1.5; with 200k draws the
        # first few ranks are far apart and must order correctly.
        assert counts[1] > counts[2] > counts[3]

    def test_zipf_validation(self):
        from repro.workloads import zipf_keys

        with pytest.raises(ConfigError):
            zipf_keys(10, alpha=1.0)
        with pytest.raises(ConfigError):
            zipf_keys(10, n_distinct=0)

    def test_zipf_sortable(self):
        from repro.core import SRMConfig, srm_sort
        from repro.workloads import zipf_keys

        keys = zipf_keys(3000, rng=2)
        out, _ = srm_sort(keys, SRMConfig.from_k(2, 4, 8), rng=3, run_length=128)
        assert np.array_equal(out, np.sort(keys))

    def test_block_sorted_chunks_ascending(self):
        from repro.workloads import block_sorted

        keys = block_sorted(100, chunk=10, rng=0)
        for s in range(0, 100, 10):
            chunk = keys[s : s + 10]
            assert np.all(chunk[:-1] <= chunk[1:])
        assert np.array_equal(np.sort(keys), np.arange(100))

    def test_block_sorted_validation(self):
        from repro.workloads import block_sorted

        with pytest.raises(ConfigError):
            block_sorted(10, chunk=0)

    def test_geometric_runs_cover_range(self):
        from repro.workloads import geometric_length_runs

        runs = geometric_length_runs(10, mean_length=20, rng=0)
        total = sum(len(r) for r in runs)
        allk = np.sort(np.concatenate(runs))
        assert np.array_equal(allk, np.arange(total))
        assert all(np.all(r[:-1] <= r[1:]) for r in runs)

    def test_geometric_runs_vary_in_length(self):
        from repro.workloads import geometric_length_runs

        runs = geometric_length_runs(30, mean_length=20, rng=1)
        lengths = [len(r) for r in runs]
        assert max(lengths) > 2 * min(lengths)

    def test_geometric_runs_mergeable(self):
        from repro.core import MergeJob, simulate_merge
        from repro.workloads import geometric_length_runs

        runs = geometric_length_runs(6, mean_length=30, rng=2)
        job = MergeJob.from_key_runs(runs, 4, 3, rng=3)
        stats = simulate_merge(job, validate=True)
        assert stats.n_blocks == sum(-(-len(r) // 4) for r in runs)

    def test_geometric_validation(self):
        from repro.workloads import geometric_length_runs

        with pytest.raises(ConfigError):
            geometric_length_runs(0, 10)

    def test_geometric_min_length_cannot_dominate(self):
        from repro.workloads import geometric_length_runs

        with pytest.raises(ConfigError):
            geometric_length_runs(5, 3, min_length=10)
        with pytest.raises(ConfigError):
            geometric_length_runs(5, 3, min_length=0)
        # Equality is the boundary: still legal.
        runs = geometric_length_runs(5, 3, min_length=3, rng=0)
        assert all(len(r) >= 3 for r in runs)


class TestPartitions:
    def test_partition_covers_everything(self):
        runs = random_partition_runs(5, 20, rng=0)
        allk = np.sort(np.concatenate(runs))
        assert np.array_equal(allk, np.arange(100))

    def test_runs_sorted_and_sized(self):
        runs = random_partition_runs(4, 10, rng=1)
        assert all(len(r) == 10 for r in runs)
        assert all(np.all(r[:-1] <= r[1:]) for r in runs)

    def test_deterministic(self):
        a = random_partition_runs(3, 7, rng=5)
        b = random_partition_runs(3, 7, rng=5)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_validation(self):
        with pytest.raises(ConfigError):
            random_partition_runs(0, 5)

    def test_partition_job_shape(self):
        job = random_partition_job(k=2, n_disks=3, blocks_per_run=4, block_size=5, rng=0)
        assert job.n_runs == 6
        assert job.n_blocks == 24
        assert job.n_disks == 3

    def test_partition_job_simulable(self):
        from repro.core import simulate_merge

        job = random_partition_job(k=2, n_disks=2, blocks_per_run=5, block_size=3, rng=1)
        stats = simulate_merge(job, validate=True)
        assert stats.n_blocks == 20
