"""Property tests shared by every workload generator.

Each generator must uphold the same contract the sorting pipeline
assumes everywhere: ``int64`` keys, values inside the documented
bounds, bit-identical output for a fixed seed, multiset preservation
for permutation-based shapes, and sortedness for run generators.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    block_sorted,
    duplicate_heavy,
    geometric_length_runs,
    interleaved_runs,
    nearly_sorted,
    random_partition_runs,
    reverse_sorted,
    sequential_runs,
    uniform_keys,
    uniform_permutation,
    zipf_keys,
)

# (name, factory) pairs producing one flat key array from a seed.
ARRAY_GENERATORS = [
    ("uniform_permutation", lambda rng: uniform_permutation(500, rng=rng)),
    ("uniform_keys", lambda rng: uniform_keys(500, -100, 100, rng=rng)),
    ("duplicate_heavy", lambda rng: duplicate_heavy(500, 7, rng=rng)),
    ("nearly_sorted", lambda rng: nearly_sorted(500, 0.1, rng=rng)),
    ("reverse_sorted", lambda rng: reverse_sorted(500)),
    ("zipf_keys", lambda rng: zipf_keys(500, alpha=1.5, n_distinct=100, rng=rng)),
    ("block_sorted", lambda rng: block_sorted(500, chunk=32, rng=rng)),
]

# (name, factory) pairs producing a list of sorted runs from a seed.
RUN_GENERATORS = [
    ("interleaved_runs", lambda rng: interleaved_runs(4, 25)),
    ("sequential_runs", lambda rng: sequential_runs(4, 25)),
    (
        "geometric_length_runs",
        lambda rng: geometric_length_runs(8, mean_length=20, rng=rng),
    ),
    (
        "random_partition_runs",
        lambda rng: random_partition_runs(5, 20, rng=rng),
    ),
]

# Generators whose output is a permutation of a known contiguous range.
PERMUTATION_GENERATORS = [
    ("uniform_permutation", lambda rng: uniform_permutation(500, rng=rng), 500),
    ("nearly_sorted", lambda rng: nearly_sorted(500, 0.1, rng=rng), 500),
    ("reverse_sorted", lambda rng: reverse_sorted(500), 500),
    ("block_sorted", lambda rng: block_sorted(500, chunk=32, rng=rng), 500),
]


@pytest.mark.parametrize("name,gen", ARRAY_GENERATORS, ids=[n for n, _ in ARRAY_GENERATORS])
class TestArrayGeneratorProperties:
    def test_int64_dtype(self, name, gen):
        assert gen(0).dtype == np.int64

    def test_seed_determinism(self, name, gen):
        assert np.array_equal(gen(123), gen(123))

    def test_size(self, name, gen):
        assert gen(0).shape == (500,)


@pytest.mark.parametrize("name,gen", RUN_GENERATORS, ids=[n for n, _ in RUN_GENERATORS])
class TestRunGeneratorProperties:
    def test_runs_are_sorted(self, name, gen):
        for run in gen(0):
            assert np.all(run[:-1] <= run[1:])

    def test_int64_dtype(self, name, gen):
        assert all(r.dtype == np.int64 for r in gen(0))

    def test_seed_determinism(self, name, gen):
        a, b = gen(7), gen(7)
        assert len(a) == len(b)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_runs_cover_contiguous_range(self, name, gen):
        runs = gen(1)
        allk = np.sort(np.concatenate(runs))
        assert np.array_equal(allk, np.arange(allk.size))


@pytest.mark.parametrize(
    "name,gen,n", PERMUTATION_GENERATORS, ids=[n for n, _, _ in PERMUTATION_GENERATORS]
)
def test_permutation_multiset_preserved(name, gen, n):
    keys = gen(5)
    assert np.array_equal(np.sort(keys), np.arange(n))


class TestValueBounds:
    def test_uniform_keys_bounds(self):
        for seed in range(3):
            keys = uniform_keys(2000, -50, 50, rng=seed)
            assert keys.min() >= -50 and keys.max() < 50

    def test_duplicate_heavy_bounds(self):
        keys = duplicate_heavy(2000, 5, rng=0)
        assert keys.min() >= 0 and keys.max() < 5

    def test_zipf_bounds(self):
        for seed in range(3):
            keys = zipf_keys(2000, alpha=1.2, n_distinct=30, rng=seed)
            assert keys.min() >= 1 and keys.max() <= 30

    def test_zipf_tiny_support(self):
        # Rejection sampling must terminate even on a one-key support.
        keys = zipf_keys(200, alpha=1.5, n_distinct=1, rng=0)
        assert np.all(keys == 1)

    def test_geometric_lengths_at_least_min(self):
        runs = geometric_length_runs(20, mean_length=5, rng=0, min_length=2)
        assert all(len(r) >= 2 for r in runs)
