"""Splitter selection and partition-quality metrics."""

import numpy as np
import pytest

from repro.cluster import partition_skew, sample_node_keys, select_splitters
from repro.core.config import SRMConfig
from repro.core.layout import LayoutStrategy
from repro.core.run_formation import form_runs_load_sort
from repro.disks.files import StripedFile
from repro.disks.system import ParallelDiskSystem
from repro.errors import ConfigError


def _node_with_runs(n=4000, seed=0):
    cfg = SRMConfig.from_k(2, 4, 16)
    system = ParallelDiskSystem(4, 16)
    keys = np.random.default_rng(seed).permutation(n).astype(np.int64)
    infile = StripedFile.from_records(system, keys)
    runs = form_runs_load_sort(
        system, infile, cfg.memory_records, LayoutStrategy.RANDOMIZED,
        np.random.default_rng(seed + 1),
    )
    return system, runs, keys


class TestSampleNodeKeys:
    def test_samples_come_from_node_records(self):
        system, runs, keys = _node_with_runs()
        s, n_ops = sample_node_keys(
            system, runs, 64, np.random.default_rng(7)
        )
        assert s.size == 64
        assert np.isin(s, keys).all()
        assert n_ops > 0  # sampling is charged

    def test_charged_reads_show_in_io_stats(self):
        system, runs, _ = _node_with_runs()
        before = system.stats.parallel_reads
        _, n_ops = sample_node_keys(system, runs, 32, np.random.default_rng(1))
        assert system.stats.parallel_reads - before == n_ops

    def test_deterministic_under_seed(self):
        system, runs, _ = _node_with_runs()
        a, _ = sample_node_keys(system, runs, 48, np.random.default_rng(3))
        b, _ = sample_node_keys(system, runs, 48, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_no_runs_yields_empty(self):
        system = ParallelDiskSystem(4, 16)
        s, n_ops = sample_node_keys(system, [], 16, np.random.default_rng(0))
        assert s.size == 0 and n_ops == 0


class TestSelectSplitters:
    def test_counts_and_order(self):
        samples = [np.arange(i, 100 + i, dtype=np.int64) for i in range(4)]
        sp = select_splitters(samples, 4)
        assert sp.size == 3
        assert np.all(sp[:-1] <= sp[1:])

    def test_single_node_needs_no_splitters(self):
        assert select_splitters([np.arange(10)], 1).size == 0

    def test_quantiles_of_uniform_sample_are_balanced(self):
        rng = np.random.default_rng(11)
        samples = [rng.integers(0, 1 << 30, size=256) for _ in range(4)]
        sp = select_splitters(samples, 4)
        # Quantile splitters of a uniform sample sit near the 1/4 marks.
        for j, s in enumerate(sp, start=1):
            assert abs(s / (1 << 30) - j / 4) < 0.1

    def test_too_few_samples_raises(self):
        with pytest.raises(ConfigError):
            select_splitters([np.array([1], dtype=np.int64)], 4)

    def test_zero_nodes_raises(self):
        with pytest.raises(ConfigError):
            select_splitters([], 0)


class TestPartitionSkew:
    def test_perfect_balance_is_one(self):
        assert partition_skew([100, 100, 100, 100]) == 1.0

    def test_worst_case_approaches_p(self):
        assert partition_skew([400, 0, 0, 0]) == 4.0

    def test_empty_and_zero(self):
        assert partition_skew([]) == 1.0
        assert partition_skew([0, 0]) == 1.0
