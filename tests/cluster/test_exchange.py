"""Transfer planning and the link cost model."""

import numpy as np
import pytest

from repro.cluster import LINK_1GBE, LinkModel, Transfer, plan_transfers
from repro.errors import ConfigError


class TestLinkModel:
    def test_transfer_time_is_affine(self):
        link = LinkModel(latency_ms=2.0, ms_per_block=0.5)
        assert link.transfer_ms(10) == pytest.approx(2.0 + 5.0)

    def test_empty_message_is_free(self):
        assert LINK_1GBE.transfer_ms(0) == 0.0

    def test_negative_params_rejected(self):
        with pytest.raises(ConfigError):
            LinkModel(ms_per_block=-0.1)


class TestPlanTransfers:
    def _plan(self, runs_keys, splitters):
        keys = [[np.asarray(k, dtype=np.int64) for k in node]
                for node in runs_keys]
        # plan_transfers only touches the keys lists, so placeholder
        # run objects suffice for planning-level tests.
        runs = [[object() for _ in node] for node in runs_keys]
        return plan_transfers(runs, keys, np.asarray(splitters, np.int64))

    def test_segments_cover_every_record_once(self):
        ts = self._plan(
            [[[1, 5, 9, 13]], [[2, 6, 10, 14]]], [7]
        )
        total = sum(t.n_records for t in ts)
        assert total == 8
        for t in ts:
            assert np.array_equal(t.keys, np.sort(t.keys))

    def test_ownership_respects_splitters(self):
        ts = self._plan([[[1, 5, 9, 13]], [[2, 6, 10, 14]]], [7])
        for t in ts:
            if t.dst == 0:
                assert (t.keys <= 7).all()
            else:
                assert (t.keys > 7).all()

    def test_equal_keys_share_an_owner(self):
        # side="right": keys equal to the splitter stay on the left node.
        ts = self._plan([[[7, 7, 7, 8]], []], [7])
        owners = {t.dst: t.n_records for t in ts}
        assert owners == {0: 3, 1: 1}

    def test_empty_segments_are_not_sent(self):
        ts = self._plan([[[1, 2, 3]]], [100])
        assert len(ts) == 1
        assert ts[0].dst == 0

    def test_block_rounding(self):
        t = Transfer(src=0, dst=1, run_index=0, lo=0, hi=17,
                     keys=np.arange(17, dtype=np.int64))
        assert t.n_blocks(16) == 2
        assert t.n_blocks(17) == 1
