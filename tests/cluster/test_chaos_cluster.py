"""Cluster scenarios in the chaos harness, and their CLI surface."""

import numpy as np

from repro.faults import ChaosReport, run_chaos, run_cluster_chaos


def test_cluster_sweep_passes():
    results = run_cluster_chaos(
        n_records=8_000, n_nodes=4, n_disks=4, k=2, block_size=16, seed=7
    )
    names = {r.scenario for r in results}
    assert names == {"node_loss", "skewed"}
    for r in results:
        assert r.ok, (r.scenario, r.error, r.stats)
        assert r.algorithm == "cluster"


def test_node_loss_scenario_is_charged_and_identical():
    (loss,) = [
        r
        for r in run_cluster_chaos(n_records=8_000, seed=11)
        if r.scenario == "node_loss"
    ]
    assert loss.identical
    assert loss.stats["node_losses"] == 1
    assert loss.stats["rebuild_blocks_resent"] > 0
    assert loss.stats["rebuild_read_ios"] > 0
    assert loss.io_overhead_pct > 0  # recovery is never free


def test_skew_scenario_bounds_partition_quality():
    (skew,) = [
        r
        for r in run_cluster_chaos(n_records=8_000, seed=11)
        if r.scenario == "skewed"
    ]
    assert skew.identical
    assert 1.0 <= skew.stats["partition_skew"] <= skew.stats["_skew_bound"]


def test_failures_flag_violations():
    report = ChaosReport(
        n_records=0, n_disks=4, block_size=16, merge_order=8, seed=0
    )
    results = run_cluster_chaos(n_records=8_000, seed=13)
    for r in results:
        r.stats = dict(r.stats)
    # Sabotage the recorded stats; failures() must call each one out.
    results[0].stats["node_losses"] = 0
    results[1].stats["partition_skew"] = 3.5
    report.results.extend(results)
    msgs = "\n".join(report.failures())
    assert "none was lost" in msgs
    assert "exceeds" in msgs


def test_run_chaos_integrates_cluster_sweep():
    report = run_chaos(
        n_records=6_000, quick=True, algorithms=("srm",), cluster_nodes=2
    )
    cluster_rows = [r for r in report.results if r.algorithm == "cluster"]
    assert {r.scenario for r in cluster_rows} == {"node_loss", "skewed"}
    assert report.passed, report.failures()
    # Rows serialize like every other scenario (JSONL contract).
    for r in cluster_rows:
        row = r.row()
        assert row["type"] == "scenario"
        assert row["makespan_ms"] is not None


def test_run_chaos_without_cluster_has_no_cluster_rows():
    report = run_chaos(
        n_records=6_000, quick=True, algorithms=("srm",), cluster_nodes=0
    )
    assert not [r for r in report.results if r.algorithm == "cluster"]
