"""End-to-end cluster sort: bit-identity, determinism, accounting."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, LinkModel, NodeLoss, cluster_sort
from repro.core import SRMConfig, srm_sort
from repro.errors import ConfigError
from repro.telemetry import Telemetry
from repro.telemetry.schema import (
    CLUSTER_EXCHANGE_BLOCKS,
    CLUSTER_EXCHANGE_ROUNDS,
    CLUSTER_NODE_LOSSES,
    CLUSTER_REBUILD_BLOCKS,
    CLUSTER_REBUILD_READ_IOS,
    CLUSTER_SAMPLE_READS,
    SPAN_EXCHANGE,
)
from repro.verify import check_cluster_shards
from repro.workloads import uniform_permutation, zipf_keys

CFG = SRMConfig.from_k(2, 4, 16)


def _sort(n=20_000, p=4, seed=0, **kw):
    keys = uniform_permutation(n, rng=seed)
    out, res = cluster_sort(keys, ClusterConfig(n_nodes=p), CFG, rng=seed, **kw)
    return keys, out, res


class TestBitIdentity:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_single_node_srm(self, p):
        """The acceptance criterion: concatenated shards == srm_sort."""
        keys = uniform_permutation(12_000, rng=3)
        srm_out, _ = srm_sort(keys, CFG, rng=3)
        out, res = cluster_sort(keys, ClusterConfig(n_nodes=p), CFG, rng=3)
        assert np.array_equal(out, srm_out)
        check_cluster_shards(res)

    def test_duplicate_heavy_input(self):
        keys = zipf_keys(15_000, alpha=1.2, n_distinct=300, rng=5)
        out, res = cluster_sort(keys, ClusterConfig(n_nodes=4), CFG, rng=5)
        assert np.array_equal(out, np.sort(keys))
        check_cluster_shards(res)

    def test_deterministic_under_seed(self):
        k1, o1, r1 = _sort(seed=9)
        k2, o2, r2 = _sort(seed=9)
        assert np.array_equal(o1, o2)
        assert np.array_equal(r1.splitters, r2.splitters)
        assert r1.shard_sizes == r2.shard_sizes
        assert r1.total_parallel_ios == r2.total_parallel_ios
        assert r1.makespan_ms == r2.makespan_ms


class TestAccounting:
    def test_every_node_pays_io(self):
        _, _, res = _sort()
        for io in res.io_per_node():
            assert io.parallel_ios > 0

    def test_exchange_and_sampling_are_charged(self):
        _, _, res = _sort()
        assert res.sample_read_ios > 0
        assert res.exchange.rounds == 4
        assert res.exchange.blocks_crossed > 0
        assert res.exchange.link_ms > 0
        # Round 0 (self-delivery) never crosses a link.
        assert res.exchange.round_ms[0] == 0.0

    def test_single_node_skips_exchange(self):
        _, out, res = _sort(p=1)
        assert res.exchange.rounds == 0
        assert res.exchange.blocks_crossed == 0
        assert res.splitters.size == 0
        assert np.array_equal(out, np.sort(out))

    def test_makespan_breakdown_covers_all_phases(self):
        _, _, res = _sort()
        assert set(res.makespan_breakdown) == {
            "run_formation", "splitter_select", "exchange", "link",
            "shard_merge",
        }
        assert res.makespan_ms == pytest.approx(
            sum(res.makespan_breakdown.values())
        )
        assert res.makespan_ms > 0

    def test_more_nodes_shrink_the_makespan(self):
        keys = uniform_permutation(40_000, rng=2)
        _, r1 = cluster_sort(keys, ClusterConfig(n_nodes=1), CFG, rng=2)
        _, r4 = cluster_sort(keys, ClusterConfig(n_nodes=4), CFG, rng=2)
        assert r4.makespan_ms < r1.makespan_ms

    def test_link_cost_scales_with_model(self):
        keys = uniform_permutation(10_000, rng=4)
        slow = LinkModel(latency_ms=5.0, ms_per_block=1.0)
        _, fast_res = cluster_sort(keys, ClusterConfig(n_nodes=4), CFG, rng=4)
        _, slow_res = cluster_sort(
            keys, ClusterConfig(n_nodes=4, link=slow), CFG, rng=4
        )
        assert slow_res.exchange.link_ms > fast_res.exchange.link_ms
        # The link model changes time, never data or I/O counts.
        assert slow_res.total_parallel_ios == fast_res.total_parallel_ios


class TestTelemetry:
    def test_cluster_metrics_and_spans_emitted(self):
        tel = Telemetry(algo="cluster")
        _, _, res = _sort(telemetry=tel)
        reg = tel.registry
        assert (
            reg.get(CLUSTER_EXCHANGE_BLOCKS).snapshot()["value"]
            == res.exchange.blocks_crossed
        )
        assert (
            reg.get(CLUSTER_EXCHANGE_ROUNDS).snapshot()["value"]
            == res.exchange.rounds
        )
        assert (
            reg.get(CLUSTER_SAMPLE_READS).snapshot()["value"]
            == res.sample_read_ios
        )
        tel.finish()
        names = [e.get("name") for e in tel.events if e.get("type") == "span"]
        assert SPAN_EXCHANGE in names

    def test_node_loss_metrics(self):
        tel = Telemetry(algo="cluster")
        _, _, res = _sort(telemetry=tel, node_loss=NodeLoss(node=1, after_round=1))
        reg = tel.registry
        assert reg.get(CLUSTER_NODE_LOSSES).snapshot()["value"] == 1
        assert (
            reg.get(CLUSTER_REBUILD_BLOCKS).snapshot()["value"]
            == res.exchange.rebuild_blocks_resent
        )
        assert (
            reg.get(CLUSTER_REBUILD_READ_IOS).snapshot()["value"]
            == res.exchange.rebuild_read_ios
        )


class TestNodeLoss:
    @pytest.mark.parametrize("after_round", [0, 1, 3])
    def test_output_survives_loss(self, after_round):
        keys, ref, _ = _sort(seed=6)
        _, out, res = _sort(
            seed=6, node_loss=NodeLoss(node=2, after_round=after_round)
        )
        assert np.array_equal(out, ref)
        assert res.exchange.node_losses == 1
        check_cluster_shards(res)

    def test_recovery_is_charged(self):
        _, _, clean = _sort(seed=6)
        _, _, res = _sort(seed=6, node_loss=NodeLoss(node=1, after_round=1))
        assert res.exchange.rebuild_blocks_resent > 0
        assert res.exchange.rebuild_read_ios > 0
        # The abandoned disk array's work still counts.
        assert res.nodes[1].lost_systems
        assert res.total_parallel_ios > clean.total_parallel_ios

    def test_loss_with_one_node_rejected(self):
        keys = uniform_permutation(1000, rng=0)
        with pytest.raises(ConfigError):
            cluster_sort(
                keys, ClusterConfig(n_nodes=1), CFG, rng=0,
                node_loss=NodeLoss(node=0),
            )

    def test_loss_of_missing_node_rejected(self):
        keys = uniform_permutation(1000, rng=0)
        with pytest.raises(ConfigError):
            cluster_sort(
                keys, ClusterConfig(n_nodes=2), CFG, rng=0,
                node_loss=NodeLoss(node=7),
            )


class TestValidation:
    def test_empty_input_rejected(self):
        with pytest.raises(ConfigError):
            cluster_sort(
                np.empty(0, dtype=np.int64), ClusterConfig(n_nodes=2), CFG
            )

    def test_fewer_records_than_nodes_rejected(self):
        with pytest.raises(ConfigError):
            cluster_sort(
                np.array([1, 2], dtype=np.int64), ClusterConfig(n_nodes=4), CFG
            )

    def test_bad_cluster_shapes_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_nodes=0)
        with pytest.raises(ConfigError):
            ClusterConfig(n_nodes=2, oversample=0)
        with pytest.raises(ConfigError):
            LinkModel(latency_ms=-1.0)
        with pytest.raises(ConfigError):
            NodeLoss(node=-1)
