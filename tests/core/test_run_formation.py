"""Tests for initial run formation (paper §2.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LayoutStrategy,
    form_runs_load_sort,
    form_runs_replacement_selection,
)
from repro.disks import ParallelDiskSystem, StripedFile
from repro.errors import ConfigError


def make_input(D=4, B=4, n=200, seed=0):
    system = ParallelDiskSystem(D, B)
    keys = np.random.default_rng(seed).permutation(n)
    return system, keys, StripedFile.from_records(system, keys)


class TestLoadSort:
    def test_runs_are_sorted_and_cover_input(self):
        system, keys, infile = make_input()
        runs = form_runs_load_sort(system, infile, run_length=64, rng=1)
        all_keys = np.concatenate([r.read_all(system) for r in runs])
        assert np.array_equal(np.sort(all_keys), np.sort(keys))
        for r in runs:
            data = r.read_all(system)
            assert np.all(data[:-1] <= data[1:])

    def test_run_count(self):
        system, _, infile = make_input(n=200, B=4)
        runs = form_runs_load_sort(system, infile, run_length=64, rng=1)
        # 50 blocks, 16 blocks per run -> ceil(50/16) = 4 runs.
        assert len(runs) == 4

    def test_run_lengths_block_aligned(self):
        system, _, infile = make_input(n=200, B=4)
        runs = form_runs_load_sort(system, infile, run_length=70, rng=1)
        # 70 records rounds down to 17 blocks = 68 records per run.
        assert runs[0].n_records == 68

    def test_io_accounting(self):
        system, _, infile = make_input(D=4, B=4, n=256)
        system.stats.reset()
        form_runs_load_sort(system, infile, run_length=64, rng=1)
        # Each record read once and written once at full parallelism:
        # 64 blocks / 4 disks = 16 reads; same for writes.
        assert system.stats.parallel_reads == 16
        assert system.stats.parallel_writes == 16

    def test_input_freed(self):
        system, _, infile = make_input(n=64)
        runs = form_runs_load_sort(system, infile, run_length=64, rng=1)
        assert system.used_blocks == sum(r.n_blocks for r in runs)

    def test_input_kept_when_requested(self):
        system, _, infile = make_input(n=64, B=4)
        form_runs_load_sort(system, infile, 64, rng=1, free_input=False)
        assert system.used_blocks == 2 * infile.n_blocks

    def test_start_disk_strategy(self):
        system, _, infile = make_input(D=4, B=4, n=256)
        runs = form_runs_load_sort(
            system, infile, 64, strategy=LayoutStrategy.ROUND_ROBIN
        )
        assert [r.start_disk for r in runs] == [0, 1, 2, 3]

    def test_empty_file(self):
        system = ParallelDiskSystem(2, 4)
        infile = StripedFile.from_records(system, np.array([], dtype=np.int64))
        assert form_runs_load_sort(system, infile, 64) == []

    def test_run_length_below_block_rejected(self):
        system, _, infile = make_input(B=8)
        with pytest.raises(ConfigError):
            form_runs_load_sort(system, infile, run_length=4)


class TestReplacementSelection:
    def test_runs_cover_input_sorted(self):
        system, keys, infile = make_input(n=300, seed=3)
        runs = form_runs_replacement_selection(system, infile, memory_records=32, rng=2)
        all_keys = np.concatenate([r.read_all(system) for r in runs])
        assert np.array_equal(np.sort(all_keys), np.sort(keys))
        for r in runs:
            data = r.read_all(system)
            assert np.all(data[:-1] <= data[1:])

    def test_expected_run_length_about_2m(self):
        # Knuth: random input gives mean run length ~ 2M.
        system, _, infile = make_input(n=4000, seed=7)
        M = 50
        runs = form_runs_replacement_selection(system, infile, memory_records=M, rng=2)
        mean_len = np.mean([r.n_records for r in runs])
        assert 1.4 * M <= mean_len <= 2.8 * M

    def test_sorted_input_yields_single_run(self):
        system = ParallelDiskSystem(2, 4)
        keys = np.arange(100)
        infile = StripedFile.from_records(system, keys)
        runs = form_runs_replacement_selection(system, infile, memory_records=8)
        assert len(runs) == 1
        assert np.array_equal(runs[0].read_all(system), keys)

    def test_reverse_sorted_input_yields_runs_of_m(self):
        system = ParallelDiskSystem(2, 4)
        keys = np.arange(100)[::-1].copy()
        infile = StripedFile.from_records(system, keys)
        M = 10
        runs = form_runs_replacement_selection(system, infile, memory_records=M)
        # Worst case: every run has exactly M records.
        assert all(r.n_records == M for r in runs)

    def test_fewer_records_than_memory(self):
        system, keys, infile = make_input(n=20)
        runs = form_runs_replacement_selection(system, infile, memory_records=100, rng=1)
        assert len(runs) == 1
        assert np.array_equal(runs[0].read_all(system), np.sort(keys))

    def test_invalid_memory(self):
        system, _, infile = make_input()
        with pytest.raises(ConfigError):
            form_runs_replacement_selection(system, infile, memory_records=0)

    def test_produces_fewer_runs_than_load_sort(self):
        # The paper's §2.1 point: replacement selection halves the runs.
        sys_a, _, file_a = make_input(n=2000, seed=11)
        runs_ls = form_runs_load_sort(sys_a, file_a, run_length=40, rng=1)
        sys_b, _, file_b = make_input(n=2000, seed=11)
        runs_rs = form_runs_replacement_selection(sys_b, file_b, memory_records=40, rng=1)
        assert len(runs_rs) < len(runs_ls)


class TestReplacementSelectionEngines:
    """engine="block" must be bit-identical to the per-record oracle."""

    def _form(self, keys, M, engine, D=3, B=4, seed=9, payloads=None):
        system = ParallelDiskSystem(D, B)
        infile = StripedFile.from_records(system, keys, payloads=payloads)
        before = system.stats.snapshot()
        runs = form_runs_replacement_selection(
            system, infile, M, rng=seed, engine=engine
        )
        io = system.stats.since(before)
        contents = [
            (
                a.disk,
                system.disks[a.disk].read(a.slot).keys.tobytes(),
                None
                if payloads is None
                else system.disks[a.disk].read(a.slot).payloads.tobytes(),
            )
            for r in runs
            for a in r.addresses
        ]
        return contents, (
            io.parallel_reads,
            io.parallel_writes,
            io.blocks_read,
            io.blocks_written,
        )

    def _assert_engines_agree(self, keys, M, payloads=None, **kw):
        rec = self._form(keys, M, "record", payloads=payloads, **kw)
        blk = self._form(keys, M, "block", payloads=payloads, **kw)
        assert rec == blk

    def test_invalid_engine_rejected(self):
        system, _, infile = make_input()
        with pytest.raises(ConfigError):
            form_runs_replacement_selection(system, infile, 32, engine="gpu")

    def test_random_input(self):
        keys = np.random.default_rng(0).permutation(5_000).astype(np.int64)
        self._assert_engines_agree(keys, 400)

    def test_sorted_input(self):
        self._assert_engines_agree(np.arange(1_000, dtype=np.int64), 100)

    def test_reverse_sorted_input(self):
        self._assert_engines_agree(
            np.arange(1_000, dtype=np.int64)[::-1].copy(), 100
        )

    def test_duplicate_heavy_input(self):
        keys = np.random.default_rng(1).integers(0, 7, size=3_000).astype(np.int64)
        self._assert_engines_agree(keys, 250)

    def test_payloads_follow_their_keys(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 40, size=2_000).astype(np.int64)
        payloads = np.arange(keys.size, dtype=np.int64)
        self._assert_engines_agree(keys, 180, payloads=payloads)

    def test_tiny_memory(self):
        keys = np.random.default_rng(3).permutation(500).astype(np.int64)
        self._assert_engines_agree(keys, 1)
        self._assert_engines_agree(keys, 2)

    def test_memory_larger_than_input(self):
        keys = np.random.default_rng(4).permutation(100).astype(np.int64)
        self._assert_engines_agree(keys, 5_000)

    def test_block_engine_is_default(self):
        system, keys, infile = make_input(n=400)
        runs = form_runs_replacement_selection(system, infile, 64, rng=1)
        got = np.concatenate([r.read_all(system) for r in runs])
        assert np.array_equal(np.sort(got), np.sort(keys))
