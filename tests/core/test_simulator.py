"""Tests for the block-level merge simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LayoutStrategy,
    MergeJob,
    build_event_stream,
    lemma6_read_bound,
    simulate_merge,
)


def partition_runs(rng, R, L):
    """R sorted runs forming a random partition of {0..RL-1} (§9.3)."""
    perm = rng.permutation(R * L)
    return [np.sort(perm[i * L : (i + 1) * L]) for i in range(R)]


class TestEventStream:
    def test_counts(self):
        job = MergeJob.from_key_runs(
            [np.arange(8), np.arange(8, 16)], 2, 2, start_disks=[0, 1]
        )
        keys, kinds, runs, blocks = build_event_stream(job)
        # 8 blocks total: 8 depletions + 6 participations (block 0 excluded).
        assert keys.size == 14
        assert int((kinds == 0).sum()) == 6
        assert int((kinds == 1).sum()) == 8

    def test_sorted_by_key(self):
        rng = np.random.default_rng(0)
        job = MergeJob.from_key_runs(partition_runs(rng, 3, 12), 2, 3, rng=1)
        keys, _, _, _ = build_event_stream(job)
        assert np.all(keys[:-1] <= keys[1:])

    def test_participation_precedes_depletion_on_ties(self):
        # B=1: every block has first == last key.
        job = MergeJob.from_key_runs([np.arange(4)], 1, 2, start_disks=[0])
        keys, kinds, _, blocks = build_event_stream(job)
        for b in range(1, 4):
            idx = np.flatnonzero(blocks == b)
            assert kinds[idx[0]] == 0 and kinds[idx[1]] == 1


class TestSimulation:
    def test_counts_blocks(self, rng):
        job = MergeJob.from_key_runs(partition_runs(rng, 4, 40), 4, 4, rng=2)
        stats = simulate_merge(job, validate=True)
        assert stats.n_blocks == 4 * 10
        assert stats.blocks_read == stats.n_blocks + stats.blocks_flushed

    def test_perfect_case_single_blocks(self):
        # R runs of exactly 1 block each: only step 1 reads happen.
        runs = [np.arange(i * 4, (i + 1) * 4) for i in range(6)]
        job = MergeJob.from_key_runs(runs, 4, 3, start_disks=[0, 1, 2, 0, 1, 2])
        stats = simulate_merge(job, validate=True)
        assert stats.merge_parreads == 0
        assert stats.initial_reads == 2

    def test_respects_lemma6_bound(self, rng):
        for seed in range(5):
            job = MergeJob.from_key_runs(
                partition_runs(np.random.default_rng(seed), 6, 60), 3, 3, rng=seed
            )
            stats = simulate_merge(job, validate=True)
            assert stats.total_reads <= lemma6_read_bound(job).total

    def test_overhead_v_near_one_for_large_k(self, rng):
        # k = R/D = 8: Table 3 says v ~ 1.0.
        job = MergeJob.from_key_runs(partition_runs(rng, 16, 80), 4, 2, rng=5)
        stats = simulate_merge(job)
        assert stats.overhead_v == pytest.approx(1.0, abs=0.15)

    def test_worst_case_layout_is_worse(self, rng):
        runs = partition_runs(rng, 8, 80)
        worst = MergeJob.from_key_runs(
            runs, 4, 8, strategy=LayoutStrategy.WORST_CASE
        )
        rand = MergeJob.from_key_runs(
            runs, 4, 8, strategy=LayoutStrategy.RANDOMIZED, rng=3
        )
        assert simulate_merge(worst).total_reads > simulate_merge(rand).total_reads

    def test_prefetch_mode_completes(self, rng):
        job = MergeJob.from_key_runs(partition_runs(rng, 6, 30), 2, 3, rng=7)
        stats = simulate_merge(job, validate=True, prefetch=True)
        assert stats.blocks_read >= stats.n_blocks

    @given(
        seed=st.integers(0, 10_000),
        r=st.integers(2, 6),
        blocks=st.integers(1, 12),
        b=st.integers(1, 4),
        d=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_instances_complete_with_invariants(self, seed, r, blocks, b, d):
        rng = np.random.default_rng(seed)
        runs = partition_runs(rng, r, blocks * b)
        job = MergeJob.from_key_runs(runs, b, d, rng=rng)
        stats = simulate_merge(job, validate=True)
        assert stats.total_reads >= -(-stats.n_blocks // d)
        assert stats.total_reads <= lemma6_read_bound(job).total
        assert stats.max_mr_occupied <= r + d
