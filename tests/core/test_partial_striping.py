"""Tests for partial striping (§2.2's [VS94] technique)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    PartialStriping,
    SRMConfig,
    merge_order_profile,
    partial_striping_sort,
)
from repro.errors import ConfigError


class TestGeometry:
    def test_logical_dimensions(self):
        ps = PartialStriping(physical_disks=8, physical_block=16, group_size=2)
        assert ps.logical_disks == 4
        assert ps.logical_block == 32

    def test_g1_is_identity(self):
        ps = PartialStriping(8, 16, 1)
        assert ps.logical_disks == 8
        assert ps.logical_block == 16

    def test_gd_is_single_logical_disk(self):
        ps = PartialStriping(8, 16, 8)
        assert ps.logical_disks == 1
        assert ps.logical_block == 128

    def test_group_must_divide(self):
        with pytest.raises(ConfigError):
            PartialStriping(8, 16, 3)

    def test_group_out_of_range(self):
        with pytest.raises(ConfigError):
            PartialStriping(8, 16, 0)
        with pytest.raises(ConfigError):
            PartialStriping(8, 16, 9)

    def test_physical_ios_equal_logical(self):
        ps = PartialStriping(8, 16, 4)
        assert ps.physical_ios(123) == 123


class TestConfigs:
    def test_g1_matches_plain_srm(self):
        M, D, B = 40_000, 8, 16
        ps_cfg = PartialStriping(D, B, 1).srm_config(M)
        plain = SRMConfig.from_memory(M, D, B)
        assert ps_cfg == plain

    def test_merge_order_shrinks_with_g(self):
        M, D, B = 40_000, 8, 16
        profile = merge_order_profile(M, D, B)
        gs = [g for g, _ in profile]
        orders = [r for _, r in profile]
        assert gs == [1, 2, 4, 8]
        assert all(a >= b for a, b in zip(orders, orders[1:]))

    def test_profile_skips_infeasible(self):
        # Tiny memory: large groups cannot support a merge at all.
        profile = merge_order_profile(600, 8, 16)
        assert all(r >= 2 for _, r in profile)
        assert len(profile) < 4


class TestSorting:
    @pytest.mark.parametrize("g", [1, 2, 4, 8])
    def test_sorts_for_every_group_size(self, g, rng):
        keys = rng.permutation(6000)
        out, res, ps = partial_striping_sort(
            keys,
            memory_records=2500,
            n_disks=8,
            block_size=8,
            group_size=g,
            rng=1,
        )
        assert np.array_equal(out, np.sort(keys))
        assert ps.group_size == g

    def test_interpolates_srm_to_dsm(self, rng):
        """Growing g trades merge order down, costing extra passes."""
        keys = rng.permutation(30_000)
        passes = {}
        for g in (1, 8):
            _, res, _ = partial_striping_sort(
                keys, memory_records=1200, n_disks=8, block_size=8,
                group_size=g, rng=2, run_length=1200,
            )
            passes[g] = res.n_merge_passes
        assert passes[1] <= passes[8]
