"""Tests for the full-sort block-level simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LayoutStrategy,
    SRMConfig,
    simulate_mergesort,
    srm_sort,
)
from repro.errors import ConfigError


class TestCrossValidation:
    """The simulator must replay srm_mergesort's I/O exactly."""

    @given(seed=st.integers(0, 10_000), n=st.integers(100, 4000))
    @settings(max_examples=15, deadline=None)
    def test_matches_real_engine(self, seed, n):
        cfg = SRMConfig.from_k(2, 4, 8)
        rng = np.random.default_rng(seed)
        keys = rng.permutation(n)
        _, real = srm_sort(keys, cfg, rng=seed, run_length=128)
        sim = simulate_mergesort(keys, cfg, run_length=128, rng=seed)
        assert sim.parallel_reads == real.io.parallel_reads
        assert sim.parallel_writes == real.io.parallel_writes
        assert sim.runs_formed == real.runs_formed
        assert sim.n_merge_passes == real.n_merge_passes
        for sp, rp in zip(sim.passes, real.passes):
            assert sp.parallel_reads == rp.parallel_reads
            assert sp.parallel_writes == rp.parallel_writes

    def test_matches_with_duplicate_keys(self):
        cfg = SRMConfig.from_k(2, 4, 8)
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 30, size=3000)
        _, real = srm_sort(keys, cfg, rng=5, run_length=128)
        sim = simulate_mergesort(keys, cfg, run_length=128, rng=5)
        assert sim.parallel_reads == real.io.parallel_reads

    def test_matches_under_staggered_layout(self):
        cfg = SRMConfig.from_k(2, 4, 8)
        keys = np.random.default_rng(6).permutation(4096)
        _, real = srm_sort(
            keys, cfg, rng=6, run_length=128, strategy=LayoutStrategy.STAGGERED
        )
        sim = simulate_mergesort(
            keys, cfg, run_length=128, rng=6, strategy=LayoutStrategy.STAGGERED
        )
        assert sim.parallel_reads == real.io.parallel_reads


class TestStandalone:
    def test_integer_input_draws_permutation(self):
        cfg = SRMConfig.from_k(2, 4, 8)
        sim = simulate_mergesort(5000, cfg, run_length=128, rng=1)
        assert sim.n_records == 5000
        assert sim.runs_formed == -(-5000 // 128)

    def test_deterministic_per_seed(self):
        cfg = SRMConfig.from_k(2, 4, 8)
        a = simulate_mergesort(3000, cfg, run_length=128, rng=9)
        b = simulate_mergesort(3000, cfg, run_length=128, rng=9)
        assert a.parallel_reads == b.parallel_reads

    def test_single_run_input(self):
        cfg = SRMConfig.from_k(2, 4, 8)
        sim = simulate_mergesort(100, cfg, run_length=128, rng=1)
        assert sim.n_merge_passes == 0
        assert sim.parallel_reads == sim.formation_reads

    def test_mean_overhead_near_one_average_case(self):
        cfg = SRMConfig.from_k(8, 4, 16)
        sim = simulate_mergesort(200_000, cfg, rng=2)
        assert sim.mean_overhead_v == pytest.approx(1.0, abs=0.1)

    def test_paper_scale_parameters_run(self):
        # A small slice of the §10 "realistic machine" regime.
        cfg = SRMConfig.from_k(10, 10, 100)
        sim = simulate_mergesort(400_000, cfg, rng=3)
        assert sim.n_merge_passes >= 1
        assert sim.parallel_ios > 0

    def test_empty_rejected(self):
        cfg = SRMConfig.from_k(2, 4, 8)
        with pytest.raises(ConfigError):
            simulate_mergesort(np.array([]), cfg)

    def test_tiny_run_length_rejected(self):
        cfg = SRMConfig.from_k(2, 4, 8)
        with pytest.raises(ConfigError):
            simulate_mergesort(100, cfg, run_length=4)
