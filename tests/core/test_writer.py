"""Tests for the streaming run writer (M_W semantics, §5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RunWriter
from repro.disks import NO_KEY, ParallelDiskSystem
from repro.errors import DataError, ScheduleError


def write_run(D=3, B=2, n=20, chunk=5, start=1):
    system = ParallelDiskSystem(D, B)
    w = RunWriter(system, run_id=7, start_disk=start)
    keys = np.arange(n, dtype=np.int64)
    for i in range(0, n, chunk):
        w.append(keys[i : i + chunk])
    return system, w.finalize(), w


class TestBasics:
    def test_roundtrip(self):
        system, run, _ = write_run(n=23)
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in run.addresses]
        )
        assert np.array_equal(out, np.arange(23))

    def test_cyclic_layout(self):
        system, run, _ = write_run(D=3, B=2, n=12, start=2)
        assert [a.disk for a in run.addresses] == [2, 0, 1, 2, 0, 1]

    def test_metadata(self):
        _, run, _ = write_run(D=2, B=4, n=10)
        assert list(run.first_keys) == [0, 4, 8]
        assert list(run.last_keys) == [3, 7, 9]
        assert run.n_records == 10

    def test_empty_run_rejected(self):
        system = ParallelDiskSystem(2, 2)
        w = RunWriter(system, 0, 0)
        with pytest.raises(DataError):
            w.finalize()

    def test_out_of_order_append_rejected(self):
        system = ParallelDiskSystem(2, 2)
        w = RunWriter(system, 0, 0)
        w.append(np.array([5, 6]))
        with pytest.raises(DataError):
            w.append(np.array([3]))

    def test_append_after_finalize_rejected(self):
        system, _, w = write_run()
        with pytest.raises(ScheduleError):
            w.append(np.array([99]))

    def test_double_finalize_rejected(self):
        system, _, w = write_run()
        with pytest.raises(ScheduleError):
            w.finalize()

    def test_invalid_start_disk(self):
        system = ParallelDiskSystem(2, 2)
        with pytest.raises(DataError):
            RunWriter(system, 0, start_disk=5)


class TestForecastFormat:
    def _blocks(self, system, run):
        return [system.disks[a.disk].read(a.slot) for a in run.addresses]

    def test_block0_carries_first_d_keys(self):
        system, run, _ = write_run(D=3, B=2, n=30)
        b0 = self._blocks(system, run)[0]
        assert b0.forecast == (0.0, 2.0, 4.0)

    def test_interior_blocks_carry_i_plus_d(self):
        system, run, _ = write_run(D=3, B=2, n=30)  # 15 blocks
        blocks = self._blocks(system, run)
        for i in range(1, 12):
            assert blocks[i].forecast == (float((i + 3) * 2),)

    def test_tail_blocks_carry_sentinel(self):
        system, run, _ = write_run(D=3, B=2, n=30)
        blocks = self._blocks(system, run)
        for i in range(12, 15):
            assert blocks[i].forecast == (NO_KEY,)

    def test_short_run_all_in_finalize(self):
        system, run, _ = write_run(D=4, B=2, n=6)  # 3 blocks < one stripe
        blocks = self._blocks(system, run)
        assert blocks[0].forecast == (0.0, 2.0, 4.0, NO_KEY)
        assert blocks[1].forecast == (NO_KEY,)

    def test_matches_striped_run_writer(self):
        # RunWriter must produce byte-identical format to
        # StripedRun.from_sorted_keys for the same keys.
        from repro.disks import StripedRun

        keys = np.arange(0, 37, dtype=np.int64)
        sys_a = ParallelDiskSystem(3, 4)
        run_a = StripedRun.from_sorted_keys(sys_a, keys, 0, 1)
        sys_b = ParallelDiskSystem(3, 4)
        w = RunWriter(sys_b, 0, 1)
        w.append(keys)
        run_b = w.finalize()
        blocks_a = [sys_a.disks[a.disk].read(a.slot) for a in run_a.addresses]
        blocks_b = [sys_b.disks[a.disk].read(a.slot) for a in run_b.addresses]
        assert len(blocks_a) == len(blocks_b)
        for x, y in zip(blocks_a, blocks_b):
            assert np.array_equal(x.keys, y.keys)
            assert x.forecast == y.forecast


class TestIOAndBuffering:
    def test_full_write_parallelism(self):
        D, B, n = 4, 2, 64
        system, run, _ = write_run(D=D, B=B, n=n, chunk=3)
        assert system.stats.parallel_writes == n // B // D
        assert system.stats.write_efficiency == 1.0

    def test_buffer_bounded_by_2d(self):
        D, B = 4, 2
        system = ParallelDiskSystem(D, B)
        w = RunWriter(system, 0, 0)
        for i in range(0, 200, 2):  # small appends, as the merge produces
            w.append(np.array([i, i + 1]))
        w.finalize()
        assert w.max_buffered_blocks <= 2 * D  # |M_W| = 2D exactly (§5.1)

    def test_on_write_hook_sees_every_stripe(self):
        D, B, n = 3, 2, 20
        stripes: list[list[int]] = []
        system = ParallelDiskSystem(D, B)
        w = RunWriter(system, 0, 0, on_write=stripes.append)
        w.append(np.arange(n, dtype=np.int64))
        run = w.finalize()
        assert sum(len(s) for s in stripes) == run.n_blocks
        for s in stripes:
            assert len(set(s)) == len(s)  # one block per disk per stripe

    def test_single_record_run(self):
        system = ParallelDiskSystem(3, 4)
        w = RunWriter(system, 0, 0)
        w.append(np.array([42]))
        run = w.finalize()
        assert run.n_records == 1
        assert run.n_blocks == 1
        assert system.stats.parallel_writes == 1


class TestRingBuffer:
    """The preallocated ring must be invisible: same blocks, same format."""

    def _format_oracle(self, D, B, keys, payloads=None):
        """Blocks produced by StripedRun.from_sorted_keys (the format oracle)."""
        from repro.disks import StripedRun

        sys_a = ParallelDiskSystem(D, B)
        run = StripedRun.from_sorted_keys(sys_a, keys, 0, 0, payloads=payloads)
        return [sys_a.disks[a.disk].read(a.slot) for a in run.addresses]

    @pytest.mark.parametrize("chunk", [1, 3, 7, 16, 64, 1000])
    def test_wrap_preserves_contents_and_forecasts(self, chunk):
        # Enough records to wrap the 4·D·B ring several times.
        D, B, n = 3, 4, 4 * 3 * 4 * 5 + 7  # partial final stripe too
        keys = np.arange(n, dtype=np.int64)
        system = ParallelDiskSystem(D, B)
        w = RunWriter(system, 0, 0)
        for i in range(0, n, chunk):
            w.append(keys[i : i + chunk])
        run = w.finalize()
        got = [system.disks[a.disk].read(a.slot) for a in run.addresses]
        want = self._format_oracle(D, B, keys)
        assert len(got) == len(want)
        for x, y in zip(want, got):
            assert np.array_equal(x.keys, y.keys)
            assert x.forecast == y.forecast  # implants survive the wrap

    def test_blocks_do_not_alias_ring_frames(self):
        # Emitted blocks must own their arrays: later appends reuse the
        # ring frames and would otherwise corrupt already-written blocks.
        D, B = 2, 2
        n = 4 * D * B * 3
        system = ParallelDiskSystem(D, B)
        w = RunWriter(system, 0, 0)
        keys = np.arange(n, dtype=np.int64)
        for i in range(0, n, D * B):
            w.append(keys[i : i + D * B])
        run = w.finalize()
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in run.addresses]
        )
        assert np.array_equal(out, keys)

    def test_partial_final_stripe_with_payloads(self):
        D, B = 3, 2
        n = 2 * D * B + 3  # two full stripes + a ragged tail
        keys = np.arange(n, dtype=np.int64)
        payloads = keys * 10 + 1
        system = ParallelDiskSystem(D, B)
        w = RunWriter(system, 0, 0)
        for i in range(0, n, 5):
            w.append(keys[i : i + 5], payloads[i : i + 5])
        run = w.finalize()
        assert w.max_buffered_blocks <= 2 * D
        blocks = [system.disks[a.disk].read(a.slot) for a in run.addresses]
        assert np.array_equal(np.concatenate([b.keys for b in blocks]), keys)
        assert np.array_equal(
            np.concatenate([b.payloads for b in blocks]), payloads
        )
        want = self._format_oracle(D, B, keys, payloads=payloads)
        for x, y in zip(want, blocks):
            assert x.forecast == y.forecast

    def test_high_water_stays_2d_under_large_appends(self):
        # Appends far larger than the M_W window must still drain stripe
        # by stripe, never holding more than 2D blocks at rest.
        D, B = 4, 8
        system = ParallelDiskSystem(D, B)
        w = RunWriter(system, 0, 0)
        w.append(np.arange(50 * D * B, dtype=np.int64))
        w.finalize()
        assert w.max_buffered_blocks <= 2 * D

    def test_payload_mismatch_rejected(self):
        system = ParallelDiskSystem(2, 2)
        w = RunWriter(system, 0, 0)
        with pytest.raises(DataError):
            w.append(np.arange(4), np.arange(3))

    def test_payload_presence_must_be_consistent(self):
        system = ParallelDiskSystem(2, 2)
        w = RunWriter(system, 0, 0)
        w.append(np.arange(4), np.arange(4))
        with pytest.raises(DataError):
            w.append(np.arange(4, 8))
