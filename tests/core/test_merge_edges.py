"""Merge-engine edge geometry: tiny runs, ragged tails, B = 1, D > blocks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MergeJob, SRMConfig, merge_runs, simulate_merge, srm_sort
from repro.disks import ParallelDiskSystem, StripedRun


def build(system, runs_keys, starts):
    return [
        StripedRun.from_sorted_keys(system, k, run_id=i, start_disk=int(starts[i]))
        for i, k in enumerate(runs_keys)
    ]


class TestTinyRuns:
    def test_runs_shorter_than_d_blocks(self):
        # D = 6 but each run has only 2 blocks: forecast tuples carry
        # NO_KEY sentinels and chains exhaust immediately.
        system = ParallelDiskSystem(6, 2)
        runs = build(
            system,
            [np.array([0, 2, 4, 6]), np.array([1, 3, 5, 7])],
            [0, 3],
        )
        res = merge_runs(system, runs, 9, 0, validate=True)
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
        )
        assert np.array_equal(out, np.arange(8))

    def test_single_record_runs(self):
        system = ParallelDiskSystem(3, 4)
        runs = build(system, [np.array([5]), np.array([2]), np.array([9])], [0, 1, 2])
        res = merge_runs(system, runs, 9, 1, validate=True)
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
        )
        assert np.array_equal(out, np.array([2, 5, 9]))
        # Nothing beyond step 1 is ever read.
        assert res.schedule.merge_parreads == 0

    def test_block_size_one_end_to_end(self, rng):
        cfg = SRMConfig(n_disks=3, block_size=1, merge_order=4)
        keys = rng.permutation(500)
        out, res = srm_sort(keys, cfg, rng=1, run_length=16, validate=True)
        assert np.array_equal(out, np.sort(keys))

    def test_many_more_disks_than_blocks(self):
        system = ParallelDiskSystem(16, 2)
        runs = build(system, [np.arange(0, 6, 2), np.arange(1, 7, 2)], [4, 11])
        res = merge_runs(system, runs, 9, 7, validate=True)
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
        )
        assert np.array_equal(out, np.arange(6))


class TestRaggedRuns:
    @given(
        seed=st.integers(0, 10_000),
        sizes=st.lists(st.integers(1, 37), min_size=2, max_size=5),
        d=st.integers(1, 4),
        b=st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_partial_tail_blocks_everywhere(self, seed, sizes, d, b):
        rng = np.random.default_rng(seed)
        total = sum(sizes)
        perm = rng.permutation(total * 3)[:total]
        runs_keys = []
        pos = 0
        for s in sizes:
            runs_keys.append(np.sort(perm[pos : pos + s]))
            pos += s
        system = ParallelDiskSystem(d, b)
        starts = rng.integers(0, d, size=len(sizes))
        runs = build(system, runs_keys, starts)
        res = merge_runs(system, runs, 99, 0, validate=True)
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
        )
        assert np.array_equal(out, np.sort(perm[:total]))
        # Simulator agreement on ragged geometry too.
        job = MergeJob.from_key_runs(runs_keys, b, d, start_disks=starts)
        assert simulate_merge(job).total_reads == res.schedule.total_reads


class TestExtremeKeys:
    def test_int64_extremes(self):
        lo, hi = np.iinfo(np.int64).min, np.iinfo(np.int64).max
        system = ParallelDiskSystem(2, 2)
        runs = build(
            system,
            [np.array([lo, -5, hi - 1]), np.array([lo + 1, 0, hi])],
            [0, 1],
        )
        res = merge_runs(system, runs, 9, 0, validate=True)
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
        )
        assert np.array_equal(out, np.array([lo, lo + 1, -5, 0, hi - 1, hi]))
