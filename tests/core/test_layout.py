"""Tests for run-placement strategies (paper §3, §8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LayoutStrategy, choose_start_disks
from repro.errors import ConfigError


class TestRandomized:
    def test_range(self):
        d = choose_start_disks(1000, 7, LayoutStrategy.RANDOMIZED, rng=0)
        assert d.min() >= 0 and d.max() < 7

    def test_deterministic_with_seed(self):
        a = choose_start_disks(50, 5, LayoutStrategy.RANDOMIZED, rng=42)
        b = choose_start_disks(50, 5, LayoutStrategy.RANDOMIZED, rng=42)
        assert np.array_equal(a, b)

    def test_roughly_uniform(self):
        d = choose_start_disks(50_000, 5, LayoutStrategy.RANDOMIZED, rng=1)
        counts = np.bincount(d, minlength=5)
        assert counts.min() > 9000  # each disk ~10000 +- noise


class TestDeterministicStrategies:
    def test_staggered_matches_paper(self):
        # §8: d_r = 0 for r < R/D, then 1, etc.
        d = choose_start_disks(8, 4, LayoutStrategy.STAGGERED)
        assert list(d) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_staggered_uneven(self):
        d = choose_start_disks(5, 4, LayoutStrategy.STAGGERED)
        # Groups of ceil(5/4) = 2.
        assert list(d) == [0, 0, 1, 1, 2]

    def test_round_robin(self):
        d = choose_start_disks(6, 4, LayoutStrategy.ROUND_ROBIN)
        assert list(d) == [0, 1, 2, 3, 0, 1]

    def test_worst_case_all_zero(self):
        d = choose_start_disks(10, 4, LayoutStrategy.WORST_CASE)
        assert np.all(d == 0)

    def test_fewer_runs_than_disks(self):
        d = choose_start_disks(2, 8, LayoutStrategy.STAGGERED)
        assert list(d) == [0, 1]


class TestValidation:
    def test_zero_runs_ok(self):
        assert choose_start_disks(0, 4).size == 0

    def test_negative_runs(self):
        with pytest.raises(ConfigError):
            choose_start_disks(-1, 4)

    def test_no_disks(self):
        with pytest.raises(ConfigError):
            choose_start_disks(4, 0)
