"""End-to-end SRM mergesort tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LayoutStrategy, SRMConfig, srm_mergesort, srm_sort
from repro.disks import ParallelDiskSystem, StripedFile
from repro.errors import ConfigError


def small_config(D=4, B=8, k=2):
    return SRMConfig.from_k(k, D, B)


class TestCorrectness:
    def test_basic_sort(self, rng):
        cfg = small_config()
        keys = rng.permutation(3000)
        out, res = srm_sort(keys, cfg, rng=1, validate=True)
        assert np.array_equal(out, np.sort(keys))
        assert res.output.n_records == 3000

    def test_already_sorted(self):
        cfg = small_config()
        keys = np.arange(1000)
        out, _ = srm_sort(keys, cfg, rng=1)
        assert np.array_equal(out, keys)

    def test_reverse_sorted(self):
        cfg = small_config()
        keys = np.arange(1000)[::-1].copy()
        out, _ = srm_sort(keys, cfg, rng=1)
        assert np.array_equal(out, np.arange(1000))

    def test_duplicates(self, rng):
        cfg = small_config()
        keys = rng.integers(0, 50, size=2000)
        out, _ = srm_sort(keys, cfg, rng=1)
        assert np.array_equal(out, np.sort(keys))

    def test_tiny_input_single_run(self):
        cfg = small_config()
        keys = np.array([5, 3, 1])
        out, res = srm_sort(keys, cfg, rng=1)
        assert np.array_equal(out, np.array([1, 3, 5]))
        assert res.n_merge_passes == 0

    def test_empty_input(self):
        cfg = small_config()
        out, res = srm_sort(np.array([], dtype=np.int64), cfg)
        assert out.size == 0
        assert res is None

    @given(
        seed=st.integers(0, 100_000),
        n=st.integers(1, 2000),
        d=st.integers(1, 5),
        b=st.integers(1, 6),
        k=st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_sorts_any_input(self, seed, n, d, b, k):
        rng = np.random.default_rng(seed)
        keys = rng.integers(-(2**40), 2**40, size=n)
        cfg = SRMConfig(n_disks=d, block_size=b, merge_order=max(2, k * d))
        out, _ = srm_sort(keys, cfg, rng=rng, validate=True, run_length=max(b, 4 * b))
        assert np.array_equal(out, np.sort(keys))

    def test_replacement_selection_formation(self, rng):
        cfg = small_config()
        keys = rng.permutation(2000)
        out, res = srm_sort(
            keys, cfg, rng=2, formation="replacement_selection", run_length=100
        )
        assert np.array_equal(out, np.sort(keys))

    def test_all_layout_strategies_sort(self, rng):
        keys = rng.permutation(1500)
        for strat in LayoutStrategy:
            out, _ = srm_sort(keys, small_config(), strategy=strat, rng=3)
            assert np.array_equal(out, np.sort(keys))


class TestPassStructure:
    def test_pass_count_matches_log(self, rng):
        # 3000 records, runs of 96 -> 32 runs; R = 8 -> 2 merge passes.
        cfg = small_config(D=4, B=8, k=2)
        keys = rng.permutation(3072)
        _, res = srm_sort(keys, cfg, rng=1, run_length=96)
        assert res.runs_formed == 32
        assert res.n_merge_passes == 2

    def test_single_pass_when_runs_fit(self, rng):
        cfg = small_config(D=4, B=8, k=2)  # R = 8
        keys = rng.permutation(8 * 96)
        _, res = srm_sort(keys, cfg, rng=1, run_length=96)
        assert res.n_merge_passes == 1

    def test_each_pass_reads_and_writes_every_block(self, rng):
        cfg = small_config(D=4, B=8, k=2)
        keys = rng.permutation(3072)
        _, res = srm_sort(keys, cfg, rng=1, run_length=96)
        n_blocks = 3072 // 8
        for p in res.passes:
            assert p.parallel_writes == n_blocks // 4  # perfect parallelism
            assert p.parallel_reads >= n_blocks // 4

    def test_leftover_run_carries_over_without_io(self, rng):
        # 9 runs with R = 8: pass 1 merges 8 and carries 1.
        cfg = small_config(D=4, B=8, k=2)
        keys = rng.permutation(9 * 96)
        _, res = srm_sort(keys, cfg, rng=1, run_length=96)
        assert res.passes[0].n_merges == 1
        assert res.passes[0].n_runs_out == 2
        assert res.n_merge_passes == 2

    def test_write_efficiency_is_perfect(self, rng):
        cfg = small_config()
        keys = rng.permutation(4096)
        _, res = srm_sort(keys, cfg, rng=1, run_length=128)
        assert res.io.write_efficiency == 1.0


class TestValidation:
    def test_geometry_mismatch(self, rng):
        system = ParallelDiskSystem(2, 8)
        infile = StripedFile.from_records(system, rng.permutation(100))
        with pytest.raises(ConfigError):
            srm_mergesort(system, infile, small_config(D=4))

    def test_empty_file_rejected(self):
        system = ParallelDiskSystem(4, 8)
        infile = StripedFile.from_records(system, np.array([], dtype=np.int64))
        with pytest.raises(ConfigError):
            srm_mergesort(system, infile, small_config())

    def test_unknown_formation(self, rng):
        system = ParallelDiskSystem(4, 8)
        infile = StripedFile.from_records(system, rng.permutation(100))
        with pytest.raises(ConfigError):
            srm_mergesort(system, infile, small_config(), formation="quantum")
