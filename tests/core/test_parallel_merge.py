"""Tests for the process-parallel Merge Path data plane.

The contract under test: ``parallel_merge_runs`` is a drop-in for the
serial ``merge_runs`` demand path — same output records, same
ParRead/flush schedule, same I/O counters, same write stripes — at
every worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.merge import merge_runs
from repro.core.parallel_merge import corank_cuts, parallel_merge_runs
from repro.disks import MmapFileBackend, ParallelDiskSystem
from repro.disks.files import StripedRun
from repro.errors import ConfigError, DataError
from repro.faults.plan import FaultPlan


def build_runs(system, R=4, run_len=100, seed=0, dups=False, payloads=False):
    """Write R sorted runs onto *system* and return them."""
    rng = np.random.default_rng(seed)
    runs = []
    for r in range(R):
        if dups:
            keys = np.sort(rng.integers(0, 17, run_len))
        else:
            keys = np.sort(rng.integers(-(2**40), 2**40, run_len))
        pay = None
        if payloads:
            pay = rng.integers(0, 2**30, run_len)
        runs.append(
            StripedRun.from_sorted_keys(
                system,
                keys,
                run_id=r,
                start_disk=r % system.n_disks,
                payloads=pay,
            )
        )
    return runs


def serial_reference(D=4, B=8, **run_kw):
    """Run the serial demand merge on a fresh memory system."""
    sys_ = ParallelDiskSystem(D, B)
    runs = build_runs(sys_, **run_kw)
    res = merge_runs(sys_, runs, output_run_id=99, output_start_disk=0,
                     validate=True)
    return sys_, res


def parallel_case(tmp_path, workers, D=4, B=8, backend=None, **run_kw):
    """Run the parallel plane on an identically prepared system."""
    if backend is None:
        backend = MmapFileBackend(workdir=str(tmp_path / f"w{workers}"))
    sys_ = ParallelDiskSystem(D, B, backend=backend)
    runs = build_runs(sys_, **run_kw)
    res = parallel_merge_runs(sys_, runs, output_run_id=99,
                              output_start_disk=0, workers=workers,
                              validate=True)
    return sys_, res


def assert_equivalent(serial, parallel):
    """Outputs, schedules and I/O counters must match bit-for-bit."""
    s_sys, s_res = serial
    p_sys, p_res = parallel
    assert s_res.n_records == p_res.n_records
    assert s_res.schedule == p_res.schedule
    # IOStats holds numpy arrays; dataclass == is ambiguous, compare repr.
    assert str(s_res.io) == str(p_res.io)
    out_s, out_p = s_res.output, p_res.output
    assert out_s.start_disk == out_p.start_disk
    assert [a.disk for a in out_s.addresses] == [a.disk for a in out_p.addresses]
    assert np.array_equal(out_s.first_keys, out_p.first_keys)
    assert np.array_equal(out_s.last_keys, out_p.last_keys)
    ks, ps = out_s.read_all_records(s_sys)
    kp, pp = out_p.read_all_records(p_sys)
    assert np.array_equal(ks, kp)
    if ps is None:
        assert pp is None
    else:
        assert np.array_equal(ps, pp)


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_random_keys(self, tmp_path, workers):
        kw = dict(R=5, run_len=93, seed=3)
        assert_equivalent(serial_reference(**kw),
                          parallel_case(tmp_path, workers, **kw))

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_duplicate_heavy(self, tmp_path, workers):
        # Tiny key universe: every cut lands inside a tie group, so the
        # (key, run, position) tie-break must be exact.
        kw = dict(R=6, run_len=80, seed=7, dups=True)
        assert_equivalent(serial_reference(**kw),
                          parallel_case(tmp_path, workers, **kw))

    @pytest.mark.parametrize("workers", [1, 2])
    def test_payloads(self, tmp_path, workers):
        kw = dict(R=4, run_len=77, seed=11, dups=True, payloads=True)
        assert_equivalent(serial_reference(**kw),
                          parallel_case(tmp_path, workers, **kw))

    def test_partial_final_blocks(self, tmp_path):
        # run_len % B != 0 and run_len < B both exercised.
        kw = dict(R=3, run_len=13, seed=5)
        assert_equivalent(serial_reference(B=8, **kw),
                          parallel_case(tmp_path, 2, B=8, **kw))

    def test_workers_exceed_records(self, tmp_path):
        # More workers than output blocks: empty ranges must be dropped.
        kw = dict(R=2, run_len=5, seed=9)
        assert_equivalent(serial_reference(B=4, **kw),
                          parallel_case(tmp_path, 4, B=4, **kw))

    def test_inprocess_on_memory_backend(self, tmp_path):
        # workers=1 must work without the mmap backend.
        kw = dict(R=4, run_len=64, seed=13)
        sys_ = ParallelDiskSystem(4, 8)
        runs = build_runs(sys_, **kw)
        res = parallel_merge_runs(sys_, runs, output_run_id=99,
                                  output_start_disk=0, workers=1,
                                  validate=True)
        assert_equivalent(serial_reference(**kw), (sys_, res))


class TestCorankCuts:
    def test_cut_sizes_are_exact(self, tmp_path):
        sys_ = ParallelDiskSystem(4, 8)
        runs = build_runs(sys_, R=4, run_len=100, seed=1, dups=True)
        n = sum(r.n_records for r in runs)
        targets = [n // 4, n // 2, (3 * n) // 4]
        cuts, probes = corank_cuts(sys_, runs, targets)
        for t, row in zip(targets, cuts):
            assert sum(row) == t
            assert all(0 <= c <= r.n_records for c, r in zip(row, runs))
        assert probes >= 0

    def test_cuts_respect_global_order(self, tmp_path):
        # Records below a cut must all precede records above it under
        # the (key, run index) order used by the merge.
        sys_ = ParallelDiskSystem(2, 4)
        runs = build_runs(sys_, R=3, run_len=40, seed=2, dups=True)
        n = sum(r.n_records for r in runs)
        (row,), _ = corank_cuts(sys_, runs, [n // 2])
        below, above = [], []
        for r, run in enumerate(runs):
            keys = run.read_all(sys_)
            below += [(int(k), r) for k in keys[: row[r]]]
            above += [(int(k), r) for k in keys[row[r]:]]
        assert not below or not above or max(below) <= min(above)

    def test_rank_bounds(self):
        sys_ = ParallelDiskSystem(2, 4)
        runs = build_runs(sys_, R=2, run_len=10, seed=0)
        with pytest.raises(DataError):
            corank_cuts(sys_, runs, [21])
        cuts, _ = corank_cuts(sys_, runs, [0, 20])
        assert sum(cuts[0]) == 0
        assert sum(cuts[1]) == 20


class TestGuards:
    def test_pool_requires_mmap_backend(self):
        sys_ = ParallelDiskSystem(2, 4)
        runs = build_runs(sys_, R=2, run_len=10)
        with pytest.raises(ConfigError, match="mmap"):
            parallel_merge_runs(sys_, runs, 9, 0, workers=2)

    def test_rejects_faulty_system(self, tmp_path):
        sys_ = ParallelDiskSystem(
            4, 4, backend=MmapFileBackend(workdir=str(tmp_path))
        )
        runs = build_runs(sys_, R=2, run_len=10)
        sys_.attach_faults(FaultPlan(seed=1, read_fail_p=0.01))
        with pytest.raises(ConfigError, match="fault"):
            parallel_merge_runs(sys_, runs, 9, 0, workers=2)

    def test_rejects_bad_worker_count(self):
        sys_ = ParallelDiskSystem(2, 4)
        runs = build_runs(sys_, R=2, run_len=10)
        with pytest.raises(ConfigError):
            parallel_merge_runs(sys_, runs, 9, 0, workers=0)

    def test_needs_two_runs(self):
        sys_ = ParallelDiskSystem(2, 4)
        runs = build_runs(sys_, R=1, run_len=10)
        with pytest.raises(DataError):
            parallel_merge_runs(sys_, runs, 9, 0, workers=1)

    def test_overlap_plus_workers_rejected(self):
        from repro.core.config import OverlapConfig, SRMConfig
        from repro.core.mergesort import srm_sort

        rng = np.random.default_rng(0)
        keys = rng.integers(0, 10**6, 4000)
        with pytest.raises(ConfigError, match="overlap"):
            srm_sort(
                keys,
                SRMConfig(n_disks=4, block_size=16, merge_order=4),
                overlap=OverlapConfig(),
                merge_workers=2,
                backend="mmap",
            )


class TestEndToEnd:
    def test_srm_sort_parallel_matches_memory(self):
        from repro.core.config import SRMConfig
        from repro.core.mergesort import srm_sort

        rng = np.random.default_rng(21)
        keys = rng.integers(-(2**50), 2**50, 6000)
        cfg = SRMConfig(n_disks=4, block_size=16, merge_order=4)
        ref_keys, ref = srm_sort(keys, cfg, rng=7)
        par_keys, par = srm_sort(keys, cfg, rng=7, backend="mmap",
                                 merge_workers=2)
        assert np.array_equal(ref_keys, par_keys)
        assert str(ref.io) == str(par.io)

    def test_telemetry_spans_emitted(self, tmp_path):
        from repro.telemetry import Telemetry
        from repro.telemetry.schema import SPAN_PMERGE

        tel = Telemetry()
        sys_ = ParallelDiskSystem(
            4, 8, backend=MmapFileBackend(workdir=str(tmp_path))
        )
        runs = build_runs(sys_, R=4, run_len=64, seed=4)
        parallel_merge_runs(sys_, runs, 9, 0, workers=2, telemetry=tel)
        names = [e["name"] for e in tel.events if e.get("type") == "span"]
        assert SPAN_PMERGE in names
