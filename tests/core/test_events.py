"""Tests for the discrete-event overlapped-I/O engine.

The engine's contract has two halves:

* **Observation only** — it never changes *what* the scheduler reads,
  flushes, or the writer emits, so ``mode="none"`` reproduces the
  demand-paced :class:`ScheduleStats` exactly and every mode produces
  byte-identical sorted output.
* **Timing** — on a compute/IO-balanced workload, a read-ahead window
  of depth >= 1 is strictly faster than demand pacing, and adding
  write-behind (``mode="full"``) is at least as fast again.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MergeJob,
    OverlapConfig,
    OverlapEngine,
    SRMConfig,
    merge_runs,
    srm_sort,
)
from repro.disks import DISK_1996, ParallelDiskSystem, StripedRun
from repro.errors import ConfigError
from repro.workloads import random_partition_runs

D, B, R = 4, 8, 4
CONFIG = SRMConfig(n_disks=D, block_size=B, merge_order=R)
#: CPU cost that balances one record's merge work against its share of
#: block service time — the regime where overlap matters most.
BALANCED_US = DISK_1996.op_time_ms(B) * 1000.0 / B


def sort_with(mode, depth=2, n=2048, seed=11, cpu_us=BALANCED_US):
    keys = np.random.default_rng(seed).permutation(n).astype(np.int64)
    overlap = (
        None
        if mode is None
        else OverlapConfig(mode=mode, prefetch_depth=depth, cpu_us_per_record=cpu_us)
    )
    return srm_sort(
        keys,
        CONFIG,
        rng=np.random.default_rng(seed + 1),
        validate=True,
        overlap=overlap,
    )


class TestConfig:
    def test_defaults(self):
        cfg = OverlapConfig()
        assert cfg.mode == "full"
        assert cfg.prefetch_depth == 2

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            OverlapConfig(mode="eager")

    def test_negative_depth_rejected(self):
        with pytest.raises(ConfigError):
            OverlapConfig(prefetch_depth=-1)

    def test_negative_cpu_rejected(self):
        with pytest.raises(ConfigError):
            OverlapConfig(cpu_us_per_record=-0.5)

    def test_engine_validates_too(self):
        with pytest.raises(ConfigError):
            OverlapEngine(DISK_1996, B, D, 1.0, mode="bogus")
        with pytest.raises(ConfigError):
            OverlapEngine(DISK_1996, B, D, 1.0, prefetch_depth=-2)


class TestObservationOnly:
    """The engine must not perturb the schedule it is timing."""

    def test_mode_none_matches_demand_paced_stats_exactly(self):
        out_a, res_a = sort_with(None)
        out_b, res_b = sort_with("none")
        assert np.array_equal(out_a, out_b)
        assert len(res_a.merge_schedules) == len(res_b.merge_schedules)
        for sa, sb in zip(res_a.merge_schedules, res_b.merge_schedules):
            assert sa == sb  # reads, flushes, gaps, overhead — all of it
            assert sa.overhead_v == sb.overhead_v

    @pytest.mark.parametrize("mode,depth", [("prefetch", 1), ("prefetch", 3), ("full", 2)])
    def test_all_modes_sort_byte_identically(self, mode, depth):
        out_ref, _ = sort_with(None)
        out, res = sort_with(mode, depth=depth)
        assert np.array_equal(out, out_ref)
        assert all(r.mode == mode for r in res.overlap_reports)

    def test_merge_level_output_identical(self):
        runs_keys = random_partition_runs(R, 16 * B, rng=5)

        def run_merge(overlap):
            system = ParallelDiskSystem(D, B)
            runs = [
                StripedRun.from_sorted_keys(system, k, run_id=i, start_disk=i % D)
                for i, k in enumerate(runs_keys)
            ]
            res = merge_runs(system, runs, 30, 0, validate=True, overlap=overlap)
            return np.concatenate(
                [system.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
            )

        base = run_merge(None)
        for mode in ("none", "prefetch", "full"):
            got = run_merge(OverlapConfig(mode=mode, cpu_us_per_record=BALANCED_US))
            assert np.array_equal(got, base)


class TestTiming:
    def test_reports_collected_per_merge(self):
        _, res = sort_with("full")
        assert len(res.overlap_reports) == len(res.merge_schedules)
        assert res.simulated_merge_ms == pytest.approx(
            sum(r.makespan_ms for r in res.overlap_reports)
        )

    def test_prefetch_strictly_faster_than_demand_when_balanced(self):
        _, none = sort_with("none")
        _, pre = sort_with("prefetch", depth=1)
        assert pre.simulated_merge_ms < none.simulated_merge_ms

    def test_full_no_slower_than_prefetch(self):
        _, pre = sort_with("prefetch", depth=2)
        _, full = sort_with("full", depth=2)
        assert full.simulated_merge_ms <= pre.simulated_merge_ms + 1e-9

    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_every_window_depth_beats_demand_pacing(self, depth):
        # Monotonicity *in depth* is not guaranteed at small scale (an
        # eager read can queue ahead of a demanded block), but any
        # read-ahead at all must beat stalling on every ParRead.
        base = sort_with("none")[1].simulated_merge_ms
        assert sort_with("prefetch", depth=depth)[1].simulated_merge_ms < base

    def test_mode_none_issues_no_eager_reads(self):
        _, res = sort_with("none")
        for rep in res.overlap_reports:
            assert rep.eager_reads == 0

    def test_eager_reads_replace_demand_reads(self):
        _, none = sort_with("none")
        _, full = sort_with("full", depth=4)
        for a, b, stats in zip(
            none.overlap_reports, full.overlap_reports, full.merge_schedules
        ):
            # Total ParReads are schedule-determined; eager issue only
            # reclassifies them (a prefetch can land on another legal
            # case-2a block, but the operation count is bounded by the
            # same schedule law).
            assert b.demand_reads + b.eager_reads == stats.total_reads
            assert a.demand_reads == stats.total_reads

    def test_report_invariants(self):
        _, res = sort_with("full")
        for rep in res.overlap_reports:
            assert rep.makespan_ms >= rep.cpu_busy_ms - 1e-9
            assert 0.0 <= rep.disk_utilization <= 1.0
            assert 0.0 <= rep.cpu_utilization <= 1.0 + 1e-9
            assert rep.cpu_stall_ms == pytest.approx(
                rep.read_stall_ms + rep.write_stall_ms
            )


class TestDepthHistogram:
    """Regression: the queue-depth histogram at prefetch_depth=0."""

    def _edges(self, depth):
        from repro.telemetry import Telemetry
        from repro.telemetry.schema import H_OVERLAP_QUEUE_DEPTH

        tel = Telemetry(harness="test")
        OverlapEngine(
            DISK_1996, B, D, 1.0, mode="full", prefetch_depth=depth,
            telemetry=tel,
        )
        return tel.registry.get(H_OVERLAP_QUEUE_DEPTH).snapshot()["edges"]

    def test_depth_zero_keeps_demand_parread_resolution(self):
        # A demand ParRead puts up to D blocks in flight even with no
        # eager window, so the histogram needs 0..D edges — it used to
        # collapse to a single bucket at depth 0 and lose the signal.
        assert self._edges(0) == [float(v) for v in range(D + 1)]

    def test_depth_cap_covers_window_plus_demand(self):
        # With read-ahead, capacity is the eager window plus one
        # outstanding demand ParRead of width <= D.
        assert self._edges(2) == [float(v) for v in range(2 * D + D + 1)]


class TestAdaptiveEngine:
    """Unit surface of the latency-adaptive plane on the engine."""

    def _engine(self, latency=None):
        from repro.core import LatencyAwareConfig

        if latency is None:
            latency = LatencyAwareConfig()
        return OverlapEngine(
            DISK_1996, B, D, 1.0, mode="full", prefetch_depth=1,
            latency=latency,
        )

    def test_fixed_engine_has_no_slow_disks(self):
        eng = OverlapEngine(DISK_1996, B, D, 1.0, mode="full")
        assert eng.latency is None
        assert eng.net.ewma is None
        assert eng.slow_disks() == ()
        assert eng.disk_cost(0) == 0.0

    def test_disabled_config_keeps_fixed_path(self):
        from repro.core import LatencyAwareConfig

        eng = self._engine(LatencyAwareConfig(enabled=False))
        assert eng.latency is None
        assert eng.net.ewma is None

    def test_homogeneous_service_classifies_nobody(self):
        eng = self._engine()
        eng.net.submit([0, 1, 2, 3], 0.0)
        assert eng.slow_disks() == ()
        assert all(eng.disk_cost(d) == 0.0 for d in range(D))

    def test_straggler_classified_and_costed(self):
        eng = self._engine()
        base = DISK_1996.op_time_ms(B)
        # Hand-feed the EWMA a 4x straggler on disk 1.
        for d in range(D):
            eng.net.ewma.observe(d, base * (4.0 if d == 1 else 1.0))
        assert eng.slow_disks() == (1,)
        assert eng.disk_cost(1) == pytest.approx(4.0 * base)
        # Fast disks carry no penalty, so the flush bias stays inert
        # for them (Definition 6 order).
        assert eng.disk_cost(0) == 0.0

    def test_single_observed_disk_has_no_peer_group(self):
        eng = self._engine()
        eng.net.ewma.observe(2, 100.0)
        assert eng.slow_disks() == ()
