"""Tests for the data-moving SRM merge engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MergeJob, merge_runs, simulate_merge
from repro.disks import ParallelDiskSystem, StripedRun
from repro.errors import DataError


def build_runs(system, runs_keys, starts):
    return [
        StripedRun.from_sorted_keys(system, k, run_id=i, start_disk=int(starts[i]))
        for i, k in enumerate(runs_keys)
    ]


def partition_runs(rng, R, L):
    perm = rng.permutation(R * L)
    return [np.sort(perm[i * L : (i + 1) * L]) for i in range(R)]


class TestCorrectness:
    def test_two_runs(self):
        system = ParallelDiskSystem(2, 2)
        runs = build_runs(system, [np.array([0, 2, 4, 6]), np.array([1, 3, 5, 7])], [0, 1])
        res = merge_runs(system, runs, 10, 0, validate=True)
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
        )
        assert np.array_equal(out, np.arange(8))

    def test_duplicate_keys(self):
        system = ParallelDiskSystem(2, 2)
        a = np.array([1, 1, 2, 2, 3, 3])
        b = np.array([1, 2, 2, 3, 3, 3])
        runs = build_runs(system, [a, b], [0, 1])
        res = merge_runs(system, runs, 10, 0)
        out = np.concatenate(
            [system.disks[x.disk].read(x.slot).keys for x in res.output.addresses]
        )
        assert np.array_equal(out, np.sort(np.concatenate([a, b])))

    def test_skewed_runs(self):
        # One run entirely smaller than the other.
        system = ParallelDiskSystem(3, 4)
        runs = build_runs(system, [np.arange(40), np.arange(100, 140)], [1, 2])
        res = merge_runs(system, runs, 5, 2, validate=True)
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
        )
        assert np.array_equal(out, np.concatenate([np.arange(40), np.arange(100, 140)]))

    def test_single_run_rejected(self):
        system = ParallelDiskSystem(2, 2)
        runs = build_runs(system, [np.arange(4)], [0])
        with pytest.raises(DataError):
            merge_runs(system, runs, 1, 0)

    @given(
        seed=st.integers(0, 10_000),
        r=st.integers(2, 5),
        blocks=st.integers(1, 6),
        b=st.integers(1, 4),
        d=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_partitions_sort_correctly(self, seed, r, blocks, b, d):
        rng = np.random.default_rng(seed)
        runs_keys = partition_runs(rng, r, blocks * b)
        system = ParallelDiskSystem(d, b)
        starts = rng.integers(0, d, size=r)
        runs = build_runs(system, runs_keys, starts)
        res = merge_runs(system, runs, 100, int(rng.integers(0, d)), validate=True)
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
        )
        assert np.array_equal(out, np.arange(r * blocks * b))


class TestEngineSimulatorEquivalence:
    """The two execution paths must report identical I/O counts."""

    @given(
        seed=st.integers(0, 10_000),
        r=st.integers(2, 6),
        blocks=st.integers(1, 10),
        d=st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_read_counts_match(self, seed, r, blocks, d):
        rng = np.random.default_rng(seed)
        B = 3
        runs_keys = partition_runs(rng, r, blocks * B)
        starts = rng.integers(0, d, size=r)
        job = MergeJob.from_key_runs(runs_keys, B, d, start_disks=starts)
        sim = simulate_merge(job, validate=True)

        system = ParallelDiskSystem(d, B)
        runs = build_runs(system, runs_keys, starts)
        res = merge_runs(system, runs, 100, 0, validate=True)
        assert res.schedule.total_reads == sim.total_reads
        assert res.schedule.initial_reads == sim.initial_reads
        assert res.schedule.blocks_flushed == sim.blocks_flushed
        assert res.schedule.blocks_read == sim.blocks_read
        # And the disk system observed exactly those parallel reads.
        assert res.io.parallel_reads == sim.total_reads


class TestDuplicateFastPath:
    """Equal keys across runs must be consumed block-granularly.

    The merge loop used to fall back to one record per heap cycle when
    the winning run's key tied with the runner-up (``limit``), making
    duplicate-heavy inputs quadratic in the duplicate count.  The fixed
    slow path consumes the whole equal-key prefix at once, so the heap
    cycle count stays proportional to the number of *blocks*, not the
    number of records.
    """

    def _merge_all_equal(self, D=2, B=4, R=4, blocks_per_run=8):
        system = ParallelDiskSystem(D, B)
        n = B * blocks_per_run
        runs = build_runs(
            system,
            [np.zeros(n, dtype=np.int64) for _ in range(R)],
            [i % D for i in range(R)],
        )
        return system, merge_runs(system, runs, 20, 0, validate=True)

    def test_all_equal_keys_sort_correctly(self):
        system, res = self._merge_all_equal()
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
        )
        assert np.array_equal(out, np.zeros(4 * 32, dtype=np.int64))

    def test_heap_cycles_block_granular(self):
        _, res = self._merge_all_equal()
        n_blocks = res.output.n_blocks
        n_records = res.output.n_records
        # One pop can consume at most a block, so n_blocks cycles is the
        # floor; the fix keeps us within a small constant of it.  The
        # old record-at-a-time path needed ~n_records cycles.
        assert res.heap_cycles >= n_blocks
        assert res.heap_cycles <= 2 * n_blocks
        assert res.heap_cycles < n_records // 2

    def test_mixed_duplicates_match_np_sort(self, rng):
        system = ParallelDiskSystem(3, 2)
        # Heavy collisions: keys drawn from a tiny alphabet.
        runs_keys = [
            np.sort(rng.integers(0, 4, size=24)).astype(np.int64) for _ in range(4)
        ]
        runs = build_runs(system, runs_keys, rng.integers(0, 3, size=4))
        res = merge_runs(system, runs, 12, 0, validate=True)
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
        )
        assert np.array_equal(out, np.sort(np.concatenate(runs_keys)))


class TestIOBehaviour:
    def test_perfect_write_parallelism(self, rng):
        D, B, R, L = 4, 2, 8, 16
        system = ParallelDiskSystem(D, B)
        runs_keys = partition_runs(rng, R, L)
        runs = build_runs(system, runs_keys, rng.integers(0, D, size=R))
        before = system.stats.snapshot()
        merge_runs(system, runs, 50, 1)
        delta = system.stats.since(before)
        n_out_blocks = R * L // B
        assert delta.parallel_writes == -(-n_out_blocks // D)
        assert delta.write_efficiency == 1.0

    def test_inputs_freed_after_consumption(self, rng):
        system = ParallelDiskSystem(2, 2)
        runs_keys = partition_runs(rng, 2, 8)
        runs = build_runs(system, runs_keys, [0, 1])
        res = merge_runs(system, runs, 9, 0)
        # Only the output run's blocks remain on disk.
        assert system.used_blocks == res.output.n_blocks

    def test_inputs_kept_when_requested(self, rng):
        system = ParallelDiskSystem(2, 2)
        runs_keys = partition_runs(rng, 2, 8)
        runs = build_runs(system, runs_keys, [0, 1])
        res = merge_runs(system, runs, 9, 0, free_inputs=False)
        assert system.used_blocks == res.output.n_blocks + sum(r.n_blocks for r in runs)

    def test_forecast_validation_runs(self, rng):
        # validate=True checks every implanted key against the §4 format.
        system = ParallelDiskSystem(3, 2)
        runs_keys = partition_runs(rng, 3, 12)
        runs = build_runs(system, runs_keys, [0, 1, 2])
        merge_runs(system, runs, 9, 0, validate=True)  # should not raise

    def test_output_forecast_format_valid_for_next_merge(self, rng):
        # Merge twice: the first output's implants feed the second merge.
        system = ParallelDiskSystem(2, 2)
        ra = build_runs(system, partition_runs(rng, 2, 8), [0, 1])
        m1 = merge_runs(system, ra, 10, 0, validate=True)
        extra = StripedRun.from_sorted_keys(
            system, np.arange(100, 120), run_id=11, start_disk=1
        )
        m2 = merge_runs(system, [m1.output, extra], 12, 1, validate=True)
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in m2.output.addresses]
        )
        assert np.array_equal(out, np.sort(np.concatenate([np.arange(16), np.arange(100, 120)])))

    def test_output_buffer_within_mw_under_validation(self, rng):
        # The §5.1 partition gives the writer exactly M_W = 2D blocks;
        # validate=True must accept every well-formed merge under that
        # exact bound (the check used to allow 2D + 1).
        D, B = 4, 2
        system = ParallelDiskSystem(D, B)
        runs_keys = partition_runs(rng, 6, 16)
        runs = build_runs(system, runs_keys, rng.integers(0, D, size=6))
        merge_runs(system, runs, 20, 0, validate=True)  # should not raise

    def test_prefetch_mode_sorts_correctly(self, rng):
        system = ParallelDiskSystem(3, 2)
        runs_keys = partition_runs(rng, 4, 12)
        runs = build_runs(system, runs_keys, rng.integers(0, 3, size=4))
        res = merge_runs(system, runs, 9, 0, validate=True, prefetch=True)
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
        )
        assert np.array_equal(out, np.arange(48))
