"""Tests for the SRM I/O scheduler (paper §5.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MergeJob, MergeScheduler
from repro.errors import ScheduleError


def make_job(runs, B=2, D=3, starts=None):
    return MergeJob.from_key_runs(
        runs, B, D, start_disks=starts if starts is not None else [0] * len(runs)
    )


def interleaved_runs(R, n_blocks, B):
    """R runs whose records interleave perfectly (maximal switch rate)."""
    N = R * n_blocks * B
    return [np.arange(i, N, R) for i in range(R)]


class TestInitialLoad:
    def test_i0_is_max_start_disk_occupancy(self):
        runs = interleaved_runs(5, 2, 2)
        job = make_job(runs, D=4, starts=[0, 0, 0, 1, 2])
        sched = MergeScheduler(job)
        assert sched.initial_load() == 3  # three runs start on disk 0

    def test_initial_blocks_resident(self):
        job = make_job(interleaved_runs(3, 2, 2), D=3, starts=[0, 1, 2])
        sched = MergeScheduler(job)
        sched.initial_load()
        for r in range(3):
            assert sched.is_resident(r, 0)

    def test_double_load_rejected(self):
        job = make_job(interleaved_runs(2, 2, 2), D=2, starts=[0, 1])
        sched = MergeScheduler(job)
        sched.initial_load()
        with pytest.raises(ScheduleError):
            sched.initial_load()

    def test_read_callback_sees_stripes(self):
        seen = []
        job = make_job(interleaved_runs(4, 2, 2), D=2, starts=[0, 0, 1, 1])
        sched = MergeScheduler(job, on_read=seen.append)
        sched.initial_load()
        assert len(seen) == 2  # 4 runs over 2 disks, 2 per disk
        for stripe in seen:
            disks = [d for _, _, d in stripe]
            assert len(set(disks)) == len(disks)  # one block per disk


class TestEnsureResident:
    def test_requires_initial_load(self):
        job = make_job(interleaved_runs(2, 2, 2), D=2, starts=[0, 1])
        with pytest.raises(ScheduleError):
            MergeScheduler(job).ensure_resident(0, 1)

    def test_no_read_if_resident(self):
        job = make_job(interleaved_runs(2, 2, 2), D=2, starts=[0, 1])
        sched = MergeScheduler(job)
        sched.initial_load()
        assert sched.ensure_resident(0, 0) == 0

    def test_single_read_fetches_demanded_block(self):
        job = make_job(interleaved_runs(2, 3, 2), D=2, starts=[0, 1])
        sched = MergeScheduler(job, validate=True)
        sched.initial_load()
        # Next to participate: run 0 block 1 (smallest on-disk key).
        assert sched.ensure_resident(0, 1) == 1
        assert sched.is_resident(0, 1)

    def test_parread_fetches_one_per_disk(self):
        job = make_job(interleaved_runs(2, 4, 2), D=2, starts=[0, 1])
        reads = []
        sched = MergeScheduler(job, on_read=reads.append)
        sched.initial_load()
        sched.ensure_resident(0, 1)
        merge_reads = reads[-1]
        assert len(merge_reads) == 2  # one block from each of 2 disks

    def test_unknown_block_rejected(self):
        job = make_job(interleaved_runs(2, 2, 2), D=2, starts=[0, 1])
        sched = MergeScheduler(job)
        sched.initial_load()
        with pytest.raises(ScheduleError):
            sched.ensure_resident(0, 99)

    def test_wedged_forecast_fails_fast(self):
        # A demand fetch must land in exactly one ParRead (the needed
        # block heads its disk's queue).  If the forecast is wedged and
        # the read does not satisfy it, looping cannot help — the guard
        # raises instead of issuing up to D+1 reads.
        job = make_job(interleaved_runs(2, 3, 2), D=2, starts=[0, 1])
        sched = MergeScheduler(job)
        sched.initial_load()
        sched._parread = lambda: None  # simulate a read that fetches nothing
        with pytest.raises(ScheduleError, match="wedged forecast"):
            sched.ensure_resident(0, 1)


class TestFlushing:
    def _run_tight(self, R=4, D=4, n_blocks=30):
        """Drive a merge where memory pressure forces flushes."""
        runs = interleaved_runs(R, n_blocks, 2)
        job = make_job(runs, B=2, D=D, starts=[0] * R)  # worst-case layout
        from repro.core import simulate_merge

        return simulate_merge(job, validate=True)

    def test_flushes_occur_under_pressure(self):
        stats = self._run_tight()
        assert stats.blocks_flushed > 0

    def test_mr_never_exceeds_r_plus_d(self):
        stats = self._run_tight()
        assert stats.max_mr_occupied <= 4 + 4

    def test_flushed_blocks_reread(self):
        stats = self._run_tight()
        # Every flushed block is read again: reads cover blocks + reflushes.
        assert stats.blocks_read == stats.n_blocks + stats.blocks_flushed


class TestAdaptiveFlush:
    """Cost-biased victim selection (the latency-adaptive flush hook)."""

    def _pressured(self, flush_cost=None, R=4, D=4, n_blocks=30):
        """A scheduler mid-merge with a populated F_t."""
        runs = interleaved_runs(R, n_blocks, 2)
        job = make_job(runs, B=2, D=D, starts=[0] * R)
        sched = MergeScheduler(job, validate=True, flush_cost=flush_cost)
        sched.initial_load()
        while sched.maybe_prefetch():  # fill M_R with eager case-2a reads
            pass
        assert len(sched._f) >= 2
        return sched

    def _drive(self, flush_cost, R=4, D=4, n_blocks=30):
        """Run a full simulated merge through a flush_cost scheduler."""
        from repro.core.simulator import _PARTICIPATE, build_event_stream

        runs = interleaved_runs(R, n_blocks, 2)
        job = make_job(runs, B=2, D=D, starts=[0] * R)
        sched = MergeScheduler(job, validate=True, flush_cost=flush_cost)
        sched.initial_load()
        _, kinds, ev_runs, blocks = build_event_stream(job)
        for kind, r, b in zip(kinds.tolist(), ev_runs.tolist(), blocks.tolist()):
            if kind == _PARTICIPATE:
                sched.ensure_resident(r, b)
            else:
                sched.on_leading_depleted(r)
        assert sched.finished()
        return sched.stats(), sched.flush_redirects

    def test_uniform_cost_matches_definition6(self):
        # With no disk classified slow every cost is 0.0 and the biased
        # greedy must reduce exactly to the highest-key eviction.
        fixed, uniform = self._pressured(), self._pressured(
            flush_cost=lambda d: 0.0
        )
        ev_fixed, ev_uniform = [], []
        fixed.on_flush = ev_fixed.append
        uniform.on_flush = ev_uniform.append
        fixed._flush(2)
        uniform._flush(2)
        assert ev_fixed == ev_uniform
        assert uniform.flush_redirects == 0

    def test_uniform_cost_full_merge_identical_stats(self):
        base, base_redirects = self._drive(None)
        uni, uni_redirects = self._drive(lambda d: 0.0)
        assert uni == base
        assert base_redirects == uni_redirects == 0

    def test_biased_merge_completes_under_invariants(self):
        # An aggressive bias (disk 0 very expensive) may redirect
        # victims, but every schedule law still holds: validate mode is
        # on throughout, the one-ParRead demand rule is enforced by the
        # wedged-forecast guard, and flushed blocks are all re-read.
        stats, _ = self._drive(lambda d: 100.0 if d == 0 else 0.0)
        assert stats.blocks_read == stats.n_blocks + stats.blocks_flushed
        assert stats.max_mr_occupied <= 4 + 4

    def test_redirect_counter_tracks_deviation(self):
        sched = self._pressured(flush_cost=lambda d: 0.0)
        default_choice = set(sched._f[-2:])
        sched._flush(2)
        # Uniform costs: no deviation recorded.
        assert sched.flush_redirects == 0
        assert default_choice.isdisjoint(sched._f)
    def test_promotes_resident_successor(self):
        job = make_job(interleaved_runs(2, 3, 2), D=2, starts=[0, 1])
        sched = MergeScheduler(job, validate=True)
        sched.initial_load()
        sched.ensure_resident(0, 1)  # also prefetches run 1 block 1
        assert sched.is_resident(1, 1)
        sched.on_leading_depleted(1)
        assert sched.leading[1] == 1
        # Block stays resident, now as a leading block.
        assert sched.is_resident(1, 1)

    def test_depleting_nonresident_rejected(self):
        job = make_job(interleaved_runs(2, 3, 2), D=2, starts=[0, 1])
        sched = MergeScheduler(job, validate=True)
        sched.initial_load()
        sched.on_leading_depleted(0)
        with pytest.raises(ScheduleError):
            sched.on_leading_depleted(0)  # block 1 is not resident yet

    def test_run_exhaustion(self):
        job = make_job([np.arange(2), np.arange(2, 6)], B=2, D=2, starts=[0, 1])
        sched = MergeScheduler(job)
        sched.initial_load()
        sched.on_leading_depleted(0)
        assert sched.run_exhausted(0)
        assert not sched.finished()


class TestStatsSnapshot:
    """``stats()`` must be a pure snapshot — callable any number of
    times mid-run without perturbing the depletion-gap accounting."""

    def _partial_merge(self):
        job = make_job(interleaved_runs(2, 6, 2), D=2, starts=[0, 1])
        sched = MergeScheduler(job, validate=True)
        sched.initial_load()
        # Deplete both leading blocks, forcing at least one demand read,
        # then deplete again so a *partial* gap is in progress.
        sched.ensure_resident(0, 1)
        sched.on_leading_depleted(0)
        sched.ensure_resident(1, 1)
        sched.on_leading_depleted(1)
        return sched

    def test_mid_run_stats_idempotent(self):
        sched = self._partial_merge()
        first = sched.stats()
        second = sched.stats()
        assert first == second

    def test_partial_gap_excluded_mid_run(self):
        sched = self._partial_merge()
        st = sched.stats()
        assert not sched.finished()
        # One closed gap per merge ParRead; the in-progress gap since the
        # last read is *not* reported (it is still growing).
        assert len(st.depletion_gaps) == st.merge_parreads

    def test_final_stats_include_trailing_gap(self):
        from repro.core import simulate_merge

        job = make_job(interleaved_runs(3, 5, 2), D=3, starts=[0, 1, 2])
        stats = simulate_merge(job)
        assert len(stats.depletion_gaps) == stats.merge_parreads + 1
        assert sum(stats.depletion_gaps) == stats.n_blocks

    def test_final_stats_idempotent(self):
        job = make_job(interleaved_runs(2, 4, 2), D=2, starts=[0, 1])
        sched = MergeScheduler(job)
        sched.initial_load()
        while not sched.finished():  # deplete runs round-robin
            r = min(
                (run for run in range(2) if not sched.run_exhausted(run)),
                key=lambda run: sched.leading[run],
            )
            nxt = sched.leading[r] + 1
            if nxt < 4:
                sched.ensure_resident(r, nxt)
            sched.on_leading_depleted(r)
        first = sched.stats()
        second = sched.stats()
        assert first == second
        assert len(first.depletion_gaps) == first.merge_parreads + 1


class TestPrefetch:
    def test_prefetch_respects_case_2a(self):
        job = make_job(interleaved_runs(2, 10, 2), D=2, starts=[0, 1])
        sched = MergeScheduler(job, validate=True)
        sched.initial_load()
        issued = 0
        while sched.maybe_prefetch():
            issued += 1
        # M_R capacity is R + D = 4; case 2a stops at occupancy > R = 2.
        assert sched.pool.mr_occupied >= 2
        assert sched.pool.mr_occupied <= 4
        assert issued >= 1

    def test_prefetch_stops_when_disk_empty(self):
        job = make_job([np.arange(2), np.arange(2, 4)], B=2, D=2, starts=[0, 1])
        sched = MergeScheduler(job)
        sched.initial_load()
        assert sched.maybe_prefetch() is False  # everything already resident
