"""Stress and property tests across run shapes, duplicates, and models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LayoutStrategy,
    MergeJob,
    SRMConfig,
    merge_runs,
    simulate_merge,
    srm_sort,
)
from repro.disks import IOTrace, ParallelDiskSystem, StripedRun
from repro.workloads import (
    duplicate_heavy,
    interleaved_runs,
    sequential_runs,
)


def build_runs(system, runs_keys, starts):
    return [
        StripedRun.from_sorted_keys(system, k, run_id=i, start_disk=int(starts[i]))
        for i, k in enumerate(runs_keys)
    ]


class TestShapedWorkloads:
    """Engine/simulator equivalence beyond uniform partitions."""

    @pytest.mark.parametrize("shape", ["interleaved", "sequential", "skewed"])
    @pytest.mark.parametrize("d", [1, 3, 5])
    def test_equivalence_on_structured_runs(self, shape, d):
        B = 4
        if shape == "interleaved":
            runs_keys = interleaved_runs(5, 10 * B)
        elif shape == "sequential":
            runs_keys = sequential_runs(5, 10 * B)
        else:  # runs of wildly different lengths
            runs_keys = [
                np.arange(0, 200, 5),       # long, spread out
                np.arange(1, 9, 5),         # 2 records
                np.arange(2, 120, 5),
                np.arange(3, 40, 5),
                np.arange(4, 300, 5),
            ]
        starts = np.arange(5) % d
        job = MergeJob.from_key_runs(runs_keys, B, d, start_disks=starts)
        sim = simulate_merge(job, validate=True)

        system = ParallelDiskSystem(d, B)
        runs = build_runs(system, runs_keys, starts)
        res = merge_runs(system, runs, 99, 0, validate=True)
        assert res.schedule.total_reads == sim.total_reads
        assert res.schedule.blocks_flushed == sim.blocks_flushed
        out = np.concatenate(
            [system.disks[a.disk].read(a.slot).keys for a in res.output.addresses]
        )
        assert np.array_equal(out, np.sort(np.concatenate(runs_keys)))

    @given(
        seed=st.integers(0, 10_000),
        lengths=st.lists(st.integers(1, 60), min_size=2, max_size=6),
        d=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_equivalence_on_random_length_runs(self, seed, lengths, d):
        rng = np.random.default_rng(seed)
        total = sum(lengths)
        perm = rng.permutation(total * 2)[:total]  # distinct keys
        runs_keys = []
        pos = 0
        for l in lengths:
            runs_keys.append(np.sort(perm[pos : pos + l]))
            pos += l
        starts = rng.integers(0, d, size=len(lengths))
        B = 3
        job = MergeJob.from_key_runs(runs_keys, B, d, start_disks=starts)
        sim = simulate_merge(job, validate=True)
        system = ParallelDiskSystem(d, B)
        runs = build_runs(system, runs_keys, starts)
        res = merge_runs(system, runs, 99, 0, validate=True)
        assert res.schedule.total_reads == sim.total_reads


class TestDuplicates:
    @pytest.mark.parametrize("n_distinct", [1, 2, 7])
    def test_extreme_duplicates_sort(self, n_distinct):
        keys = duplicate_heavy(3000, n_distinct, rng=1)
        cfg = SRMConfig.from_k(2, 4, 8)
        out, _ = srm_sort(keys, cfg, rng=2, run_length=64)
        assert np.array_equal(out, np.sort(keys))

    def test_all_equal_keys(self):
        keys = np.zeros(1000, dtype=np.int64)
        cfg = SRMConfig.from_k(2, 3, 4)
        out, res = srm_sort(keys, cfg, rng=1, run_length=48)
        assert np.array_equal(out, keys)
        assert res.io.write_efficiency > 0.9

    @given(seed=st.integers(0, 5000), n_distinct=st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_property_duplicates(self, seed, n_distinct):
        keys = duplicate_heavy(800, n_distinct, rng=seed)
        cfg = SRMConfig.from_k(2, 2, 4)
        out, _ = srm_sort(keys, cfg, rng=seed, run_length=32)
        assert np.array_equal(out, np.sort(keys))


class TestModelInvariance:
    def test_channel_width_does_not_change_schedule(self, rng):
        """The channel constraint rescales time, never the schedule."""
        from repro.core import srm_mergesort
        from repro.disks import StripedFile

        cfg = SRMConfig.from_k(2, 4, 8)
        keys = rng.permutation(4096)
        ios = {}
        for width in (None, 1, 2):
            system = ParallelDiskSystem(4, 8, channel_width=width)
            infile = StripedFile.from_records(system, keys)
            res = srm_mergesort(system, infile, cfg, rng=5, run_length=128)
            ios[width] = res.io.parallel_ios
        assert len(set(ios.values())) == 1

    def test_trace_consistent_with_counters(self, rng):
        from repro.core import srm_mergesort
        from repro.disks import StripedFile

        cfg = SRMConfig.from_k(2, 4, 8)
        system = ParallelDiskSystem(4, 8)
        system.trace = IOTrace()
        keys = rng.permutation(4096)
        infile = StripedFile.from_records(system, keys)
        res = srm_mergesort(system, infile, cfg, rng=5, run_length=128)
        reads = [ev for ev in system.trace.events if ev.kind == "read"]
        writes = [ev for ev in system.trace.events if ev.kind == "write"]
        assert len(reads) == res.io.parallel_reads
        assert len(writes) == res.io.parallel_writes
        assert sum(ev.width for ev in reads) == res.io.blocks_read
        assert sum(ev.width for ev in writes) == res.io.blocks_written

    def test_prefetch_equals_demand_on_sorted_output(self, rng):
        cfg = SRMConfig.from_k(2, 4, 8)
        keys = rng.permutation(4096)
        out_a, res_a = srm_sort(keys, cfg, rng=7, run_length=128)
        out_b, _ = srm_sort(keys, cfg, rng=7, run_length=128)
        assert np.array_equal(out_a, out_b)

    def test_single_disk_degenerate(self, rng):
        """D = 1: SRM still works; every parallel I/O moves one block."""
        cfg = SRMConfig(n_disks=1, block_size=8, merge_order=4)
        keys = rng.permutation(2000)
        out, res = srm_sort(keys, cfg, rng=1, run_length=64, validate=True)
        assert np.array_equal(out, np.sort(keys))
        assert res.io.blocks_read == res.io.parallel_reads
