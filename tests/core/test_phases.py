"""Tests for §6 phase accounting and the Lemma 6 read bound."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MergeJob,
    initial_load_reads,
    lemma6_read_bound,
    participation_order,
    phase_chain_lengths,
    phase_occupancies,
    simulate_merge,
)
from repro.occupancy import dependent_max_occupancy_samples


def partition_runs(rng, R, L):
    perm = rng.permutation(R * L)
    return [np.sort(perm[i * L : (i + 1) * L]) for i in range(R)]


class TestInitialLoadReads:
    def test_counts_start_disk_collisions(self):
        job = MergeJob.from_key_runs(
            [np.arange(i * 4, (i + 1) * 4) for i in range(5)],
            2,
            4,
            start_disks=[0, 0, 0, 1, 2],
        )
        assert initial_load_reads(job) == 3

    def test_matches_scheduler(self, rng):
        job = MergeJob.from_key_runs(partition_runs(rng, 8, 24), 3, 4, rng=1)
        stats = simulate_merge(job)
        assert stats.initial_reads == initial_load_reads(job)


class TestParticipationOrder:
    def test_excludes_initial_blocks(self):
        job = MergeJob.from_key_runs(
            [np.arange(8), np.arange(8, 16)], 2, 2, start_disks=[0, 1]
        )
        order = participation_order(job)
        assert (0, 0) not in order and (1, 0) not in order
        assert len(order) == 6

    def test_sorted_by_first_key(self):
        rng = np.random.default_rng(0)
        job = MergeJob.from_key_runs(partition_runs(rng, 3, 12), 2, 3, rng=2)
        order = participation_order(job)
        keys = [int(job.first_keys[r][b]) for r, b in order]
        assert keys == sorted(keys)


class TestPhaseOccupancies:
    def test_phase_sizes(self):
        rng = np.random.default_rng(1)
        R, L, B = 4, 20, 2
        job = MergeJob.from_key_runs(partition_runs(rng, R, L), B, 3, rng=3)
        occ = phase_occupancies(job)
        n_non_initial = R * (L // B) - R
        assert occ.size == -(-n_non_initial // R)

    def test_bounds_per_phase(self):
        rng = np.random.default_rng(2)
        job = MergeJob.from_key_runs(partition_runs(rng, 5, 20), 2, 4, rng=4)
        occ = phase_occupancies(job)
        # Each phase has <= R blocks so its max occupancy is in [ceil(R/D), R].
        assert np.all(occ >= 1)
        assert np.all(occ <= 5)

    def test_worst_case_layout_concentrates(self):
        # All runs on disk 0, lockstep-interleaved records: every phase's
        # blocks land on a single disk -> L'_i = R.
        R, B, D = 4, 2, 4
        N = R * B * 10
        runs = [np.arange(i, N, R) for i in range(R)]
        job = MergeJob.from_key_runs(runs, B, D, start_disks=[0] * R)
        occ = phase_occupancies(job)
        assert np.all(occ == R)


class TestChainLengths:
    def test_chains_sum_to_phase_size(self):
        rng = np.random.default_rng(3)
        job = MergeJob.from_key_runs(partition_runs(rng, 6, 18), 3, 3, rng=5)
        for chains, occ in zip(phase_chain_lengths(job), phase_occupancies(job)):
            assert chains.sum() <= 6  # phase holds at most R blocks
            # Occupancy of the phase can be resampled from its chains.
            samples = dependent_max_occupancy_samples(chains, 3, n_trials=50, rng=1)
            assert samples.min() >= -(-int(chains.sum()) // 3)

    def test_lockstep_runs_make_unit_chains(self):
        R, B = 4, 2
        N = R * B * 6
        runs = [np.arange(i, N, R) for i in range(R)]
        job = MergeJob.from_key_runs(runs, B, 4, start_disks=[0, 1, 2, 3])
        for chains in phase_chain_lengths(job):
            assert np.all(chains == 1)

    def test_sequential_runs_make_long_chains(self):
        # Runs with disjoint, consecutive ranges participate one run at a
        # time, so phases contain at most one chain per run and the very
        # first phase is a single chain of length R.
        R, B, L = 3, 2, 12
        runs = [np.arange(i * L, (i + 1) * L) for i in range(R)]
        job = MergeJob.from_key_runs(runs, B, 3, start_disks=[0, 1, 2])
        chains = phase_chain_lengths(job)
        assert list(chains[0]) == [R]
        # Each phase mixes at most two adjacent runs.
        assert all(c.size <= 2 for c in chains)


class TestLemma6Bound:
    @given(
        seed=st.integers(0, 10_000),
        r=st.integers(2, 7),
        blocks=st.integers(2, 10),
        d=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_bound_holds_for_random_instances(self, seed, r, blocks, d):
        rng = np.random.default_rng(seed)
        job = MergeJob.from_key_runs(partition_runs(rng, r, blocks * 2), 2, d, rng=rng)
        stats = simulate_merge(job, validate=True)
        bound = lemma6_read_bound(job)
        assert stats.total_reads <= bound.total

    def test_bound_holds_for_adversarial_layout(self):
        R, B, D = 5, 2, 5
        N = R * B * 30
        runs = [np.arange(i, N, R) for i in range(R)]
        job = MergeJob.from_key_runs(runs, B, D, start_disks=[0] * R)
        stats = simulate_merge(job, validate=True)
        assert stats.total_reads <= lemma6_read_bound(job).total

    def test_components(self):
        rng = np.random.default_rng(5)
        job = MergeJob.from_key_runs(partition_runs(rng, 4, 16), 2, 3, rng=6)
        bound = lemma6_read_bound(job)
        assert bound.total == bound.initial_reads + int(bound.phase_levels.sum())
        assert bound.n_phases == bound.phase_levels.size
