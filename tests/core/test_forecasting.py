"""Tests for the forecasting data structure (paper §4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import INF, ForecastStructure, MergeJob
from repro.errors import ScheduleError


def make_job(runs, B=2, D=3, starts=None):
    return MergeJob.from_key_runs(
        runs, B, D, start_disks=starts or [0] * len(runs)
    )


class TestChainGeometry:
    def test_chain_head_blocks_initial(self):
        # Run of 7 blocks starting on disk 1, D=3: chains are
        # disk1: 0,3,6; disk2: 1,4; disk0: 2,5.
        job = make_job([np.arange(14)], B=2, D=3, starts=[1])
        fds = ForecastStructure(job)
        assert fds.chain_head_block(0, 1) == 0
        assert fds.chain_head_block(0, 2) == 1
        assert fds.chain_head_block(0, 0) == 2

    def test_chain_head_exhausted(self):
        job = make_job([np.arange(4)], B=2, D=3, starts=[0])  # 2 blocks
        fds = ForecastStructure(job)
        assert fds.chain_head_block(0, 2) is None

    def test_chain_position_roundtrip(self):
        job = make_job([np.arange(20)], B=2, D=3, starts=[2])
        fds = ForecastStructure(job)
        for b in range(10):
            disk, pos = fds.chain_position(0, b)
            assert fds.job.disk_of(0, b) == disk
            # position-th chain element on that disk is block b.
            start = (disk - 2) % 3
            assert start + pos * 3 == b


class TestHMaintenance:
    def test_initial_h_is_chain_head_keys(self):
        job = make_job([np.arange(12)], B=2, D=3, starts=[0])  # 6 blocks
        fds = ForecastStructure(job)
        # chains: disk0 -> block0 (key 0); disk1 -> block1 (key 2);
        # disk2 -> block2 (key 4).
        assert fds.head_key(0, 0) == 0.0
        assert fds.head_key(1, 0) == 2.0
        assert fds.head_key(2, 0) == 4.0

    def test_advance_exposes_successor(self):
        job = make_job([np.arange(16)], B=2, D=3, starts=[0])  # 8 blocks
        fds = ForecastStructure(job)
        fds.advance(0, 0)
        # disk 0's chain is 0, 3, 6 -> head now block 3, key 6.
        assert fds.head_key(0, 0) == 6.0

    def test_advance_to_exhaustion(self):
        job = make_job([np.arange(4)], B=2, D=3, starts=[0])
        fds = ForecastStructure(job)
        fds.advance(0, 0)
        assert fds.head_key(0, 0) == INF
        assert fds.smallest_block_on_disk(0) is None

    def test_push_back_restores(self):
        job = make_job([np.arange(16)], B=2, D=3, starts=[0])
        fds = ForecastStructure(job)
        fds.advance(0, 0)          # block 0 read
        fds.advance(0, 0)          # block 3 read
        fds.push_back(0, 3)        # block 3 flushed
        assert fds.head_key(0, 0) == 6.0
        got = fds.smallest_block_on_disk(0)
        assert got == (6.0, 0, 3)

    def test_push_back_forward_rejected(self):
        job = make_job([np.arange(16)], B=2, D=3, starts=[0])
        fds = ForecastStructure(job)
        with pytest.raises(ScheduleError):
            fds.push_back(0, 3)  # chain pointer is still at block 0


class TestQueries:
    def test_smallest_block_across_runs(self):
        job = make_job(
            [np.array([10, 11, 12, 13]), np.array([0, 1, 2, 3])],
            B=2,
            D=2,
            starts=[0, 0],
        )
        fds = ForecastStructure(job)
        # disk 0 heads: run0 block0 (10), run1 block0 (0).
        assert fds.smallest_block_on_disk(0) == (0.0, 1, 0)

    def test_global_min_key(self):
        job = make_job(
            [np.array([10, 11, 12, 13]), np.array([5, 6, 7, 8])],
            B=2,
            D=2,
            starts=[0, 1],
        )
        fds = ForecastStructure(job)
        assert fds.global_min_key() == 5.0

    def test_next_block_key_of_run(self):
        job = make_job([np.arange(12)], B=2, D=3, starts=[0])
        fds = ForecastStructure(job)
        assert fds.next_block_key_of_run(0) == 0.0
        fds.advance(0, 0)
        assert fds.next_block_key_of_run(0) == 2.0

    def test_lazy_heap_skips_stale_entries(self):
        job = make_job([np.arange(24)], B=2, D=3, starts=[0])
        fds = ForecastStructure(job)
        # Disk 0's chain is blocks 0, 3, 6, 9 with keys 0, 6, 12, 18.
        fds.advance(0, 0)   # read block 0, head -> 3 (key 6)
        fds.advance(0, 0)   # read block 3, head -> 6 (key 12)
        fds.push_back(0, 3)  # flush block 3, head -> 3 again
        # The heap holds stale entries for keys 0 and 12 alongside the
        # fresh key-6 entry; the query must skip the stale ones.
        assert fds.smallest_block_on_disk(0) == (6.0, 0, 3)
        assert fds.head_key(0, 0) == 6.0


class TestVectorizedQueries:
    """The numpy-matrix H backing: batch minima and full-range keys."""

    def test_min_keys_per_run(self):
        job = make_job(
            [np.array([10, 11, 12, 13]), np.array([5, 6, 7, 8])],
            B=2,
            D=2,
            starts=[0, 1],
        )
        fds = ForecastStructure(job)
        values, valid = fds.min_keys_per_run()
        assert valid.tolist() == [True, True]
        assert values.tolist() == [10, 5]

    def test_min_keys_per_run_tracks_advances(self):
        job = make_job([np.arange(8), np.arange(100, 108)], B=2, D=2,
                       starts=[0, 0])
        fds = ForecastStructure(job)
        for d in range(2):
            fds.advance(0, d)
            fds.advance(0, d)  # run 0 fully consumed
        values, valid = fds.min_keys_per_run()
        assert valid.tolist() == [False, True]
        assert values[1] == 100

    def test_int64_max_is_a_legal_key(self):
        # INT64_MAX must behave as a real key, not an exhausted-chain
        # sentinel: exhaustion is signalled by the valid mask alone.
        hi = np.iinfo(np.int64).max
        job = make_job(
            [np.array([hi - 3, hi - 2, hi - 1, hi]), np.array([0, 1, 2, 3])],
            B=2,
            D=2,
            starts=[0, 0],
        )
        fds = ForecastStructure(job)
        values, valid = fds.min_keys_per_run()
        assert valid.tolist() == [True, True]
        assert values.tolist() == [hi - 3, 0]
        assert fds.global_min_key() == 0
        assert fds.next_block_key_of_run(0) == hi - 3
        # Exhaust run 1: its mask entry drops, run 0 keeps its real keys.
        fds.advance(1, 0)
        fds.advance(1, 1)
        values, valid = fds.min_keys_per_run()
        assert valid.tolist() == [True, False]
        assert fds.next_block_key_of_run(1) == INF

    def test_min_key_tie_prefers_smaller_run(self):
        job = make_job(
            [np.array([7, 8]), np.array([7, 9])], B=2, D=1, starts=[0, 0]
        )
        fds = ForecastStructure(job)
        assert fds.smallest_block_on_disk(0) == (7, 0, 0)
