"""Property grid for the latency-adaptive scheduling plane.

Two contracts, swept across algorithms, fault plans, and prefetch
depths:

* **Flag off — bit-identity.**  With no ``LatencyAwareConfig`` (or one
  with ``enabled=False``), output *and* schedule (every
  :class:`ScheduleStats` field, every per-merge makespan) are
  bit-identical to the pre-adaptive engine.  The adaptive plane must be
  invisible until armed.
* **Flag on — safe.**  With the config armed, output stays
  bit-identical and the simulated makespan is never worse than the
  fixed policy's; in the balanced regime under a straggler it is
  measurably better.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LatencyAwareConfig, OverlapConfig, SRMConfig, srm_sort
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.faults.plan import StallWindow

D, B, K = 4, 16, 2
CONFIG = SRMConfig.from_k(K, D, B)
N = 6_000
SEED = 1996
#: Per-record merge cost that balances compute against block service —
#: the regime where the adaptive policy has latency to hide.
BALANCED_US = 1000.0


def _keys():
    return np.random.default_rng(SEED).integers(0, 2**48, N, dtype=np.int64)


def _plan(kind: str) -> FaultPlan | None:
    if kind == "clean":
        return None
    if kind == "straggler":
        return FaultPlan(seed=SEED + 3, latency_factors={1: 4.0})
    if kind == "stalls":
        return FaultPlan(
            seed=SEED + 4,
            stalls=tuple(
                StallWindow(1, 1_000.0 + 3_000.0 * i, 500.0) for i in range(3)
            ),
        )
    raise AssertionError(kind)


def _sort(depth, plan, latency, cpu_us=BALANCED_US):
    overlap = OverlapConfig(
        mode="full", prefetch_depth=depth, cpu_us_per_record=cpu_us,
        latency=latency,
    )
    return srm_sort(
        _keys(), CONFIG, rng=SEED + 17, overlap=overlap, faults=plan
    )


class TestConfigValidation:
    def test_defaults(self):
        cfg = LatencyAwareConfig()
        assert cfg.enabled
        assert cfg.depth_boost >= 0 and cfg.min_eager_per_pump >= 0

    @pytest.mark.parametrize("bad", [
        dict(ewma_alpha=0.0), dict(ewma_alpha=1.5),
        dict(slow_threshold=0.9), dict(depth_boost=-1),
        dict(min_eager_per_pump=-1),
    ])
    def test_bad_values_rejected(self, bad):
        with pytest.raises(ConfigError):
            LatencyAwareConfig(**bad)


class TestFlagOffBitIdentity:
    """SRM: the default path must not move, output or schedule."""

    @pytest.mark.parametrize("depth", [0, 1, 2])
    @pytest.mark.parametrize("plan_kind", ["clean", "straggler", "stalls"])
    def test_disabled_config_is_invisible(self, depth, plan_kind):
        out_none, res_none = _sort(depth, _plan(plan_kind), None)
        out_off, res_off = _sort(
            depth, _plan(plan_kind), LatencyAwareConfig(enabled=False)
        )
        assert np.array_equal(out_none, out_off)
        # Schedule identity: every ScheduleStats field of every merge
        # (reads, flushes, gaps, occupancy) and the simulated clocks.
        assert res_none.merge_schedules == res_off.merge_schedules
        assert res_none.simulated_merge_ms == res_off.simulated_merge_ms
        for a, b in zip(res_none.overlap_reports, res_off.overlap_reports):
            assert a.makespan_ms == b.makespan_ms
            assert a.demand_reads == b.demand_reads
            assert a.eager_reads == b.eager_reads
            assert not b.adaptive

    def test_disabled_reports_no_adaptive_activity(self):
        _, res = _sort(1, _plan("straggler"), LatencyAwareConfig(enabled=False))
        for rep in res.overlap_reports:
            assert rep.depth_boosts == 0
            assert rep.floor_issues == 0
            assert rep.slow_disks == ()


class TestFlagOffDSM:
    """DSM is demand-paced: no overlap engine, no latency coupling."""

    @pytest.mark.parametrize("plan_kind", ["clean", "straggler"])
    def test_dsm_untouched_by_adaptive_plane(self, plan_kind):
        from repro.baselines.dsm import dsm_sort
        from repro.core import DSMConfig, memory_records_for_k

        cfg = DSMConfig.from_memory(memory_records_for_k(K, D, B), D, B)
        keys = _keys()
        out_a, res_a = dsm_sort(keys, cfg, faults=_plan(plan_kind))
        out_b, res_b = dsm_sort(keys, cfg, faults=_plan(plan_kind))
        assert np.array_equal(out_a, np.sort(keys))
        assert np.array_equal(out_a, out_b)
        assert res_a.total_parallel_ios == res_b.total_parallel_ios


class TestFlagOnSafety:
    """Armed: identical output, makespan never worse than fixed."""

    @pytest.mark.parametrize("depth", [0, 1, 2])
    @pytest.mark.parametrize("plan_kind", ["straggler", "stalls"])
    def test_output_identical_and_no_worse(self, depth, plan_kind):
        out_fixed, res_fixed = _sort(depth, _plan(plan_kind), None)
        out_adapt, res_adapt = _sort(
            depth, _plan(plan_kind), LatencyAwareConfig()
        )
        assert np.array_equal(out_fixed, out_adapt)
        assert (
            res_adapt.simulated_merge_ms
            <= res_fixed.simulated_merge_ms * (1.0 + 1e-9)
        )

    def test_clean_run_stays_fixed(self):
        # No faults -> homogeneous EWMA -> nobody classified slow ->
        # the armed engine issues exactly the fixed schedule.
        out_fixed, res_fixed = _sort(1, None, None)
        out_adapt, res_adapt = _sort(1, None, LatencyAwareConfig())
        assert np.array_equal(out_fixed, out_adapt)
        assert res_adapt.simulated_merge_ms == res_fixed.simulated_merge_ms
        for rep in res_adapt.overlap_reports:
            assert rep.adaptive
            assert rep.depth_boosts == 0
            assert rep.floor_issues == 0
            assert rep.slow_disks == ()

    def test_straggler_measurably_improved_at_depth_zero(self):
        # Depth 0 is where the straggler starves the merge hardest; the
        # adaptive window must recover real makespan there.
        _, res_fixed = _sort(0, _plan("straggler"), None)
        _, res_adapt = _sort(0, _plan("straggler"), LatencyAwareConfig())
        assert res_adapt.simulated_merge_ms < res_fixed.simulated_merge_ms
        assert any(r.depth_boosts > 0 for r in res_adapt.overlap_reports)
        assert any(1 in r.slow_disks for r in res_adapt.overlap_reports)
