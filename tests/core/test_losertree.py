"""Tests for the loser-tree merger and the batched merge data plane.

The contract under test: every merger in :data:`repro.MERGERS` produces
*bit-identical* observable behaviour — output records (keys and
payloads), per-merge :class:`ScheduleStats`, disk-system I/O counters,
and channel rounds — differing only in internal-work counters.
"""

from __future__ import annotations

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MERGERS, LoserTree, SRMConfig, merge_runs, srm_sort
from repro.core.config import OverlapConfig
from repro.disks import ParallelDiskSystem, StripedRun
from repro.errors import ConfigError, ScheduleError
from repro.workloads import uniform_keys, uniform_permutation


def build_runs(system, runs_keys, starts, payloads=None):
    return [
        StripedRun.from_sorted_keys(
            system,
            k,
            run_id=i,
            start_disk=int(starts[i]),
            payloads=None if payloads is None else payloads[i],
        )
        for i, k in enumerate(runs_keys)
    ]


def partition_runs(rng, R, L):
    perm = rng.permutation(R * L)
    return [np.sort(perm[i * L : (i + 1) * L]) for i in range(R)]


def read_records(system, run):
    blocks = [system.disks[a.disk].read(a.slot) for a in run.addresses]
    keys = np.concatenate([b.keys for b in blocks])
    if blocks[0].payloads is None:
        return keys, None
    return keys, np.concatenate([b.payloads for b in blocks])


def schedule_tuple(s):
    return (
        s.initial_reads,
        s.merge_parreads,
        s.blocks_read,
        s.flush_ops,
        s.blocks_flushed,
        s.n_blocks,
        s.max_mr_occupied,
    )


class TestLoserTree:
    def test_single_source(self):
        t = LoserTree([5])
        assert t.winner == 0
        assert t.winner_key() == 5
        assert t.runner_up_key() == float("inf")  # no peer
        t.replace(9)
        assert t.winner_key() == 9

    def test_winner_is_minimum(self):
        t = LoserTree([4, 2, 7, 1, 9])
        assert t.winner == 3
        assert t.winner_key() == 1

    def test_ties_go_to_smallest_leaf(self):
        t = LoserTree([3, 1, 1, 1])
        assert t.winner == 1
        t.replace(1)  # equal key: leaf 1 stays ahead of leaves 2, 3
        assert t.winner == 1

    def test_runner_up_is_second_smallest(self):
        t = LoserTree([4, 2, 7, 1, 9])
        assert t.runner_up_key() == 2

    def test_replace_drains_sorted(self):
        feeds = [[1, 4, 9], [2, 3, 10], [0, 5, 6]]
        pos = [0] * 3
        t = LoserTree([f[0] for f in feeds])
        out = []
        while t.winner_key() != float("inf"):
            w = t.winner
            out.append(t.winner_key())
            pos[w] += 1
            t.replace(feeds[w][pos[w]] if pos[w] < 3 else float("inf"))
        assert out == sorted(x for f in feeds for x in f)

    def test_empty_rejected(self):
        with pytest.raises(ScheduleError):
            LoserTree([])

    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(1, 17),
        n=st.integers(1, 40),
        dup=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_fuzz_matches_heapq(self, seed, k, n, dup):
        """Drain k random sources; emissions must match a (key, src) heap."""
        rng = np.random.default_rng(seed)
        hi = 5 if dup else 10_000
        feeds = [sorted(rng.integers(0, hi, size=n).tolist()) for _ in range(k)]
        pos = [0] * k
        t = LoserTree([f[0] for f in feeds])
        heap = [(f[0], i) for i, f in enumerate(feeds)]
        heapq.heapify(heap)
        while heap:
            key, src = heapq.heappop(heap)
            assert (t.winner_key(), t.winner) == (key, src)
            if heap:
                assert t.runner_up_key() == heap[0][0]
            pos[src] += 1
            if pos[src] < n:
                nxt = feeds[src][pos[src]]
                heapq.heappush(heap, (nxt, src))
                t.replace(nxt)
            else:
                t.replace(float("inf"))
        assert t.winner_key() == float("inf")


class TestMergerEquivalence:
    """heapq / losertree / auto must be observationally identical."""

    def _merge_all(self, system_factory, runs_factory, **kw):
        results = []
        for merger in MERGERS:
            system = system_factory()
            runs = runs_factory(system)
            res = merge_runs(system, runs, 50, 0, merger=merger, **kw)
            keys, pays = read_records(system, res.output)
            results.append(
                {
                    "merger": merger,
                    "keys": keys,
                    "pays": pays,
                    "sched": schedule_tuple(res.schedule),
                    "reads": res.io.parallel_reads,
                    "writes": res.io.parallel_writes,
                    "rounds": system.channel_rounds,
                }
            )
        base = results[0]
        for other in results[1:]:
            assert np.array_equal(base["keys"], other["keys"])
            if base["pays"] is None:
                assert other["pays"] is None
            else:
                assert np.array_equal(base["pays"], other["pays"])
            for field in ("sched", "reads", "writes", "rounds"):
                assert base[field] == other[field], (other["merger"], field)
        return results

    def test_unknown_merger_rejected(self):
        system = ParallelDiskSystem(2, 2)
        runs = build_runs(system, [np.arange(4), np.arange(4, 8)], [0, 1])
        with pytest.raises(ConfigError):
            merge_runs(system, runs, 9, 0, merger="timsort")

    @given(
        seed=st.integers(0, 10_000),
        r=st.integers(2, 6),
        blocks=st.integers(1, 8),
        b=st.integers(1, 4),
        d=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_fuzz_identical_io_and_output(self, seed, r, blocks, b, d):
        rng = np.random.default_rng(seed)
        runs_keys = partition_runs(rng, r, blocks * b)
        starts = rng.integers(0, d, size=r)

        self._merge_all(
            lambda: ParallelDiskSystem(d, b),
            lambda s: build_runs(s, runs_keys, starts),
            validate=True,
        )

    def test_duplicate_heavy_with_payloads(self):
        """Cross-run duplicates + payloads: order ties break by run index."""
        rng = np.random.default_rng(7)
        R, L = 4, 24
        runs_keys = [np.sort(uniform_keys(L, 0, 6, rng=i)) for i in range(R)]
        payloads = [np.arange(i * L, (i + 1) * L, dtype=np.int64) for i in range(R)]
        starts = rng.integers(0, 3, size=R)

        results = self._merge_all(
            lambda: ParallelDiskSystem(3, 4),
            lambda s: build_runs(s, runs_keys, starts, payloads=payloads),
            validate=True,
        )
        # Stability oracle: (key, run, position) order of the records.
        tagged = sorted(
            (int(k), r, j)
            for r in range(R)
            for j, k in enumerate(runs_keys[r])
        )
        expect_pays = np.array(
            [payloads[r][j] for _, r, j in tagged], dtype=np.int64
        )
        assert np.array_equal(results[0]["pays"], expect_pays)

    def test_all_equal_keys(self):
        runs_keys = [np.zeros(32, dtype=np.int64) for _ in range(4)]
        self._merge_all(
            lambda: ParallelDiskSystem(2, 4),
            lambda s: build_runs(s, runs_keys, [i % 2 for i in range(4)]),
            validate=True,
        )

    def test_heap_cycles_block_granular_all_mergers(self):
        """All-duplicate workloads must stay O(blocks) for every merger."""
        D, B, R, blocks_per_run = 2, 4, 4, 8
        n = B * blocks_per_run
        for merger in MERGERS:
            system = ParallelDiskSystem(D, B)
            runs = build_runs(
                system,
                [np.zeros(n, dtype=np.int64) for _ in range(R)],
                [i % D for i in range(R)],
            )
            res = merge_runs(system, runs, 20, 0, validate=True, merger=merger)
            n_blocks = res.output.n_blocks
            assert res.heap_cycles >= n_blocks, merger
            assert res.heap_cycles <= 2 * n_blocks, merger
            assert res.heap_cycles < res.output.n_records // 2, merger

    def test_batched_cycles_not_more_than_heapq(self):
        """The batched plane consumes >= one block slice per cycle."""
        rng = np.random.default_rng(3)
        runs_keys = partition_runs(rng, 5, 40)
        cycles = {}
        for merger in ("heapq", "losertree"):
            system = ParallelDiskSystem(3, 4)
            runs = build_runs(system, runs_keys, rng.integers(0, 3, size=5))
            cycles[merger] = merge_runs(
                system, runs, 50, 0, merger=merger
            ).heap_cycles
        assert cycles["losertree"] <= cycles["heapq"]

    def test_overlap_engine_uses_cycle_loop(self):
        """With an overlap engine, losertree == heapq including the report."""
        rng = np.random.default_rng(11)
        runs_keys = partition_runs(rng, 4, 32)
        starts = rng.integers(0, 2, size=4)
        reports = {}
        for merger in ("heapq", "losertree"):
            system = ParallelDiskSystem(2, 4)
            runs = build_runs(system, runs_keys, starts)
            res = merge_runs(
                system,
                runs,
                50,
                0,
                merger=merger,
                overlap=OverlapConfig(cpu_us_per_record=1.0),
            )
            keys, _ = read_records(system, res.output)
            reports[merger] = (
                schedule_tuple(res.schedule),
                res.overlap.makespan_ms,
                keys.tobytes(),
                res.heap_cycles,
            )
        assert reports["heapq"] == reports["losertree"]


class TestEndToEndSortEquivalence:
    def test_srm_sort_identical_across_mergers(self):
        keys = uniform_permutation(6_000, rng=2)
        cfg = SRMConfig.from_k(2, 3, 8)
        outs = {}
        for merger in MERGERS:
            out, res = srm_sort(keys, cfg, rng=5, merger=merger)
            outs[merger] = (
                out.tobytes(),
                tuple(schedule_tuple(s) for s in res.merge_schedules),
                res.io.parallel_reads,
                res.io.parallel_writes,
                res.system.channel_rounds,
            )
            assert np.array_equal(out, np.sort(keys))
        assert outs["heapq"] == outs["losertree"] == outs["auto"]

    def test_srm_sort_with_payloads_identical(self):
        rng = np.random.default_rng(9)
        keys = uniform_keys(4_000, 0, 500, rng=1)  # heavy duplicates
        payloads = np.arange(keys.size, dtype=np.int64)
        cfg = SRMConfig.from_k(2, 2, 8)
        outs = {}
        for merger in ("heapq", "losertree"):
            out, res = srm_sort(keys, cfg, rng=3, payloads=payloads, merger=merger)
            k, p = res.peek_sorted_records()
            outs[merger] = (k.tobytes(), p.tobytes())
        assert outs["heapq"] == outs["losertree"]
