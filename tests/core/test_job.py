"""Tests for MergeJob construction and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MergeJob
from repro.errors import ConfigError, DataError


def simple_job(D=4, B=2):
    runs = [np.arange(0, 16, 2), np.arange(1, 17, 2)]
    return MergeJob.from_key_runs(runs, B, D, start_disks=[0, 1])


class TestFromKeyRuns:
    def test_block_boundaries(self):
        job = simple_job()
        # run 0 = 0,2,..,14 in blocks of 2: firsts 0,4,8,12; lasts 2,6,10,14.
        assert list(job.first_keys[0]) == [0, 4, 8, 12]
        assert list(job.last_keys[0]) == [2, 6, 10, 14]

    def test_partial_final_block(self):
        job = MergeJob.from_key_runs([np.array([1, 2, 3])], 2, 2, start_disks=[0])
        assert list(job.first_keys[0]) == [1, 3]
        assert list(job.last_keys[0]) == [2, 3]

    def test_counts(self):
        job = simple_job()
        assert job.n_runs == 2
        assert job.n_blocks == 8
        assert job.blocks_in_run(1) == 4

    def test_disk_of_cyclic(self):
        job = simple_job(D=3)
        # run 1 starts on disk 1: blocks on 1, 2, 0, 1.
        assert [job.disk_of(1, b) for b in range(4)] == [1, 2, 0, 1]

    def test_strategy_chooses_disks(self):
        job = MergeJob.from_key_runs(
            [np.arange(4), np.arange(4, 8)], 2, 4, rng=0
        )
        assert job.start_disks.size == 2

    def test_rejects_unsorted_run(self):
        with pytest.raises(DataError):
            MergeJob.from_key_runs([np.array([3, 1])], 2, 2, start_disks=[0])

    def test_rejects_empty_run(self):
        with pytest.raises(DataError):
            MergeJob.from_key_runs([np.array([], dtype=np.int64)], 2, 2, start_disks=[0])


class TestValidation:
    def test_start_disk_out_of_range(self):
        with pytest.raises(ConfigError):
            MergeJob.from_key_runs([np.arange(4)], 2, 2, start_disks=[2])

    def test_misaligned_boundaries(self):
        with pytest.raises(DataError):
            MergeJob(
                first_keys=[np.array([0, 4])],
                last_keys=[np.array([2])],
                start_disks=np.array([0]),
                n_disks=2,
            )

    def test_first_exceeds_last(self):
        with pytest.raises(DataError):
            MergeJob(
                first_keys=[np.array([5])],
                last_keys=[np.array([3])],
                start_disks=np.array([0]),
                n_disks=2,
            )

    def test_blocks_out_of_order(self):
        with pytest.raises(DataError):
            MergeJob(
                first_keys=[np.array([0, 1])],
                last_keys=[np.array([5, 6])],
                start_disks=np.array([0]),
                n_disks=2,
            )

    def test_no_runs(self):
        with pytest.raises(ConfigError):
            MergeJob(first_keys=[], last_keys=[], start_disks=np.array([]), n_disks=2)


class TestFromStripedRuns:
    def test_roundtrip_via_disk(self):
        from repro.disks import ParallelDiskSystem, StripedRun

        system = ParallelDiskSystem(3, 4)
        keys = np.arange(0, 40, 2)
        run = StripedRun.from_sorted_keys(system, keys, run_id=0, start_disk=2)
        job = MergeJob.from_striped_runs([run], 3)
        assert list(job.start_disks) == [2]
        assert np.array_equal(job.first_keys[0], keys[::4])
