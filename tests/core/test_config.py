"""Tests for SRM/DSM configurations (paper §2.2, §9.1)."""

from __future__ import annotations

import pytest

from repro.core import DSMConfig, SRMConfig, memory_records_for_k
from repro.errors import ConfigError


class TestSRMConfig:
    def test_from_k(self):
        cfg = SRMConfig.from_k(k=5, n_disks=10, block_size=100)
        assert cfg.merge_order == 50
        assert cfg.k == 5.0

    def test_paper_memory_formula(self):
        # M = (2k+4)DB + kD^2 must match the config's memory footprint.
        k, D, B = 7, 10, 50
        cfg = SRMConfig.from_k(k, D, B)
        assert cfg.memory_records == memory_records_for_k(k, D, B)

    def test_from_memory_inverts_memory_records(self):
        # Giving SRM exactly its own footprint reproduces the merge order.
        cfg = SRMConfig.from_k(5, 8, 64)
        again = SRMConfig.from_memory(cfg.memory_records, 8, 64)
        assert again.merge_order == cfg.merge_order

    def test_from_memory_formula(self):
        # R = floor((M - 4DB) / (2B + D)).
        M, D, B = 10_000, 4, 32
        cfg = SRMConfig.from_memory(M, D, B)
        assert cfg.merge_order == (M - 4 * D * B) // (2 * B + D)

    def test_memory_blocks_matches_partition(self):
        cfg = SRMConfig(n_disks=4, block_size=16, merge_order=12)
        # 2R + 4D buffers + ceil(RD/B) FDS blocks.
        assert cfg.memory_blocks == 2 * 12 + 4 * 4 + -(-12 * 4 // 16)

    def test_too_little_memory(self):
        with pytest.raises(ConfigError):
            SRMConfig.from_memory(10, n_disks=4, block_size=32)

    def test_invalid_fields(self):
        with pytest.raises(ConfigError):
            SRMConfig(n_disks=0, block_size=8, merge_order=4)
        with pytest.raises(ConfigError):
            SRMConfig(n_disks=2, block_size=0, merge_order=4)
        with pytest.raises(ConfigError):
            SRMConfig(n_disks=2, block_size=8, merge_order=1)
        with pytest.raises(ConfigError):
            SRMConfig.from_k(0, 2, 8)


class TestDSMConfig:
    def test_paper_merge_order(self):
        # With M = (2k+4)DB + kD^2, DSM merges k + 1 + kD/2B runs (§9.1).
        k, D, B = 10, 4, 100
        srm = SRMConfig.from_k(k, D, B)
        dsm = DSMConfig.matching_srm(srm)
        assert dsm.merge_order == k + 1 + (k * D) // (2 * B)

    def test_superblock(self):
        dsm = DSMConfig(n_disks=8, block_size=100, merge_order=4)
        assert dsm.superblock_records == 800

    def test_srm_merges_more_runs_than_dsm(self):
        # The structural advantage: R_SRM = kD vs R_DSM ~ k.
        srm = SRMConfig.from_k(5, 10, 100)
        dsm = DSMConfig.matching_srm(srm)
        assert srm.merge_order > dsm.merge_order

    def test_too_little_memory(self):
        with pytest.raises(ConfigError):
            DSMConfig.from_memory(100, n_disks=8, block_size=32)

    def test_invalid_fields(self):
        with pytest.raises(ConfigError):
            DSMConfig(n_disks=0, block_size=8, merge_order=4)
        with pytest.raises(ConfigError):
            DSMConfig(n_disks=2, block_size=8, merge_order=1)
