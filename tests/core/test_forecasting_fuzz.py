"""Fuzz: the pointer-based FDS vs a brute-force reference.

The implementation tracks chain heads with per-(run, disk) pointers;
the reference recomputes, from a plain set of on-disk blocks, the
smallest block of every run on every disk (Definition 2 verbatim).
Random advance/push_back sequences must keep them identical.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import INF, ForecastStructure, MergeJob


class ReferenceFDS:
    """Definition 2 computed from first principles (slow, obvious)."""

    def __init__(self, job: MergeJob) -> None:
        self.job = job
        # All blocks start on disk.
        self.on_disk: set[tuple[int, int]] = {
            (r, b)
            for r in range(job.n_runs)
            for b in range(job.blocks_in_run(r))
        }

    def head_key(self, disk: int, run: int) -> float:
        keys = [
            float(self.job.first_keys[run][b])
            for (r, b) in self.on_disk
            if r == run and self.job.disk_of(r, b) == disk
        ]
        return min(keys) if keys else INF

    def smallest_block_on_disk(self, disk: int):
        best = None
        for r, b in self.on_disk:
            if self.job.disk_of(r, b) != disk:
                continue
            key = float(self.job.first_keys[r][b])
            cand = (key, r, b)
            if best is None or cand < best:
                best = cand
        return best

    def read(self, run: int, block: int) -> None:
        self.on_disk.remove((run, block))

    def push_back(self, run: int, block: int) -> None:
        self.on_disk.add((run, block))


@st.composite
def job_and_ops(draw):
    n_runs = draw(st.integers(1, 4))
    d = draw(st.integers(1, 4))
    b = 2
    blocks = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n_runs * blocks * b)
    runs = [np.sort(perm[i::n_runs]) for i in range(n_runs)]
    starts = rng.integers(0, d, size=n_runs)
    job = MergeJob.from_key_runs(runs, b, d, start_disks=starts)
    n_ops = draw(st.integers(0, 30))
    choices = draw(st.lists(st.integers(0, 2**30), min_size=n_ops, max_size=n_ops))
    return job, choices


class TestFDSFuzz:
    @given(args=job_and_ops())
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_under_random_ops(self, args):
        job, choices = args
        fds = ForecastStructure(job)
        ref = ReferenceFDS(job)
        in_memory: list[tuple[int, int, int]] = []  # (run, block, disk)

        for c in choices:
            # Alternate between reading a random disk's head and
            # flushing a random in-memory block (valid ops only).
            if c % 2 == 0 or not in_memory:
                disk = c % job.n_disks
                got = fds.smallest_block_on_disk(disk)
                expect = ref.smallest_block_on_disk(disk)
                assert got == expect
                if got is None:
                    continue
                _, run, block = got
                fds.advance(run, disk)
                ref.read(run, block)
                in_memory.append((run, block, disk))
            else:
                # Push back the most recently read block of some chain
                # (chain suffix discipline: LIFO per (run, disk)).
                idx = c % len(in_memory)
                run, block, disk = in_memory[idx]
                # Only legal if it would be the chain's new head: find
                # the latest-read block of that chain.
                chain_blocks = [
                    (i, bl) for i, (r2, bl, d2) in enumerate(in_memory)
                    if r2 == run and d2 == disk
                ]
                i, block = chain_blocks[-1]
                in_memory.pop(i)
                fds.push_back(run, block)
                ref.push_back(run, block)

        # Final state must agree everywhere.
        for disk in range(job.n_disks):
            for run in range(job.n_runs):
                assert fds.head_key(disk, run) == ref.head_key(disk, run)
