"""Cross-module integration tests: SRM vs DSM on identical workloads.

These tests exercise the paper's headline claims end-to-end on the
simulated substrate: both algorithms sort correctly, use the same
memory, and SRM needs fewer parallel I/Os once the run count exceeds
DSM's merge order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DSMConfig,
    SRMConfig,
    dsm_sort,
    srm_sort,
)
from repro.analysis import dsm_total_ios, srm_total_ios
from repro.verify import assert_sorted_permutation, check_striped_run


class TestSRMvsDSM:
    """Same memory, same data — the §9 comparison, executed."""

    def _sort_both(self, keys, k=4, D=4, B=8, run_length=None, seed=1):
        srm_cfg = SRMConfig.from_k(k, D, B)
        dsm_cfg = DSMConfig.matching_srm(srm_cfg)
        length = run_length or srm_cfg.memory_records
        srm_out, srm_res = srm_sort(keys, srm_cfg, rng=seed, run_length=length)
        dsm_out, dsm_res = dsm_sort(keys, dsm_cfg, run_length=length)
        return (srm_out, srm_res), (dsm_out, dsm_res)

    def test_both_sort_correctly(self, rng):
        keys = rng.permutation(20_000)
        (srm_out, _), (dsm_out, _) = self._sort_both(keys)
        assert_sorted_permutation(srm_out, keys)
        assert_sorted_permutation(dsm_out, keys)

    def test_srm_needs_fewer_passes(self, rng):
        keys = rng.permutation(40_000)
        (_, srm_res), (_, dsm_res) = self._sort_both(keys, run_length=320)
        # R_SRM = 16, R_DSM = 5: 125 runs -> 2 passes vs 3+.
        assert srm_res.n_merge_passes < dsm_res.n_merge_passes

    def test_srm_uses_fewer_parallel_ios(self, rng):
        keys = rng.permutation(40_000)
        (_, srm_res), (_, dsm_res) = self._sort_both(keys, run_length=320)
        assert srm_res.io.parallel_ios < dsm_res.io.parallel_ios

    def test_measured_ratio_tracks_formula(self, rng):
        # The measured I/O ratio should land in the ballpark the §9.1
        # formulas predict (same memory, same run length).
        k, D, B = 4, 4, 8
        keys = rng.permutation(60_000)
        (_, srm_res), (_, dsm_res) = self._sort_both(
            keys, k=k, D=D, B=B, run_length=320
        )
        measured = srm_res.io.parallel_ios / dsm_res.io.parallel_ios
        # v from the actual run:
        reads = srm_res.io.parallel_reads
        predicted = srm_total_ios(60_000, 320, D, B, k, v=1.1) / dsm_total_ios(
            60_000, 320, D, B, k
        )
        assert measured == pytest.approx(predicted, rel=0.35)

    def test_both_write_with_full_parallelism(self, rng):
        keys = rng.permutation(20_000)
        (_, srm_res), (_, dsm_res) = self._sort_both(keys)
        assert srm_res.io.write_efficiency == 1.0
        assert dsm_res.io.write_efficiency == 1.0


class TestPipelineInvariants:
    def test_every_intermediate_run_is_valid(self, rng):
        """Hook merge passes and validate each output's on-disk format."""
        from repro.core import srm_mergesort
        from repro.disks import ParallelDiskSystem, StripedFile

        cfg = SRMConfig.from_k(2, 4, 8)
        system = ParallelDiskSystem(4, 8)
        keys = rng.permutation(8_192)
        infile = StripedFile.from_records(system, keys)
        res = srm_mergesort(system, infile, cfg, rng=2, run_length=128, validate=True)
        check_striped_run(system, res.output)
        assert_sorted_permutation(res.peek_sorted(system), keys)

    def test_sort_with_timing_model(self, rng):
        from repro.core import srm_mergesort
        from repro.disks import DISK_1996, ParallelDiskSystem, StripedFile

        cfg = SRMConfig.from_k(2, 4, 8)
        system = ParallelDiskSystem(4, 8, timing=DISK_1996)
        keys = rng.permutation(4_096)
        infile = StripedFile.from_records(system, keys)
        res = srm_mergesort(system, infile, cfg, rng=2, run_length=128)
        assert system.elapsed_ms > 0
        # Elapsed time == ops x per-op time (all ops move B-record blocks).
        assert system.elapsed_ms == pytest.approx(
            res.io.parallel_ios * DISK_1996.op_time_ms(8)
        )

    def test_disk_capacity_respected(self, rng):
        from repro.core import srm_mergesort
        from repro.disks import ParallelDiskSystem, StripedFile
        from repro.errors import DiskFullError

        cfg = SRMConfig.from_k(2, 4, 8)
        # Capacity for input + one full copy, not more: sort succeeds
        # because blocks are freed as they are consumed.
        system = ParallelDiskSystem(4, 8, capacity_blocks_per_disk=200)
        keys = rng.permutation(4_096)  # 512 blocks = 128/disk
        infile = StripedFile.from_records(system, keys)
        res = srm_mergesort(system, infile, cfg, rng=2, run_length=128)
        assert_sorted_permutation(res.peek_sorted(system), keys)

    def test_scheduler_overhead_visible_in_passes(self, rng):
        from repro.core import srm_mergesort
        from repro.disks import ParallelDiskSystem, StripedFile

        cfg = SRMConfig.from_k(2, 4, 8)
        system = ParallelDiskSystem(4, 8)
        keys = rng.permutation(8_192)
        infile = StripedFile.from_records(system, keys)
        res = srm_mergesort(system, infile, cfg, rng=2, run_length=128)
        for sched in res.merge_schedules:
            assert sched.overhead_v >= 1.0
            assert sched.max_mr_occupied <= cfg.merge_order + cfg.n_disks
