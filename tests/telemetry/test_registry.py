"""MetricsRegistry: counters, gauges, histogram bucketing, memoization."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.telemetry import NULL_METRIC, Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.schema import batch_edges, occupancy_edges, read_width_edges


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.snapshot() == {"kind": "counter", "value": 6}


class TestGauge:
    def test_set_tracks_max(self):
        g = Gauge("x")
        g.set(3.0)
        g.set(7.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.max_value == 7.0
        assert g.snapshot() == {"kind": "gauge", "value": 2.0, "max": 7.0}


class TestHistogram:
    def test_le_edge_semantics(self):
        """Bucket i counts e_{i-1} < v <= e_i; the last bucket is overflow."""
        h = Histogram("x", (1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 4.5, 100.0):
            h.observe(v)
        # (-inf,1]: 0.5, 1.0 | (1,2]: 1.5, 2.0 | (2,4]: 3.0, 4.0 | >4: 4.5, 100
        assert h.counts == [2, 2, 2, 2]
        assert h.n == 8
        assert h.mean == pytest.approx(sum((0.5, 1, 1.5, 2, 3, 4, 4.5, 100)) / 8)

    def test_exact_edge_lands_in_lower_bucket(self):
        h = Histogram("x", (1.0, 2.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_edges_must_be_strictly_increasing(self):
        with pytest.raises(ConfigError):
            Histogram("x", (1.0, 1.0, 2.0))
        with pytest.raises(ConfigError):
            Histogram("x", (2.0, 1.0))
        with pytest.raises(ConfigError):
            Histogram("x", ())

    def test_empty_mean(self):
        assert Histogram("x", (1.0,)).mean == 0.0

    def test_snapshot_roundtrip_shape(self):
        h = Histogram("x", (1.0, 2.0))
        h.observe(1.5)
        snap = h.snapshot()
        assert snap["kind"] == "histogram"
        assert snap["edges"] == [1.0, 2.0]
        assert snap["counts"] == [0, 1, 0]
        assert snap["n"] == 1


class TestRegistry:
    def test_memoizes_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h", (1.0,)) is reg.histogram("h", (1.0,))
        assert len(reg) == 3
        assert "a" in reg and "missing" not in reg

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ConfigError):
            reg.gauge("a")
        with pytest.raises(ConfigError):
            reg.histogram("a", (1.0,))

    def test_histogram_edge_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0))
        with pytest.raises(ConfigError):
            reg.histogram("h", (1.0, 3.0))

    def test_snapshot_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.counter("a")
        assert list(reg.snapshot()) == ["a", "z"]

    def test_get_missing_returns_none(self):
        assert MetricsRegistry().get("nope") is None


class TestNullMetric:
    def test_all_mutators_are_noops(self):
        NULL_METRIC.inc()
        NULL_METRIC.inc(10)
        NULL_METRIC.set(3.0)
        NULL_METRIC.observe(1.0)
        assert not hasattr(NULL_METRIC, "__dict__")  # __slots__ = ()


class TestSchemaEdges:
    def test_read_width_edges_one_per_disk(self):
        assert read_width_edges(4) == (1.0, 2.0, 3.0, 4.0)

    def test_occupancy_edges_bounded_by_d(self):
        assert occupancy_edges(3) == (1.0, 2.0, 3.0)

    def test_batch_edges_strictly_increasing(self):
        """b//2 colliding with a fixed edge must not produce duplicates."""
        for b in (1, 2, 8, 32, 64, 1000):
            edges = batch_edges(b)
            assert list(edges) == sorted(set(edges)), b
            Histogram("x", edges)  # must not raise
