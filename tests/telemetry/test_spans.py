"""Span nesting/ordering, the event stream, and the disabled fast path."""

from __future__ import annotations

import pytest

import numpy as np

from repro.disks import Block, ParallelDiskSystem
from repro.errors import ScheduleError
from repro.telemetry import NULL_METRIC, TELEMETRY_OFF, Telemetry
from repro.telemetry.schema import SCHEMA_VERSION, validate_events


class TestSpanNesting:
    def test_parent_depth_and_ordering(self):
        tel = Telemetry(algo="test")
        with tel.span("sort") as outer:
            with tel.span("merge_pass") as mid:
                with tel.span("merge") as inner:
                    pass
        spans = [e for e in tel.events if e["type"] == "span"]
        # Spans are emitted at close: innermost first.
        assert [s["name"] for s in spans] == ["merge", "merge_pass", "sort"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["sort"]["depth"] == 0
        assert by_name["sort"]["parent_id"] is None
        assert by_name["merge_pass"]["parent_id"] == by_name["sort"]["span_id"]
        assert by_name["merge"]["depth"] == 2
        # start_seq preserves opening order even though seq is close order.
        assert (by_name["sort"]["start_seq"] < by_name["merge_pass"]["start_seq"]
                < by_name["merge"]["start_seq"])
        assert outer.span_id != mid.span_id != inner.span_id

    def test_out_of_order_close_raises(self):
        tel = Telemetry()
        outer = tel.span("outer")
        tel.span("inner")
        with pytest.raises(ScheduleError, match="out of order"):
            outer.close()

    def test_double_close_raises(self):
        tel = Telemetry()
        s = tel.span("x")
        s.close()
        with pytest.raises(ScheduleError):
            s.close()

    def test_finish_with_open_spans_raises(self):
        tel = Telemetry()
        tel.span("dangling")
        with pytest.raises(ScheduleError, match="open spans"):
            tel.finish()

    def test_set_attaches_attrs(self):
        tel = Telemetry()
        with tel.span("x", a=1) as s:
            s.set(b=2)
        ev = tel.events[-1]
        assert ev["attrs"] == {"a": 1, "b": 2}

    def test_io_delta_recorded_with_system(self):
        system = ParallelDiskSystem(2, 4)
        tel = Telemetry()
        with tel.span("x", system=system):
            addrs = [system.allocate(0), system.allocate(1)]
            system.write_stripe(
                [(a, Block(keys=np.arange(4, dtype=np.int64))) for a in addrs]
            )
        ev = tel.events[-1]
        assert ev["io"]["parallel_writes"] == 1
        assert ev["io"]["blocks_written"] == 2
        assert ev["io"]["writes_per_disk"] == [1, 1]
        assert ev["io"]["parallel_reads"] == 0

    def test_span_without_system_has_no_io(self):
        tel = Telemetry()
        with tel.span("x"):
            pass
        assert "io" not in tel.events[-1]


class TestStream:
    def test_meta_first_and_set_meta(self):
        tel = Telemetry(algo="srm", n_records=10)
        tel.set_meta(merge_order=4)
        head = tel.events[0]
        assert head["type"] == "meta"
        assert head["schema"] == SCHEMA_VERSION
        assert head["algo"] == "srm"
        assert head["merge_order"] == 4

    def test_point_events_sequenced(self):
        tel = Telemetry()
        tel.event("a", x=1)
        tel.event("b", y=2)
        evs = [e for e in tel.events if e["type"] == "event"]
        assert [e["name"] for e in evs] == ["a", "b"]
        assert evs[0]["seq"] < evs[1]["seq"]

    def test_finish_appends_metrics_once(self):
        tel = Telemetry()
        tel.counter("c").inc(3)
        events = tel.finish()
        assert events is tel.finish()  # idempotent
        assert sum(1 for e in events if e["type"] == "metrics") == 1
        assert events[-1]["metrics"]["c"]["value"] == 3

    def test_finished_stream_validates(self):
        tel = Telemetry(algo="test")
        with tel.span("sort"):
            with tel.span("merge"):
                pass
        tel.event("note", k=1)
        assert validate_events(tel.finish()) == []

    def test_metric_accessors_share_registry(self):
        tel = Telemetry()
        assert tel.counter("c") is tel.registry.counter("c")
        assert tel.histogram("h", (1.0,)) is tel.registry.histogram("h", (1.0,))
        tel.gauge("g").set(2.0)
        assert tel.registry.get("g").max_value == 2.0


class TestValidateEvents:
    def test_rejects_structural_problems(self):
        assert validate_events([]) == ["empty event stream"]
        assert any("meta" in e for e in validate_events([{"type": "span"}]))
        bad_schema = [{"type": "meta", "schema": 999},
                      {"type": "metrics", "metrics": {}}]
        assert any("schema" in e for e in validate_events(bad_schema))

    def test_rejects_missing_or_trailing_metrics(self):
        meta = {"type": "meta", "schema": SCHEMA_VERSION}
        assert any("metrics" in e for e in validate_events([meta]))
        out_of_place = [meta, {"type": "metrics", "metrics": {}},
                        {"type": "event", "name": "late", "seq": 1, "attrs": {}}]
        assert any("final" in e for e in validate_events(out_of_place))

    def test_rejects_broken_span_tree(self):
        meta = {"type": "meta", "schema": SCHEMA_VERSION}
        orphan = {"type": "span", "name": "x", "span_id": 2, "parent_id": 99,
                  "depth": 1, "seq": 1, "start_seq": 1, "wall_s": 0.0}
        tail = {"type": "metrics", "metrics": {}}
        assert any("unknown parent" in e
                   for e in validate_events([meta, orphan, tail]))


class TestDisabledMode:
    def test_singletons(self):
        assert TELEMETRY_OFF.span("a") is TELEMETRY_OFF.span("b")
        assert TELEMETRY_OFF.counter("a") is NULL_METRIC
        assert TELEMETRY_OFF.gauge("a") is NULL_METRIC
        assert TELEMETRY_OFF.histogram("a", (1.0,)) is NULL_METRIC

    def test_enabled_flags(self):
        assert Telemetry().enabled is True
        assert TELEMETRY_OFF.enabled is False

    def test_null_span_is_inert(self):
        with TELEMETRY_OFF.span("x", system=None, a=1) as s:
            s.set(b=2)
        s.close()  # extra close is fine on the null span
        TELEMETRY_OFF.event("x", y=1)
        TELEMETRY_OFF.set_meta(z=3)
