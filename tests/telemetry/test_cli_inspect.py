"""CLI integration: ``repro sort --telemetry`` and ``repro inspect``."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_telemetry_and_inspect_parse(self):
        p = build_parser()
        args = p.parse_args(["sort", "--n", "100", "--telemetry", "t.jsonl"])
        assert args.telemetry == "t.jsonl"
        args = p.parse_args(["inspect", "t.jsonl", "--check"])
        assert args.trace == "t.jsonl" and args.check
        assert callable(args.func)


class TestSortInspectRoundtrip:
    def _sort(self, tmp_path, extra=()):
        trace = str(tmp_path / "run.jsonl")
        rc = main(["sort", "--n", "3000", "--disks", "2", "--block", "8",
                   "--k", "2", "--telemetry", trace, *extra])
        assert rc == 0
        return trace

    def test_srm_trace_is_valid_jsonl(self, tmp_path, capsys):
        trace = self._sort(tmp_path)
        capsys.readouterr()
        with open(trace) as fh:
            events = [json.loads(line) for line in fh]
        assert events[0]["type"] == "meta"
        assert events[0]["algo"] == "srm"
        assert events[0]["merge_order"] >= 2
        assert events[-1]["type"] == "metrics"

    def test_srm_inspect_check_passes(self, tmp_path, capsys):
        trace = self._sort(tmp_path)
        capsys.readouterr()
        assert main(["inspect", trace, "--check"]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "check passed" in out

    def test_dsm_inspect_check_passes(self, tmp_path, capsys):
        trace = self._sort(tmp_path, extra=("--dsm",))
        capsys.readouterr()
        assert main(["inspect", trace, "--check"]) == 0
        out = capsys.readouterr().out
        assert "algo=dsm" in out

    def test_inspect_corrupt_trace_errors(self, tmp_path):
        from repro.errors import DataError

        bad = tmp_path / "bad.jsonl"
        bad.write_text("{}\n")
        with pytest.raises(DataError):
            main(["inspect", str(bad)])
