"""The causal trace plane: determinism, ring overflow, export, spans.

Contracts under test:

* Same seed + same config ⇒ **byte-identical** trace JSONL, for SRM
  (demand and overlap), DSM, and the cluster plane.  Determinism holds
  on the simulated-clock domains; the wall-clock ``wall:N`` domains
  from the parallel merge plane are explicitly excluded (they declare
  ``exact=False`` and never appear on the default serial paths).
* Ring overflow drops oldest-first, counts every drop, and surfaces
  the count through ``RunReport.trace_dropped``; attribution on a
  truncated ring flags the walk instead of silently misattributing.
* ``chrome_trace`` emits structurally valid Chrome trace-event JSON.
* The parallel merge plane emits one ``pmerge_worker`` event per range
  plus wall-domain drain records; the exchange plane emits one
  ``exchange_round`` event per shifted round with per-link payloads.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines import dsm_sort
from repro.core.config import DSMConfig
from repro.cluster import ClusterConfig, cluster_sort
from repro.core import SRMConfig, srm_sort
from repro.core.config import OverlapConfig
from repro.core.parallel_merge import parallel_merge_runs
from repro.disks import ParallelDiskSystem
from repro.disks.files import StripedRun
from repro.telemetry import Telemetry
from repro.telemetry.report import RunReport
from repro.telemetry.schema import (
    EV_EXCHANGE_ROUND,
    EV_PMERGE_WORKER,
    validate_events,
)
from repro.telemetry.trace import TraceCollector, chrome_trace
from repro.workloads import uniform_permutation


def trace_blob(events: list[dict]) -> bytes:
    """Serialize the trace slice of an event stream to canonical JSONL."""
    lines = [
        json.dumps(e, sort_keys=True)
        for e in events
        if e["type"] in ("trace", "trace_summary")
    ]
    return ("\n".join(lines) + "\n").encode()


def _srm_events(seed: int, overlap: OverlapConfig | None = None) -> list[dict]:
    keys = uniform_permutation(3000, rng=seed)
    cfg = SRMConfig.from_k(4, 4, 32)
    tel = Telemetry(algo="srm")
    tel.attach_trace()
    srm_sort(keys, cfg, rng=seed + 1, overlap=overlap, telemetry=tel)
    return tel.finish()


class TestDeterminism:
    def test_srm_demand_trace_is_byte_identical(self):
        assert trace_blob(_srm_events(7)) == trace_blob(_srm_events(7))

    def test_srm_overlap_trace_is_byte_identical(self):
        ov = OverlapConfig(mode="full", prefetch_depth=2)
        assert trace_blob(_srm_events(11, ov)) == trace_blob(_srm_events(11, ov))

    def test_dsm_trace_is_byte_identical(self):
        def run():
            keys = uniform_permutation(3000, rng=5)
            cfg = DSMConfig.from_memory(1024, 4, 32)
            tel = Telemetry(algo="dsm")
            tel.attach_trace()
            dsm_sort(keys, cfg, telemetry=tel)
            return trace_blob(tel.finish())

        assert run() == run()

    def test_cluster_trace_is_byte_identical(self):
        def run():
            keys = uniform_permutation(4000, rng=3)
            tel = Telemetry(algo="cluster")
            tel.attach_trace()
            cluster_sort(
                keys, ClusterConfig(n_nodes=3), SRMConfig.from_k(4, 4, 32),
                rng=9, telemetry=tel,
            )
            return trace_blob(tel.finish())

        assert run() == run()

    def test_different_seed_changes_trace(self):
        # Sanity: the byte-equality above is not vacuous.
        assert trace_blob(_srm_events(7)) != trace_blob(_srm_events(8))


class TestRingOverflow:
    def _overflowed(self):
        keys = uniform_permutation(3000, rng=1)
        cfg = SRMConfig.from_k(4, 4, 32)
        tel = Telemetry(algo="srm")
        col = tel.attach_trace(TraceCollector(max_records=64))
        srm_sort(keys, cfg, rng=2, telemetry=tel)
        return tel, col

    def test_dropped_counter_and_report_surface(self):
        tel, col = self._overflowed()
        assert col.dropped > 0
        assert col.emitted == col.dropped + len(col.records)
        assert len(col.records) == 64
        report = RunReport.from_events(tel.finish())
        assert report.trace_dropped == col.dropped

    def test_truncated_walk_is_flagged_not_exact(self):
        from repro.analysis.critical_path import analyze_collector

        _tel, col = self._overflowed()
        analyses = analyze_collector(col)
        assert analyses, "summaries must survive the ring overflow"
        walked = [a for a in analyses.values() if a.records > 0]
        assert any(a.truncated for a in walked)
        assert all(not a.exact for a in walked if a.truncated)

    def test_collector_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            TraceCollector(max_records=0)


class TestChromeExport:
    def test_chrome_trace_structure(self):
        events = _srm_events(13, OverlapConfig(mode="full", prefetch_depth=2))
        validate_events(events)
        doc = chrome_trace(events)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["dropped"] == 0
        assert len(doc["otherData"]["domains"]) >= 1
        assert all(
            d["exact"] for d in doc["otherData"]["domains"].values()
        )
        kinds = {ev["ph"] for ev in doc["traceEvents"]}
        assert "X" in kinds and "M" in kinds
        xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        for ev in xs:
            assert ev["dur"] >= 0 and isinstance(ev["pid"], int)
        # Cross-lane deps become paired flow arrows.
        starts = [ev for ev in doc["traceEvents"] if ev["ph"] == "s"]
        finishes = [ev for ev in doc["traceEvents"] if ev["ph"] == "f"]
        assert len(starts) == len(finishes) > 0
        json.dumps(doc)  # round-trips to JSON without error


class TestPmergeWorkerSpans:
    def test_worker_events_and_wall_domain(self):
        system = ParallelDiskSystem(4, 8)
        rng = np.random.default_rng(0)
        runs = [
            StripedRun.from_sorted_keys(
                system, np.sort(rng.integers(0, 2**40, 200)),
                run_id=r, start_disk=r % 4,
            )
            for r in range(3)
        ]
        tel = Telemetry(algo="pmerge")
        col = tel.attach_trace()
        parallel_merge_runs(
            system, runs, output_run_id=99, output_start_disk=0,
            workers=1, telemetry=tel,
        )
        events = tel.finish()
        workers = [
            e for e in events
            if e["type"] == "event" and e["name"] == EV_PMERGE_WORKER
        ]
        assert workers, "each merged range must emit a pmerge_worker event"
        assert sum(e["attrs"]["records"] for e in workers) == 600
        assert all(e["attrs"]["drain_s"] >= 0.0 for e in workers)
        wall = [r for r in col.records if r.domain.startswith("wall")]
        assert len(wall) == len(workers)
        assert all(r.kind == "compute" for r in wall)
        # Wall-clock lanes never claim simulated-clock exactness.
        assert all(
            not s.exact for s in col.summaries if s.domain.startswith("wall")
        )


class TestExchangeRoundSpans:
    def test_round_events_and_links(self):
        keys = uniform_permutation(4000, rng=21)
        tel = Telemetry(algo="cluster")
        tel.attach_trace()
        _out, result = cluster_sort(
            keys, ClusterConfig(n_nodes=3), SRMConfig.from_k(4, 4, 32),
            rng=22, telemetry=tel,
        )
        events = tel.finish()
        rounds = [
            e for e in events
            if e["type"] == "event" and e["name"] == EV_EXCHANGE_ROUND
        ]
        assert rounds, "shifted exchange rounds must emit span events"
        for e in rounds:
            assert e["attrs"]["round_ms"] >= 0.0
            for ln in e["attrs"]["links"]:
                assert ln["src"] != ln["dst"]
                assert ln["blocks"] > 0 and ln["records"] > 0
                assert ln["ms"] > 0.0
        report = result.exchange
        assert len(report.round_links) == len(report.round_ms)
        assert report.round_links[0] == []  # round 0 is node-local
        # Trace link records mirror the event links.
        tel2_links = [
            e for e in events
            if e["type"] == "trace" and e["kind"] == "link"
        ]
        total_links = sum(len(links) for links in report.round_links)
        assert len(tel2_links) == total_links
