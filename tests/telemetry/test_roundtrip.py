"""End-to-end: instrumented sorts -> JSONL -> RunReport -> render/check."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DSMConfig, SRMConfig, Telemetry, dsm_sort, srm_sort
from repro.telemetry import RunReport, load_events
from repro.telemetry.schema import (
    H_DRAIN_BATCH,
    H_FLUSH_OCCUPANCY,
    H_RUN_LENGTH,
    MERGE_DRAIN_CYCLES,
    SCHED_INITIAL_READS,
    SCHED_MERGE_PARREADS,
    SPAN_MERGE,
    SPAN_MERGE_PASS,
    SPAN_RUN_FORMATION,
    SPAN_SORT,
    validate_events,
)

N = 6_000


def _srm_events(tmp_path=None):
    keys = np.random.default_rng(11).permutation(N)
    cfg = SRMConfig.from_k(4, 4, 32)
    tel = Telemetry(algo="srm", n_records=N, n_disks=4, block_size=32,
                    merge_order=cfg.merge_order, seed=11)
    srm_sort(keys, cfg, rng=12, telemetry=tel)
    return tel.finish(), tel


def _dsm_events():
    keys = np.random.default_rng(11).permutation(N)
    cfg = DSMConfig(n_disks=4, block_size=32, merge_order=4)
    tel = Telemetry(algo="dsm", n_records=N, n_disks=4, block_size=32, seed=11)
    dsm_sort(keys, cfg, telemetry=tel)
    return tel.finish(), tel


class TestJsonlRoundtrip:
    def test_srm_roundtrip_and_check(self, tmp_path):
        events, tel = _srm_events()
        path = str(tmp_path / "run.jsonl")
        tel.write_jsonl(path)
        loaded = load_events(path)
        assert loaded == events  # byte-faithful through JSON
        report = RunReport.from_jsonl(path)
        assert report.algo == "srm"
        assert report.check() == []
        text = report.render()
        assert "per-merge reads vs Theorem 1" in text
        assert "flush-time M_R occupancy" in text

    def test_srm_span_tree_shape(self):
        events, _ = _srm_events()
        assert validate_events(events) == []
        report = RunReport.from_events(events)
        sorts = report.spans_named(SPAN_SORT)
        assert len(sorts) == 1
        assert sorts[0]["depth"] == 0
        rf = report.spans_named(SPAN_RUN_FORMATION)
        assert len(rf) == 1 and rf[0]["parent_id"] == sorts[0]["span_id"]
        passes = report.spans_named(SPAN_MERGE_PASS)
        assert passes and all(
            p["parent_id"] == sorts[0]["span_id"] for p in passes
        )
        pass_ids = {p["span_id"] for p in passes}
        merges = report.spans_named(SPAN_MERGE)
        assert merges and all(m["parent_id"] in pass_ids for m in merges)

    def test_srm_merge_rows_carry_the_bound(self):
        events, _ = _srm_events()
        report = RunReport.from_events(events)
        rows = report.merge_rows()
        assert rows
        for row in rows:
            assert row["total_reads"] >= row["perfect_reads"]
            assert row["v"] >= 1.0 - 1e-9
            if row["n_runs"] > 1:
                assert row["v_bound"] is not None and row["v_bound"] > 1.0

    def test_srm_metrics_match_span_attrs(self):
        """Registry counters and span-attr accounting agree (no drift)."""
        events, _ = _srm_events()
        report = RunReport.from_events(events)
        merges = report.spans_named(SPAN_MERGE)
        assert report.metrics[SCHED_INITIAL_READS]["value"] == sum(
            m["attrs"]["initial_reads"] for m in merges
        )
        assert report.metrics[SCHED_MERGE_PARREADS]["value"] == sum(
            m["attrs"]["merge_parreads"] for m in merges
        )
        assert report.metrics[H_FLUSH_OCCUPANCY]["counts"][-1] == 0
        assert report.metrics[H_RUN_LENGTH]["n"] == (
            report.spans_named(SPAN_RUN_FORMATION)[0]["attrs"]["runs_formed"]
        )

    def test_corrupt_jsonl_rejected(self, tmp_path):
        from repro.errors import DataError

        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(DataError, match="not valid JSON"):
            load_events(str(path))

    def test_stream_missing_metrics_rejected(self):
        from repro.errors import DataError

        with pytest.raises(DataError, match="invalid telemetry stream"):
            RunReport.from_events([{"type": "meta", "schema": 1}])


class TestSrmDsmParity:
    """Both algorithms emit the same schema so traces are comparable."""

    def test_same_span_vocabulary(self):
        srm, _ = _srm_events()
        dsm, _ = _dsm_events()
        assert validate_events(srm) == []
        assert validate_events(dsm) == []
        want = {SPAN_SORT, SPAN_RUN_FORMATION, SPAN_MERGE_PASS, SPAN_MERGE}
        for events in (srm, dsm):
            names = {e["name"] for e in events if e["type"] == "span"}
            assert want <= names

    def test_shared_metric_names(self):
        srm, _ = _srm_events()
        dsm, _ = _dsm_events()
        srm_metrics = set(srm[-1]["metrics"])
        dsm_metrics = set(dsm[-1]["metrics"])
        shared = {H_DRAIN_BATCH, H_RUN_LENGTH, MERGE_DRAIN_CYCLES}
        assert shared <= srm_metrics
        assert shared <= dsm_metrics
        # SRM-only signals stay SRM-only: DSM never flushes.
        assert H_FLUSH_OCCUPANCY in srm_metrics
        assert H_FLUSH_OCCUPANCY not in dsm_metrics

    def test_dsm_report_renders_and_checks(self):
        events, _ = _dsm_events()
        report = RunReport.from_events(events)
        assert report.algo == "dsm"
        assert report.check() == []
        rows = report.merge_rows()
        assert rows
        # Striped reads are perfect by construction: v == 1, no bound.
        for row in rows:
            assert row["v"] == pytest.approx(1.0)
            assert row["v_bound"] is None
        assert "v_bound" in report.render() or "—" in report.render()
