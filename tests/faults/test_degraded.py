"""Tests for degraded-mode operation after a permanent disk loss."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disks.files import StripedRun
from repro.disks.system import BlockAddress, ParallelDiskSystem
from repro.errors import ConfigError, DiskDeadError
from repro.faults import DiskDeath, FaultPlan


def _system(D=4, B=8, plan=None):
    system = ParallelDiskSystem(D, B)
    system.attach_faults(plan if plan is not None else FaultPlan(seed=1))
    return system


def _run(system, rng, n_blocks=12, run_id=0, start_disk=0):
    keys = np.sort(
        rng.choice(10**9, size=n_blocks * system.block_size, replace=False)
    )
    return StripedRun.from_sorted_keys(system, keys, run_id, start_disk)


class TestKillDisk:
    def test_blocks_migrate_and_resolve(self, rng):
        system = _system()
        run = _run(system, rng)
        before = [system.peek(a).keys.copy() for a in run.addresses]
        victims = [a for a in run.addresses if a.disk == 2]
        system._kill_disk(2, "test")
        assert system.degraded
        assert system.dead_disks == {2}
        # Every address still reads back the same block, via the remap.
        for addr, keys in zip(run.addresses, before):
            assert np.array_equal(system.peek(addr).keys, keys)
        for addr in victims:
            assert system.resolve(addr).disk != 2

    def test_migration_spreads_over_survivors(self, rng):
        system = _system()
        _run(system, rng, n_blocks=12)  # 3 blocks per disk
        system._kill_disk(1, "test")
        report = system.death_reports[0]
        assert report.disk == 1
        assert report.recovered_blocks == 3
        assert report.survivors == (0, 2, 3)
        # 3 blocks round-robin onto 3 survivors: one charged round.
        assert report.recovery_write_rounds == 1
        targets = {system.resolve(a).disk for a in system._remap}
        assert targets <= {0, 2, 3}

    def test_recovery_writes_are_charged(self, rng):
        system = _system()
        _run(system, rng, n_blocks=12)
        before = system.stats.snapshot()
        system._kill_disk(0, "test")
        delta = system.stats.since(before)
        assert delta.parallel_writes == system.death_reports[0].recovery_write_rounds
        assert delta.blocks_written == 3

    def test_dead_disk_slots_are_cleared(self, rng):
        system = _system()
        _run(system, rng)
        system._kill_disk(3, "test")
        assert system.disks[3].used_blocks == 0

    def test_last_survivor_death_raises(self, rng):
        system = _system(D=2)
        _run(system, rng, n_blocks=4)
        system._kill_disk(0, "test")
        with pytest.raises(DiskDeadError):
            system._kill_disk(1, "test")


class TestDegradedAllocation:
    def test_allocate_redirects_off_dead_disks(self, rng):
        system = _system()
        _run(system, rng)
        system._kill_disk(2, "test")
        for _ in range(8):
            assert system.allocate(2).disk != 2
        assert system.faults.stats.redirected_allocations == 8

    def test_reads_after_death_charge_split_rounds(self, rng):
        system = _system()
        run = _run(system, rng, n_blocks=8)  # blocks 0..7, 2 per disk
        system._kill_disk(1, "test")
        before = system.stats.snapshot()
        # A full stripe now resolves two blocks onto survivors that
        # already serve their own stripe position: reads split.
        blocks = system.read_stripe(run.addresses[:4])
        assert all(b is not None for b in blocks)
        delta = system.stats.since(before)
        assert delta.parallel_reads >= 2
        assert system.faults.stats.degraded_split_ios >= 1

    def test_free_of_migrated_address_releases_survivor_slot(self, rng):
        system = _system()
        run = _run(system, rng)
        victim = next(a for a in run.addresses if a.disk == 0)
        system._kill_disk(0, "test")
        new = system.resolve(victim)
        used_before = system.disks[new.disk].used_blocks
        system.free(victim)
        assert system.disks[new.disk].used_blocks == used_before - 1


class TestPlannedDeathDuringIO:
    def test_planned_death_fires_on_read(self, rng):
        plan = FaultPlan(seed=2, death=DiskDeath(disk=1, after_ops=2))
        system = _system(plan=plan)
        run = _run(system, rng, n_blocks=8)
        on_disk1 = [a for a in run.addresses if a.disk == 1]
        # Ops 1 and 2 on disk 1 succeed; the next read trips the death
        # and is served from the survivor copy.
        out = []
        for addr in on_disk1:
            out.append(system.read_stripe([addr])[0])
        assert system.dead_disks == {1}
        assert all(b is not None for b in out)
        assert system.faults.stats.disk_deaths == 1

    def test_attach_twice_is_rejected(self):
        system = _system()
        with pytest.raises(ConfigError):
            system.attach_faults(FaultPlan(seed=3))

    def test_writes_after_death_land_on_survivors(self, rng):
        plan = FaultPlan(seed=2, death=DiskDeath(disk=0, after_ops=0))
        system = _system(plan=plan)
        run = _run(system, rng, n_blocks=4, start_disk=0)
        # after_ops=0: the first operation touching disk 0 kills it, so
        # every block is readable and none physically lives on disk 0.
        for addr in run.addresses:
            assert system.peek(addr) is not None
            assert system.resolve(addr).disk != 0
        assert system.disks[0].used_blocks == 0
