"""Tests for fault plans and the deterministic injector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.faults import DiskDeath, FaultInjector, FaultPlan, StallWindow
from repro.telemetry import Telemetry
from repro.telemetry.schema import FAULT_TRANSIENT_FAILURES


class TestFaultPlanValidation:
    def test_defaults_are_noop(self):
        assert FaultPlan().is_noop
        assert FaultPlan().describe() == "no faults"

    def test_probabilities_must_be_sub_unit(self):
        with pytest.raises(ConfigError):
            FaultPlan(read_fail_p=1.0)
        with pytest.raises(ConfigError):
            FaultPlan(corrupt_p=-0.1)

    def test_latency_factor_must_be_positive(self):
        with pytest.raises(ConfigError):
            FaultPlan(latency_factors={0: 0.0})

    def test_stall_window_needs_positive_duration(self):
        with pytest.raises(ConfigError):
            StallWindow(disk=0, start_ms=0.0, duration_ms=0.0)

    def test_death_after_ops_must_be_nonnegative(self):
        with pytest.raises(ConfigError):
            DiskDeath(disk=0, after_ops=-1)

    def test_describe_mentions_enabled_features(self):
        plan = FaultPlan(
            seed=3,
            read_fail_p=0.1,
            fail_disks=(2,),
            death=DiskDeath(disk=1, after_ops=5),
        )
        text = plan.describe()
        assert "read_fail_p=0.1" in text
        assert "fail_disks=[2]" in text
        assert "death(disk=1" in text


class TestInjectorValidation:
    def test_plan_targets_must_exist(self):
        with pytest.raises(ConfigError):
            FaultInjector(FaultPlan(latency_factors={5: 2.0}), n_disks=4)
        with pytest.raises(ConfigError):
            FaultInjector(FaultPlan(fail_disks=(4,)), n_disks=4)
        with pytest.raises(ConfigError):
            FaultInjector(
                FaultPlan(stalls=(StallWindow(9, 0.0, 1.0),)), n_disks=4
            )

    def test_death_needs_a_survivor(self):
        with pytest.raises(ConfigError):
            FaultInjector(
                FaultPlan(death=DiskDeath(disk=0, after_ops=0)), n_disks=1
            )

    def test_death_sequence_targets_must_exist(self):
        with pytest.raises(ConfigError):
            FaultInjector(
                FaultPlan(deaths=(DiskDeath(disk=7, after_ops=0),)), n_disks=4
            )

    def test_death_sequence_must_leave_a_survivor(self):
        deaths = tuple(DiskDeath(disk=d, after_ops=d) for d in range(3))
        with pytest.raises(ConfigError):
            FaultInjector(FaultPlan(deaths=deaths), n_disks=3)

    def test_each_disk_dies_at_most_once(self):
        with pytest.raises(ConfigError):
            FaultPlan(
                death=DiskDeath(disk=1, after_ops=0),
                deaths=(DiskDeath(disk=1, after_ops=9),),
            )

    def test_redundancy_mode_is_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(redundancy="raid6")

    def test_write_probabilities_are_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(write_fail_p=1.0)
        with pytest.raises(ConfigError):
            FaultPlan(torn_write_p=-0.5)


class TestDeterminism:
    def _outcomes(self, plan, n_disks=3, reads=200):
        inj = FaultInjector(plan, n_disks)
        return [
            (d, o.n_failures, o.corrupt)
            for d in range(n_disks)
            for o in (inj.plan_read(d) for _ in range(reads))
        ]

    def test_same_seed_replays_identically(self):
        plan = FaultPlan(seed=11, read_fail_p=0.2, corrupt_p=0.1)
        assert self._outcomes(plan) == self._outcomes(plan)

    def test_different_seeds_diverge(self):
        a = self._outcomes(FaultPlan(seed=11, read_fail_p=0.2))
        b = self._outcomes(FaultPlan(seed=12, read_fail_p=0.2))
        assert a != b

    def test_disks_have_independent_streams(self):
        plan = FaultPlan(seed=11, read_fail_p=0.5)
        inj = FaultInjector(plan, 2)
        a = [inj.plan_read(0).n_failures for _ in range(100)]
        b = [inj.plan_read(1).n_failures for _ in range(100)]
        assert a != b

    def test_noop_plan_never_fails(self):
        for d, n_failures, corrupt in self._outcomes(FaultPlan(seed=1)):
            assert n_failures == 0 and not corrupt

    def test_failures_capped_by_max_consecutive(self):
        plan = FaultPlan(seed=5, read_fail_p=0.9, max_consecutive_failures=3)
        outcomes = self._outcomes(plan, reads=300)
        assert max(n for _, n, _ in outcomes) == 3

    def test_fail_disks_scopes_the_injection(self):
        plan = FaultPlan(seed=5, read_fail_p=0.5, corrupt_p=0.5, fail_disks=(1,))
        inj = FaultInjector(plan, 3)
        for _ in range(100):
            out = inj.plan_read(0)
            assert out.n_failures == 0 and not out.corrupt
        assert any(inj.plan_read(1).n_failures > 0 for _ in range(100))

    def test_plan_write_replays_identically(self):
        plan = FaultPlan(seed=9, write_fail_p=0.3, torn_write_p=0.2)

        def draws():
            inj = FaultInjector(plan, 2)
            return [
                (o.n_failures, o.torn)
                for _ in range(200)
                for o in (inj.plan_write(0),)
            ]

        outcomes = draws()
        assert outcomes == draws()
        assert any(n > 0 for n, _ in outcomes)
        assert any(t for _, t in outcomes)

    def test_fail_disks_scopes_writes_too(self):
        plan = FaultPlan(
            seed=5, write_fail_p=0.5, torn_write_p=0.5, fail_disks=(1,)
        )
        inj = FaultInjector(plan, 3)
        for _ in range(100):
            out = inj.plan_write(0)
            assert out.n_failures == 0 and not out.torn
        assert any(inj.plan_write(1).n_failures > 0 for _ in range(100))

    def test_write_path_draws_nothing_on_read_only_plans(self):
        # A read-only plan must replay bit-identically whether or not
        # the write path consults the injector: plan_write is feature-
        # gated, so it consumes no randomness here.
        plan = FaultPlan(seed=11, read_fail_p=0.2, corrupt_p=0.1)
        a = FaultInjector(plan, 2)
        b = FaultInjector(plan, 2)
        seq_a = []
        seq_b = []
        for _ in range(100):
            a.plan_write(0)  # interleaved write decisions...
            o = a.plan_read(0)
            seq_a.append((o.n_failures, o.corrupt))
        for _ in range(100):
            o = b.plan_read(0)  # ...versus none at all
            seq_b.append((o.n_failures, o.corrupt))
        assert seq_a == seq_b


class TestInjectorAccounting:
    def test_death_due_fires_after_threshold_ops(self):
        plan = FaultPlan(seed=0, death=DiskDeath(disk=1, after_ops=2))
        inj = FaultInjector(plan, 3)
        assert not inj.death_due(1)  # only 0 of the 2 required ops served
        inj.note_op(1)
        inj.note_op(1)
        assert inj.death_due(1)
        assert not inj.death_due(0)
        inj.mark_dead(1, "planned", recovered_blocks=7)
        assert inj.is_dead(1)
        assert not inj.death_due(1)  # fires once
        assert inj.stats.disk_deaths == 1
        assert inj.stats.recovery_blocks == 7

    def test_death_due_immediately_when_after_ops_zero(self):
        plan = FaultPlan(seed=0, death=DiskDeath(disk=0, after_ops=0))
        inj = FaultInjector(plan, 2)
        assert inj.death_due(0)

    def test_stall_release_slides_past_window(self):
        plan = FaultPlan(
            seed=0, stalls=(StallWindow(disk=0, start_ms=10.0, duration_ms=5.0),)
        )
        inj = FaultInjector(plan, 2)
        assert inj.stall_release(0, 12.0) == 15.0
        assert inj.stats.stall_ms == pytest.approx(3.0)
        # Outside the window, and on an unlisted disk: no change.
        assert inj.stall_release(0, 20.0) == 20.0
        assert inj.stall_release(1, 12.0) == 12.0

    def test_stall_release_without_windows_returns_candidate(self):
        # Regression: a disk with no stall windows used to get 0.0 back,
        # which only worked because the caller fed it into a max().
        inj = FaultInjector(FaultPlan(seed=0), 2)
        assert inj.stall_release(0, 37.5) == 37.5
        assert inj.stats.stall_ms == 0.0

    def test_chained_stall_windows(self):
        plan = FaultPlan(
            seed=0,
            stalls=(
                StallWindow(disk=0, start_ms=0.0, duration_ms=10.0),
                StallWindow(disk=0, start_ms=10.0, duration_ms=10.0),
            ),
        )
        inj = FaultInjector(plan, 1)
        assert inj.stall_release(0, 5.0) == 20.0

    def test_penalty_drain_is_one_shot(self):
        inj = FaultInjector(FaultPlan(seed=0, read_fail_p=0.1), 2)
        inj.count_retry(0, 4.0)
        inj.count_retry(0, 2.0)
        assert inj.take_penalty_ms(0) == pytest.approx(6.0)
        assert inj.take_penalty_ms(0) == 0.0
        assert inj.stats.retries == 2
        assert inj.stats.backoff_ms_total == pytest.approx(6.0)

    def test_telemetry_counters_mirror_stats(self):
        tel = Telemetry()
        inj = FaultInjector(FaultPlan(seed=0, read_fail_p=0.1), 2, telemetry=tel)
        inj.count_transient()
        inj.count_transient()
        snap = tel.registry.get(FAULT_TRANSIENT_FAILURES).snapshot()
        assert snap["value"] == 2 == inj.stats.transient_failures


class TestCorruptCopy:
    def test_corrupts_a_copy_not_the_original(self, rng):
        from repro.disks.block import Block
        from repro.faults import corrupt_copy

        blk = Block(keys=np.arange(8, dtype=np.int64)).seal()
        bad = corrupt_copy(blk, rng)
        assert blk.verify()  # original untouched
        assert not bad.verify()  # copy fails its (inherited) checksum
        assert not np.array_equal(blk.keys, bad.keys)

    def test_unsealed_block_corruption_is_invisible(self, rng):
        from repro.disks.block import Block
        from repro.faults import corrupt_copy

        blk = Block(keys=np.arange(8, dtype=np.int64))  # never sealed
        bad = corrupt_copy(blk, rng)
        assert bad.verify()  # no checksum -> nothing to catch
