"""Tests for the retry policy and circuit breaker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.faults import CircuitBreaker, RetryPolicy
from repro.telemetry.schema import backoff_edges


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_ms=0.0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_ms=10.0, cap_ms=5.0)
        with pytest.raises(ConfigError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_geometrically_without_jitter(self):
        pol = RetryPolicy(base_ms=1.0, factor=2.0, cap_ms=100.0, jitter=0.0)
        delays = [pol.backoff_ms(i, None) for i in range(5)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 16.0]

    def test_backoff_is_capped(self):
        pol = RetryPolicy(base_ms=1.0, factor=2.0, cap_ms=5.0, jitter=0.0)
        assert pol.backoff_ms(10, None) == 5.0

    def test_jitter_bounds_and_determinism(self):
        pol = RetryPolicy(base_ms=2.0, factor=2.0, cap_ms=50.0, jitter=0.25)
        a = [pol.backoff_ms(1, np.random.default_rng(9)) for _ in range(1)]
        b = [pol.backoff_ms(1, np.random.default_rng(9)) for _ in range(1)]
        assert a == b  # same generator state -> same jitter
        for _ in range(50):
            d = pol.backoff_ms(1, np.random.default_rng())
            assert 4.0 <= d < 4.0 * 1.25

    def test_zero_jitter_consumes_no_randomness(self):
        pol = RetryPolicy(jitter=0.0)
        gen = np.random.default_rng(3)
        before = gen.bit_generator.state
        pol.backoff_ms(0, gen)
        assert gen.bit_generator.state == before


class TestBackoffEdges:
    def test_edges_cover_base_to_past_cap(self):
        edges = backoff_edges(1.0, 50.0, 2.0)
        assert edges[0] == 1.0
        # The overflow absorber sits past the cap so a capped+jittered
        # delay still lands in a bucket.
        assert edges[-1] > 50.0
        assert list(edges) == sorted(set(edges))


class TestCircuitBreaker:
    def test_trips_at_exactly_threshold(self):
        br = CircuitBreaker(threshold=3)
        assert not br.record_failure(0)
        assert not br.record_failure(0)
        assert br.record_failure(0)  # third consecutive -> trip
        assert br.trips == 1

    def test_success_resets_the_streak(self):
        br = CircuitBreaker(threshold=3)
        br.record_failure(0)
        br.record_failure(0)
        br.record_success(0)
        assert br.failures(0) == 0
        assert not br.record_failure(0)

    def test_disks_are_independent(self):
        br = CircuitBreaker(threshold=2)
        br.record_failure(0)
        assert not br.record_failure(1)
        assert br.record_failure(0)
        assert br.failures(1) == 1

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(threshold=0)

    def test_fires_past_threshold_not_only_at_it(self):
        # Regression: the trip test was `n == threshold`, so a counter
        # already past the threshold (e.g. after lowering it mid-run)
        # would never fire again.
        br = CircuitBreaker(threshold=5)
        for _ in range(4):
            assert not br.record_failure(0)
        br.threshold = 2  # lowered mid-run
        assert br.record_failure(0)  # 5 >= 2 -> trips even though != 2
        assert br.trips == 1

    def test_keeps_firing_while_past_threshold(self):
        br = CircuitBreaker(threshold=2)
        br.record_failure(0)
        assert br.record_failure(0)
        # No reset: the streak is still >= threshold, so it keeps firing
        # rather than silently riding past the boundary.
        assert br.record_failure(0)
        assert br.trips == 2
