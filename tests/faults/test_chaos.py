"""Property-style chaos tests: any seeded fault plan, same sorted bytes."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DSMConfig, SRMConfig, dsm_sort, srm_sort
from repro.faults import DiskDeath, FaultPlan, StallWindow, run_chaos
from repro.verify import check_striped_run

D, B, K = 4, 8, 2
N = 3_000
SEED = 42


@pytest.fixture(scope="module")
def keys():
    return np.random.default_rng(SEED).integers(
        0, 2**40, size=N, dtype=np.int64
    )


@pytest.fixture(scope="module")
def srm_cfg():
    return SRMConfig.from_k(K, D, B)


@pytest.fixture(scope="module")
def reference(keys, srm_cfg):
    out, res = srm_sort(keys, srm_cfg, rng=SEED)
    return out, res.total_parallel_ios


def _plans():
    """The seeded grid: one plan per fault class, plus combinations."""
    mid = 120  # mid-merge in per-disk block ops at this scale
    return [
        ("transient", FaultPlan(seed=1, read_fail_p=0.1)),
        ("corrupt", FaultPlan(seed=2, corrupt_p=0.08)),
        ("straggler", FaultPlan(seed=3, latency_factors={1: 5.0})),
        (
            "stall",
            FaultPlan(seed=4, stalls=(StallWindow(0, 1.0, 25.0),)),
        ),
        ("death_early", FaultPlan(seed=5, death=DiskDeath(3, 0))),
        ("death_mid", FaultPlan(seed=6, death=DiskDeath(2, mid))),
        (
            "everything",
            FaultPlan(
                seed=7,
                read_fail_p=0.05,
                corrupt_p=0.03,
                latency_factors={1: 2.0},
                death=DiskDeath(3, mid),
            ),
        ),
        ("write_storm", FaultPlan(seed=11, write_fail_p=0.12)),
        (
            "torn_parity",
            FaultPlan(seed=12, torn_write_p=0.04, redundancy="parity"),
        ),
        (
            "parity_death",
            FaultPlan(
                seed=13, redundancy="parity", deaths=(DiskDeath(2, mid),)
            ),
        ),
        (
            "double_death",
            FaultPlan(
                seed=14, deaths=(DiskDeath(3, mid), DiskDeath(0, mid + 60))
            ),
        ),
        # Note: torn writes and a death are never combined in one plan.
        # A latent tear whose parity block rides the dying disk is a
        # genuine two-loss group — honest RAID-5 data loss (the
        # URE-during-rebuild window), raised loudly; see
        # test_parity.py::test_tear_plus_parity_loss_is_loud_data_loss.
        (
            "everything_writes",
            FaultPlan(
                seed=15,
                read_fail_p=0.04,
                corrupt_p=0.02,
                write_fail_p=0.04,
                redundancy="parity",
                deaths=(DiskDeath(1, mid),),
            ),
        ),
    ]


class TestSRMBitIdentity:
    @pytest.mark.parametrize(("name", "plan"), _plans())
    def test_output_identical_under_plan(self, name, plan, keys, srm_cfg, reference):
        out, res = srm_sort(keys, srm_cfg, rng=SEED, faults=plan)
        assert np.array_equal(out, reference[0]), name
        assert res.system.faults.stats.undetected_corruptions == 0

    def test_same_plan_same_io_accounting(self, keys, srm_cfg):
        plan = FaultPlan(seed=9, read_fail_p=0.1, death=DiskDeath(1, 60))
        _, a = srm_sort(keys, srm_cfg, rng=SEED, faults=plan)
        _, b = srm_sort(keys, srm_cfg, rng=SEED, faults=plan)
        assert a.total_parallel_ios == b.total_parallel_ios
        assert a.system.faults.stats.snapshot() == b.system.faults.stats.snapshot()

    def test_noop_plan_matches_fault_free_io(self, keys, srm_cfg, reference):
        out, res = srm_sort(keys, srm_cfg, rng=SEED, faults=FaultPlan(seed=8))
        assert np.array_equal(out, reference[0])
        assert res.total_parallel_ios == reference[1]

    def test_degraded_output_run_still_checks(self, keys, srm_cfg):
        plan = FaultPlan(seed=5, death=DiskDeath(3, 0))
        _, res = srm_sort(keys, srm_cfg, rng=SEED, faults=plan)
        # The run format invariants hold modulo the waived placement
        # rule for dead-disk stripe positions.
        check_striped_run(res.system, res.output)

    def test_torn_writes_all_detected_and_repaired(self, keys, srm_cfg, reference):
        plan = FaultPlan(seed=12, torn_write_p=0.04, redundancy="parity")
        out, res = srm_sort(keys, srm_cfg, rng=SEED, faults=plan)
        s = res.system.faults.stats
        assert np.array_equal(out, reference[0])
        assert s.torn_writes_injected > 0
        assert s.torn_writes_detected == s.torn_writes_injected
        assert s.recovery_read_ios > 0
        # After the closing scrub no stale seal survives anywhere.
        from repro.verify.checks import audit_checksums

        assert audit_checksums(res.system)["stale"] == []

    def test_parity_death_rebuilds_with_charged_reads(self, keys, srm_cfg, reference):
        plan = FaultPlan(seed=13, redundancy="parity", deaths=(DiskDeath(2, 120),))
        out, res = srm_sort(keys, srm_cfg, rng=SEED, faults=plan)
        assert np.array_equal(out, reference[0])
        report = res.system.death_reports[0]
        assert report.mode == "parity"
        assert report.recovery_read_rounds > 0
        assert res.system.faults.stats.recovery_read_ios >= report.recovery_read_rounds

    def test_payloads_survive_disk_death(self, keys, srm_cfg):
        payloads = np.arange(N, dtype=np.int64)
        plan = FaultPlan(seed=10, death=DiskDeath(1, 80))
        _, res = srm_sort(
            keys, srm_cfg, rng=SEED, payloads=payloads, faults=plan
        )
        out_k, out_p = res.peek_sorted_records()
        order = np.argsort(keys, kind="stable")
        assert np.array_equal(out_k, keys[order])
        assert np.array_equal(out_p, payloads[order])


class TestDSMBitIdentity:
    @pytest.fixture(scope="class")
    def dsm_cfg(self):
        return DSMConfig(n_disks=D, block_size=B, merge_order=3)

    @pytest.fixture(scope="class")
    def dsm_reference(self, keys, dsm_cfg):
        out, _ = dsm_sort(keys, dsm_cfg)
        return out

    @pytest.mark.parametrize(
        ("name", "plan"),
        [(n, p) for n, p in _plans() if n not in ("straggler", "stall")],
    )
    def test_output_identical_under_plan(
        self, name, plan, keys, dsm_cfg, dsm_reference
    ):
        out, res = dsm_sort(keys, dsm_cfg, faults=plan)
        assert np.array_equal(out, dsm_reference), name
        assert res.system.faults.stats.undetected_corruptions == 0


class TestChaosHarness:
    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos(
            n_records=3_000, n_disks=4, k=2, block_size=8, seed=77, quick=True
        )

    def test_quick_sweep_passes(self, report):
        assert report.failures() == []
        assert report.passed

    def test_scenarios_cover_both_algorithms(self, report):
        pairs = {(r.scenario, r.algorithm) for r in report.results}
        assert ("transient", "srm") in pairs
        assert ("death", "dsm") in pairs

    def test_quick_sweep_covers_write_and_parity_paths(self, report):
        pairs = {(r.scenario, r.algorithm) for r in report.results}
        for sc in ("write_storm", "torn", "parity_death", "double_death"):
            assert (sc, "srm") in pairs and (sc, "dsm") in pairs
        by_name = {
            (r.scenario, r.algorithm): r.stats for r in report.results
        }
        assert by_name[("torn", "srm")]["recovery_read_ios"] > 0
        assert by_name[("parity_death", "srm")]["recovery_read_ios"] > 0
        assert by_name[("double_death", "srm")]["disk_deaths"] == 2

    def test_jsonl_roundtrip(self, report, tmp_path):
        import json

        path = tmp_path / "chaos.jsonl"
        report.write_jsonl(str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["type"] == "meta" and rows[0]["passed"]
        assert len(rows) == 1 + len(report.results)
        assert all(r["ok"] for r in rows[1:])

    def test_render_mentions_verdict(self, report):
        assert "PASS" in report.render()

    def test_cli_chaos_check_exits_zero(self, capsys):
        from repro.cli import main

        rc = main(
            ["chaos", "--quick", "--check", "--n", "2000", "--block", "8"]
        )
        assert rc == 0
        assert "chaos check passed" in capsys.readouterr().out
