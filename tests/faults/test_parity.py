"""Unit tests for rotating parity: geometry, charged recovery, scrubbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.writer import RunWriter
from repro.disks.block import Block
from repro.disks.files import StripedRun
from repro.disks.system import ParallelDiskSystem
from repro.errors import DataError, DiskDeadError
from repro.faults import FaultPlan
from repro.faults.degraded import scrub_addresses, scrub_and_repair
from repro.faults.parity import PARITY_RUN_ID, ParityStore
from repro.verify.checks import audit_checksums

D, B = 4, 8


def make_sorted_keys(rng, n):
    keys = rng.choice(10**9, size=n, replace=False).astype(np.int64)
    keys.sort()
    return keys


def _system(plan=None):
    system = ParallelDiskSystem(D, B)
    system.attach_faults(
        plan if plan is not None else FaultPlan(seed=1, redundancy="parity")
    )
    return system


def _run(system, rng, n_blocks=12, run_id=0, start_disk=0):
    keys = make_sorted_keys(rng, n_blocks * system.block_size)
    return StripedRun.from_sorted_keys(system, keys, run_id, start_disk)


def _tear(system, addr):
    """Replace the stored block at *addr* with a stale-seal copy."""
    p = system.resolve(addr)
    original = system.disks[p.disk]._slots[p.slot]
    torn = Block(
        keys=original.keys.copy(),
        run_id=original.run_id,
        index=original.index,
        forecast=original.forecast,
        payloads=None if original.payloads is None else original.payloads.copy(),
        checksum=original.checksum,
    )
    torn.keys[0] ^= 1
    system.disks[p.disk]._slots[p.slot] = torn
    return original


class TestGroupGeometry:
    def test_groups_close_at_d_minus_one_with_rotating_parity(self, rng):
        system = _system()
        _run(system, rng, n_blocks=12)
        store = system._parity
        assert len(store.groups) == 4
        assert all(len(g.members) == D - 1 for g in store.groups)
        assert all(g.sealed for g in store.groups)
        # Cyclic striping leaves exactly one spindle free per group, and
        # it rotates: this is RAID-5's layout falling out of the paper's
        # placement rule.
        assert [g.parity_disk for g in store.groups] == [3, 2, 1, 0]
        for g in store.groups:
            assert g.parity_disk not in {
                system.resolve(m.addr).disk for m in g.members
            }

    def test_parity_blocks_are_sealed_and_tagged(self, rng):
        system = _system()
        _run(system, rng, n_blocks=12)
        store = system._parity
        assert system.faults.stats.parity_blocks_written == 4
        for g in store.groups:
            p = system.resolve(g.parity_addr)
            pblk = system.disks[p.disk].read(p.slot)
            assert pblk.run_id == PARITY_RUN_ID
            assert pblk.index == g.gid
            assert pblk.verify()
            # The NVRAM XOR is dropped once parity is durable, so
            # rebuilds must pay for the parity read.
            assert g.xor_keys is None

    def test_parity_writes_are_charged_one_round_per_group(self, rng):
        system = _system()
        before = system.stats.snapshot()
        _run(system, rng, n_blocks=12)
        delta = system.stats.since(before)
        # 3 data stripes + 4 single-disk parity rounds.
        assert delta.parallel_writes == 7
        assert delta.blocks_written == 16

    def test_same_disk_collision_closes_group_early(self):
        system = _system(plan=FaultPlan(seed=3))
        store = ParityStore(system)
        for i in range(3):
            addr = system.allocate(0)
            blk = Block(
                keys=np.arange(B, dtype=np.int64) + i, run_id=0, index=i
            ).seal()
            store.add_block(addr, 0, blk)
        # Every block lands on disk 0: each arrival collides with the
        # open group, closing it at size 1 well below the D-1 target.
        assert [len(g.members) for g in store.groups[:2]] == [1, 1]

    def test_at_most_one_tear_per_group(self):
        system = _system(plan=FaultPlan(seed=4))
        store = ParityStore(system)
        granted = []
        for i in range(6):
            addr = system.allocate(i % D)
            blk = Block(
                keys=np.arange(B, dtype=np.int64) + i, run_id=0, index=i
            ).seal()
            granted.append(store.add_block(addr, addr.disk, blk, torn=True))
        # One parity arm absorbs one latent loss: only the first tear of
        # each (D-1)-member group is granted.
        assert granted == [True, False, False, True, False, False]


class TestReconstruction:
    def test_member_rebuild_is_bit_identical_and_charged(self, rng):
        system = _system()
        run = _run(system, rng, n_blocks=12)
        store = system._parity
        g, member = store.entry_for(run.addresses[0])
        original = system.peek(run.addresses[0])
        before = system.stats.snapshot()
        reads_before = system.faults.stats.recovery_read_ios
        blk = store.reconstruct_member(g, member)
        assert np.array_equal(blk.keys, original.keys)
        assert blk.checksum == member.checksum
        delta = system.stats.since(before)
        # Two siblings plus the parity block, all on distinct spindles:
        # three charged block reads in one parallel round.
        assert delta.blocks_read == 3
        assert system.faults.stats.recovery_read_ios - reads_before == 1

    def test_open_group_rebuilds_from_nvram_without_parity_read(self, rng):
        system = _system()
        run = _run(system, rng, n_blocks=13)
        store = system._parity
        g, member = store.entry_for(run.addresses[12])
        assert not g.sealed and len(g.members) == 1
        original = system.peek(run.addresses[12])
        reads_before = system.faults.stats.recovery_read_ios
        blk = store.reconstruct_member(g, member)
        assert np.array_equal(blk.keys, original.keys)
        # Sole member of an open group: the in-memory running XOR is the
        # source, so no disk read is charged.
        assert system.faults.stats.recovery_read_ios == reads_before

    def test_second_loss_in_one_group_raises(self, rng):
        system = _system()
        run = _run(system, rng, n_blocks=12)
        store = system._parity
        g, member = store.entry_for(run.addresses[0])
        sibling = g.members[1]
        # Simulate mid-rebuild state: the sibling's disk is gone but its
        # blocks have not been re-homed yet.
        system.dead_disks.add(system.resolve(sibling.addr).disk)
        with pytest.raises(DiskDeadError, match="lost two members"):
            store.reconstruct_member(g, member)

    def test_corrupt_sibling_during_rebuild_raises(self, rng):
        system = _system()
        run = _run(system, rng, n_blocks=12)
        store = system._parity
        g, member = store.entry_for(run.addresses[0])
        _tear(system, g.members[1].addr)
        with pytest.raises(DataError, match="doubly damaged"):
            store.reconstruct_member(g, member)


class TestDeferredFree:
    def test_member_free_defers_until_whole_group_freed(self, rng):
        system = _system()
        run = _run(system, rng, n_blocks=12)
        store = system._parity
        g, _ = store.entry_for(run.addresses[0])
        used = [system.disks[d].used_blocks for d in range(D)]
        system.free(run.addresses[0])
        # The slot stays physically occupied: a freed member remains a
        # reconstruction source for its siblings.
        assert system.disks[0].used_blocks == used[0]
        rebuilt = store.reconstruct_member(g, g.members[1])
        assert np.array_equal(rebuilt.keys, system.peek(run.addresses[1]).keys)
        system.free(run.addresses[1])
        system.free(run.addresses[2])
        # Whole group freed: members and the parity slot release together.
        assert system.disks[0].used_blocks == used[0] - 1
        assert system.disks[1].used_blocks == used[1] - 1
        assert system.disks[2].used_blocks == used[2] - 1
        assert system.disks[3].used_blocks == used[3] - 1  # parity of group 0
        assert store.entry_for(run.addresses[0]) is None


class TestTornRepair:
    def test_read_detects_and_repairs_in_place(self, rng):
        system = _system()
        run = _run(system, rng, n_blocks=12)
        original = _tear(system, run.addresses[4])
        p = system.resolve(run.addresses[4])
        used = system.disks[p.disk].used_blocks
        blk = system.read_stripe([run.addresses[4]])[0]
        assert np.array_equal(blk.keys, original.keys)
        assert system.faults.stats.torn_writes_detected == 1
        assert system.faults.stats.recovery_read_ios > 0
        # Repair replaces the bytes in the existing slot — the slot is
        # never cycled through the free list.
        assert system.disks[p.disk].used_blocks == used
        assert system.disks[p.disk]._slots[p.slot].verify()

    def test_tear_without_parity_is_fatal(self, rng):
        system = _system(plan=FaultPlan(seed=5))
        run = _run(system, rng, n_blocks=8)
        _tear(system, run.addresses[0])
        with pytest.raises(DataError, match="redundancy='none'"):
            system.read_stripe([run.addresses[0]])

    def test_scrub_addresses_charges_scan_and_reports(self, rng):
        system = _system()
        run = _run(system, rng, n_blocks=12)
        before = system.stats.snapshot()
        rep = scrub_addresses(system, run.addresses)
        assert rep.scanned == 12
        assert rep.repaired == 0
        assert rep.scan_read_rounds == 3  # 12 blocks over 4 spindles
        assert system.stats.since(before).blocks_read == 12

    def test_full_scrub_repairs_every_stale_seal(self, rng):
        system = _system()
        run = _run(system, rng, n_blocks=12)
        _tear(system, run.addresses[1])
        _tear(system, run.addresses[7])
        audit = audit_checksums(system)
        assert len(audit["stale"]) == 2
        rep = scrub_and_repair(system)
        assert rep.repaired == 2
        assert rep.scanned == 16  # 12 data + 4 parity blocks
        assert system.faults.stats.torn_writes_detected == 2
        assert audit_checksums(system)["stale"] == []


class TestParityDeath:
    def test_death_rebuilds_bit_identically_with_charged_reads(self, rng):
        system = _system()
        run = _run(system, rng, n_blocks=12)
        before = [system.peek(a).keys.copy() for a in run.addresses]
        system._kill_disk(2, "test")
        report = system.death_reports[0]
        assert report.mode == "parity"
        # Disk 2 held data blocks 2, 6, 10 plus group 1's parity block.
        assert report.recovered_blocks == 4
        assert report.recovery_read_rounds > 0
        assert (
            system.faults.stats.recovery_read_ios >= report.recovery_read_rounds
        )
        for addr, keys in zip(run.addresses, before):
            assert np.array_equal(system.peek(addr).keys, keys)

    def test_tear_plus_parity_loss_is_loud_data_loss(self, rng):
        # The URE-during-rebuild window: a latent tear whose repair
        # source (the group's parity block) rides the dying disk is a
        # two-loss group.  The pristine bytes are genuinely gone, and
        # the model must say so rather than serve stale data.
        system = _system()
        run = _run(system, rng, n_blocks=12)
        _tear(system, run.addresses[0])  # member of group 0, parity on 3
        with pytest.raises(DataError, match="corrupt and parity is lost"):
            system._kill_disk(3, "test")

    def test_untracked_block_makes_parity_rebuild_loud(self, rng):
        system = _system()
        _run(system, rng, n_blocks=12)
        rogue = Block(
            keys=np.arange(B, dtype=np.int64), run_id=7, index=0
        ).seal()
        system.disks[1].write(system.disks[1].allocate(), rogue)
        with pytest.raises(DataError, match="not parity-tracked"):
            system._kill_disk(1, "test")


class TestWriterFaultPath:
    def _feed(self, writer, keys):
        """Append in ragged chunks so the ring wraps mid-append."""
        sizes = [5, 17, 64, 3, 96, 40]
        pos, i = 0, 0
        while pos < keys.size:
            take = min(sizes[i % len(sizes)], keys.size - pos)
            writer.append(keys[pos : pos + take])
            pos += take
            i += 1

    def test_ring_wrap_and_partial_stripe_under_write_storm(self, rng):
        system = _system(plan=FaultPlan(seed=21, write_fail_p=0.2))
        writer = RunWriter(system, run_id=0, start_disk=1)
        keys = make_sorted_keys(rng, D * B * 7 + 13)
        self._feed(writer, keys)
        run = writer.finalize()
        assert writer.max_buffered_blocks <= 2 * D
        out = np.concatenate([system.peek(a).keys for a in run.addresses])
        assert np.array_equal(out, keys)
        assert system.faults.stats.write_failures > 0

    def test_torn_writes_surface_on_reread_and_repair(self, rng):
        system = _system(
            plan=FaultPlan(seed=22, torn_write_p=0.25, redundancy="parity")
        )
        writer = RunWriter(system, run_id=0, start_disk=0)
        keys = make_sorted_keys(rng, D * B * 7 + 13)
        self._feed(writer, keys)
        run = writer.finalize()
        s = system.faults.stats
        assert s.torn_writes_injected > 0
        # A charged re-read of every block trips each stale seal and
        # repairs it from parity.
        got = []
        for addr in run.addresses:
            blk = system.read_stripe([addr])[0]
            assert blk.verify()
            got.append(blk.keys)
        assert np.array_equal(np.concatenate(got), keys)
        assert s.torn_writes_detected == s.torn_writes_injected
        assert audit_checksums(system)["stale"] == []
