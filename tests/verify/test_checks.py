"""Tests for verification utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disks import ParallelDiskSystem, StripedRun
from repro.errors import DataError
from repro.verify import (
    assert_sorted_permutation,
    check_striped_run,
    is_permutation_of,
    is_sorted,
)


class TestPredicates:
    def test_is_sorted(self):
        assert is_sorted(np.array([1, 2, 2, 3]))
        assert not is_sorted(np.array([2, 1]))
        assert is_sorted(np.array([]))
        assert is_sorted(np.array([7]))

    def test_is_permutation(self):
        assert is_permutation_of([3, 1, 2], [1, 2, 3])
        assert not is_permutation_of([1, 1, 2], [1, 2, 2])
        assert not is_permutation_of([1], [1, 1])

    def test_assert_sorted_permutation_passes(self):
        assert_sorted_permutation(np.array([1, 2, 3]), np.array([3, 1, 2]))

    def test_assert_sorted_permutation_rejects_unsorted(self):
        with pytest.raises(DataError):
            assert_sorted_permutation(np.array([2, 1]), np.array([1, 2]))

    def test_assert_sorted_permutation_rejects_wrong_multiset(self):
        with pytest.raises(DataError):
            assert_sorted_permutation(np.array([1, 2]), np.array([1, 3]))


class TestCheckStripedRun:
    def test_valid_run_passes(self):
        system = ParallelDiskSystem(3, 4)
        run = StripedRun.from_sorted_keys(system, np.arange(0, 60, 2), 0, 1)
        check_striped_run(system, run)  # no exception

    def test_writer_output_passes(self):
        from repro.core import RunWriter

        system = ParallelDiskSystem(3, 4)
        w = RunWriter(system, 0, 2)
        w.append(np.arange(55))
        run = w.finalize()
        check_striped_run(system, run)

    def test_detects_broken_cyclic_layout(self):
        system = ParallelDiskSystem(3, 4)
        run = StripedRun.from_sorted_keys(system, np.arange(24), 0, 0)
        run.start_disk = 1  # lie about the layout
        with pytest.raises(DataError):
            check_striped_run(system, run)

    def test_detects_corrupted_metadata(self):
        system = ParallelDiskSystem(3, 4)
        run = StripedRun.from_sorted_keys(system, np.arange(24), 0, 0)
        run.first_keys[2] += 1
        with pytest.raises(DataError):
            check_striped_run(system, run)

    def test_detects_bad_forecast(self):
        system = ParallelDiskSystem(2, 4)
        run = StripedRun.from_sorted_keys(system, np.arange(32), 0, 0)
        addr = run.addresses[1]
        blk = system.disks[addr.disk].read(addr.slot)
        blk.forecast = (123.0,)
        with pytest.raises(DataError):
            check_striped_run(system, run)

    def test_detects_wrong_record_count(self):
        system = ParallelDiskSystem(2, 4)
        run = StripedRun.from_sorted_keys(system, np.arange(32), 0, 0)
        run.n_records = 99
        with pytest.raises(DataError):
            check_striped_run(system, run)


class TestCheckSuperblockRun:
    def _run(self, system, keys):
        from repro.baselines import write_superblock_run

        return write_superblock_run(system, keys, 0)

    def test_valid_run_passes(self):
        from repro.verify import check_superblock_run

        system = ParallelDiskSystem(3, 4)
        run = self._run(system, np.arange(0, 60, 2))
        check_superblock_run(system, run)

    def test_dsm_sort_output_passes(self, rng):
        from repro.baselines import dsm_mergesort
        from repro.core import DSMConfig
        from repro.disks import StripedFile
        from repro.verify import check_superblock_run

        system = ParallelDiskSystem(3, 4)
        infile = StripedFile.from_records(system, rng.permutation(600))
        res = dsm_mergesort(
            system, infile, DSMConfig(n_disks=3, block_size=4, merge_order=2),
            run_length=24,
        )
        check_superblock_run(system, res.output)

    def test_detects_desynchronized_stripe(self):
        from repro.verify import check_superblock_run

        system = ParallelDiskSystem(3, 4)
        run = self._run(system, np.arange(0, 60, 2))
        run.stripes[1] = list(reversed(run.stripes[1]))
        with pytest.raises(DataError):
            check_superblock_run(system, run)

    def test_detects_wrong_count(self):
        from repro.verify import check_superblock_run

        system = ParallelDiskSystem(3, 4)
        run = self._run(system, np.arange(0, 60, 2))
        run.n_records = 1
        with pytest.raises(DataError):
            check_superblock_run(system, run)


class TestCheckClusterShards:
    def _result(self, seed=0, p=2):
        from repro.cluster import ClusterConfig, cluster_sort
        from repro.core import SRMConfig

        keys = np.random.default_rng(42).permutation(4000).astype(np.int64)
        cfg = SRMConfig.from_k(2, 2, 8)
        _, res = cluster_sort(keys, ClusterConfig(n_nodes=p), cfg, rng=seed)
        return res

    def test_valid_cluster_passes(self):
        from repro.verify import check_cluster_shards

        check_cluster_shards(self._result())

    def test_detects_record_loss(self):
        from repro.verify import check_cluster_shards

        res = self._result()
        res.n_records += 1
        with pytest.raises(DataError):
            check_cluster_shards(res)

    def test_detects_splitter_violation(self):
        from repro.verify import check_cluster_shards

        res = self._result()
        # Claim a splitter below node 1's smallest key: its whole shard
        # now sits above its range, but node 0's shard must then violate
        # either its own upper bound or the global order.
        res.splitters = res.splitters - (res.splitters + 1)
        with pytest.raises(DataError):
            check_cluster_shards(res)

    def test_detects_shard_overlap(self):
        from repro.verify import check_cluster_shards

        res = self._result()
        # Swap the two nodes' positions: shards are each valid runs but
        # their node-order concatenation is no longer sorted.
        res.nodes = list(reversed(res.nodes))
        res.nodes[0].index, res.nodes[1].index = 0, 1
        res.splitters = np.empty(0, dtype=np.int64)
        with pytest.raises(DataError):
            check_cluster_shards(res)
