"""Export integrity: the documented public surface must actually exist."""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.disks",
    "repro.baselines",
    "repro.occupancy",
    "repro.analysis",
    "repro.workloads",
    "repro.verify",
    "repro.memory",
]


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_names_resolve(pkg):
    mod = importlib.import_module(pkg)
    assert hasattr(mod, "__all__"), f"{pkg} lacks __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{pkg}.{name} in __all__ but missing"


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_names_unique(pkg):
    mod = importlib.import_module(pkg)
    assert len(mod.__all__) == len(set(mod.__all__))


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_every_public_callable_has_a_docstring():
    for pkg in PACKAGES:
        mod = importlib.import_module(pkg)
        for name in mod.__all__:
            obj = getattr(mod, name)
            if callable(obj) and not isinstance(obj, type(int)):
                assert obj.__doc__, f"{pkg}.{name} lacks a docstring"


def test_py_typed_marker_ships():
    import repro
    from pathlib import Path

    assert (Path(repro.__file__).parent / "py.typed").exists()
