"""Tests for classical maximum occupancy sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.occupancy import (
    exact_classical_expected_max,
    expected_max_occupancy,
    max_occupancy_samples,
    overhead_v,
)


class TestSampling:
    def test_shape_and_dtype(self, rng):
        s = max_occupancy_samples(10, 4, n_trials=50, rng=rng)
        assert s.shape == (50,)
        assert s.dtype == np.int64

    def test_bounds(self, rng):
        s = max_occupancy_samples(12, 4, n_trials=200, rng=rng)
        # max occupancy is at least ceil(N/D) and at most N.
        assert s.min() >= 3
        assert s.max() <= 12

    def test_one_bin_degenerate(self, rng):
        s = max_occupancy_samples(7, 1, n_trials=10, rng=rng)
        assert np.all(s == 7)

    def test_one_ball(self, rng):
        s = max_occupancy_samples(1, 5, n_trials=10, rng=rng)
        assert np.all(s == 1)

    def test_deterministic_with_seed(self):
        a = max_occupancy_samples(20, 4, n_trials=30, rng=7)
        b = max_occupancy_samples(20, 4, n_trials=30, rng=7)
        assert np.array_equal(a, b)

    def test_chunking_preserves_results(self):
        a = max_occupancy_samples(20, 4, n_trials=100, rng=7, _chunk_cells=8)
        b = max_occupancy_samples(20, 4, n_trials=100, rng=7)
        assert np.array_equal(a, b)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            max_occupancy_samples(0, 4)
        with pytest.raises(ConfigError):
            max_occupancy_samples(4, 0)
        with pytest.raises(ConfigError):
            max_occupancy_samples(4, 4, n_trials=0)


class TestEstimates:
    def test_matches_exact_small_case(self, rng):
        # 8 balls, 3 bins: compare Monte-Carlo to the exact EGF value.
        exact = float(exact_classical_expected_max(8, 3))
        est = expected_max_occupancy(8, 3, n_trials=6000, rng=rng)
        assert est.mean == pytest.approx(exact, abs=5 * est.std_error + 1e-9)

    def test_std_error_shrinks(self, rng):
        small = expected_max_occupancy(20, 5, n_trials=100, rng=rng)
        large = expected_max_occupancy(20, 5, n_trials=10_000, rng=rng)
        assert large.std_error < small.std_error

    def test_normalized(self, rng):
        est = expected_max_occupancy(100, 10, n_trials=100, rng=rng)
        assert est.normalized == pytest.approx(est.mean / 10.0)


class TestOverheadV:
    """Reproduce spot values of the paper's Table 1."""

    def test_v_at_least_one(self, rng):
        # Max occupancy >= mean occupancy k, so v >= 1 always.
        assert overhead_v(5, 5, n_trials=200, rng=rng) >= 1.0

    def test_v_decreases_with_k(self, rng):
        # Down a Table 1 column: more balls per bin -> better balance.
        v_small = overhead_v(5, 50, n_trials=200, rng=rng)
        v_large = overhead_v(100, 50, n_trials=200, rng=rng)
        assert v_large < v_small

    def test_v_increases_with_d(self, rng):
        # Across a Table 1 row: more bins -> worse relative imbalance.
        v_few = overhead_v(10, 5, n_trials=300, rng=rng)
        v_many = overhead_v(10, 100, n_trials=300, rng=rng)
        assert v_many > v_few

    @pytest.mark.parametrize(
        "k,D,expected,tol",
        [
            (5, 5, 1.6, 0.15),
            (5, 50, 2.2, 0.15),
            (10, 10, 1.5, 0.15),
            (50, 50, 1.3, 0.1),
            (100, 100, 1.26, 0.08),
        ],
    )
    def test_table1_spot_values(self, k, D, expected, tol):
        v = overhead_v(k, D, n_trials=500, rng=12345)
        assert v == pytest.approx(expected, abs=tol)
