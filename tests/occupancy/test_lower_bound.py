"""Tests for the Bonferroni lower bound on classical max occupancy."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.occupancy import (
    classical_expected_max_lower_bound,
    exact_classical_expected_max,
    expected_max_occupancy,
    gf_expected_max_bound,
)


class TestLowerBound:
    @pytest.mark.parametrize("n_balls,d", [(8, 4), (12, 4), (20, 5), (30, 3), (50, 10)])
    def test_below_exact(self, n_balls, d):
        exact = float(exact_classical_expected_max(n_balls, d))
        assert classical_expected_max_lower_bound(n_balls, d) <= exact + 1e-9

    @pytest.mark.parametrize("n_balls,d", [(12, 4), (30, 5)])
    def test_sandwich_with_upper_bound(self, n_balls, d):
        lo = classical_expected_max_lower_bound(n_balls, d)
        hi = gf_expected_max_bound(n_balls, d)
        exact = float(exact_classical_expected_max(n_balls, d))
        assert lo <= exact <= hi

    def test_below_monte_carlo_at_scale(self):
        # Beyond exact-computation range, check against sampling.
        for k, d in [(5, 50), (20, 20)]:
            est = expected_max_occupancy(k * d, d, n_trials=2000, rng=9)
            lo = classical_expected_max_lower_bound(k * d, d)
            assert lo <= est.mean + 3 * est.std_error

    def test_not_vacuous(self):
        # Strictly above the mean load where imbalance is substantial.
        lo = classical_expected_max_lower_bound(50, 10)
        assert lo > 5.0 + 0.5

    def test_reasonably_tight_small(self):
        exact = float(exact_classical_expected_max(20, 5))
        lo = classical_expected_max_lower_bound(20, 5)
        assert lo >= 0.6 * exact

    def test_single_bin(self):
        assert classical_expected_max_lower_bound(9, 1) == 9.0

    def test_at_least_mean_load(self):
        assert classical_expected_max_lower_bound(1000, 4) >= 250.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            classical_expected_max_lower_bound(0, 4)
