"""Tests for the Theorem 2 analytic bounds."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.occupancy import (
    exact_classical_expected_max,
    expected_max_occupancy,
    gf_expected_max_bound,
    max_occupancy_samples,
    max_tail_probability_bound,
    tail_probability_bound,
    theorem2_case1_bound,
    theorem2_case2_bound,
)


class TestTailBound:
    def test_is_valid_probability_bound(self):
        # Empirical tail frequency must sit below the analytic bound.
        n_balls, d = 100, 10
        samples = max_occupancy_samples(n_balls, d, n_trials=4000, rng=5)
        for m in (15, 20, 25):
            emp = float((samples > m).mean())
            bound = max_tail_probability_bound(n_balls, d, m)
            assert emp <= bound + 0.02

    def test_decreasing_in_m(self):
        bounds = [max_tail_probability_bound(50, 5, m) for m in range(10, 30, 4)]
        assert all(a >= b for a, b in zip(bounds, bounds[1:]))

    def test_alpha_must_be_positive(self):
        with pytest.raises(ConfigError):
            tail_probability_bound(10, 2, 5, alpha=0)

    def test_capped_at_one(self):
        assert tail_probability_bound(100, 2, 0, alpha=1.0) == 1.0

    def test_explicit_alpha_never_beats_optimized(self):
        for alpha in (0.1, 0.5, 1.0, 3.0):
            assert max_tail_probability_bound(60, 6, 15) <= (
                max_tail_probability_bound(60, 6, 15, alpha=alpha) + 1e-12
            )


class TestGfBound:
    def test_upper_bounds_exact_small(self):
        for n_balls, d in [(8, 4), (12, 4), (20, 5), (30, 3)]:
            exact = float(exact_classical_expected_max(n_balls, d))
            assert gf_expected_max_bound(n_balls, d) >= exact

    def test_upper_bounds_monte_carlo_large(self):
        for k, d in [(5, 50), (10, 100), (50, 20)]:
            est = expected_max_occupancy(k * d, d, n_trials=400, rng=3)
            assert gf_expected_max_bound(k * d, d) >= est.mean - 3 * est.std_error

    def test_at_least_mean_load(self):
        assert gf_expected_max_bound(1000, 10) >= 100.0

    def test_single_bin(self):
        assert gf_expected_max_bound(17, 1) == 17.0

    def test_becomes_tight_for_heavy_load(self):
        # With N_b = r D ln D and large r the bound approaches N_b/D
        # (Theorem 2 case 2: factor 1 + sqrt(2/r) + ...).
        d = 100
        for r, rel in [(2, 1.2), (50, 1.25)]:
            n_balls = int(r * d * math.log(d))
            bound = gf_expected_max_bound(n_balls, d)
            assert bound / (n_balls / d) <= 1 + math.sqrt(2 / r) * rel + 0.3

    def test_invalid(self):
        with pytest.raises(ConfigError):
            gf_expected_max_bound(0, 4)


class TestAsymptoticExpansions:
    def test_case1_grows_like_lnd_over_lnlnd(self):
        # Ratio to ln D / ln ln D tends to 1-ish for huge D.
        d = 10**9
        lead = math.log(d) / math.log(math.log(d))
        assert theorem2_case1_bound(1.0, d) == pytest.approx(lead, rel=0.75)

    def test_case1_increases_with_k(self):
        assert theorem2_case1_bound(10, 1000) > theorem2_case1_bound(2, 1000)

    def test_case1_rejects_tiny_d(self):
        with pytest.raises(ConfigError):
            theorem2_case1_bound(1.0, 2)

    def test_case2_approaches_perfect_balance(self):
        d = 1000
        r_small = theorem2_case2_bound(1.0, d) / (1.0 * d * math.log(d) / d)
        r_large = theorem2_case2_bound(100.0, d) / (100.0 * d * math.log(d) / d)
        assert r_large < r_small
        assert r_large == pytest.approx(1.0, abs=0.2)

    def test_case2_upper_bounds_simulation(self):
        d, r = 50, 4.0
        n_balls = int(r * d * math.log(d))
        est = expected_max_occupancy(n_balls, d, n_trials=400, rng=17)
        # Use the exact r implied by the integer ball count.
        r_eff = n_balls / (d * math.log(d))
        assert theorem2_case2_bound(r_eff, d) >= est.mean - 3 * est.std_error

    def test_case2_invalid(self):
        with pytest.raises(ConfigError):
            theorem2_case2_bound(0, 10)
        with pytest.raises(ConfigError):
            theorem2_case2_bound(1.0, 1)
