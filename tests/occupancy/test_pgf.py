"""Tests for the PGF machinery (paper equation (6) and (3)-(5))."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.occupancy import (
    classical_one_bin_pmf,
    dependent_max_occupancy_samples,
    exact_classical_expected_max,
    exact_dependent_expected_max,
    expected_max_upper_bound,
    gf_expected_max_bound,
    max_occupancy_tail_bound,
    one_bin_pmf,
    one_bin_tail,
    tail_probability_bound,
)


class TestOneBinPmf:
    def test_single_chain(self):
        base, pmf = one_bin_pmf([3], n_bins=4)
        assert base == 0
        assert pmf == pytest.approx([0.25, 0.75])

    def test_independent_chains_convolve(self):
        _, pmf = one_bin_pmf([2, 2], n_bins=4)
        # Each chain hits the bin w.p. 1/2 independently.
        assert pmf == pytest.approx([0.25, 0.5, 0.25])

    def test_full_cycles_become_base(self):
        base, pmf = one_bin_pmf([8, 3], n_bins=4)
        assert base == 2
        assert pmf == pytest.approx([0.25, 0.75])

    def test_pmf_normalized(self):
        _, pmf = one_bin_pmf([1, 2, 3, 5, 7], n_bins=4)
        assert pmf.sum() == pytest.approx(1.0)

    def test_classical_is_binomial(self):
        from math import comb

        pmf = classical_one_bin_pmf(6, 3)
        expect = [comb(6, t) * (1 / 3) ** t * (2 / 3) ** (6 - t) for t in range(7)]
        assert pmf == pytest.approx(expect)

    def test_matches_empirical_one_bin(self):
        # Cross-check against Monte-Carlo occupancy of bin 0.
        rng = np.random.default_rng(0)
        lengths = [3, 2, 5, 1]
        D, trials = 6, 40_000
        starts = rng.integers(0, D, size=(trials, len(lengths)))
        occ0 = np.zeros(trials, dtype=np.int64)
        for j, l in enumerate(lengths):
            covered = ((0 - starts[:, j]) % D) < l
            occ0 += covered
        base, pmf = one_bin_pmf(lengths, D)
        emp = np.bincount(occ0, minlength=pmf.size) / trials
        assert emp[: pmf.size] == pytest.approx(pmf, abs=0.01)


class TestTails:
    def test_exact_tail_values(self):
        # One chain of 2 in 4 bins: P(X > 0) = 1/2.
        assert one_bin_tail([2], 4, 0) == pytest.approx(0.5)
        assert one_bin_tail([2], 4, 1) == 0.0

    def test_below_base_is_certain(self):
        assert one_bin_tail([8], 4, 1) == 1.0  # base = 2 > m = 1

    def test_saddle_point_bound_dominates_exact(self):
        # The paper's inequality (13)/(18) must sit above the exact tail
        # for the classical (unit-chain) case it bounds.
        n_balls, d = 40, 5
        for m in range(8, 25, 4):
            exact = one_bin_tail([1] * n_balls, d, m)
            for alpha in (0.5, 1.0, 2.0):
                assert tail_probability_bound(n_balls, d, m, alpha) >= exact - 1e-12

    def test_union_bound_dominates_sampling(self):
        lengths = [4, 3, 2, 2, 1]
        d = 4
        samples = dependent_max_occupancy_samples(lengths, d, n_trials=20_000, rng=1)
        for m in (3, 4, 5):
            emp = float((samples > m).mean())
            assert max_occupancy_tail_bound(lengths, d, m) >= emp - 0.01


class TestExpectedMaxBound:
    def test_dominates_exact_dependent(self):
        for lengths, d in [([2, 2, 2], 3), ([4, 3, 2, 2, 1], 4), ([1] * 8, 4)]:
            exact = float(exact_dependent_expected_max(lengths, d))
            assert expected_max_upper_bound(lengths, d) >= exact - 1e-9

    def test_dominates_exact_classical(self):
        exact = float(exact_classical_expected_max(12, 4))
        assert expected_max_upper_bound([1] * 12, 4) >= exact - 1e-9

    def test_tighter_than_saddle_point_bound(self):
        # Exact tails beat the (13)-based closed form everywhere we look.
        for k, d in [(5, 10), (10, 20), (20, 8)]:
            lengths = [1] * (k * d)
            assert expected_max_upper_bound(lengths, d) <= gf_expected_max_bound(
                k * d, d
            ) + 1e-9

    def test_degenerate_full_cycles(self):
        # All chains multiples of D: occupancy is deterministic.
        assert expected_max_upper_bound([4, 8], 4) == pytest.approx(3.0)

    def test_reasonably_tight(self):
        # Within ~35% of the exact value on a mid-size instance.
        lengths = [1] * 30
        exact = float(exact_classical_expected_max(30, 5))
        bound = expected_max_upper_bound(lengths, 5)
        assert bound <= 1.35 * exact
