"""Tests for dependent (chained) maximum occupancy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.occupancy import (
    FIGURE1_CHAIN_LENGTHS,
    FIGURE1_N_BINS,
    canonicalize_chains,
    dependent_max_occupancy_samples,
    dependent_occupancy_counts,
    exact_dependent_expected_max,
    expected_dependent_max_occupancy,
    expected_max_occupancy,
    figure1_classical_instance,
    figure1_dependent_instance,
)


class TestCanonicalize:
    def test_lemma9_reduction(self):
        # Chain of length aD + b -> a to every bin + residual chain b.
        base, residual = canonicalize_chains([11], n_bins=4)  # 11 = 2*4 + 3
        assert base == 2
        assert list(residual) == [3]

    def test_exact_multiple_vanishes(self):
        base, residual = canonicalize_chains([8], n_bins=4)
        assert base == 2
        assert residual.size == 0

    def test_mixed_chains(self):
        base, residual = canonicalize_chains([1, 4, 5, 9], n_bins=4)
        assert base == 0 + 1 + 1 + 2
        assert sorted(residual) == [1, 1, 1]

    def test_invalid_length(self):
        with pytest.raises(ConfigError):
            canonicalize_chains([0], 4)


class TestDeterministicCounts:
    def test_single_chain_wraps(self):
        occ = dependent_occupancy_counts([6], [2], n_bins=4)
        # bins 2,3,0,1,2,3 -> [1,1,2,2]
        assert list(occ) == [1, 1, 2, 2]

    def test_total_preserved(self):
        occ = dependent_occupancy_counts([3, 5, 2], [0, 1, 3], n_bins=4)
        assert occ.sum() == 10

    def test_mismatched_args(self):
        with pytest.raises(ConfigError):
            dependent_occupancy_counts([1, 2], [0], 4)


class TestSampler:
    def test_deterministic_with_seed(self):
        a = dependent_max_occupancy_samples([3, 4, 5], 4, n_trials=50, rng=3)
        b = dependent_max_occupancy_samples([3, 4, 5], 4, n_trials=50, rng=3)
        assert np.array_equal(a, b)

    def test_all_full_cycles_is_constant(self):
        s = dependent_max_occupancy_samples([4, 8], 4, n_trials=20, rng=0)
        assert np.all(s == 3)

    def test_matches_bruteforce_reference(self):
        # The vectorized difference-array sampler must agree trial-by-trial
        # with the O(balls) reference when replaying the same start draws.
        # Lengths < D so Lemma 9 canonicalization is the identity.
        lengths = [3, 2, 5, 1, 4]
        D = 6
        trials = 40
        fast = dependent_max_occupancy_samples(lengths, D, n_trials=trials, rng=42)
        ref_gen = np.random.default_rng(42)
        starts = ref_gen.integers(0, D, size=(trials, len(lengths)))
        ref = np.array(
            [
                dependent_occupancy_counts(lengths, starts[t], D).max()
                for t in range(trials)
            ]
        )
        assert np.array_equal(fast, ref)

    def test_matches_exact_expectation(self, rng):
        lengths = [3, 1, 2, 2]
        exact = float(exact_dependent_expected_max(lengths, 3))
        est = expected_dependent_max_occupancy(lengths, 3, n_trials=8000, rng=rng)
        assert est.mean == pytest.approx(exact, abs=5 * est.std_error + 1e-9)

    @given(
        lengths=st.lists(st.integers(1, 9), min_size=1, max_size=5),
        d=st.integers(2, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_sample_bounds(self, lengths, d):
        s = dependent_max_occupancy_samples(lengths, d, n_trials=20, rng=1)
        total = sum(lengths)
        assert np.all(s >= -(-total // d))  # >= ceil(total/d)
        assert np.all(s <= total)

    def test_chunking_preserves_results(self):
        a = dependent_max_occupancy_samples([3, 5, 2], 4, n_trials=64, rng=9, _chunk_cells=16)
        b = dependent_max_occupancy_samples([3, 5, 2], 4, n_trials=64, rng=9)
        assert np.array_equal(a, b)


class TestConjecture:
    """The paper conjectures dependent <= classical expected max (§7.2)."""

    @pytest.mark.parametrize(
        "lengths,d",
        [
            ([3, 3, 3, 3], 4),
            ([5, 1, 1, 1, 1, 1, 1, 1], 4),
            ([2] * 10, 5),
            ([7, 6, 5, 4], 6),
        ],
    )
    def test_dependent_below_classical(self, lengths, d):
        n_balls = sum(lengths)
        dep = expected_dependent_max_occupancy(lengths, d, n_trials=4000, rng=11)
        cla = expected_max_occupancy(n_balls, d, n_trials=4000, rng=13)
        slack = 3 * (dep.std_error + cla.std_error)
        assert dep.mean <= cla.mean + slack


class TestFigure1:
    def test_dependent_panel(self):
        occ = figure1_dependent_instance()
        assert occ.sum() == 12
        assert occ.max() == 4
        assert int(np.argmax(occ)) == 1  # "realized in the second bin"

    def test_classical_panel(self):
        occ = figure1_classical_instance()
        assert occ.sum() == 12
        assert occ.max() == 5
        assert int(np.argmax(occ)) == 1

    def test_instance_parameters(self):
        assert sum(FIGURE1_CHAIN_LENGTHS) == 12
        assert len(FIGURE1_CHAIN_LENGTHS) == 5
        assert FIGURE1_N_BINS == 4
