"""Tests for exact occupancy distributions."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ConfigError
from repro.occupancy import (
    classical_max_cdf,
    classical_max_pmf,
    dependent_max_pmf,
    exact_classical_expected_max,
    exact_dependent_expected_max,
)


class TestClassicalExact:
    def test_two_balls_two_bins(self):
        # max = 1 iff the balls split (prob 1/2); else max = 2.
        pmf = classical_max_pmf(2, 2)
        assert pmf == {1: Fraction(1, 2), 2: Fraction(1, 2)}

    def test_cdf_monotone_and_normalized(self):
        vals = [classical_max_cdf(10, 3, m) for m in range(11)]
        assert all(a <= b for a, b in zip(vals, vals[1:]))
        assert vals[-1] == 1
        # max occupancy >= ceil(10/3) = 4, so P(max <= 3) = 0.
        assert vals[3] == 0

    def test_cdf_edge_cases(self):
        assert classical_max_cdf(5, 2, -1) == 0
        assert classical_max_cdf(5, 2, 5) == 1
        assert classical_max_cdf(5, 2, 99) == 1

    def test_expectation_three_balls_three_bins(self):
        # By hand: 27 placements; max=1 in 3! = 6 of them; max=3 in 3;
        # max=2 in 18.  E = (6*1 + 18*2 + 3*3)/27 = 51/27 = 17/9.
        assert exact_classical_expected_max(3, 3) == Fraction(17, 9)

    def test_one_bin(self):
        assert exact_classical_expected_max(6, 1) == 6

    def test_pmf_sums_to_one(self):
        pmf = classical_max_pmf(12, 4)
        assert sum(pmf.values()) == 1

    def test_too_large_refused(self):
        with pytest.raises(ConfigError):
            classical_max_cdf(500, 4, 3)


class TestDependentExact:
    def test_single_chain_shorter_than_d(self):
        # One chain of length 2 in 3 bins: max is always 1.
        pmf = dependent_max_pmf([2], 3)
        assert pmf == {1: Fraction(1)}

    def test_single_chain_wrapping(self):
        # One chain of length 4 in 3 bins: 1 full cycle + residual 1.
        pmf = dependent_max_pmf([4], 3)
        assert pmf == {2: Fraction(1)}

    def test_two_unit_chains_match_classical(self):
        # Unit chains ARE classical balls (the special case noted in §7.1).
        dep = dependent_max_pmf([1, 1], 2)
        cla = classical_max_pmf(2, 2)
        assert dep == cla

    @pytest.mark.parametrize("n_balls,d", [(3, 2), (4, 3), (5, 2)])
    def test_unit_chains_match_classical_general(self, n_balls, d):
        assert dependent_max_pmf([1] * n_balls, d) == classical_max_pmf(n_balls, d)

    def test_lemma9_exact_distribution_equality(self):
        # A chain of length D + b has the same occupancy distribution as
        # one length-D chain plus one length-b chain (Lemma 9's proof).
        d = 3
        lhs = dependent_max_pmf([5, 2], d)       # 5 = 1*3 + 2
        rhs = dependent_max_pmf([3, 2, 2], d)
        assert lhs == rhs

    def test_lemma9_multiple_wraps(self):
        d = 2
        lhs = dependent_max_pmf([7], d)          # 7 = 3*2 + 1
        rhs = dependent_max_pmf([2, 2, 2, 1], d)
        assert lhs == rhs

    def test_expectation_monotone_in_load(self):
        a = exact_dependent_expected_max([2, 2], 3)
        b = exact_dependent_expected_max([2, 2, 2], 3)
        assert b > a

    def test_dependent_at_most_classical_exact(self):
        # Exact verification of the paper's §7.2 conjecture on a small case.
        lengths = [2, 2, 2]
        dep = exact_dependent_expected_max(lengths, 3)
        cla = exact_classical_expected_max(6, 3)
        assert dep <= cla

    def test_refuses_huge_enumeration(self):
        with pytest.raises(ConfigError):
            dependent_max_pmf([1] * 30, 10)

    def test_invalid_chain(self):
        with pytest.raises(ConfigError):
            dependent_max_pmf([0], 3)
