"""Failure-injection tests: the library must fail loudly, not wrongly."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DiskFullError,
    InvalidIOError,
    ParallelDiskSystem,
    SRMConfig,
    StripedFile,
    StripedRun,
)
from repro.core import merge_runs, srm_mergesort
from repro.errors import DataError, ScheduleError


class TestCapacityExhaustion:
    def test_sort_fails_cleanly_when_disks_too_small(self, rng):
        cfg = SRMConfig.from_k(2, 4, 8)
        # Input needs 128 blocks/disk; leave no room for the output runs.
        system = ParallelDiskSystem(4, 8, capacity_blocks_per_disk=130)
        keys = rng.permutation(4096)
        infile = StripedFile.from_records(system, keys)
        with pytest.raises(DiskFullError):
            srm_mergesort(system, infile, cfg, rng=1, run_length=128)

    def test_capacity_boundary_is_exact(self):
        system = ParallelDiskSystem(1, 4, capacity_blocks_per_disk=3)
        for i in range(3):
            a = system.allocate(0)
            system.write_block(a, __import__("repro").Block(keys=np.array([i])))
        with pytest.raises(DiskFullError):
            system.allocate(0)


class TestCorruptedData:
    def _runs(self, system, rng, R=3, L=24):
        perm = rng.permutation(R * L)
        return [
            StripedRun.from_sorted_keys(
                system, np.sort(perm[i * L : (i + 1) * L]), i, i % system.n_disks
            )
            for i in range(R)
        ]

    def test_corrupted_forecast_detected_in_validate_mode(self, rng):
        system = ParallelDiskSystem(3, 4)
        runs = self._runs(system, rng)
        addr = runs[0].addresses[2]
        system.disks[addr.disk].read(addr.slot).forecast = (1.5,)
        with pytest.raises(DataError):
            merge_runs(system, runs, 9, 0, validate=True)

    def test_corrupted_block_contents_detected(self, rng):
        # Swap a block's keys for garbage: the merge heap desyncs and the
        # validate-mode engine raises instead of producing wrong output.
        system = ParallelDiskSystem(3, 4)
        runs = self._runs(system, rng)
        addr = runs[1].addresses[1]
        blk = system.disks[addr.disk].read(addr.slot)
        blk.keys = blk.keys[::-1].copy()  # now unsorted/mismatched
        with pytest.raises((ScheduleError, DataError)):
            merge_runs(system, runs, 9, 0, validate=True)

    def test_stale_extent_map_detected(self, rng):
        # Freeing a block behind the run's back surfaces as InvalidIOError.
        system = ParallelDiskSystem(3, 4)
        runs = self._runs(system, rng)
        system.free(runs[2].addresses[3])
        with pytest.raises(InvalidIOError):
            merge_runs(system, runs, 9, 0)


class TestModelViolations:
    def test_cannot_read_two_blocks_from_one_disk(self):
        system = ParallelDiskSystem(2, 2)
        import repro

        a1 = system.allocate(0)
        a2 = system.allocate(0)
        system.write_stripe([(a1, repro.Block(keys=np.array([1])))])
        system.write_stripe([(a2, repro.Block(keys=np.array([2])))])
        with pytest.raises(InvalidIOError):
            system.read_stripe([a1, a2])

    def test_cannot_overwrite_live_block_via_stripe(self):
        system = ParallelDiskSystem(2, 2)
        import repro

        a = system.allocate(0)
        system.write_stripe([(a, repro.Block(keys=np.array([1])))])
        with pytest.raises(InvalidIOError):
            system.write_stripe([(a, repro.Block(keys=np.array([2])))])

    def test_reading_freed_block_fails(self):
        system = ParallelDiskSystem(2, 2)
        import repro

        a = system.allocate(1)
        system.write_stripe([(a, repro.Block(keys=np.array([1])))])
        system.free(a)
        with pytest.raises(InvalidIOError):
            system.read_stripe([a])
