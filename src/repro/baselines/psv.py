"""One-run-per-disk merging with transposition — the Pai et al. scheme.

Section 2.1 describes the merge of Pai, Schaffer and Varman [PSV94]:
``R = D`` runs, *each resident entirely on one disk*, merged with one
parallel read fetching the next block of every run.  Two structural
costs follow, and this module implements both so the paper's contrast
with SRM is executable:

* **Merge order is stuck at D.**  Memory beyond the per-run buffers
  cannot buy a wider merge, so the pass count is ``log_D`` instead of
  SRM's ``log_{kD}``.
* **A transposition pass between merge passes.**  The merged output
  must be written striped to get full write bandwidth, but the next
  pass needs each input run on a single disk again; "a mergesort based
  on their merge scheme thus requires an extra transposition pass
  between merge passes" — a full extra read+write of the data.

The merge itself reads with good parallelism only while the runs
deplete at similar rates; skew serializes reads against the binding
run.  Per-run buffering of ``F`` blocks absorbs bounded skew (their
analysis needs ``M = Ω(D^2 B)`` for efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import SRMConfig
from ..disks.block import split_into_blocks
from ..disks.counters import IOStats
from ..disks.files import StripedFile
from ..disks.system import BlockAddress, ParallelDiskSystem
from ..errors import ConfigError, DataError
from ..telemetry import TELEMETRY_OFF
from ..telemetry.schema import (
    H_READ_WIDTH,
    H_RUN_LENGTH,
    SPAN_MERGE,
    SPAN_MERGE_PASS,
    SPAN_RUN_FORMATION,
    SPAN_SORT,
    read_width_edges,
    run_length_edges,
)


@dataclass
class SingleDiskRun:
    """A sorted run stored contiguously on one disk."""

    run_id: int
    disk: int
    addresses: list[BlockAddress]
    n_records: int
    block_size: int

    @property
    def n_blocks(self) -> int:
        return len(self.addresses)


def write_single_disk_run(
    system: ParallelDiskSystem, keys: np.ndarray, run_id: int, disk: int
) -> SingleDiskRun:
    """Write sorted *keys* entirely onto *disk* (one op per block)."""
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        raise DataError("cannot create an empty run")
    if np.any(keys[:-1] > keys[1:]):
        raise DataError("run keys must be sorted ascending")
    blocks = split_into_blocks(keys, system.block_size, run_id=run_id)
    addresses = []
    for blk in blocks:
        addr = system.allocate(disk)
        system.write_stripe([(addr, blk)])
        addresses.append(addr)
    return SingleDiskRun(
        run_id=run_id,
        disk=disk,
        addresses=addresses,
        n_records=int(keys.size),
        block_size=system.block_size,
    )


def write_single_disk_runs_parallel(
    system: ParallelDiskSystem, run_keys: list[np.ndarray], first_run_id: int
) -> list[SingleDiskRun]:
    """Write up to ``D`` runs, run ``j`` onto disk ``j``, with stripe-
    parallel writes (block ``i`` of every run in one operation) —
    the transposition pass's write side."""
    if len(run_keys) > system.n_disks:
        raise ConfigError(
            f"{len(run_keys)} runs exceed D={system.n_disks} disks"
        )
    per_run_blocks = [
        split_into_blocks(np.asarray(k, dtype=np.int64), system.block_size,
                          run_id=first_run_id + j)
        for j, k in enumerate(run_keys)
    ]
    addresses: list[list[BlockAddress]] = [[] for _ in run_keys]
    height = max(len(bs) for bs in per_run_blocks)
    for i in range(height):
        stripe = []
        for j, bs in enumerate(per_run_blocks):
            if i < len(bs):
                addr = system.allocate(j)
                addresses[j].append(addr)
                stripe.append((addr, bs[i]))
        system.write_stripe(stripe)
    return [
        SingleDiskRun(
            run_id=first_run_id + j,
            disk=j,
            addresses=addresses[j],
            n_records=int(np.asarray(run_keys[j]).size),
            block_size=system.block_size,
        )
        for j in range(len(run_keys))
    ]


@dataclass
class PSVMergeResult:
    """Outcome of one PSV merge (output is a striped file)."""

    output: StripedFile
    parallel_reads: int
    parallel_writes: int
    max_buffered_blocks: int


def psv_merge(
    system: ParallelDiskSystem,
    runs: list[SingleDiskRun],
    buffer_blocks_per_run: int,
    free_inputs: bool = True,
    telemetry=None,
) -> PSVMergeResult:
    """Merge one-per-disk runs with stripe reads and per-run buffers.

    Each parallel read fetches the next block of every run whose buffer
    has room; the merge stalls when the run owning the globally
    smallest record has neither buffered records nor a readable block
    (buffer full elsewhere does not block it — its disk is its own).
    Output is written round-robin striped (full parallelism), which is
    precisely why a transposition is needed before the next pass.
    """
    if len(runs) < 2:
        raise DataError(f"a merge needs at least 2 runs, got {len(runs)}")
    if len({r.disk for r in runs}) != len(runs):
        raise ConfigError("PSV requires each run on its own disk")
    if buffer_blocks_per_run < 1:
        raise ConfigError("need at least one buffer block per run")

    start = system.stats.snapshot()
    tel = telemetry if telemetry is not None else TELEMETRY_OFF
    span = tel.span(
        SPAN_MERGE,
        system=system,
        n_runs=len(runs),
        n_blocks=sum(r.n_blocks for r in runs),
        n_disks=system.n_disks,
    )
    h_width = tel.histogram(H_READ_WIDTH, read_width_edges(system.n_disks))
    n = len(runs)
    next_block = [0] * n
    buffers: list[list[np.ndarray]] = [[] for _ in range(n)]
    offsets = [0] * n
    max_buffered = 0

    def fill(force_run: int | None = None) -> None:
        """One parallel read: next block of every run with buffer room.

        *force_run* must receive a block even if its buffer is full
        (it cannot be: the merge only forces when it ran dry)."""
        nonlocal max_buffered
        stripe = []
        targets = []
        for j, run in enumerate(runs):
            if next_block[j] >= run.n_blocks:
                continue
            if len(buffers[j]) >= buffer_blocks_per_run and j != force_run:
                continue
            stripe.append(run.addresses[next_block[j]])
            targets.append(j)
        if not stripe:
            return
        blocks = system.read_stripe(stripe)
        h_width.observe(len(stripe))
        for j, blk in zip(targets, blocks):
            if free_inputs:
                system.free(runs[j].addresses[next_block[j]])
            next_block[j] += 1
            buffers[j].append(blk.keys)
        max_buffered = max(max_buffered, sum(len(b) for b in buffers))

    import heapq

    fill()
    heap = []
    for j in range(n):
        if buffers[j]:
            heap.append((int(buffers[j][0][0]), j))
    heapq.heapify(heap)

    out_chunks: list[np.ndarray] = []
    pending = 0
    out_addresses: list[BlockAddress] = []
    out_block_index = 0
    B, D = system.block_size, system.n_disks
    writes_buf: list[np.ndarray] = []

    def drain_output(final: bool = False) -> None:
        nonlocal pending, out_block_index
        cap = D * B
        while pending >= cap or (final and pending > 0):
            data = np.concatenate(out_chunks) if len(out_chunks) > 1 else out_chunks[0]
            take = data[: min(cap, data.size)]
            rest = data[take.size :]
            out_chunks.clear()
            if rest.size:
                out_chunks.append(rest)
            pending = int(rest.size)
            blocks = split_into_blocks(take, B)
            stripe = []
            for blk in blocks:
                addr = system.allocate(out_block_index % D)
                out_addresses.append(addr)
                stripe.append((addr, blk))
                out_block_index += 1
            system.write_stripe(stripe)
            if final and pending == 0:
                break

    total_records = sum(r.n_records for r in runs)
    while heap:
        key, j = heapq.heappop(heap)
        limit = heap[0][0] if heap else None
        if not buffers[j]:
            fill(force_run=j)
            if not buffers[j]:  # pragma: no cover - defensive
                raise DataError(f"run {j} starved with blocks remaining")
        data = buffers[j][0]
        off = offsets[j]
        if limit is None:
            hi = data.size
        else:
            hi = int(np.searchsorted(data, limit, side="left"))
            if hi <= off:
                hi = off + 1
        out_chunks.append(data[off:hi])
        pending += hi - off
        drain_output()
        if hi == data.size:
            buffers[j].pop(0)
            offsets[j] = 0
        else:
            offsets[j] = hi
        # Re-arm the run if it still has records (buffered or on disk).
        if buffers[j]:
            heapq.heappush(heap, (int(buffers[j][0][offsets[j]]), j))
        elif next_block[j] < runs[j].n_blocks:
            fill(force_run=j)
            heapq.heappush(heap, (int(buffers[j][0][0]), j))
    drain_output(final=True)

    delta = system.stats.since(start)
    out_records = total_records
    span.set(merge_parreads=delta.parallel_reads)
    span.close()
    return PSVMergeResult(
        output=StripedFile(
            addresses=out_addresses, n_records=out_records, block_size=B
        ),
        parallel_reads=delta.parallel_reads,
        parallel_writes=delta.parallel_writes,
        max_buffered_blocks=max_buffered,
    )


@dataclass
class PSVSortResult:
    """Outcome of a full PSV mergesort."""

    output: StripedFile
    n_records: int
    runs_formed: int
    n_merge_passes: int = 0
    n_transpositions: int = 0
    io: IOStats | None = None
    system: ParallelDiskSystem | None = None

    @property
    def total_parallel_ios(self) -> int:
        return self.io.parallel_ios if self.io is not None else 0

    def peek_sorted(self) -> np.ndarray:
        assert self.system is not None
        return np.concatenate(
            [
                self.system.disks[a.disk].read(a.slot).keys
                for a in self.output.addresses
            ]
        )


def psv_mergesort(
    system: ParallelDiskSystem,
    infile: StripedFile,
    run_length: int,
    buffer_blocks_per_run: int = 4,
    telemetry=None,
) -> PSVSortResult:
    """Full PSV-style sort: D-way merges with transposition passes.

    Run formation writes one-per-disk runs directly (no transposition
    needed before the first pass); every subsequent pass transposes the
    striped outputs back onto single disks — the structural overhead
    SRM's cyclic-striped output avoids.
    """
    if infile.n_records == 0:
        raise ConfigError("cannot sort an empty file")
    B, D = system.block_size, system.n_disks
    if D < 2:
        raise ConfigError("PSV needs at least two disks")
    blocks_per_run = max(1, run_length // B)
    if run_length < B:
        raise ConfigError(f"run length {run_length} smaller than one block")
    start = system.stats.snapshot()
    tel = telemetry if telemetry is not None else TELEMETRY_OFF
    sort_span = tel.span(
        SPAN_SORT,
        system=system,
        n_records=infile.n_records,
        n_disks=D,
        block_size=B,
        merge_order=D,
        formation="load_sort",
    )
    rf_span = tel.span(SPAN_RUN_FORMATION, system=system, run_length=run_length)
    h_len = tel.histogram(H_RUN_LENGTH, run_length_edges(run_length))

    # Run formation straight onto single disks, D at a time.
    sorted_chunks: list[np.ndarray] = []
    for i in range(0, infile.n_blocks, blocks_per_run):
        chunk = infile.addresses[i : i + blocks_per_run]
        blocks, _ = system.read_batch(chunk)
        keys = np.concatenate([b.keys for b in blocks])
        keys.sort(kind="stable")
        for addr in chunk:
            system.free(addr)
        h_len.observe(keys.size)
        sorted_chunks.append(keys)
    rf_span.set(runs_formed=len(sorted_chunks))
    rf_span.close()

    result = PSVSortResult(
        output=infile,  # placeholder
        n_records=infile.n_records,
        runs_formed=len(sorted_chunks),
    )

    run_id = 0
    # Level entries are either in-memory arrays (fresh from run
    # formation — their one-per-disk placement below is the formation
    # write) or striped merge outputs (whose gather-back is the
    # transposition READ and whose re-placement is the transposition
    # WRITE).
    level: list[tuple[str, object]] = [("mem", k) for k in sorted_chunks]
    while len(level) > 1:
        next_level: list[tuple[str, object]] = []
        transposed = False
        pass_span = tel.span(
            SPAN_MERGE_PASS,
            system=system,
            pass_index=result.n_merge_passes + 1,
            n_runs_in=len(level),
        )
        for g in range(0, len(level), D):
            group = level[g : g + D]
            if len(group) == 1:
                next_level.append(group[0])
                continue
            arrays: list[np.ndarray] = []
            for kind, item in group:
                if kind == "mem":
                    arrays.append(item)  # type: ignore[arg-type]
                else:
                    striped: StripedFile = item  # type: ignore[assignment]
                    blocks, _ = system.read_batch(striped.addresses)
                    arrays.append(np.concatenate([b.keys for b in blocks]))
                    for a in striped.addresses:
                        system.free(a)
                    transposed = True
            runs = write_single_disk_runs_parallel(system, arrays, run_id)
            run_id += len(arrays)
            mres = psv_merge(
                system, runs, buffer_blocks_per_run, telemetry=telemetry
            )
            next_level.append(("striped", mres.output))
        result.n_merge_passes += 1
        if transposed:
            result.n_transpositions += 1
        pass_span.set(n_runs_out=len(next_level), transposed=transposed)
        pass_span.close()
        level = next_level

    kind, item = level[0]
    if kind == "striped":
        result.output = item  # type: ignore[assignment]
    else:
        # Degenerate single-run input: write it out striped once.
        final = np.asarray(item)
        blocks = split_into_blocks(final, B)
        addrs = []
        stripe = []
        for i, blk in enumerate(blocks):
            addr = system.allocate(i % D)
            addrs.append(addr)
            stripe.append((addr, blk))
            if len(stripe) == D:
                system.write_stripe(stripe)
                stripe = []
        if stripe:
            system.write_stripe(stripe)
        result.output = StripedFile(
            addresses=addrs, n_records=int(final.size), block_size=B
        )
    result.io = system.stats.since(start)
    result.system = system
    sort_span.set(
        runs_formed=result.runs_formed,
        n_merge_passes=result.n_merge_passes,
        n_transpositions=result.n_transpositions,
    )
    sort_span.close()
    return result
