"""Baseline algorithms the paper compares against."""

from .dsm import (
    DSMPassStats,
    DSMSortResult,
    SuperblockRun,
    dsm_mergesort,
    dsm_sort,
    merge_superblock_runs,
    write_superblock_run,
)
from .dsm_model import DSMCost, dsm_exact_cost
from .psv import (
    PSVMergeResult,
    PSVSortResult,
    SingleDiskRun,
    psv_merge,
    psv_mergesort,
    write_single_disk_run,
    write_single_disk_runs_parallel,
)
from .single_disk import single_disk_config, single_disk_sort

__all__ = [
    "DSMPassStats",
    "DSMSortResult",
    "SuperblockRun",
    "dsm_mergesort",
    "dsm_sort",
    "merge_superblock_runs",
    "write_superblock_run",
    "single_disk_config",
    "single_disk_sort",
    "DSMCost",
    "dsm_exact_cost",
    "PSVMergeResult",
    "PSVSortResult",
    "SingleDiskRun",
    "psv_merge",
    "psv_mergesort",
    "write_single_disk_run",
    "write_single_disk_runs_parallel",
]
