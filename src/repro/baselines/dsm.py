"""Disk-striped mergesort — DSM, the paper's practical baseline (§9.1).

DSM coordinates the disks: every parallel I/O accesses the *same slot on
all D disks*, which has "the logical effect of sorting with D' = 1 disk
and block size B' = DB".  Striping makes every read and write perfectly
parallel by construction — the price is the merge order.  Where SRM
merges ``R = kD`` runs in memory ``M = (2k+4)DB + kD^2``, DSM merges
only ``(M/B - 2D)/2D = k + 1 + kD/2B`` runs, so it needs
``ln(kD)/ln(k + 1 + kD/2B)`` times as many passes.

This module implements DSM end-to-end on the same simulated substrate
as SRM: superblock-striped runs, memory-load run formation, and R-way
merge passes, with exact I/O accounting.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..disks.block import Block, split_into_blocks
from ..disks.counters import IOStats
from ..disks.files import StripedFile
from ..disks.system import BlockAddress, ParallelDiskSystem
from ..errors import ConfigError, DataError
from ..rng import RngLike
from ..core.config import DSMConfig
from ..telemetry import TELEMETRY_OFF
from ..telemetry.schema import (
    H_DRAIN_BATCH,
    H_READ_WIDTH,
    H_RUN_LENGTH,
    MERGE_DRAIN_CYCLES,
    SPAN_MERGE,
    SPAN_MERGE_PASS,
    SPAN_RUN_FORMATION,
    SPAN_SORT,
    batch_edges,
    read_width_edges,
    run_length_edges,
)


@dataclass
class SuperblockRun:
    """A sorted run stored as synchronized stripes (logical superblocks).

    Stripe ``j`` is the set of blocks at matching slots across the
    disks; reading or writing one stripe is one parallel I/O moving up
    to ``D·B`` records.
    """

    run_id: int
    stripes: list[list[BlockAddress]]
    n_records: int
    block_size: int
    n_disks: int

    @property
    def n_superblocks(self) -> int:
        return len(self.stripes)

    def read_all(self, system: ParallelDiskSystem) -> np.ndarray:
        """Read the run back in order (one parallel I/O per stripe)."""
        parts = []
        for stripe in self.stripes:
            blocks = system.read_stripe(stripe)
            parts.extend(b.keys for b in blocks if b is not None)
        return np.concatenate(parts)


def write_superblock_run(
    system: ParallelDiskSystem,
    keys: np.ndarray,
    run_id: int,
    payloads: np.ndarray | None = None,
) -> SuperblockRun:
    """Write sorted *keys* as a superblock-striped run (full parallelism)."""
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        raise DataError("cannot create an empty run")
    if np.any(keys[:-1] > keys[1:]):
        raise DataError("run keys must be sorted ascending")
    blocks = split_into_blocks(
        keys, system.block_size, run_id=run_id, payloads=payloads
    )
    D = system.n_disks
    stripes: list[list[BlockAddress]] = []
    for s in range(0, len(blocks), D):
        chunk = blocks[s : s + D]
        addrs = [system.allocate(d) for d in range(len(chunk))]
        system.write_stripe(list(zip(addrs, chunk)))
        stripes.append(addrs)
    return SuperblockRun(
        run_id=run_id,
        stripes=stripes,
        n_records=int(keys.size),
        block_size=system.block_size,
        n_disks=D,
    )


@dataclass(frozen=True, slots=True)
class DSMPassStats:
    """I/O accounting of one DSM merge pass."""

    pass_index: int
    n_merges: int
    n_runs_in: int
    n_runs_out: int
    parallel_reads: int
    parallel_writes: int


@dataclass
class DSMSortResult:
    """Outcome of a DSM external sort."""

    output: SuperblockRun
    config: DSMConfig
    n_records: int
    runs_formed: int
    passes: list[DSMPassStats] = field(default_factory=list)
    io: IOStats | None = None
    #: The disk system the sort ran on, for the peek helpers.
    system: ParallelDiskSystem | None = None

    @property
    def n_merge_passes(self) -> int:
        return len(self.passes)

    @property
    def total_parallel_ios(self) -> int:
        return self.io.parallel_ios if self.io is not None else 0

    def _system(self, system: ParallelDiskSystem | None) -> ParallelDiskSystem:
        sys = system if system is not None else self.system
        if sys is None:
            raise ConfigError("no disk system attached; pass one explicitly")
        return sys

    def peek_sorted(self, system: ParallelDiskSystem | None = None) -> np.ndarray:
        """Read the sorted output without charging I/O."""
        sys = self._system(system)
        # peek() resolves degraded-mode remaps after a disk death.
        parts = []
        for stripe in self.output.stripes:
            for addr in stripe:
                parts.append(sys.peek(addr).keys)
        return np.concatenate(parts)

    def peek_sorted_records(
        self, system: ParallelDiskSystem | None = None
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Read sorted keys and payloads without charging I/O."""
        sys = self._system(system)
        blocks = [
            sys.peek(addr)
            for stripe in self.output.stripes
            for addr in stripe
        ]
        keys = np.concatenate([b.keys for b in blocks])
        if blocks[0].payloads is None:
            return keys, None
        return keys, np.concatenate([b.payloads for b in blocks])


class _SuperblockReader:
    """Streams one run superblock-by-superblock (1 parallel I/O each)."""

    def __init__(
        self,
        system: ParallelDiskSystem,
        run: SuperblockRun,
        free: bool,
        telemetry=None,
    ):
        self.system = system
        self.run = run
        self.free = free
        self.next_stripe = 0
        self.data: np.ndarray | None = None
        self.pay: np.ndarray | None = None
        self.offset = 0
        self.stripe_reads = 0
        tel = telemetry if telemetry is not None else TELEMETRY_OFF
        self._h_width = tel.histogram(
            H_READ_WIDTH, read_width_edges(system.n_disks)
        )
        self._load()

    def _load(self) -> None:
        if self.next_stripe >= self.run.n_superblocks:
            self.data = None
            self.pay = None
            return
        stripe = self.run.stripes[self.next_stripe]
        blocks = self.system.read_stripe(stripe)
        self.stripe_reads += 1
        self._h_width.observe(len(stripe))
        if self.free:
            for addr in stripe:
                self.system.free(addr)
        self.next_stripe += 1
        live = [b for b in blocks if b is not None]
        self.data = np.concatenate([b.keys for b in live])
        self.pay = (
            None
            if live[0].payloads is None
            else np.concatenate([b.payloads for b in live])
        )
        self.offset = 0

    @property
    def exhausted(self) -> bool:
        return self.data is None

    def current_key(self) -> int:
        assert self.data is not None
        return int(self.data[self.offset])

    def consume_until(
        self, limit: int | None
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Consume records strictly below *limit* (at least one)."""
        assert self.data is not None
        off = self.offset
        if limit is None:
            hi = self.data.size
        else:
            hi = int(np.searchsorted(self.data, limit, side="left"))
            if hi <= off:
                hi = off + 1
        out = self.data[off:hi]
        out_pay = None if self.pay is None else self.pay[off:hi]
        if hi == self.data.size:
            self._load()
        else:
            self.offset = hi
        return out, out_pay


class _SuperblockWriter:
    """Accumulates output and writes full superblocks (2D-block buffer)."""

    def __init__(self, system: ParallelDiskSystem, run_id: int):
        self.system = system
        self.run_id = run_id
        #: Buffered (rows, n) chunks: rows = 1 (keys) or 2 (keys; payloads).
        self._chunks: list[np.ndarray] = []
        self._pending = 0
        self._n_records = 0
        self.stripes: list[list[BlockAddress]] = []

    def append(self, keys: np.ndarray, payloads: np.ndarray | None = None) -> None:
        if keys.size == 0:
            return
        chunk = (
            keys[np.newaxis, :]
            if payloads is None
            else np.stack([keys, payloads])
        )
        self._chunks.append(chunk)
        self._pending += keys.size
        cap = self.system.n_disks * self.system.block_size
        while self._pending >= cap:
            data = np.concatenate(self._chunks, axis=1)
            self._write_superblock(data[:, :cap])
            rest = data[:, cap:]
            self._chunks = [rest] if rest.shape[1] else []
            self._pending = int(rest.shape[1])

    def _write_superblock(self, data: np.ndarray) -> None:
        blocks = split_into_blocks(
            data[0],
            self.system.block_size,
            run_id=self.run_id,
            payloads=data[1] if data.shape[0] == 2 else None,
        )
        addrs = [self.system.allocate(d) for d in range(len(blocks))]
        self.system.write_stripe(list(zip(addrs, blocks)))
        self.stripes.append(addrs)
        self._n_records += int(data.shape[1])

    def finalize(self) -> SuperblockRun:
        if self._pending:
            self._write_superblock(np.concatenate(self._chunks, axis=1))
            self._chunks = []
            self._pending = 0
        if self._n_records == 0:
            raise DataError("cannot finalize an empty run")
        return SuperblockRun(
            run_id=self.run_id,
            stripes=self.stripes,
            n_records=self._n_records,
            block_size=self.system.block_size,
            n_disks=self.system.n_disks,
        )


def merge_superblock_runs(
    system: ParallelDiskSystem,
    runs: list[SuperblockRun],
    output_run_id: int,
    free_inputs: bool = True,
    telemetry=None,
) -> SuperblockRun:
    """Merge superblock runs the DSM way (single-disk logic on stripes)."""
    if len(runs) < 2:
        raise DataError(f"a merge needs at least 2 runs, got {len(runs)}")
    tel = telemetry if telemetry is not None else TELEMETRY_OFF
    n_blocks = sum(len(s) for r in runs for s in r.stripes)
    span = tel.span(
        SPAN_MERGE,
        system=system,
        n_runs=len(runs),
        n_blocks=n_blocks,
        n_disks=system.n_disks,
    )
    h_batch = tel.histogram(H_DRAIN_BATCH, batch_edges(system.block_size))
    m_cycles = tel.counter(MERGE_DRAIN_CYCLES)
    readers = [
        _SuperblockReader(system, r, free_inputs, telemetry=telemetry)
        for r in runs
    ]
    writer = _SuperblockWriter(system, output_run_id)
    heap = [(rd.current_key(), i) for i, rd in enumerate(readers)]
    heapq.heapify(heap)
    cycles = 0
    while heap:
        _, i = heapq.heappop(heap)
        limit = heap[0][0] if heap else None
        out, out_pay = readers[i].consume_until(limit)
        writer.append(out, out_pay)
        h_batch.observe(out.size)
        cycles += 1
        if not readers[i].exhausted:
            heapq.heappush(heap, (readers[i].current_key(), i))
    m_cycles.inc(cycles)
    result = writer.finalize()
    # DSM's reads are all demand stripe reads; report them through the
    # same attribute the SRM merge span uses so inspect's per-merge
    # table covers both algorithms.
    span.set(
        merge_parreads=sum(rd.stripe_reads for rd in readers),
        heap_cycles=cycles,
    )
    span.close()
    return result


def dsm_mergesort(
    system: ParallelDiskSystem,
    infile: StripedFile,
    config: DSMConfig,
    run_length: int | None = None,
    telemetry=None,
) -> DSMSortResult:
    """Sort *infile* with DSM; returns the sorted run and I/O accounting.

    Run formation is one memory-load pass (runs of ``run_length``
    records, default the configuration's memory
    ``M = 2D·B·(R + 1)``), followed by ``ceil(log_R(runs))`` merge
    passes of order ``R = config.merge_order``.
    """
    if config.n_disks != system.n_disks or config.block_size != system.block_size:
        raise ConfigError("config geometry does not match the disk system")
    if infile.n_records == 0:
        raise ConfigError("cannot sort an empty file")
    start_stats = system.stats.snapshot()
    tel = telemetry if telemetry is not None else TELEMETRY_OFF
    length = run_length if run_length is not None else config.memory_records
    B = system.block_size
    blocks_per_run = max(1, length // B)
    if length < B:
        raise ConfigError(f"run length {length} smaller than one block (B={B})")

    sort_span = tel.span(
        SPAN_SORT,
        system=system,
        n_records=infile.n_records,
        n_disks=system.n_disks,
        block_size=B,
        merge_order=config.merge_order,
        formation="load_sort",
    )
    rf_span = tel.span(SPAN_RUN_FORMATION, system=system, run_length=length)
    h_len = tel.histogram(H_RUN_LENGTH, run_length_edges(length))

    # Run formation: memory loads, sorted, written as superblock runs.
    runs: list[SuperblockRun] = []
    n_runs = -(-infile.n_blocks // blocks_per_run)
    for i in range(n_runs):
        chunk = infile.addresses[i * blocks_per_run : (i + 1) * blocks_per_run]
        blocks, _ = system.read_batch(chunk)
        keys = np.concatenate([b.keys for b in blocks])
        if blocks[0].payloads is not None:
            payloads = np.concatenate([b.payloads for b in blocks])
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            payloads = payloads[order]
        else:
            payloads = None
            keys.sort(kind="stable")
        for addr in chunk:
            system.free(addr)
        h_len.observe(keys.size)
        runs.append(write_superblock_run(system, keys, run_id=i, payloads=payloads))
    rf_span.set(runs_formed=len(runs))
    rf_span.close()

    result = DSMSortResult(
        output=runs[0],
        config=config,
        n_records=infile.n_records,
        runs_formed=len(runs),
    )

    R = config.merge_order
    next_run_id = len(runs)
    pass_index = 0
    while len(runs) > 1:
        pass_index += 1
        before = system.stats.snapshot()
        groups = [runs[i : i + R] for i in range(0, len(runs), R)]
        pass_span = tel.span(
            SPAN_MERGE_PASS,
            system=system,
            pass_index=pass_index,
            n_runs_in=len(runs),
        )
        out_runs: list[SuperblockRun] = []
        n_merges = 0
        for group in groups:
            if len(group) == 1:
                out_runs.append(group[0])
                continue
            out_runs.append(
                merge_superblock_runs(
                    system, group, next_run_id, telemetry=telemetry
                )
            )
            next_run_id += 1
            n_merges += 1
        pass_span.set(n_merges=n_merges, n_runs_out=len(out_runs))
        pass_span.close()
        delta = system.stats.since(before)
        result.passes.append(
            DSMPassStats(
                pass_index=pass_index,
                n_merges=n_merges,
                n_runs_in=len(runs),
                n_runs_out=len(out_runs),
                parallel_reads=delta.parallel_reads,
                parallel_writes=delta.parallel_writes,
            )
        )
        runs = out_runs

    result.output = runs[0]
    if system.faults is not None and system.faults.plan.torn_write_p > 0.0:
        # Same closing move as SRM: scrub the output run's seals so a
        # tear in the final pass is repaired before anyone reads it.
        from ..faults.degraded import scrub_addresses

        scrub_addresses(
            system, [a for stripe in runs[0].stripes for a in stripe]
        )
    result.system = system
    result.io = system.stats.since(start_stats)
    sort_span.set(
        runs_formed=result.runs_formed, n_merge_passes=result.n_merge_passes
    )
    sort_span.close()
    return result


def dsm_sort(
    keys: np.ndarray,
    config: DSMConfig,
    run_length: int | None = None,
    payloads: np.ndarray | None = None,
    telemetry=None,
    faults=None,
    backend=None,
    timing: "DiskTimingModel | None" = None,
) -> tuple[np.ndarray, DSMSortResult]:
    """Convenience: DSM-sort a key array on a fresh simulated system.

    *faults* — a :class:`~repro.faults.plan.FaultPlan` — arms
    deterministic fault injection before any block is placed.
    *backend* selects the block-storage backend of the fresh system
    (see :mod:`repro.disks.backends`), so the DSM baseline can run
    out-of-core side by side with SRM.  *timing* attaches a disk
    service-time model so the demand clock (and the causal trace, when
    the telemetry handle carries one) advances; DSM stays demand-paced
    either way.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return keys.copy(), None  # type: ignore[return-value]
    system = ParallelDiskSystem(config.n_disks, config.block_size, backend=backend)
    if faults is not None:
        system.attach_faults(faults, telemetry=telemetry)
    collector = getattr(telemetry, "trace", None)
    demand_tracer = None
    if collector is not None:
        from ..disks.timing import DISK_1996
        from ..telemetry.trace import SystemTracer

        if system.timing is None:
            system.timing = timing if timing is not None else DISK_1996
        demand_tracer = SystemTracer(collector, collector.new_domain("demand"))
        system.tracer = demand_tracer
    elif timing is not None and system.timing is None:
        system.timing = timing
    infile = StripedFile.from_records(system, keys, payloads=payloads)
    result = dsm_mergesort(
        system, infile, config, run_length=run_length, telemetry=telemetry
    )
    if demand_tracer is not None:
        demand_tracer.finish(system.elapsed_ms)
    return result.peek_sorted(system), result
