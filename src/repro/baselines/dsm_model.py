"""Exact DSM I/O counting without execution.

DSM's schedule is deterministic and data-independent: every superblock
(logical block of ``D·B`` records) is exactly one parallel I/O, so a
sort's complete operation count follows from run lengths alone.  This
model lets paper-scale DSM comparisons run in microseconds, and is
verified operation-exact against the executing implementation in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import DSMConfig
from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class DSMCost:
    """Exact parallel-I/O counts of a DSM sort."""

    n_records: int
    runs_formed: int
    n_merge_passes: int
    parallel_reads: int
    parallel_writes: int

    @property
    def parallel_ios(self) -> int:
        return self.parallel_reads + self.parallel_writes


def dsm_exact_cost(
    n_records: int, run_length: int, config: DSMConfig
) -> DSMCost:
    """Count every parallel I/O of ``dsm_mergesort`` without running it.

    Mirrors the implementation exactly: block-aligned memory-load run
    formation (full-stripe reads, per-run superblock writes), then
    grouped merges of order ``R`` where each input/output superblock —
    including per-run partial tails — is one operation.
    """
    if n_records < 1:
        raise ConfigError("need at least one record")
    B, D, R = config.block_size, config.n_disks, config.merge_order
    sb = config.superblock_records
    blocks_per_run = max(1, run_length // B)
    if run_length < B:
        raise ConfigError(f"run length {run_length} smaller than one block")
    records_per_run = blocks_per_run * B
    n_blocks = -(-n_records // B)

    runs = [
        min(records_per_run, n_records - i)
        for i in range(0, n_records, records_per_run)
    ]
    # Formation reads happen one memory load at a time; each load's
    # consecutive round-robin blocks pack into ceil(chunk/D) stripes.
    chunk_blocks = [
        min(blocks_per_run, n_blocks - i)
        for i in range(0, n_blocks, blocks_per_run)
    ]
    reads = sum(-(-c // D) for c in chunk_blocks)  # formation reads
    writes = sum(-(-r // sb) for r in runs)        # formation writes
    runs_formed = len(runs)

    passes = 0
    while len(runs) > 1:
        passes += 1
        out = []
        for i in range(0, len(runs), R):
            group = runs[i : i + R]
            if len(group) == 1:
                out.append(group[0])
                continue
            reads += sum(-(-r // sb) for r in group)
            total = sum(group)
            writes += -(-total // sb)
            out.append(total)
        runs = out
    return DSMCost(
        n_records=n_records,
        runs_formed=runs_formed,
        n_merge_passes=passes,
        parallel_reads=reads,
        parallel_writes=writes,
    )
