"""Single-disk external mergesort — the ``D = 1`` degenerate baseline.

With one disk, striping is trivial and SRM's randomization does nothing:
both algorithms collapse to the classical external mergesort.  This thin
wrapper runs DSM with ``D = 1`` so examples and sanity tests can compare
the multi-disk algorithms against the no-parallelism floor.
"""

from __future__ import annotations

import numpy as np

from ..core.config import DSMConfig
from ..errors import ConfigError
from .dsm import DSMSortResult, dsm_sort


def single_disk_config(memory_records: int, block_size: int) -> DSMConfig:
    """Classical mergesort configuration: one disk, merge order ``M/2B - 1``."""
    return DSMConfig.from_memory(memory_records, n_disks=1, block_size=block_size)


def single_disk_sort(
    keys: np.ndarray,
    memory_records: int,
    block_size: int,
) -> tuple[np.ndarray, DSMSortResult]:
    """Sort *keys* with a classical one-disk external mergesort."""
    if memory_records < 4 * block_size:
        raise ConfigError(
            f"memory of {memory_records} records is too small for B={block_size}"
        )
    cfg = single_disk_config(memory_records, block_size)
    return dsm_sort(keys, cfg)
