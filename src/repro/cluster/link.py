"""Inter-node transfer cost model for the exchange phase.

The cluster layer charges every byte twice — once as parallel disk I/O
on the source and destination nodes, and once as link transfer time.
:class:`LinkModel` covers the second half: a fixed per-message latency
plus a per-block streaming cost, the classic alpha–beta model of
collective-communication analysis (and of Rahn–Sanders–Singler's
exchange accounting).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class LinkModel:
    """Cost of moving blocks between two nodes.

    Attributes
    ----------
    latency_ms:
        Fixed per-message startup cost (the alpha term).
    ms_per_block:
        Streaming cost per block transferred (the beta term).  Derived
        defaults model ~1 Gbit/s against the repo's 1996-era disks, so
        links are fast relative to spindles but not free.
    """

    latency_ms: float = 0.5
    ms_per_block: float = 0.05

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ConfigError(f"latency must be >= 0, got {self.latency_ms}")
        if self.ms_per_block < 0:
            raise ConfigError(
                f"per-block cost must be >= 0, got {self.ms_per_block}"
            )

    def transfer_ms(self, n_blocks: int) -> float:
        """Time to push *n_blocks* over one link, in ms.

        An empty message costs nothing — no message is sent.
        """
        if n_blocks <= 0:
            return 0.0
        return self.latency_ms + n_blocks * self.ms_per_block


#: Default cluster interconnect.
LINK_1GBE = LinkModel()
