"""The cluster driver: P-node sample-sort over per-node SRM arrays.

Scale-out in the spirit of Rahn–Sanders-Singler's *Scalable
Distributed-Memory External Sorting*, simulated with the same rigor as
the single-node paper reproduction:

1. **Per-node run formation** — node ``i`` ingests the ``i``-th
   contiguous partition of the input onto its own
   :class:`~repro.disks.system.ParallelDiskSystem` (``D`` disks, its
   own §5.2 memory pool of ``config.memory_records``) and forms sorted
   runs with charged parallel I/O.
2. **Splitter selection** — every node samples its runs (charged
   reads), the gathered sample yields ``P - 1`` splitters
   (:mod:`~repro.cluster.splitters`).
3. **All-to-all exchange** — runs are range-partitioned into segments
   and delivered to owner nodes in shifted rounds, charged as parallel
   I/O on both end-points plus :class:`~repro.cluster.link.LinkModel`
   transfer time (:mod:`~repro.cluster.exchange`).  A node lost
   mid-exchange is rebuilt from its durable input partition, charged.
4. **Per-node shard merge** — each node merges its received segments
   with the standard SRM merge passes
   (:func:`~repro.core.mergesort.run_merge_passes`) into one globally
   ordered shard; concatenating the shards in node order is exactly
   ``sort(input)``.

Every random choice (layouts, samples, receive placements, rebuilds)
derives from one root seed through :func:`repro.rng.spawn` child
streams, so a cluster sort replays bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.config import SRMConfig
from ..core.layout import LayoutStrategy
from ..core.mergesort import SortResult, run_merge_passes
from ..core.run_formation import form_runs_load_sort
from ..disks.backends import StorageBackend, parse_backend
from ..disks.counters import IOStats
from ..disks.files import StripedFile, StripedRun
from ..disks.system import ParallelDiskSystem
from ..disks.timing import DISK_1996, DiskTimingModel
from ..errors import ConfigError
from ..rng import RngLike, ensure_rng, spawn
from ..telemetry import TELEMETRY_OFF
from ..telemetry.trace import StagedTracer
from ..telemetry.schema import (
    CLUSTER_EXCHANGE_BLOCKS,
    CLUSTER_EXCHANGE_ROUNDS,
    CLUSTER_LINK_MS,
    CLUSTER_NODE_LOSSES,
    CLUSTER_PARTITION_SKEW,
    CLUSTER_REBUILD_BLOCKS,
    CLUSTER_REBUILD_READ_IOS,
    CLUSTER_SAMPLE_READS,
    CLUSTER_SELF_BLOCKS,
    SPAN_CLUSTER_SORT,
    SPAN_EXCHANGE,
    SPAN_RUN_FORMATION,
    SPAN_SHARD_MERGE,
    SPAN_SPLITTER_SELECT,
)
from .exchange import ExchangeReport, NodeLoss, execute_exchange, plan_transfers
from .link import LINK_1GBE, LinkModel
from .splitters import partition_skew, sample_node_keys, select_splitters


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Shape of the simulated cluster.

    Attributes
    ----------
    n_nodes:
        ``P`` — nodes, each owning an independent ``D``-disk array.
    oversample:
        Samples drawn per node per splitter (Rahn–Sanders–Singler's
        oversampling factor ``a``); higher values tighten the shard
        balance at the cost of more charged sample reads.
    link:
        Inter-node transfer cost model.
    """

    n_nodes: int
    oversample: int = 32
    link: LinkModel = LINK_1GBE

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigError(f"need at least one node, got P={self.n_nodes}")
        if self.oversample < 1:
            raise ConfigError(
                f"oversample must be >= 1, got {self.oversample}"
            )


@dataclass
class ClusterNode:
    """One simulated node: a disk array plus its sort state."""

    index: int
    system: ParallelDiskSystem
    #: The node's durable input partition (survives node loss — it
    #: models data held by the distributed ingest layer, not the disks).
    input_keys: np.ndarray = field(repr=False)
    runs: list[StripedRun] = field(default_factory=list)
    received: list[StripedRun] = field(default_factory=list)
    shard: Optional[StripedRun] = None
    result: Optional[SortResult] = None
    #: Disk arrays abandoned by node losses (their charged I/O still
    #: counts: the work happened before the crash).
    lost_systems: list[ParallelDiskSystem] = field(default_factory=list)

    @property
    def shard_records(self) -> int:
        return self.shard.n_records if self.shard is not None else 0

    def peek_shard(self) -> np.ndarray:
        """Read this node's shard without charging I/O."""
        if self.shard is None:
            return np.empty(0, dtype=np.int64)
        parts = [self.system.peek(a).keys for a in self.shard.addresses]
        return np.concatenate(parts)


@dataclass
class ClusterSortResult:
    """Outcome of a full cluster sort."""

    cluster: ClusterConfig
    config: SRMConfig
    n_records: int
    nodes: list[ClusterNode]
    splitters: np.ndarray
    exchange: ExchangeReport
    sample_read_ios: int
    #: Phase -> simulated ms (max across nodes per phase; ``link`` is
    #: the exchange's critical-path transfer time).
    makespan_breakdown: dict = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return self.cluster.n_nodes

    @property
    def shard_sizes(self) -> list[int]:
        return [n.shard_records for n in self.nodes]

    @property
    def partition_skew(self) -> float:
        return partition_skew(self.shard_sizes)

    @property
    def makespan_ms(self) -> float:
        return float(sum(self.makespan_breakdown.values()))

    @property
    def total_parallel_ios(self) -> int:
        """Summed parallel I/Os across all arrays, lost ones included."""
        total = 0
        for n in self.nodes:
            total += n.system.stats.parallel_ios
            total += sum(s.stats.parallel_ios for s in n.lost_systems)
        return total

    @property
    def max_node_parallel_ios(self) -> int:
        """The busiest node's parallel I/O count (the I/O makespan)."""
        return max(n.system.stats.parallel_ios for n in self.nodes)

    def io_per_node(self) -> list[IOStats]:
        return [n.system.stats for n in self.nodes]

    def peek_sorted(self) -> np.ndarray:
        """Concatenate all shards in node order (verification aid)."""
        return np.concatenate([n.peek_shard() for n in self.nodes])


def cluster_sort(
    keys: np.ndarray,
    cluster: ClusterConfig,
    config: SRMConfig,
    strategy: LayoutStrategy = LayoutStrategy.RANDOMIZED,
    rng: RngLike = None,
    run_length: int | None = None,
    merger: str = "auto",
    timing: DiskTimingModel | None = DISK_1996,
    telemetry=None,
    node_loss: Optional[NodeLoss] = None,
    backend=None,
) -> tuple[np.ndarray, ClusterSortResult]:
    """Sort *keys* across ``P`` simulated nodes; returns (sorted, result).

    The sorted array is the concatenation of the per-node shards —
    bit-identical to a single-node sort of the same input.  *node_loss*
    kills a node mid-exchange; the sort still completes (and stays
    bit-identical) by rebuilding from the durable input, with every
    recovery I/O charged.  *backend* is a storage-backend spec (string
    or :class:`~repro.disks.backends.BackendSpec`) applied to every
    node's disk array; with an explicit mmap workdir each node's files
    land under its own ``node<n>/`` subdirectory.
    """
    keys = np.asarray(keys, dtype=np.int64)
    P = cluster.n_nodes
    backend_spec = parse_backend(backend)
    if isinstance(backend_spec, StorageBackend):
        raise ConfigError(
            "cluster_sort needs a backend spec (string or BackendSpec), "
            "not a StorageBackend instance — each node gets its own backend"
        )
    if keys.size == 0:
        raise ConfigError("cannot sort an empty file")
    if keys.size < P:
        raise ConfigError(f"{keys.size} records cannot feed {P} nodes")
    tel = telemetry if telemetry is not None else TELEMETRY_OFF
    root = ensure_rng(rng)
    layout_rngs, sample_rngs, recv_rngs, merge_rngs, rebuild_rngs = (
        spawn(r, P) for r in spawn(root, 5)
    )
    length = run_length if run_length is not None else config.memory_records

    cs_span = tel.span(
        SPAN_CLUSTER_SORT,
        n_records=int(keys.size),
        n_nodes=P,
        n_disks=config.n_disks,
        block_size=config.block_size,
        merge_order=config.merge_order,
        oversample=cluster.oversample,
    )

    system_seq = iter(range(10**9))

    def fresh_system() -> ParallelDiskSystem:
        # A unique child label per created system: rebuilt nodes get a
        # fresh subdirectory instead of colliding with the lost array's.
        label = f"node{next(system_seq)}"
        return ParallelDiskSystem(
            config.n_disks,
            config.block_size,
            timing=timing,
            backend=backend_spec.child(label).create(),
        )

    # -- phase 1: per-node ingest + run formation -----------------------
    parts = np.array_split(keys, P)
    nodes = [
        ClusterNode(index=i, system=fresh_system(), input_keys=part)
        for i, part in enumerate(parts)
    ]
    if getattr(tel, "trace", None) is not None:
        for n in nodes:
            n.system.tracer = StagedTracer(f"node{n.index}")
    breakdown: dict[str, float] = {}

    # -- causal tracing ------------------------------------------------
    # When the telemetry carries an armed TraceCollector, every node
    # system gets a StagedTracer buffering ops in node-local time; at
    # each phase barrier the buffers are flushed rebased onto the
    # cluster clock (``phase_start + (t - origin)`` — the very same
    # subtraction the phase fold performs, so the slowest node's final
    # record lands bit-exactly on the next phase start and the critical
    # path tiles the cluster makespan).
    collector = getattr(tel, "trace", None)
    trace_dom = collector.new_domain("cluster") if collector is not None else None
    trace_clock = 0.0
    trace_barrier: int | None = None

    def trace_begin() -> None:
        if collector is None:
            return
        for n in nodes:
            if n.system.tracer is not None:
                n.system.tracer.begin_phase(n.system.elapsed_ms)

    def trace_end(delta: float) -> None:
        nonlocal trace_clock, trace_barrier
        if collector is None:
            return
        phase_start = trace_clock
        trace_clock = trace_clock + delta
        best_id: int | None = None
        best_end = phase_start
        tracers = []
        for n in nodes:
            if n.system.tracer is not None:
                tracers.append(n.system.tracer)
            tracers.extend(
                s.tracer for s in n.lost_systems if s.tracer is not None
            )
        for tr in tracers:
            last_id, last_end = tr.flush(
                collector, trace_dom, phase_start, trace_barrier
            )
            if last_id is not None and (
                best_id is None or last_end >= best_end
            ):
                best_id, best_end = last_id, last_end
        if best_id is not None:
            trace_barrier = best_id

    def phase_deltas():
        marks = [(n.system, n.system.elapsed_ms) for n in nodes]

        def close() -> float:
            worst = 0.0
            for n, (sys0, ms0) in zip(nodes, marks):
                delta = (
                    n.system.elapsed_ms - ms0
                    if n.system is sys0
                    else n.system.elapsed_ms  # replaced mid-phase
                )
                worst = max(worst, delta)
            return worst

        return close

    close = phase_deltas()
    trace_begin()
    for node in nodes:
        rf_span = tel.span(
            SPAN_RUN_FORMATION, system=node.system, node=node.index,
            run_length=length,
        )
        infile = StripedFile.from_records(node.system, node.input_keys)
        node.runs = form_runs_load_sort(
            node.system, infile, length, strategy, layout_rngs[node.index],
            telemetry=telemetry,
        )
        rf_span.set(runs_formed=len(node.runs))
        rf_span.close()
    breakdown["run_formation"] = close()
    trace_end(breakdown["run_formation"])

    # -- phase 2: splitter selection ------------------------------------
    close = phase_deltas()
    trace_begin()
    sp_span = tel.span(SPAN_SPLITTER_SELECT, oversample=cluster.oversample)
    sample_read_ios = 0
    if P > 1:
        n_samples = cluster.oversample * (P - 1)
        samples = []
        for node in nodes:
            s, ops = sample_node_keys(
                node.system, node.runs, n_samples, sample_rngs[node.index]
            )
            samples.append(s)
            sample_read_ios += ops
        splitters = select_splitters(samples, P)
    else:
        splitters = np.empty(0, dtype=np.int64)
    tel.counter(CLUSTER_SAMPLE_READS).inc(sample_read_ios)
    sp_span.set(n_splitters=int(splitters.size), sample_reads=sample_read_ios)
    sp_span.close()
    breakdown["splitter_select"] = close()
    trace_end(breakdown["splitter_select"])

    # -- phase 3: all-to-all exchange -----------------------------------
    close = phase_deltas()
    trace_begin()
    ex_span = tel.span(SPAN_EXCHANGE, n_nodes=P)
    if P > 1:
        node_run_keys: list[list[np.ndarray]] = []
        for node in nodes:
            per_run = []
            for run in node.runs:
                blocks, _ = node.system.read_batch(run.addresses)
                per_run.append(np.concatenate([b.keys for b in blocks]))
            node_run_keys.append(per_run)
        transfers = plan_transfers(
            [n.runs for n in nodes], node_run_keys, splitters
        )

        def rebuild_node(idx: int) -> list[StripedRun]:
            node = nodes[idx]
            node.lost_systems.append(node.system)
            node.system = fresh_system()
            if collector is not None:
                # The replacement starts its private clock at zero, which
                # is exactly a fresh StagedTracer's origin; the loss makes
                # the cluster timeline inexact (declared in the summary).
                node.system.tracer = StagedTracer(f"node{idx}")
            infile = StripedFile.from_records(node.system, node.input_keys)
            return form_runs_load_sort(
                node.system, infile, length, strategy, rebuild_rngs[idx],
                telemetry=telemetry,
            )

        report = execute_exchange(
            nodes,
            transfers,
            cluster.link,
            recv_rngs,
            node_loss=node_loss,
            rebuild_node=rebuild_node,
            telemetry=telemetry,
        )
        # The exchange has committed: source runs are no longer needed.
        for node in nodes:
            for run in node.runs:
                for addr in run.addresses:
                    node.system.free(addr)
    else:
        if node_loss is not None:
            raise ConfigError("node loss needs at least two nodes")
        report = ExchangeReport()
        for node in nodes:
            node.received = node.runs
    tel.counter(CLUSTER_EXCHANGE_BLOCKS).inc(report.blocks_crossed)
    tel.counter(CLUSTER_SELF_BLOCKS).inc(report.self_blocks)
    tel.counter(CLUSTER_EXCHANGE_ROUNDS).inc(report.rounds)
    tel.counter(CLUSTER_NODE_LOSSES).inc(report.node_losses)
    tel.counter(CLUSTER_REBUILD_BLOCKS).inc(report.rebuild_blocks_resent)
    tel.counter(CLUSTER_REBUILD_READ_IOS).inc(report.rebuild_read_ios)
    tel.gauge(CLUSTER_LINK_MS).set(report.link_ms)
    ex_span.set(
        rounds=report.rounds,
        blocks_crossed=report.blocks_crossed,
        self_blocks=report.self_blocks,
        link_ms=report.link_ms,
        node_losses=report.node_losses,
    )
    ex_span.close()
    breakdown["exchange"] = close()
    trace_end(breakdown["exchange"])
    breakdown["link"] = report.link_ms
    if collector is not None:
        # The link phase is a serial chain of per-round slowest-link
        # spans; the per-message transfers hang off each round as
        # leaves.  ``acc`` replays the exact left fold that built
        # ``report.link_ms``, so the chain's last end hits the next
        # phase start bit-exactly.
        phase_start = trace_clock
        acc = 0.0
        dep = trace_barrier
        for ri, rms in enumerate(report.round_ms):
            s = phase_start + acc
            acc = acc + rms
            if rms > 0.0:
                links = (
                    report.round_links[ri]
                    if ri < len(report.round_links)
                    else []
                )
                for ln in links:
                    collector.add(
                        "link",
                        f"link:{ln['src']}->{ln['dst']}",
                        trace_dom, s, s, s + ln["ms"], dep=dep,
                        attrs={"blocks": ln["blocks"], "records": ln["records"]},
                    )
                dep = collector.add(
                    "link_round", "link", trace_dom,
                    s, s, phase_start + acc, dep=dep,
                    attrs={"round": ri, "messages": len(links)},
                )
        trace_clock = trace_clock + report.link_ms
        if dep is not None:
            trace_barrier = dep

    # -- phase 4: per-node shard merges ---------------------------------
    close = phase_deltas()
    trace_begin()
    for node in nodes:
        if not node.received:
            continue
        sm_span = tel.span(
            SPAN_SHARD_MERGE, system=node.system, node=node.index,
            n_runs_in=len(node.received),
        )
        before = node.system.stats.snapshot()
        res = SortResult(
            output=node.received[0],
            config=config,
            n_records=sum(r.n_records for r in node.received),
            runs_formed=len(node.received),
        )
        node.shard = run_merge_passes(
            node.system,
            node.received,
            config,
            res,
            strategy=strategy,
            rng=merge_rngs[node.index],
            merger=merger,
            timing=timing,
            telemetry=telemetry,
            next_run_id=10_000 * (node.index + 1),
        )
        res.output = node.shard
        res.io = node.system.stats.since(before)
        res.system = node.system
        node.result = res
        sm_span.set(n_merge_passes=res.n_merge_passes)
        sm_span.close()
    breakdown["shard_merge"] = close()
    trace_end(breakdown["shard_merge"])

    result = ClusterSortResult(
        cluster=cluster,
        config=config,
        n_records=int(keys.size),
        nodes=nodes,
        splitters=splitters,
        exchange=report,
        sample_read_ios=sample_read_ios,
        makespan_breakdown=breakdown,
    )
    if collector is not None:
        # A mid-exchange node loss restarts a private clock, so the
        # rebuilt node's records overlay the phase rather than tile it.
        collector.summary(
            trace_dom, result.makespan_ms, exact=report.node_losses == 0
        )
    tel.gauge(CLUSTER_PARTITION_SKEW).set(result.partition_skew)
    cs_span.set(
        partition_skew=result.partition_skew,
        makespan_ms=result.makespan_ms,
        total_parallel_ios=result.total_parallel_ios,
    )
    cs_span.close()
    return result.peek_sorted(), result
