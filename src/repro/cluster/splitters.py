"""Sample-based splitter selection (Rahn–Sanders–Singler style).

Each node draws ``oversample · (P - 1)`` records uniformly from its
formed runs; the gathered sample is sorted and the ``P - 1`` splitters
are its ``j/P`` quantiles.  Oversampling tightens the shard-size bound:
with ``a = oversample`` samples per splitter per node, the expected
max/mean shard ratio shrinks like ``1 + O(1/sqrt(a))``.

Sampling is *charged*: the blocks containing the sampled records are
fetched with real parallel reads on each node's disk system (one
``read_batch`` per node), exactly like the algorithmic reads the paper
counts.  Every draw comes from a per-node child stream of the root
seed (``rng.spawn``), so splitters are deterministic regardless of
node iteration order.
"""

from __future__ import annotations

import numpy as np

from ..disks.files import StripedRun
from ..disks.system import ParallelDiskSystem
from ..errors import ConfigError


def sample_node_keys(
    system: ParallelDiskSystem,
    runs: list[StripedRun],
    n_samples: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int]:
    """Draw *n_samples* record keys from a node's runs, charging reads.

    Positions are uniform over the node's records; the containing
    blocks are read with one greedy-striped ``read_batch``.  Returns
    the sampled keys and the parallel reads charged.
    """
    if not runs:
        return np.empty(0, dtype=np.int64), 0
    counts = np.array([r.n_records for r in runs], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    total = int(offsets[-1])
    picks = np.sort(rng.integers(0, total, size=n_samples))
    run_of = np.searchsorted(offsets, picks, side="right") - 1
    addresses = []
    lookups = []  # (block index within read_batch, offset in block)
    seen: dict[tuple[int, int], int] = {}
    for pick, ri in zip(picks, run_of):
        run = runs[int(ri)]
        rec = int(pick - offsets[ri])
        blk_idx = rec // run.block_size
        key = (int(ri), blk_idx)
        if key not in seen:
            seen[key] = len(addresses)
            addresses.append(run.addresses[blk_idx])
        lookups.append((seen[key], rec % run.block_size))
    blocks, n_ops = system.read_batch(addresses)
    keys = np.array(
        [int(blocks[b].keys[off]) for b, off in lookups], dtype=np.int64
    )
    return keys, n_ops


def select_splitters(
    samples_per_node: list[np.ndarray], n_nodes: int
) -> np.ndarray:
    """Pick ``P - 1`` splitters from the gathered per-node samples.

    The concatenated sample is sorted and the splitters are its
    ``j/P`` quantiles, ``j = 1..P-1`` — the standard sample-sort rule.
    """
    if n_nodes < 1:
        raise ConfigError(f"need at least one node, got {n_nodes}")
    if n_nodes == 1:
        return np.empty(0, dtype=np.int64)
    gathered = np.sort(np.concatenate(samples_per_node))
    if gathered.size < n_nodes - 1:
        raise ConfigError(
            f"{gathered.size} samples cannot yield {n_nodes - 1} splitters"
        )
    idx = (np.arange(1, n_nodes) * gathered.size) // n_nodes
    return gathered[idx].astype(np.int64)


def partition_skew(shard_sizes: list[int]) -> float:
    """Splitter quality: ``max / mean`` shard size (1.0 = perfect).

    The chaos harness bounds this on skewed inputs; an unlucky or
    buggy splitter set shows up as a ratio approaching ``P``.
    """
    if not shard_sizes:
        return 1.0
    sizes = np.asarray(shard_sizes, dtype=np.float64)
    mean = sizes.mean()
    if mean == 0:
        return 1.0
    return float(sizes.max() / mean)
