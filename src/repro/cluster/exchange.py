"""The all-to-all exchange phase: range-partition runs to owner nodes.

Every formed run is already sorted, so range partitioning it by the
splitters cuts it into at most ``P`` contiguous *segments*, each still
sorted.  A segment travels as one message: charged parallel reads on
the source node's disks, a :class:`~repro.cluster.link.LinkModel`
transfer over the ``(src, dst)`` link, and charged parallel writes on
the owner's disks, where it lands as a fresh forecast-format
:class:`~repro.disks.files.StripedRun` awaiting the shard merge.

Messages execute in ``P - 1`` shifted rounds (round ``r`` sends
``i -> (i + r) mod P``) so each round uses every link at most once —
the round's link time is its *slowest* message, and rounds sum into the
exchange critical path.  Self-deliveries (round 0) cross no link.

Node loss mid-exchange is survivable because source runs are durable
until the exchange commits: a lost node is replaced by a fresh disk
array, its runs are re-formed from its input partition (charged), and
every segment it had already received is re-sent — re-reading the
spanned source blocks (charged), re-crossing the link, re-writing on
the replacement.  Nothing is free: the rebuild shows up in the
``cluster.rebuild_*`` metrics and the exchange makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..disks.files import StripedRun
from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class NodeLoss:
    """Kill node *node* after exchange round *after_round* completes.

    ``after_round = 0`` loses the node right after its self-deliveries;
    any value below ``P - 1`` leaves later rounds to run against the
    replacement.
    """

    node: int
    after_round: int = 0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigError(f"node must be >= 0, got {self.node}")
        if self.after_round < 0:
            raise ConfigError(
                f"after_round must be >= 0, got {self.after_round}"
            )


@dataclass(frozen=True, slots=True)
class Transfer:
    """One segment of one source run, addressed to its owner node."""

    src: int
    dst: int
    run_index: int
    lo: int  # record range [lo, hi) within the source run
    hi: int
    keys: np.ndarray = field(repr=False)

    @property
    def n_records(self) -> int:
        return self.hi - self.lo

    def n_blocks(self, block_size: int) -> int:
        return -(-(self.hi - self.lo) // block_size)

    def spanned_addresses(self, run: StripedRun) -> list:
        """Source-run blocks containing this segment (for re-reads)."""
        b = run.block_size
        return run.addresses[self.lo // b : -(-self.hi // b)]


@dataclass
class ExchangeReport:
    """Accounting of one exchange phase (including any rebuild)."""

    rounds: int = 0
    blocks_crossed: int = 0
    self_blocks: int = 0
    link_ms: float = 0.0
    #: Per-round slowest-link time, ms (round 0 is always 0.0).
    round_ms: list[float] = field(default_factory=list)
    #: Per-round link charges, parallel to ``round_ms``: one
    #: ``{src, dst, run, blocks, records, ms}`` per message (empty for
    #: round 0 self-deliveries; the rebuild entry lists re-sends).
    round_links: list[list[dict]] = field(default_factory=list)
    node_losses: int = 0
    rebuild_blocks_resent: int = 0
    rebuild_read_ios: int = 0


def plan_transfers(
    node_runs: list[list[StripedRun]],
    node_run_keys: list[list[np.ndarray]],
    splitters: np.ndarray,
) -> list[Transfer]:
    """Cut every run into owner-addressed segments.

    *node_run_keys* holds each run's keys as read (and charged) by the
    caller; a run's cut points come from ``searchsorted`` against the
    splitters, so equal keys always share an owner.
    """
    transfers: list[Transfer] = []
    P = len(node_runs)
    for src, (runs, keys_per_run) in enumerate(zip(node_runs, node_run_keys)):
        for ri, keys in enumerate(keys_per_run):
            cuts = np.concatenate(
                [[0], np.searchsorted(keys, splitters, side="right"), [keys.size]]
            )
            for dst in range(P):
                lo, hi = int(cuts[dst]), int(cuts[dst + 1])
                if hi > lo:
                    transfers.append(
                        Transfer(src, dst, ri, lo, hi, keys[lo:hi])
                    )
    return transfers


def execute_exchange(
    nodes,
    transfers: list[Transfer],
    link,
    recv_rngs: list[np.random.Generator],
    node_loss: Optional[NodeLoss] = None,
    rebuild_node: Optional[Callable[[int], list[StripedRun]]] = None,
    telemetry=None,
) -> ExchangeReport:
    """Run the shifted-round exchange, delivering segments to owners.

    *nodes* is the cluster's node list (each with ``.system``,
    ``.runs`` and ``.received``); *recv_rngs* supplies each owner's
    start-disk stream so received runs land with SRM's randomized
    layout.  On *node_loss*, *rebuild_node* must re-form the lost
    node's runs on its replacement system (the caller owns input
    durability and the replacement's disk array).
    """
    P = len(nodes)
    report = ExchangeReport()
    by_round: dict[int, list[Transfer]] = {}
    for t in transfers:
        by_round.setdefault((t.dst - t.src) % P, []).append(t)

    next_run_id = [len(n.runs) + 1000 for n in nodes]

    def deliver(t: Transfer, crossed: bool) -> None:
        dst_node = nodes[t.dst]
        B = dst_node.system.block_size
        start = int(recv_rngs[t.dst].integers(0, dst_node.system.n_disks))
        run = StripedRun.from_sorted_keys(
            dst_node.system,
            t.keys,
            run_id=next_run_id[t.dst],
            start_disk=start,
            count_ios=True,
        )
        next_run_id[t.dst] += 1
        dst_node.received.append(run)
        if crossed:
            report.blocks_crossed += t.n_blocks(B)
        else:
            report.self_blocks += t.n_blocks(B)

    lost = node_loss.node if node_loss is not None else None
    if lost is not None and lost >= P:
        raise ConfigError(f"node {lost} does not exist (P={P})")

    for r in range(P):
        round_transfers = by_round.get(r, [])
        for t in round_transfers:
            deliver(t, crossed=r != 0)
        slowest = 0.0
        links: list[dict] = []
        if r != 0:
            for t in round_transfers:
                B = nodes[t.dst].system.block_size
                ms = link.transfer_ms(t.n_blocks(B))
                slowest = max(slowest, ms)
                links.append(
                    {
                        "src": t.src, "dst": t.dst, "run": t.run_index,
                        "blocks": t.n_blocks(B), "records": t.n_records,
                        "ms": ms,
                    }
                )
        report.round_ms.append(slowest)
        report.round_links.append(links)
        report.link_ms += slowest
        report.rounds += 1
        if telemetry is not None:
            from ..telemetry.schema import EV_EXCHANGE_ROUND

            telemetry.event(
                EV_EXCHANGE_ROUND,
                round=r,
                round_ms=slowest,
                messages=len(round_transfers),
                links=links,
            )

        if lost is not None and node_loss.after_round == r:
            _rebuild_lost_node(
                nodes, lost, r, by_round, link, recv_rngs,
                rebuild_node, deliver, report, next_run_id, telemetry,
            )
            lost = None  # one loss per exchange
    return report


def _rebuild_lost_node(
    nodes, lost, completed_round, by_round, link, recv_rngs,
    rebuild_node, deliver, report, next_run_id, telemetry,
) -> None:
    """Replace a dead node and re-send everything it had received."""
    if rebuild_node is None:
        raise ConfigError("node loss requires a rebuild_node callback")
    report.node_losses += 1
    dead = nodes[lost]
    # Everything on the dead node's disks is gone: its formed runs and
    # every segment delivered so far.  The caller provisions a fresh
    # disk array and re-forms the runs from the durable input (charged).
    dead.received = []
    dead.runs = rebuild_node(lost)
    next_run_id[lost] = len(dead.runs) + 1000

    # Re-send all segments the dead node had received in completed
    # rounds.  Sources re-read the spanned run blocks (charged), the
    # link is crossed again, and the replacement pays the writes.
    resent_ms = 0.0
    for r in range(completed_round + 1):
        for t in by_round.get(r, []):
            if t.dst != lost:
                continue
            src_node = nodes[t.src]
            addrs = t.spanned_addresses(src_node.runs[t.run_index])
            _, n_ops = src_node.system.read_batch(addrs)
            report.rebuild_read_ios += n_ops
            deliver(t, crossed=t.src != lost)
            B = nodes[t.dst].system.block_size
            report.rebuild_blocks_resent += t.n_blocks(B)
            if t.src != lost:
                resent_ms += link.transfer_ms(t.n_blocks(B))
    # The replacement must also re-read its rebuilt runs to source the
    # outgoing segments of rounds that have not executed yet — the
    # original reads died with the old disks.
    P = len(nodes)
    for r in range(completed_round + 1, P):
        for t in by_round.get(r, []):
            if t.src != lost:
                continue
            addrs = t.spanned_addresses(dead.runs[t.run_index])
            _, n_ops = dead.system.read_batch(addrs)
            report.rebuild_read_ios += n_ops
    # Re-sent messages share the replacement's ingest link, so they
    # serialize: the rebuild adds their summed transfer time.
    report.link_ms += resent_ms
    report.round_ms.append(resent_ms)
    if telemetry is not None:
        from ..telemetry.schema import EV_NODE_LOSS

        telemetry.event(
            EV_NODE_LOSS,
            node=lost,
            after_round=completed_round,
            rebuild_blocks=report.rebuild_blocks_resent,
            rebuild_read_ios=report.rebuild_read_ios,
        )
