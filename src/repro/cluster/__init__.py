"""Scale-out: sharded multi-node external sorting.

A :func:`cluster_sort` spreads one logical sort across ``P`` simulated
nodes — each with its own :class:`~repro.disks.system.ParallelDiskSystem`
and §5.2 memory pool — via sample-based splitters, a charged all-to-all
exchange (:class:`LinkModel` alpha–beta links), and per-node SRM shard
merges.  See ``docs/CLUSTER.md``.
"""

from .exchange import ExchangeReport, NodeLoss, Transfer, execute_exchange, plan_transfers
from .link import LINK_1GBE, LinkModel
from .sort import ClusterConfig, ClusterNode, ClusterSortResult, cluster_sort
from .splitters import partition_skew, sample_node_keys, select_splitters

__all__ = [
    "ClusterConfig",
    "ClusterNode",
    "ClusterSortResult",
    "ExchangeReport",
    "LINK_1GBE",
    "LinkModel",
    "NodeLoss",
    "Transfer",
    "cluster_sort",
    "execute_exchange",
    "partition_skew",
    "plan_transfers",
    "sample_node_keys",
    "select_splitters",
]
