"""Causal trace records and the bounded trace ring.

Counters and spans (PR 3) say *how much* I/O a run paid; this module
records *when* every simulated operation ran and *what it waited on*,
so the makespan can be decomposed into a causal chain
(:mod:`repro.analysis.critical_path`) instead of a pile of totals.

Every traced operation becomes one :class:`TraceRecord` with

* ``queue_ms`` / ``start_ms`` / ``end_ms`` — simulated-clock timestamps
  (when the request was issued, when service began, when it completed);
* a ``lane`` (``disk3``, ``cpu``, ``channel``, ``node2``, ``link``,
  ``worker1``) and a ``domain`` grouping one timeline (``merge:1``,
  ``demand:0``, ``cluster:0``, ``wall:0``);
* a ``cat`` in ``{read, write, compute, stall, link, recovery}`` — the
  attribution bucket the record charges time to;
* a causal predecessor ``dep`` — the index of the record whose
  completion *bound* this record's start (the queue predecessor on a
  busy disk, the issuing CPU batch, the stall's awaited arrival, the
  previous phase's barrier).  Producers choose the dep so that
  ``dep.end_ms >= start_ms`` holds bit-exactly; that invariant is what
  lets the critical-path walk tile the makespan with no float slack.

Records carry only simulated-clock floats and small ints/strings, so a
seeded run exports a byte-identical trace JSONL (asserted by the
determinism tests).  Wall-clock lanes (parallel-merge workers) are
segregated under the ``wall`` domain and never mix with simulated time.

The :class:`TraceCollector` is a bounded ring: overflow evicts the
oldest records and counts them in ``dropped`` (surfaced by ``repro
inspect``); a critical-path walk that runs into an evicted dep reports
itself ``truncated`` rather than wrong.

:func:`chrome_trace` converts the exported events to Chrome
trace-event JSON (the ``{"traceEvents": [...]}`` shape), viewable in
Perfetto / ``chrome://tracing``: domains become processes, lanes become
threads, cross-lane deps become flow arrows.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Iterable, Iterator

__all__ = [
    "TRACE_CATEGORIES",
    "TraceRecord",
    "TraceSummary",
    "TraceCollector",
    "NetTracer",
    "SystemTracer",
    "StagedTracer",
    "chrome_trace",
    "write_chrome_trace",
    "trace_events_from_stream",
]

#: The attribution buckets every record charges into.
TRACE_CATEGORIES = ("read", "write", "compute", "stall", "link", "recovery")

#: Map a producer ``kind`` to its attribution category.
KIND_CATEGORY = {
    "read": "read",
    "write": "write",
    "parity": "write",
    "compute": "compute",
    "read_stall": "stall",
    "write_stall": "stall",
    "fault_stall": "stall",
    "link": "link",
    "link_round": "link",
    "recovery": "recovery",
    "backoff": "recovery",
}


class TraceRecord:
    """One traced operation on the simulated (or wall) timeline."""

    __slots__ = (
        "index", "kind", "cat", "lane", "domain",
        "queue_ms", "start_ms", "end_ms", "dep", "attrs",
    )

    def __init__(
        self,
        index: int,
        kind: str,
        cat: str,
        lane: str,
        domain: str,
        queue_ms: float,
        start_ms: float,
        end_ms: float,
        dep: int | None,
        attrs: dict | None,
    ) -> None:
        self.index = index
        self.kind = kind
        self.cat = cat
        self.lane = lane
        self.domain = domain
        self.queue_ms = queue_ms
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.dep = dep
        self.attrs = attrs

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def to_event(self) -> dict:
        ev = {
            "type": "trace",
            "i": self.index,
            "kind": self.kind,
            "cat": self.cat,
            "lane": self.lane,
            "dom": self.domain,
            "tq": self.queue_ms,
            "ts": self.start_ms,
            "te": self.end_ms,
            "dep": self.dep,
        }
        if self.attrs:
            ev["attrs"] = self.attrs
        return ev

    @classmethod
    def from_event(cls, ev: dict) -> "TraceRecord":
        return cls(
            ev["i"], ev["kind"], ev["cat"], ev["lane"], ev["dom"],
            ev["tq"], ev["ts"], ev["te"], ev.get("dep"),
            ev.get("attrs") or None,
        )


class TraceSummary:
    """Producer-declared closing line for one domain's timeline."""

    __slots__ = ("domain", "makespan_ms", "exact")

    def __init__(self, domain: str, makespan_ms: float, exact: bool) -> None:
        self.domain = domain
        self.makespan_ms = makespan_ms
        self.exact = exact


class TraceCollector:
    """Bounded ring of :class:`TraceRecord` plus per-domain summaries.

    ``add`` returns a *global* record index (monotone, never reused) so
    dep edges stay meaningful after the ring evicts old records; the
    eviction count is ``dropped``.
    """

    def __init__(self, max_records: int = 500_000) -> None:
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.max_records = max_records
        self.records: deque[TraceRecord] = deque(maxlen=max_records)
        self.summaries: list[TraceSummary] = []
        self.emitted = 0
        self.dropped = 0
        self._domain_counts: dict[str, int] = {}

    # -- production ------------------------------------------------------

    def new_domain(self, prefix: str) -> str:
        """Allocate a deterministic domain name, ``prefix:N``."""
        n = self._domain_counts.get(prefix, 0)
        self._domain_counts[prefix] = n + 1
        return f"{prefix}:{n}"

    def add(
        self,
        kind: str,
        lane: str,
        domain: str,
        queue_ms: float,
        start_ms: float,
        end_ms: float,
        dep: int | None = None,
        cat: str | None = None,
        attrs: dict | None = None,
    ) -> int:
        """Append a record; returns its global index."""
        index = self.emitted
        self.emitted += 1
        if len(self.records) == self.max_records:
            self.dropped += 1
        self.records.append(
            TraceRecord(
                index, kind, cat if cat is not None else KIND_CATEGORY[kind],
                lane, domain, queue_ms, start_ms, end_ms, dep, attrs,
            )
        )
        return index

    def summary(self, domain: str, makespan_ms: float, exact: bool = True) -> None:
        """Close *domain*'s timeline at *makespan_ms*."""
        self.summaries.append(TraceSummary(domain, float(makespan_ms), exact))

    # -- export ----------------------------------------------------------

    def to_events(self) -> Iterator[dict]:
        """Yield the JSONL-ready event dicts (records, then summaries)."""
        counts: dict[str, int] = {}
        for rec in self.records:
            counts[rec.domain] = counts.get(rec.domain, 0) + 1
            yield rec.to_event()
        for s in self.summaries:
            yield {
                "type": "trace_summary",
                "dom": s.domain,
                "makespan_ms": s.makespan_ms,
                "exact": s.exact,
                "records": counts.get(s.domain, 0),
                "emitted": self.emitted,
                "dropped": self.dropped,
            }


# ---------------------------------------------------------------------------
# Producers.
# ---------------------------------------------------------------------------


class NetTracer:
    """Traces :class:`~repro.disks.service.ServiceNetwork` requests.

    The network calls :meth:`disk_op` once per accepted request, passing
    the pieces ``DiskService.submit`` used, *plus* the pre-submit
    ``free_at`` so the tracer can replay the exact
    ``max(issue, free_at, not_before)`` start and pick the **binding**
    predecessor: the disk's previous request when the queue bound the
    start, else ``issuer_dep`` (set by the engine to the CPU record that
    issued the batch).  Fault stall windows and recovery/penalty tails
    become their own ``stall`` / ``recovery`` records so the critical
    path names the fault, not just a longer read.
    """

    __slots__ = (
        "collector", "domain", "issuer_dep", "last_batch", "_tail", "context",
    )

    def __init__(self, collector: TraceCollector, domain: str) -> None:
        self.collector = collector
        self.domain = domain
        #: Set by the issuing side before each ``ServiceNetwork.submit``.
        self.issuer_dep: int | None = None
        #: Optional attrs merged into every op record (e.g. ``{"job":
        #: "t0-j1", "tenant": "t0"}``) so queued ops decompose per job.
        self.context: dict | None = None
        #: Record index of the final record of each op in the last batch,
        #: positionally matching the submitted ``disk_ids``.
        self.last_batch: list[int] = []
        self._tail: dict[int, int] = {}

    def begin_batch(self) -> None:
        self.last_batch = []

    def disk_op(
        self,
        disk: int,
        kind: str,
        issue_ms: float,
        free_at: float,
        not_before: float,
        core_ms: float,
        service_ms: float,
        complete_ms: float,
    ) -> None:
        col = self.collector
        lane = f"disk{disk}"
        start = max(issue_ms, free_at, not_before)
        if free_at >= issue_ms and disk in self._tail:
            dep = self._tail[disk]  # queued behind this disk's previous op
        else:
            dep = self.issuer_dep
        candidate = max(issue_ms, free_at)
        if not_before > candidate:
            # Fault-plan stall window held the head off the platter.
            dep = col.add(
                "fault_stall", lane, self.domain,
                issue_ms, candidate, not_before, dep=dep,
            )
        mid = start + core_ms
        rec = col.add(
            kind, lane, self.domain, issue_ms, start, mid, dep=dep,
            attrs=dict(self.context) if self.context else None,
        )
        if service_ms != core_ms:
            # Retry penalties + charged recovery block-ops tail the op.
            rec = col.add(
                "recovery", lane, self.domain, issue_ms, mid, complete_ms,
                dep=rec,
            )
        self._tail[disk] = rec
        self.last_batch.append(rec)

    def residual(self, disk: int, free_at: float, complete_ms: float) -> None:
        """A drained end-of-run residual (recovery/backoff tail)."""
        rec = self.collector.add(
            "recovery", f"disk{disk}", self.domain,
            free_at, free_at, complete_ms, dep=self._tail.get(disk),
        )
        self._tail[disk] = rec

    def tail(self, disk: int) -> int | None:
        return self._tail.get(disk)


class SystemTracer:
    """Traces the demand-paced system clock (no overlap engine).

    ``ParallelDiskSystem`` advances ``elapsed_ms`` serially — every
    charged stripe op, parity write, and backoff extends one global
    timeline — so the trace is a single ``channel`` lane whose records
    tile ``[0, elapsed_ms]`` exactly, each depending on the previous.

    ``context`` tags every record with extra attrs; the multi-tenant
    service sets it to the granted job's ``{"job", "tenant"}`` before
    each round, which is what lets the critical-path attribution
    decompose the shared makespan per tenant.  :meth:`idle` records the
    gaps the service spends waiting for the next arrival, so the tagged
    timeline still tiles ``[0, makespan]`` exactly.
    """

    __slots__ = ("collector", "domain", "_tail", "context")

    def __init__(self, collector: TraceCollector, domain: str) -> None:
        self.collector = collector
        self.domain = domain
        self._tail: int | None = None
        #: Optional attrs merged into every record (service job tags).
        self.context: dict | None = None

    def op(self, kind: str, n_disks: int, t0: float, t1: float) -> None:
        if t1 == t0:
            return
        attrs = {"disks": n_disks} if n_disks else {}
        if self.context:
            attrs.update(self.context)
        self._tail = self.collector.add(
            kind, "channel", self.domain, t0, t0, t1, dep=self._tail,
            attrs=attrs or None,
        )

    def idle(self, t0: float, t1: float) -> None:
        """Record a service idle gap (no runnable job) as a stall."""
        if t1 == t0:
            return
        self._tail = self.collector.add(
            "idle", "channel", self.domain, t0, t0, t1, dep=self._tail,
            cat="stall", attrs={"tenant": "(idle)"},
        )

    def finish(self, makespan_ms: float, exact: bool = True) -> None:
        self.collector.summary(self.domain, makespan_ms, exact)


class StagedTracer:
    """Per-node demand tracer that rebases onto the cluster clock.

    Cluster nodes run on private clocks; the driver folds each phase's
    slowest node into the cluster makespan.  This tracer buffers records
    in node-local time and, at each phase barrier, :meth:`flush`\\ es
    them rebased as ``phase_start + (t - origin)`` — the same
    subtraction/addition the driver's phase fold performs, so the
    slowest node's final record lands bit-exactly on the next phase
    start.
    """

    __slots__ = ("lane", "_pending", "origin")

    def __init__(self, lane: str) -> None:
        self.lane = lane
        self._pending: list[tuple[str, float, float, int]] = []
        self.origin = 0.0

    def begin_phase(self, origin: float) -> None:
        self.origin = origin

    def op(self, kind: str, n_disks: int, t0: float, t1: float) -> None:
        if t1 == t0:
            return
        self._pending.append((kind, t0, t1, n_disks))

    def flush(
        self,
        collector: TraceCollector,
        domain: str,
        phase_start: float,
        barrier_dep: int | None,
    ) -> tuple[int | None, float]:
        """Rebase and emit buffered records; returns (last id, last end)."""
        origin = self.origin
        dep = barrier_dep
        last: int | None = None
        last_end = phase_start
        for kind, t0, t1, n_disks in self._pending:
            dep = collector.add(
                kind, self.lane, domain,
                phase_start + (t0 - origin),
                phase_start + (t0 - origin),
                phase_start + (t1 - origin),
                dep=dep,
                attrs={"disks": n_disks} if n_disks else None,
            )
            last = dep
            last_end = phase_start + (t1 - origin)
        self._pending.clear()
        return last, last_end


# ---------------------------------------------------------------------------
# Chrome trace-event export.
# ---------------------------------------------------------------------------


def trace_events_from_stream(events: Iterable[dict]) -> tuple[list[dict], list[dict]]:
    """Split a decoded telemetry stream into (trace, trace_summary) events."""
    recs = [ev for ev in events if ev.get("type") == "trace"]
    sums = [ev for ev in events if ev.get("type") == "trace_summary"]
    return recs, sums


def chrome_trace(events: Iterable[dict]) -> dict:
    """Convert telemetry events to Chrome trace-event JSON.

    Domains map to processes, lanes to threads; every record becomes a
    complete (``ph="X"``) event with microsecond timestamps, and each
    cross-lane dep becomes a flow arrow (``ph="s"``/``ph="f"``).  The
    result loads in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``.
    """
    recs, sums = trace_events_from_stream(events)
    out: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    by_index: dict[int, dict] = {r["i"]: r for r in recs}
    for r in recs:
        dom, lane = r["dom"], r["lane"]
        if dom not in pids:
            pid = pids[dom] = len(pids) + 1
            out.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": dom},
            })
        pid = pids[dom]
        key = (dom, lane)
        if key not in tids:
            tid = tids[key] = len(tids) + 1
            out.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": lane},
            })
    for r in recs:
        pid = pids[r["dom"]]
        tid = tids[(r["dom"], r["lane"])]
        ts = r["ts"] * 1000.0
        ev = {
            "ph": "X", "name": r["kind"], "cat": r["cat"],
            "pid": pid, "tid": tid,
            "ts": ts, "dur": (r["te"] - r["ts"]) * 1000.0,
            "args": {"i": r["i"], "queue_ms": r["tq"], "dep": r["dep"]},
        }
        if r.get("attrs"):
            ev["args"].update(r["attrs"])
        out.append(ev)
        dep = r.get("dep")
        if dep is not None:
            d = by_index.get(dep)
            if d is not None and d["lane"] != r["lane"]:
                out.append({
                    "ph": "s", "id": r["i"], "name": "dep", "cat": "dep",
                    "pid": pids[d["dom"]], "tid": tids[(d["dom"], d["lane"])],
                    "ts": d["te"] * 1000.0,
                })
                out.append({
                    "ph": "f", "bp": "e", "id": r["i"], "name": "dep",
                    "cat": "dep", "pid": pid, "tid": tid, "ts": ts,
                })
    meta: dict[str, Any] = {
        "domains": {
            s["dom"]: {"makespan_ms": s["makespan_ms"], "exact": s["exact"]}
            for s in sums
        },
    }
    if sums:
        meta["dropped"] = sums[-1].get("dropped", 0)
        meta["emitted"] = sums[-1].get("emitted", len(recs))
    return {"traceEvents": out, "displayTimeUnit": "ms", "otherData": meta}


def write_chrome_trace(path: str, events: Iterable[dict]) -> dict:
    """Write :func:`chrome_trace` output to *path*; returns the dict."""
    doc = chrome_trace(events)
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return doc
