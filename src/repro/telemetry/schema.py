"""Canonical metric names and the JSONL event schema.

Every quantity the repo measures in more than one place is named here
exactly once; the scheduler, the disk system, the bench harness, and
``repro inspect`` all speak these names.  The mapping from each metric
to the paper quantity it measures is documented in
``docs/OBSERVABILITY.md``.

Event stream layout (one JSON object per line):

* ``{"type": "meta", "schema": SCHEMA_VERSION, "algo": ..., ...}`` —
  always the first event; carries the run configuration.
* ``{"type": "event", "name": ..., "seq": ..., "attrs": {...}}`` —
  point events (overlap disk summaries, notes).
* ``{"type": "span", "name": ..., "span_id": ..., "parent_id": ...,
  "depth": ..., "seq": ..., "start_seq": ..., "wall_s": ...,
  "attrs": {...}, "io": {...}}`` — a closed phase scope; ``io`` is the
  I/O-counter delta over the span when a disk system was attached.
* ``{"type": "metrics", "metrics": {name: snapshot}}`` — the registry
  snapshot, emitted once at the end by ``Telemetry.finish()``.
"""

from __future__ import annotations

__all__ = [
    "SCHEMA_VERSION",
    "SPAN_SORT",
    "SPAN_RUN_FORMATION",
    "SPAN_MERGE_PASS",
    "SPAN_MERGE",
    "SPAN_WRITE_BEHIND",
    "SPAN_CLUSTER_SORT",
    "SPAN_SPLITTER_SELECT",
    "SPAN_EXCHANGE",
    "SPAN_SHARD_MERGE",
    "SPAN_PMERGE",
    "SPAN_PMERGE_PARTITION",
    "SPAN_PMERGE_WORKERS",
    "SPAN_PMERGE_STITCH",
    "SPAN_SERVICE",
    "SPAN_SERVICE_JOB",
    "IO_PARALLEL_READS",
    "IO_PARALLEL_WRITES",
    "IO_BLOCKS_READ",
    "IO_BLOCKS_WRITTEN",
    "SCHED_INITIAL_READS",
    "SCHED_MERGE_PARREADS",
    "SCHED_FLUSH_OPS",
    "SCHED_BLOCKS_FLUSHED",
    "MERGE_DRAIN_CYCLES",
    "H_READ_WIDTH",
    "H_FLUSH_OCCUPANCY",
    "H_FLUSH_OUTRANK",
    "H_DRAIN_BATCH",
    "H_RUN_LENGTH",
    "H_WRITER_OCCUPANCY",
    "H_OVERLAP_QUEUE_DEPTH",
    "ADAPTIVE_DEPTH_BOOSTS",
    "ADAPTIVE_FLOOR_ISSUES",
    "ADAPTIVE_FLUSH_REDIRECTS",
    "ADAPTIVE_SLOW_DISKS",
    "FAULT_TRANSIENT_FAILURES",
    "FAULT_RETRIES",
    "FAULT_CORRUPT_INJECTED",
    "FAULT_CHECKSUM_DETECTED",
    "FAULT_UNDETECTED_CORRUPTIONS",
    "FAULT_DISK_DEATHS",
    "FAULT_RECOVERY_BLOCKS",
    "FAULT_DEGRADED_SPLIT_IOS",
    "FAULT_BREAKER_TRIPS",
    "FAULT_REDIRECTED_ALLOCS",
    "FAULT_STALL_MS",
    "FAULT_WRITE_FAILURES",
    "FAULT_TORN_INJECTED",
    "FAULT_TORN_DETECTED",
    "FAULT_RECOVERY_READ_IOS",
    "FAULT_PARITY_BLOCKS",
    "CLUSTER_EXCHANGE_BLOCKS",
    "CLUSTER_EXCHANGE_ROUNDS",
    "CLUSTER_SELF_BLOCKS",
    "CLUSTER_SAMPLE_READS",
    "CLUSTER_LINK_MS",
    "CLUSTER_PARTITION_SKEW",
    "CLUSTER_NODE_LOSSES",
    "CLUSTER_REBUILD_BLOCKS",
    "CLUSTER_REBUILD_READ_IOS",
    "BACKEND_BLOCKS_WRITTEN",
    "BACKEND_BLOCKS_READ",
    "BACKEND_BYTES_WRITTEN",
    "BACKEND_BYTES_READ",
    "BACKEND_FILE_GROWS",
    "BACKEND_FILE_BYTES",
    "PMERGE_MERGES",
    "PMERGE_WORKERS",
    "PMERGE_RANGES",
    "PMERGE_RECORDS",
    "PMERGE_PARTITION_PROBES",
    "PMERGE_GHOST_ROUNDS",
    "SERVICE_JOBS_SUBMITTED",
    "SERVICE_JOBS_ADMITTED",
    "SERVICE_JOBS_COMPLETED",
    "SERVICE_JOBS_REJECTED",
    "SERVICE_JOBS_ABORTED",
    "SERVICE_ROUNDS_DISPATCHED",
    "SERVICE_QUOTA_WAITS",
    "SERVICE_IDLE_MS",
    "H_FAULT_BACKOFF",
    "H_SERVICE_JOB_ROUNDS",
    "EV_OVERLAP_DISKS",
    "EV_DISK_DEATH",
    "EV_NODE_LOSS",
    "EV_EXCHANGE_ROUND",
    "EV_PMERGE_WORKER",
    "EV_QUOTA_VIOLATION",
    "EV_JOB_ABORTED",
    "read_width_edges",
    "occupancy_edges",
    "run_length_edges",
    "writer_occupancy_edges",
    "batch_edges",
    "backoff_edges",
    "validate_events",
]

#: Bump when the event layout changes incompatibly.
SCHEMA_VERSION = 1

# -- span names ------------------------------------------------------------

SPAN_SORT = "sort"
SPAN_RUN_FORMATION = "run_formation"
SPAN_MERGE_PASS = "merge_pass"
SPAN_MERGE = "merge"
SPAN_WRITE_BEHIND = "write_behind"

# Cluster-layer phases (``repro cluster-sort``): the root scale-out
# span, sample-based splitter selection, the all-to-all exchange, and
# one per-node shard merge.
SPAN_CLUSTER_SORT = "cluster_sort"
SPAN_SPLITTER_SELECT = "splitter_select"
SPAN_EXCHANGE = "exchange"
SPAN_SHARD_MERGE = "shard_merge"

# Process-parallel Merge Path plane (``repro.core.parallel_merge``):
# the root span of one parallel merge, then its three stages — co-rank
# partitioning, the worker-pool drain, and stitching scratch output
# through the RunWriter.
SPAN_PMERGE = "pmerge"
SPAN_PMERGE_PARTITION = "pmerge_partition"
SPAN_PMERGE_WORKERS = "pmerge_workers"
SPAN_PMERGE_STITCH = "pmerge_stitch"

# Multi-tenant sort service (``repro serve``): the root span of one
# service run, and one child span per job covering admission through
# completion (attrs carry tenant, rounds, and the per-job I/O counts).
SPAN_SERVICE = "service"
SPAN_SERVICE_JOB = "service_job"

# -- counters --------------------------------------------------------------

IO_PARALLEL_READS = "io.parallel_reads"
IO_PARALLEL_WRITES = "io.parallel_writes"
IO_BLOCKS_READ = "io.blocks_read"
IO_BLOCKS_WRITTEN = "io.blocks_written"
SCHED_INITIAL_READS = "sched.initial_reads"
SCHED_MERGE_PARREADS = "sched.merge_parreads"
SCHED_FLUSH_OPS = "sched.flush_ops"
SCHED_BLOCKS_FLUSHED = "sched.blocks_flushed"
MERGE_DRAIN_CYCLES = "merge.drain_cycles"

# Latency-adaptive scheduling counters (``LatencyAwareConfig``).  All
# are zero with adaptation off or on a homogeneous farm.

#: Pumps where the read-ahead window was deepened because a slow disk
#: still offered blocks.
ADAPTIVE_DEPTH_BOOSTS = "scheduler.adaptive.depth_boosts"
#: Eager ParReads issued past the nominal window to refill an idle
#: straggler queue (the eager-issue floor).
ADAPTIVE_FLOOR_ISSUES = "scheduler.adaptive.floor_issues"
#: Flushes whose victim set was steered away from the §5.5 default so
#: the re-reads land on faster disks.
ADAPTIVE_FLUSH_REDIRECTS = "scheduler.adaptive.flush_redirects"
#: Disks currently classified slow by the service-time EWMA (gauge).
ADAPTIVE_SLOW_DISKS = "scheduler.adaptive.slow_disks"

# Fault-injection and resilience counters (``repro chaos``).  All are
# zero on a fault-free run; the chaos harness asserts the relations
# documented next to each name.

#: Injected transient read failures (each costs one retry attempt).
FAULT_TRANSIENT_FAILURES = "faults.transient_failures"
#: Read retries performed (transient failures + detected corruptions).
FAULT_RETRIES = "faults.retries"
#: Blocks whose transfer was corrupted by the fault plan.
FAULT_CORRUPT_INJECTED = "faults.corrupt_blocks_injected"
#: Corrupted transfers caught by the CRC-32 block checksum.
FAULT_CHECKSUM_DETECTED = "faults.checksum_failures_detected"
#: Corrupted transfers that slipped past verification (unsealed blocks);
#: the chaos harness asserts this stays 0.
FAULT_UNDETECTED_CORRUPTIONS = "faults.undetected_corruptions"
#: Permanent disk losses (planned deaths + circuit-breaker escalations).
FAULT_DISK_DEATHS = "faults.disk_deaths"
#: Blocks recovered off a dead disk onto the survivors.
FAULT_RECOVERY_BLOCKS = "faults.recovery_blocks"
#: Extra I/O rounds paid because a degraded stripe touched the same
#: surviving disk more than once (the degraded-mode overhead).
FAULT_DEGRADED_SPLIT_IOS = "faults.degraded_split_ios"
#: Per-disk circuit-breaker trips (consecutive-failure escalations).
FAULT_BREAKER_TRIPS = "faults.breaker_trips"
#: Allocations redirected from a dead disk to a survivor.
FAULT_REDIRECTED_ALLOCS = "faults.redirected_allocations"
#: Simulated time spent inside fault-plan stall windows (overlap path).
FAULT_STALL_MS = "faults.stall_ms"
#: Injected transient write failures (each costs one retry attempt).
FAULT_WRITE_FAILURES = "faults.write_failures"
#: Writes that persisted a block whose contents no longer match its CRC
#: seal (the write "tore"); dangerous because the writer sees success.
FAULT_TORN_INJECTED = "faults.torn_writes_injected"
#: Torn writes caught by seal verification on a later read or scrub;
#: the chaos harness asserts this equals the injected count.
FAULT_TORN_DETECTED = "faults.torn_writes_detected"
#: Charged parallel read rounds spent reconstructing lost or torn
#: blocks from parity (recovery is paid for, not free).
FAULT_RECOVERY_READ_IOS = "faults.recovery_read_ios"
#: Rotating parity blocks written under ``redundancy="parity"``.
FAULT_PARITY_BLOCKS = "faults.parity_blocks_written"

# Cluster scale-out counters (``repro cluster-sort``).  All are zero on
# a single-node run.

#: Blocks that crossed a node-to-node link during the exchange.
CLUSTER_EXCHANGE_BLOCKS = "cluster.exchange_blocks"
#: All-to-all exchange rounds executed (``P - 1`` fault-free, plus any
#: replayed while rebuilding a lost node).
CLUSTER_EXCHANGE_ROUNDS = "cluster.exchange_rounds"
#: Blocks whose owner was their source node (no link crossed).
CLUSTER_SELF_BLOCKS = "cluster.self_blocks"
#: Charged parallel reads spent drawing splitter samples from runs.
CLUSTER_SAMPLE_READS = "cluster.sample_reads"
#: Simulated link transfer time of the exchange critical path, in ms
#: (per round, the slowest link; rounds sum).
CLUSTER_LINK_MS = "cluster.link_ms"
#: Splitter quality: max shard size / mean shard size (1.0 = perfect).
CLUSTER_PARTITION_SKEW = "cluster.partition_skew"
#: Nodes lost mid-exchange and rebuilt from source runs.
CLUSTER_NODE_LOSSES = "cluster.node_losses"
#: Blocks re-sent to a replacement node during rebuild.
CLUSTER_REBUILD_BLOCKS = "cluster.rebuild_blocks_resent"
#: Charged parallel reads spent re-reading source runs for a rebuild.
CLUSTER_REBUILD_READ_IOS = "cluster.rebuild_read_ios"

# Storage-backend counters (``backend.*``).  Populated from
# ``StorageBackend.stats()`` when a sort/merge finishes on a non-default
# backend; all zero for the in-memory backend (which pays no encoding).

#: Blocks encoded into backend storage (mmap slot records written).
BACKEND_BLOCKS_WRITTEN = "backend.blocks_written"
#: Blocks decoded out of backend storage (zero-copy view constructions).
BACKEND_BLOCKS_READ = "backend.blocks_read"
#: Record bytes written through the backend (keys + payloads).
BACKEND_BYTES_WRITTEN = "backend.bytes_written"
#: Record bytes read through the backend (keys + payloads).
BACKEND_BYTES_READ = "backend.bytes_read"
#: Disk-file growth events (ftruncate + remap; doubling policy).
BACKEND_FILE_GROWS = "backend.file_grows"
#: Total bytes reserved across all disk files (sparse on most FS).
BACKEND_FILE_BYTES = "backend.file_bytes"

# Process-parallel merge counters (``pmerge.*``).  All zero when merges
# run on the serial data plane.

#: Merges drained by the parallel Merge Path plane.
PMERGE_MERGES = "pmerge.merges"
#: Worker processes requested per parallel merge (W).
PMERGE_WORKERS = "pmerge.workers"
#: Disjoint output ranges actually dispatched (<= W; empty ranges skip).
PMERGE_RANGES = "pmerge.ranges"
#: Records merged by worker processes.
PMERGE_RECORDS = "pmerge.records"
#: Co-rank binary-search probes over the key domain (all uncharged
#: metadata work; the §5.5 I/O schedule is untouched).
PMERGE_PARTITION_PROBES = "pmerge.partition_probes"
#: Ghost-schedule drive iterations replaying the serial ParRead/flush
#: stream (one per drain round; ~= merge ParReads + 1).
PMERGE_GHOST_ROUNDS = "pmerge.ghost_rounds"

# Multi-tenant service counters (``service.*``).  All zero outside
# ``repro serve`` / ``SortService`` runs.

#: Jobs submitted to the service (every arrival, admitted or not).
SERVICE_JOBS_SUBMITTED = "service.jobs_submitted"
#: Jobs that cleared all three admission phases and got a driver.
SERVICE_JOBS_ADMITTED = "service.jobs_admitted"
#: Jobs that ran to completion.
SERVICE_JOBS_COMPLETED = "service.jobs_completed"
#: Jobs rejected at admission (quota violation or bad geometry).
SERVICE_JOBS_REJECTED = "service.jobs_rejected"
#: Jobs cancelled mid-flight; their frames and slot were reclaimed.
SERVICE_JOBS_ABORTED = "service.jobs_aborted"
#: Parallel-I/O rounds granted by the dispatcher (phase 5).
SERVICE_ROUNDS_DISPATCHED = "service.rounds_dispatched"
#: Admission retries spent waiting for tenant frames or a queue slot.
SERVICE_QUOTA_WAITS = "service.quota_waits"
#: Simulated time the shared farm idled with no runnable job.
SERVICE_IDLE_MS = "service.idle_ms"

# -- histograms ------------------------------------------------------------

#: Blocks moved per parallel read (Theorem 1's parallelism; <= D).
H_READ_WIDTH = "io.read_width"
#: M_R occupancy in excess of the merge order R when a Flush_t fired
#: (§5.5 case 2c's ``extra``; §5.4 bounds it by D).
H_FLUSH_OCCUPANCY = "sched.flush_occupancy"
#: OutRank_t at each flush decision (Definition 7; 1 on the demand path).
H_FLUSH_OUTRANK = "sched.flush_outrank"
#: Records emitted per internal-merge drain step (loser-tree batch size).
H_DRAIN_BATCH = "merge.drain_batch"
#: Records per formed run (replacement selection targets 2M).
H_RUN_LENGTH = "run_formation.run_length"
#: Buffered output blocks at each stripe write (M_W <= 2D discipline).
H_WRITER_OCCUPANCY = "writer.buffered_blocks"
#: In-flight prefetched blocks at each ParRead (overlap engine).
H_OVERLAP_QUEUE_DEPTH = "overlap.queue_depth"
#: Backoff delay charged per retry, in ms (capped exponential).
H_FAULT_BACKOFF = "faults.backoff_ms"
#: Parallel-I/O rounds per completed service job.
H_SERVICE_JOB_ROUNDS = "service.job_rounds"

# -- point events ----------------------------------------------------------

#: Per-disk busy/idle breakdown of one engine-driven merge.
EV_OVERLAP_DISKS = "overlap_disks"
#: A disk died (planned death or breaker escalation); attrs carry the
#: disk id, trigger, and blocks recovered onto the survivors.
EV_DISK_DEATH = "disk_death"
#: A cluster node was lost mid-exchange; attrs carry the node id, the
#: round it died after, and the rebuild charges.
EV_NODE_LOSS = "node_loss"
#: One all-to-all exchange round; attrs carry the round index, its
#: critical (slowest-link) time, and per-link ``{src, dst, blocks,
#: records, ms}`` alpha-beta charges.
EV_EXCHANGE_ROUND = "exchange_round"
#: One parallel-merge worker finished its range drain; attrs carry the
#: worker index, records merged, and wall-clock drain seconds.
EV_PMERGE_WORKER = "pmerge_worker"
#: A job asked for more frames than its tenant's quota can ever hold;
#: attrs carry the job, tenant, need, and quota.
EV_QUOTA_VIOLATION = "quota_violation"
#: A job was cancelled mid-flight; attrs carry the job, tenant, and the
#: rounds it had consumed.
EV_JOB_ABORTED = "job_aborted"


# -- bucket layouts --------------------------------------------------------
#
# Edges are derived only from the machine geometry (D, B, M) so SRM and
# DSM runs on the same machine produce byte-comparable histograms.


def read_width_edges(n_disks: int) -> tuple[float, ...]:
    """One bucket per possible stripe width ``1..D``."""
    return tuple(float(w) for w in range(1, n_disks + 1))


def occupancy_edges(n_disks: int) -> tuple[float, ...]:
    """Buckets for the flush-time occupancy excess, §5.4-bounded by D."""
    return tuple(float(v) for v in range(1, n_disks + 1))


def run_length_edges(memory_records: int) -> tuple[float, ...]:
    """Buckets around the 2M replacement-selection expectation."""
    m = max(1, memory_records)
    return tuple(float(m * f) for f in (0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0))


def writer_occupancy_edges(n_disks: int) -> tuple[float, ...]:
    """Buckets for buffered output blocks at drain time.

    The ring holds two ``M_W = 2D`` windows, so occupancy at a stripe
    write sits in ``[2D, 4D]``; one bucket per block count.
    """
    return tuple(float(v) for v in range(1, 4 * n_disks + 1))


def backoff_edges(base_ms: float, cap_ms: float, factor: float = 2.0) -> tuple[float, ...]:
    """Geometric buckets spanning one retry ladder, ``base .. cap``.

    Derived only from the :class:`~repro.faults.retry.RetryPolicy`
    parameters, so two runs under the same policy bucket identically.
    The top edge sits above ``cap`` to absorb jitter on the capped step.
    """
    base = max(base_ms, 1e-3)
    factor = max(factor, 1.001)
    edges = []
    v = base
    while v < cap_ms and len(edges) < 32:
        edges.append(v)
        v *= factor
    edges.append(cap_ms)
    edges.append(cap_ms * factor)
    return tuple(sorted(set(edges)))


def batch_edges(block_size: int) -> tuple[float, ...]:
    """Power-of-two-ish buckets for drain batch sizes, in records."""
    b = max(1, block_size)
    return tuple(
        sorted({float(v) for v in (1, 4, 16, b // 2 or 1, b, 4 * b, 16 * b)})
    )


# -- validation ------------------------------------------------------------

_SPAN_REQUIRED = ("name", "span_id", "parent_id", "depth", "seq", "wall_s")


def validate_events(events: list[dict]) -> list[str]:
    """Structural checks over a decoded event stream.

    Returns a list of human-readable problems (empty = valid): meta
    first with a known schema version, spans carrying required fields
    with resolvable parents and consistent depths, and exactly one
    trailing metrics snapshot.
    """
    errors: list[str] = []
    if not events:
        return ["empty event stream"]
    head = events[0]
    if head.get("type") != "meta":
        errors.append(f"first event must be meta, got {head.get('type')!r}")
    elif head.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema version {head.get('schema')!r} != {SCHEMA_VERSION}"
        )
    spans: dict[int, dict] = {}
    n_metrics = 0
    for i, ev in enumerate(events):
        t = ev.get("type")
        if t == "span":
            missing = [f for f in _SPAN_REQUIRED if f not in ev]
            if missing:
                errors.append(f"span event {i} missing fields {missing}")
                continue
            spans[ev["span_id"]] = ev
        elif t == "metrics":
            n_metrics += 1
            if not isinstance(ev.get("metrics"), dict):
                errors.append(f"metrics event {i} carries no metrics dict")
        elif t == "trace":
            missing = [f for f in ("i", "kind", "cat", "lane", "dom",
                                   "tq", "ts", "te") if f not in ev]
            if missing:
                errors.append(f"trace event {i} missing fields {missing}")
        elif t == "trace_summary":
            if "dom" not in ev or "makespan_ms" not in ev:
                errors.append(f"trace_summary event {i} missing dom/makespan_ms")
        elif t not in ("meta", "event"):
            errors.append(f"event {i} has unknown type {t!r}")
    for sid, ev in spans.items():
        pid = ev["parent_id"]
        if pid is None:
            if ev["depth"] != 0:
                errors.append(f"root span {sid} has depth {ev['depth']} != 0")
            continue
        parent = spans.get(pid)
        if parent is None:
            errors.append(f"span {sid} references unknown parent {pid}")
        elif ev["depth"] != parent["depth"] + 1:
            errors.append(
                f"span {sid} depth {ev['depth']} != parent depth "
                f"{parent['depth']} + 1"
            )
    if n_metrics != 1:
        errors.append(f"expected exactly one metrics event, got {n_metrics}")
    elif events[-1].get("type") != "metrics":
        errors.append("metrics snapshot must be the final event")
    return errors
