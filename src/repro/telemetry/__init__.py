"""Unified observability: metrics registry, phase spans, run reports.

Three pieces, one handle:

* :class:`MetricsRegistry` — named counters, gauges, and fixed-bucket
  histograms, with a shared no-op singleton when disabled
  (:data:`TELEMETRY_OFF`) so instrumented hot paths cost nothing.
* :class:`Telemetry` / spans — nesting phase scopes (``sort`` >
  ``merge_pass`` > ``merge``) carrying wall-clock, simulated-time, and
  I/O-delta attributes, emitted as a JSONL event stream.
* :class:`RunReport` — the ``repro inspect`` renderer mapping each
  captured metric back to the paper quantity it measures (Theorem 1
  read bounds, §5 flushing, overlap, per-disk skew).

Canonical metric names live in :mod:`repro.telemetry.schema`; the
mapping to paper quantities is documented in ``docs/OBSERVABILITY.md``.
"""

from .registry import NULL_METRIC, Counter, Gauge, Histogram, MetricsRegistry
from .report import RunReport, load_events
from .spans import TELEMETRY_OFF, NullTelemetry, Span, Telemetry
from .trace import (
    TraceCollector,
    TraceRecord,
    chrome_trace,
    write_chrome_trace,
)
from . import schema

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "NullTelemetry",
    "RunReport",
    "Span",
    "Telemetry",
    "TELEMETRY_OFF",
    "TraceCollector",
    "TraceRecord",
    "chrome_trace",
    "write_chrome_trace",
    "load_events",
    "schema",
]
