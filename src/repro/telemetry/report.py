"""``repro inspect``: turn a captured JSONL stream into a run report.

The renderer connects each measured quantity back to the paper:

* **ParReads vs the Theorem-1 bound** — each SRM merge span carries
  ``n_blocks``, ``R``, ``D`` and its read counts; the rigorous
  finite-parameter expectation bound is ``v <= D ·
  gf_expected_max_bound(R, D) / R`` (§7.3), rendered next to the
  measured per-merge overhead ``v = total_reads · D / n_blocks``.
* **Flushing vs occupancy theory (§5)** — the flush-time M_R occupancy
  histogram must sit in ``(R, R + D]`` (§5.4's buffer bound), and the
  re-read fraction ``blocks_flushed / n_blocks`` is compared with the
  occupancy bound's prediction ``v_bound - 1``.
* **Overlap gap** — engine-driven merges report CPU stall, disk
  utilization, and the per-disk busy/idle split (post-Lemma-1 claim).
* **Per-disk skew** — max/mean participation per disk from the span's
  I/O delta (the §3 adversary drives this to D; SRM keeps it near 1).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import DataError
from ..occupancy.bounds import gf_expected_max_bound
from .schema import (
    EV_OVERLAP_DISKS,
    H_FLUSH_OCCUPANCY,
    SPAN_CLUSTER_SORT,
    SPAN_MERGE,
    SPAN_MERGE_PASS,
    SPAN_RUN_FORMATION,
    SPAN_SERVICE,
    SPAN_SERVICE_JOB,
    SPAN_SORT,
    validate_events,
)

__all__ = ["RunReport", "load_events"]

#: Multiplier on the expectation bound before a --check failure: a
#: single merge is one sample of the random layout, so small merges can
#: exceed their *expected*-value bound; the GF bound's slack plus this
#: margin keeps the assertion meaningful without flaking.
CHECK_SLACK = 1.25


def load_events(path: str) -> list[dict]:
    """Decode a JSONL telemetry stream."""
    events: list[dict] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                raise DataError(f"{path}:{lineno}: not valid JSON ({e})") from e
            if not isinstance(ev, dict):
                raise DataError(f"{path}:{lineno}: event is not an object")
            events.append(ev)
    return events


def _skew(per_disk: list[int]) -> float:
    """Max/mean participation (1.0 = perfectly balanced)."""
    if not per_disk or sum(per_disk) == 0:
        return 1.0
    mean = sum(per_disk) / len(per_disk)
    return max(per_disk) / mean


@dataclass
class RunReport:
    """A parsed telemetry stream plus the paper-facing analyses."""

    meta: dict
    spans: list[dict]
    events: list[dict]
    metrics: dict = field(default_factory=dict)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_events(cls, events: list[dict]) -> "RunReport":
        errors = validate_events(events)
        if errors:
            raise DataError(
                "invalid telemetry stream:\n  " + "\n  ".join(errors)
            )
        meta = events[0]
        spans = [ev for ev in events if ev.get("type") == "span"]
        metrics = events[-1]["metrics"]
        return cls(meta=meta, spans=spans, events=events, metrics=metrics)

    @classmethod
    def from_jsonl(cls, path: str) -> "RunReport":
        return cls.from_events(load_events(path))

    # -- span queries ----------------------------------------------------

    def spans_named(self, name: str) -> list[dict]:
        return [s for s in self.spans if s["name"] == name]

    @property
    def algo(self) -> str:
        return str(self.meta.get("algo", "?"))

    # -- per-merge Theorem-1 accounting ----------------------------------

    def merge_rows(self) -> list[dict]:
        """One row per merge span: measured reads vs the §7.3 bound.

        ``v`` is the per-merge read overhead ``total_reads · D /
        n_blocks`` (1.0 = perfect parallelism); ``v_bound`` is the
        rigorous expectation bound ``D · gf_expected_max_bound(R, D) /
        R`` where available (SRM; DSM's striped reads are perfect by
        construction and carry no bound).
        """
        rows = []
        for s in self.spans_named(SPAN_MERGE):
            a = s["attrs"]
            if "n_blocks" not in a:
                continue
            n_blocks = a["n_blocks"]
            d = a["n_disks"]
            total_reads = a.get("initial_reads", 0) + a.get("merge_parreads", 0)
            row = {
                "span_id": s["span_id"],
                "parent_id": s["parent_id"],
                "n_runs": a.get("n_runs"),
                "n_blocks": n_blocks,
                "total_reads": total_reads,
                "perfect_reads": -(-n_blocks // d),
                "v": total_reads * d / n_blocks if n_blocks else 0.0,
                "flush_ops": a.get("flush_ops", 0),
                "blocks_flushed": a.get("blocks_flushed", 0),
                "v_bound": None,
            }
            r = a.get("n_runs")
            if self.algo == "srm" and r and r > 1:
                row["v_bound"] = d * gf_expected_max_bound(r, d) / r
            rows.append(row)
        return rows

    # -- per-phase table -------------------------------------------------

    def phase_rows(self) -> list[dict]:
        """One row per top-level phase (run formation, each merge pass)."""
        rows = []
        for s in self.spans:
            if s["name"] not in (SPAN_RUN_FORMATION, SPAN_MERGE_PASS):
                continue
            a = s["attrs"]
            io = s.get("io", {})
            label = s["name"]
            if s["name"] == SPAN_MERGE_PASS:
                label = f"merge_pass {a.get('pass_index', '?')}"
            rows.append({
                "phase": label,
                "span_id": s["span_id"],
                "wall_s": s["wall_s"],
                "reads": io.get("parallel_reads", 0),
                "writes": io.get("parallel_writes", 0),
                "blocks_read": io.get("blocks_read", 0),
                "blocks_written": io.get("blocks_written", 0),
                "read_skew": _skew(io.get("reads_per_disk", [])),
                "write_skew": _skew(io.get("writes_per_disk", [])),
                "attrs": a,
            })
        return rows

    def overlap_rows(self) -> list[dict]:
        """Engine-driven merges: stall / utilization / overlap gap."""
        rows = []
        for s in self.spans_named(SPAN_MERGE):
            a = s["attrs"]
            if "makespan_ms" not in a:
                continue
            makespan = a["makespan_ms"]
            stall = a.get("read_stall_ms", 0.0) + a.get("write_stall_ms", 0.0)
            rows.append({
                "span_id": s["span_id"],
                "makespan_ms": makespan,
                "cpu_busy_ms": a.get("cpu_busy_ms", 0.0),
                "stall_ms": stall,
                "overlap_gap": stall / makespan if makespan else 0.0,
                "disk_utilization": a.get("disk_utilization", 0.0),
                "eager_reads": a.get("eager_reads", 0),
                "demand_reads": a.get("demand_reads", 0),
            })
        return rows

    def disk_idle_events(self) -> list[dict]:
        return [
            ev for ev in self.events
            if ev.get("type") == "event" and ev.get("name") == EV_OVERLAP_DISKS
        ]

    # -- causal trace ----------------------------------------------------

    def trace_records(self) -> list[dict]:
        return [ev for ev in self.events if ev.get("type") == "trace"]

    def trace_summaries(self) -> list[dict]:
        return [ev for ev in self.events if ev.get("type") == "trace_summary"]

    @property
    def trace_dropped(self) -> int:
        """Ring-overflow eviction count (0 when nothing was dropped)."""
        sums = self.trace_summaries()
        return max((s.get("dropped", 0) for s in sums), default=0)

    def attribution(self):
        """Critical-path attribution per traced domain.

        Returns ``{domain: DomainAttribution}`` (empty when the stream
        carries no trace records).
        """
        from ..analysis.critical_path import analyze_events

        if not self.trace_records() and not self.trace_summaries():
            return {}
        return analyze_events(self.events)

    # -- checks ----------------------------------------------------------

    def check(self, slack: float = CHECK_SLACK) -> list[str]:
        """Assertions for CI: bound violations and schema drift.

        Returns a list of failures (empty = pass).  Schema validity is
        already guaranteed by construction; this adds the quantitative
        checks: every SRM merge's measured ``v`` within *slack* of its
        expectation bound, flush-time occupancies inside ``(R, R + D]``,
        and a sane span tree (a sort span exists and encloses a run
        formation phase).
        """
        failures: list[str] = []
        if self.spans_named(SPAN_SERVICE):
            # Multi-tenant service trace: job drivers run with telemetry
            # detached (their solo-identity guarantee is checked by
            # `repro serve --check`), so there is no per-job sort span
            # tree — require the per-job service spans instead.
            if not self.spans_named(SPAN_SERVICE_JOB):
                failures.append("service span without any service_job spans")
        else:
            if not self.spans_named(SPAN_SORT) and not self.spans_named(
                SPAN_CLUSTER_SORT
            ):
                failures.append("no sort span in stream")
            if not self.spans_named(SPAN_RUN_FORMATION):
                failures.append("no run_formation span in stream")
        for row in self.merge_rows():
            bound = row["v_bound"]
            if bound is None:
                continue
            if row["v"] > bound * slack:
                failures.append(
                    f"merge span {row['span_id']}: measured v {row['v']:.3f} "
                    f"exceeds Theorem-1/GF bound {bound:.3f} x {slack}"
                )
        hist = self.metrics.get(H_FLUSH_OCCUPANCY)
        if hist and hist.get("n") and self.algo == "srm":
            # Every flush fires with M_R occupancy in (R, R + D]: the
            # recorded excess over R must land in [1, D], i.e. never in
            # the histogram's overflow bucket (edges run 1..D).
            if hist["counts"][-1]:
                failures.append(
                    f"{hist['counts'][-1]} flushes with occupancy excess "
                    f"beyond D (edges {hist['edges']}) — violates §5.4"
                )
        for dom, a in self.attribution().items():
            # A domain whose producer declared its timeline exact must
            # decompose exactly: same float, not approximately.
            declared = [
                s for s in self.trace_summaries() if s["dom"] == dom
            ]
            if declared and declared[-1].get("exact") and not a.truncated:
                if a.total_ms != a.makespan_ms:
                    failures.append(
                        f"trace domain {dom}: critical path "
                        f"{a.total_ms!r} ms != makespan "
                        f"{a.makespan_ms!r} ms"
                    )
                if not a.exact:
                    failures.append(
                        f"trace domain {dom}: walk did not certify "
                        f"exactness (reached_zero/truncation)"
                    )
        return failures

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """The human-facing per-phase report."""
        m = self.meta
        lines = [
            f"telemetry report — algo={self.algo} schema={m.get('schema')}",
            "  " + " ".join(
                f"{k}={m[k]}" for k in
                ("n_records", "n_disks", "block_size", "merge_order", "seed")
                if k in m
            ),
            "",
            "per-phase I/O "
            "(skew = max/mean per-disk participation; 1.0 = balanced)",
            f"  {'phase':<16} {'wall_s':>8} {'reads':>7} {'writes':>7} "
            f"{'r.skew':>7} {'w.skew':>7}",
        ]
        for row in self.phase_rows():
            lines.append(
                f"  {row['phase']:<16} {row['wall_s']:>8.3f} "
                f"{row['reads']:>7} {row['writes']:>7} "
                f"{row['read_skew']:>7.3f} {row['write_skew']:>7.3f}"
            )
        merges = self.merge_rows()
        if merges:
            lines += [
                "",
                "per-merge reads vs Theorem 1 "
                "(v = reads*D/blocks; bound = D*E[max occupancy]/R, §7.3)",
                f"  {'merge':>6} {'runs':>5} {'blocks':>7} {'reads':>7} "
                f"{'perfect':>8} {'v':>7} {'v_bound':>8} {'flushed':>8}",
            ]
            for row in merges:
                vb = f"{row['v_bound']:.3f}" if row["v_bound"] else "—"
                lines.append(
                    f"  {row['span_id']:>6} {row['n_runs']:>5} "
                    f"{row['n_blocks']:>7} {row['total_reads']:>7} "
                    f"{row['perfect_reads']:>8} {row['v']:>7.3f} "
                    f"{vb:>8} {row['blocks_flushed']:>8}"
                )
            tot_blocks = sum(r["n_blocks"] for r in merges)
            tot_flushed = sum(r["blocks_flushed"] for r in merges)
            bounds = [r["v_bound"] for r in merges if r["v_bound"]]
            lines.append(
                f"  re-read fraction (§5 flushing): "
                f"{tot_flushed / tot_blocks if tot_blocks else 0.0:.4f}"
                + (
                    f"  (occupancy-bound prediction <= "
                    f"{max(bounds) - 1.0:.4f})" if bounds else ""
                )
            )
        hist = self.metrics.get(H_FLUSH_OCCUPANCY)
        if hist and hist.get("n"):
            lines += [
                "",
                "flush-time M_R occupancy excess over R "
                "(§5.4 bounds it by D)",
            ]
            lines.append("  " + _render_hist(hist))
        overlaps = self.overlap_rows()
        if overlaps:
            lines += [
                "",
                "overlap engine (gap = cpu stall / makespan; 0 = fully hidden I/O)",
                f"  {'merge':>6} {'makespan':>10} {'stall_ms':>9} "
                f"{'gap':>6} {'disk util':>9} {'eager':>6} {'demand':>7}",
            ]
            for row in overlaps:
                lines.append(
                    f"  {row['span_id']:>6} {row['makespan_ms']:>10.1f} "
                    f"{row['stall_ms']:>9.1f} {row['overlap_gap']:>6.3f} "
                    f"{row['disk_utilization']:>9.3f} {row['eager_reads']:>6} "
                    f"{row['demand_reads']:>7}"
                )
        return "\n".join(lines)

    def render_attribution(self) -> str:
        """Makespan attribution: critical path, lanes, stragglers."""
        from ..analysis.critical_path import IDLE_GAP_EDGES, TRACE_CATEGORIES

        analyses = self.attribution()
        if not analyses:
            return "no trace records in stream (run with --trace)"
        lines: list[str] = ["makespan attribution (critical-path walk)"]
        for dom in sorted(analyses):
            a = analyses[dom]
            tag = "exact" if a.exact else (
                "truncated" if a.truncated else "inexact"
            )
            lines += [
                "",
                f"domain {dom}: makespan {a.makespan_ms:.3f} ms, "
                f"critical path {a.total_ms:.3f} ms [{tag}] "
                f"({a.records} records)",
            ]
            parts = [
                f"{cat} {a.attribution[cat]:.1f} ms "
                f"({100.0 * a.fraction(cat):.1f}%)"
                for cat in TRACE_CATEGORIES
                if a.attribution.get(cat)
            ]
            if parts:
                lines.append("  attribution: " + ", ".join(parts))
            if dom.startswith("service"):
                from ..analysis.critical_path import tenant_attribution

                per_tenant = tenant_attribution(self.events, dom)
                if per_tenant:
                    total = sum(per_tenant.values())
                    lines.append(
                        "  per-tenant: "
                        + ", ".join(
                            f"{t} {ms:.1f} ms "
                            f"({100.0 * ms / total if total else 0.0:.1f}%)"
                            for t, ms in sorted(per_tenant.items())
                        )
                        + f"  [sum {total:.3f} ms]"
                    )
            if a.lanes:
                lines.append(
                    f"  {'lane':<14} {'ops':>6} {'busy_ms':>10} "
                    f"{'util':>6}  idle gaps (> {IDLE_GAP_EDGES[0]} ms)"
                )
                for l in a.lanes:
                    gaps = sum(l.idle_gap_counts[1:])
                    mark = "  << straggler" if l.straggler else ""
                    lines.append(
                        f"  {l.lane:<14} {l.ops:>6} {l.busy_ms:>10.1f} "
                        f"{l.utilization:>6.2f}  {gaps}{mark}"
                    )
            if a.stragglers:
                lines.append(
                    "  stragglers: " + ", ".join(a.stragglers)
                )
        dropped = self.trace_dropped
        if dropped:
            lines += [
                "",
                f"WARNING: trace ring overflowed — {dropped} oldest "
                "records dropped; walks touching them report truncated",
            ]
        return "\n".join(lines)


def _render_hist(snapshot: dict, width: int = 40) -> str:
    """One-line bucket sketch: ``(lo, hi]:count`` for populated buckets."""
    edges, counts = snapshot["edges"], snapshot["counts"]
    parts = []
    for i, c in enumerate(counts):
        if not c:
            continue
        lo = edges[i - 1] if i > 0 else "-inf"
        hi = edges[i] if i < len(edges) else "inf"
        parts.append(f"({lo}, {hi}]:{c}")
    return "  ".join(parts) if parts else "(empty)"
