"""Named counters, gauges, and fixed-bucket histograms.

The registry is the single namespace for every quantitative signal the
system emits: scheduler counters (``sched.*``), disk-system counters
(``io.*``), data-plane histograms (``merge.*``, ``writer.*``), and
overlap-engine gauges (``overlap.*``).  Canonical names live in
:mod:`repro.telemetry.schema` so ``repro bench`` and ``repro inspect``
report the same quantities under the same keys.

Instrumented code holds direct references to metric objects (fetched
once, outside hot loops) and calls ``inc``/``set``/``observe`` on them.
When telemetry is disabled those references are the shared
:data:`NULL_METRIC` singleton whose methods are empty — the disabled
fast path allocates nothing and does no bookkeeping.
"""

from __future__ import annotations

from bisect import bisect_left

from ..errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value with a tracked maximum."""

    __slots__ = ("name", "value", "max_value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, v: float) -> None:
        self.value = v
        if v > self.max_value:
            self.max_value = v

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value, "max": self.max_value}


class Histogram:
    """A fixed-bucket histogram with ``<=``-edge semantics.

    ``edges = (e_0, ..., e_{m-1})`` defines ``m + 1`` buckets: bucket
    ``i < m`` counts observations ``v`` with ``e_{i-1} < v <= e_i``, and
    the final bucket is the overflow (``v > e_{m-1}``).  Edges are fixed
    at creation so two processes observing the same metric bucket
    identically — the property the JSONL round-trip relies on.
    """

    __slots__ = ("name", "edges", "counts", "total", "n")

    kind = "histogram"

    def __init__(self, name: str, edges: tuple[float, ...]) -> None:
        if not edges or list(edges) != sorted(set(edges)):
            raise ConfigError(
                f"histogram {name!r} needs strictly increasing edges, got {edges}"
            )
        self.name = name
        self.edges = tuple(edges)
        self.counts = [0] * (len(edges) + 1)
        self.total = 0.0
        self.n = 0

    def observe(self, v: float) -> None:
        self.counts[bisect_left(self.edges, v)] += 1
        self.total += v
        self.n += 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "n": self.n,
        }


class _NullMetric:
    """Shared do-nothing stand-in for every metric type.

    All mutating methods are empty so disabled-mode instrumentation
    costs one no-op method call and zero allocation.
    """

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass


#: The singleton every disabled telemetry handle returns.
NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """A name → metric map with memoizing constructors.

    Asking for an existing name returns the same object (so separate
    subsystems accumulate into one metric); asking with a conflicting
    kind or bucket layout raises :class:`~repro.errors.ConfigError`.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, edges: tuple[float, ...]) -> Histogram:
        h = self._get(name, Histogram, lambda: Histogram(name, edges))
        if h.edges != tuple(edges):
            raise ConfigError(
                f"histogram {name!r} re-registered with edges {edges}, "
                f"already has {h.edges}"
            )
        return h

    def _get(self, name, cls, make):
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = make()
        elif not isinstance(m, cls):
            raise ConfigError(
                f"metric {name!r} already registered as {type(m).__name__}, "
                f"requested {cls.__name__}"
            )
        return m

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def snapshot(self) -> dict:
        """JSON-ready ``{name: {kind, ...}}`` of every registered metric."""
        return {
            name: m.snapshot() for name, m in sorted(self._metrics.items())
        }
