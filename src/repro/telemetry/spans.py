"""Phase-scoped spans and the :class:`Telemetry` event stream.

A :class:`Telemetry` object is the one handle instrumented code needs:
it owns a :class:`~repro.telemetry.registry.MetricsRegistry`, an
append-only event list, and a span stack.  Spans nest (``sort`` >
``merge_pass`` > ``merge`` > ``write_behind``), carry wall-clock
duration plus arbitrary attributes (simulated time, schedule counters),
and — when opened with a disk system attached — record the I/O-counter
delta across their lifetime.

Disabled mode is the singleton :data:`TELEMETRY_OFF`: every accessor
returns a shared no-op object, so instrumentation left in hot paths
costs one empty method call and zero allocation.
"""

from __future__ import annotations

import json
import time
from typing import Any

from ..errors import ScheduleError
from .registry import NULL_METRIC, MetricsRegistry
from .schema import SCHEMA_VERSION

__all__ = ["Span", "Telemetry", "NullTelemetry", "TELEMETRY_OFF"]


class Span:
    """One phase scope; use as a context manager.

    The span event is appended to the stream when the scope *closes*
    (so ``seq`` reflects completion order); ``start_seq`` preserves the
    opening order for reconstruction.
    """

    __slots__ = (
        "_tel", "name", "span_id", "parent_id", "depth",
        "start_seq", "attrs", "_t0", "_system", "_io_before",
    )

    def __init__(self, tel: "Telemetry", name: str, system, attrs: dict) -> None:
        self._tel = tel
        self.name = name
        self.span_id = tel._next_span_id()
        parent = tel._stack[-1] if tel._stack else None
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = parent.depth + 1 if parent is not None else 0
        self.start_seq = tel._next_seq()
        self.attrs = attrs
        self._system = system
        self._io_before = system.stats.snapshot() if system is not None else None
        self._t0 = time.perf_counter()
        tel._stack.append(self)

    def set(self, **attrs: Any) -> None:
        """Attach attributes (schedule counters, simulated timings, ...)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        tel = self._tel
        if not tel._stack or tel._stack[-1] is not self:
            raise ScheduleError(
                f"span {self.name!r} closed out of order; "
                f"open stack: {[s.name for s in tel._stack]}"
            )
        tel._stack.pop()
        ev = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "seq": tel._next_seq(),
            "start_seq": self.start_seq,
            "wall_s": time.perf_counter() - self._t0,
            "attrs": self.attrs,
        }
        if self._io_before is not None:
            delta = self._system.stats.since(self._io_before)
            ev["io"] = {
                "parallel_reads": delta.parallel_reads,
                "parallel_writes": delta.parallel_writes,
                "blocks_read": delta.blocks_read,
                "blocks_written": delta.blocks_written,
                "reads_per_disk": [int(x) for x in delta.reads_per_disk],
                "writes_per_disk": [int(x) for x in delta.writes_per_disk],
            }
        tel.events.append(ev)


class Telemetry:
    """Enabled telemetry: a metrics registry plus a span/event stream."""

    enabled = True

    def __init__(self, **meta: Any) -> None:
        self.registry = MetricsRegistry()
        self.events: list[dict] = []
        self._stack: list[Span] = []
        self._span_counter = 0
        self._seq = 0
        self._finished = False
        #: Optional causal-trace ring (:mod:`repro.telemetry.trace`);
        #: armed via :meth:`attach_trace`, flushed by :meth:`finish`.
        self.trace = None
        self.events.append(
            {"type": "meta", "schema": SCHEMA_VERSION, **meta}
        )

    # -- internals -------------------------------------------------------

    def _next_span_id(self) -> int:
        self._span_counter += 1
        return self._span_counter

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- metric accessors (delegate to the registry) ---------------------

    def counter(self, name: str):
        return self.registry.counter(name)

    def gauge(self, name: str):
        return self.registry.gauge(name)

    def histogram(self, name: str, edges: tuple[float, ...]):
        return self.registry.histogram(name, edges)

    # -- stream ----------------------------------------------------------

    def set_meta(self, **meta: Any) -> None:
        """Add run-configuration fields to the meta event after the fact."""
        self.events[0].update(meta)

    def span(self, name: str, system=None, **attrs: Any) -> Span:
        """Open a nested phase scope (closed via ``with`` or ``close()``)."""
        return Span(self, name, system, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Append a point event."""
        self.events.append(
            {"type": "event", "name": name, "seq": self._next_seq(),
             "attrs": attrs}
        )

    def attach_trace(self, collector=None):
        """Arm causal tracing; returns the (shared) trace collector.

        Producers discover the ring via ``getattr(telemetry, "trace",
        None)``; its records and per-domain summaries are flushed into
        the event stream by :meth:`finish`, just before the metrics
        snapshot.
        """
        if self.trace is None:
            if collector is None:
                from .trace import TraceCollector

                collector = TraceCollector()
            self.trace = collector
        return self.trace

    def finish(self) -> list[dict]:
        """Close the stream: append the metrics snapshot exactly once."""
        if self._stack:
            raise ScheduleError(
                f"finish with open spans: {[s.name for s in self._stack]}"
            )
        if not self._finished:
            self._finished = True
            if self.trace is not None:
                self.events.extend(self.trace.to_events())
            self.events.append(
                {"type": "metrics", "metrics": self.registry.snapshot()}
            )
        return self.events

    def write_jsonl(self, path: str) -> None:
        """Finish the stream and write one JSON object per line."""
        events = self.finish()
        with open(path, "w") as fh:
            for ev in events:
                fh.write(json.dumps(ev, sort_keys=False))
                fh.write("\n")


class _NullSpan:
    """Shared no-op span; context-manager compatible."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Disabled telemetry: every accessor returns a shared no-op object."""

    enabled = False
    #: Disabled mode never owns a trace ring; producers that probe
    #: ``getattr(telemetry, "trace", None)`` see None and skip tracing.
    trace = None
    __slots__ = ()

    def counter(self, name: str):
        return NULL_METRIC

    def gauge(self, name: str):
        return NULL_METRIC

    def histogram(self, name: str, edges: tuple[float, ...]):
        return NULL_METRIC

    def set_meta(self, **meta: Any) -> None:
        pass

    def span(self, name: str, system=None, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass


#: The process-wide disabled-telemetry singleton.  Code that takes an
#: optional ``telemetry`` argument defaults to this, so instrumentation
#: never needs a None check.
TELEMETRY_OFF = NullTelemetry()
