"""I/O trace recording and analysis.

Attach an :class:`IOTrace` to a :class:`ParallelDiskSystem` to capture
the full sequence of parallel operations — which disks each one
touched, in what order, at what simulated time.  Traces answer the
questions the aggregate counters cannot: *is the load balanced over
time?  how wide are the parallel operations?  which disk is the
straggler?* — exactly the diagnostics used to contrast SRM's randomized
layout with the §3 adversary.

Example::

    system = ParallelDiskSystem(8, 64)
    system.trace = IOTrace()
    ... run a sort ...
    print(system.trace.summary())
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

OpKind = Literal["read", "write"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One parallel I/O operation."""

    index: int
    kind: OpKind
    disks: tuple[int, ...]
    elapsed_ms: float

    @property
    def width(self) -> int:
        """Blocks moved (disks touched) by this operation."""
        return len(self.disks)


@dataclass
class IOTrace:
    """A log of parallel I/O operations.

    By default the log is append-only and unbounded.  For long
    benchmark runs pass ``max_events``: the trace becomes a ring buffer
    keeping the newest ``max_events`` operations, counting evictions in
    ``dropped``.  Event ``index`` values stay global (operation number
    since the trace was attached), so a truncated trace still reads as
    the tail of the full one.
    """

    events: deque[TraceEvent] = field(default_factory=deque)
    #: Ring-buffer capacity; ``None`` = unbounded.
    max_events: int | None = None
    #: Events evicted by the ring buffer.
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events < 1:
            raise ValueError(
                f"max_events must be >= 1, got {self.max_events}"
            )
        if not isinstance(self.events, deque):
            self.events = deque(self.events)

    def record(self, kind: OpKind, disks: list[int], elapsed_ms: float) -> None:
        """Append one operation (called by the disk system)."""
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.events.popleft()
            self.dropped += 1
        self.events.append(
            TraceEvent(
                index=self.dropped + len(self.events),
                kind=kind,
                disks=tuple(disks),
                elapsed_ms=elapsed_ms,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    @property
    def total_recorded(self) -> int:
        """All operations ever recorded, evicted ones included."""
        return self.dropped + len(self.events)

    # -- analyses ----------------------------------------------------------

    def disk_participation(self, n_disks: int, kind: OpKind | None = None) -> np.ndarray:
        """Per-disk count of operations the disk took part in."""
        counts = np.zeros(n_disks, dtype=np.int64)
        for ev in self.events:
            if kind is not None and ev.kind != kind:
                continue
            for d in ev.disks:
                counts[d] += 1
        return counts

    def utilization(self, n_disks: int, kind: OpKind | None = None) -> np.ndarray:
        """Fraction of (matching) operations each disk participated in.

        1.0 everywhere means perfect parallelism; the §3 adversary shows
        one disk at 1.0 and the rest near 0 during reads.
        """
        total = sum(
            1 for ev in self.events if kind is None or ev.kind == kind
        )
        if total == 0:
            return np.ones(n_disks)
        return self.disk_participation(n_disks, kind) / total

    def width_histogram(self, n_disks: int, kind: OpKind | None = None) -> np.ndarray:
        """``hist[w]`` = number of operations that moved ``w`` blocks."""
        hist = np.zeros(n_disks + 1, dtype=np.int64)
        for ev in self.events:
            if kind is not None and ev.kind != kind:
                continue
            hist[ev.width] += 1
        return hist

    def mean_width(self, kind: OpKind | None = None) -> float:
        """Average operation width (blocks per parallel I/O)."""
        widths = [
            ev.width for ev in self.events if kind is None or ev.kind == kind
        ]
        return float(np.mean(widths)) if widths else 0.0

    def imbalance(self, n_disks: int, kind: OpKind | None = None) -> float:
        """Max/mean participation ratio (1.0 = perfectly balanced)."""
        counts = self.disk_participation(n_disks, kind)
        mean = counts.mean()
        if mean == 0:
            return 1.0
        return float(counts.max() / mean)

    def timeline_ascii(
        self,
        n_disks: int,
        width: int = 72,
        kind: OpKind | None = None,
    ) -> str:
        """Render per-disk activity over operation time as ASCII art.

        Operations are bucketed into *width* columns; each cell shows
        how busy the disk was in that bucket: ``' '`` idle, ``'.'``
        under a third, ``'+'`` under two thirds, ``'#'`` above.  The
        §3 adversary shows up as a single dense row; SRM's randomized
        layout as a uniformly dense block.
        """
        events = [
            ev for ev in self.events if kind is None or ev.kind == kind
        ]
        if not events:
            return "(no operations)"
        width = min(width, len(events))
        per_bucket = len(events) / width
        grid = np.zeros((n_disks, width), dtype=np.int64)
        totals = np.zeros(width, dtype=np.int64)
        for i, ev in enumerate(events):
            col = min(int(i / per_bucket), width - 1)
            totals[col] += 1
            for d in ev.disks:
                grid[d, col] += 1
        lines = []
        for d in range(n_disks):
            cells = []
            for col in range(width):
                if totals[col] == 0:
                    cells.append(" ")
                    continue
                frac = grid[d, col] / totals[col]
                cells.append(
                    " " if frac == 0 else "." if frac < 1 / 3 else
                    "+" if frac < 2 / 3 else "#"
                )
            lines.append(f"disk {d:>2} |{''.join(cells)}|")
        lines.append(f"         {len(events)} ops -> {width} columns")
        return "\n".join(lines)

    def summary(self, n_disks: int | None = None) -> str:
        """Human-readable trace digest."""
        if not self.events:
            return "empty trace"
        if n_disks is None:
            n_disks = max(max(ev.disks) for ev in self.events if ev.disks) + 1
        reads = sum(1 for ev in self.events if ev.kind == "read")
        writes = len(self.events) - reads
        dropped = f", {self.dropped} dropped" if self.dropped else ""
        lines = [
            f"{len(self.events)} parallel ops ({reads} reads, {writes} writes{dropped})",
            f"mean width: reads {self.mean_width('read'):.2f}, "
            f"writes {self.mean_width('write'):.2f} (of {n_disks} disks)",
            f"read imbalance (max/mean participation): "
            f"{self.imbalance(n_disks, 'read'):.3f}",
        ]
        return "\n".join(lines)
