"""In-RAM block storage: the historical behavior and the default.

Each disk's store is a plain dict, so reads hand back the very Block
object that was written — zero overhead on the hot path, and exactly
what every pre-backend version of this repo did implicitly.
"""

from __future__ import annotations

from .base import BlockStore, StorageBackend


class MemoryBackend(StorageBackend):
    """Blocks live as Python objects in per-disk dicts."""

    kind = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._stores: dict[int, dict] = {}

    def store_for(self, disk_id: int) -> BlockStore:
        store = self._stores.get(disk_id)
        if store is None:
            store = self._stores[disk_id] = {}
        return store

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "live_blocks": sum(len(s) for s in self._stores.values()),
        }

    def close(self) -> None:
        for store in self._stores.values():
            store.clear()
