"""Pluggable block-storage backends for the simulated disk farm.

See :mod:`repro.disks.backends.base` for the contract.  Select one via
the ``backend=`` parameter threaded through
:class:`~repro.disks.system.ParallelDiskSystem`,
:func:`~repro.core.mergesort.srm_sort`,
:func:`~repro.baselines.dsm.dsm_sort`,
:func:`~repro.cluster.sort.cluster_sort` and ``repro sort --backend``:

* ``None`` / ``"memory"`` — in-RAM dicts (default, historical behavior)
* ``"mmap"`` — file-per-disk ``np.memmap`` storage in a self-cleaning
  temporary directory
* ``"mmap:/path"`` — same, under an explicit (kept) working directory
* a :class:`BackendSpec` or constructed :class:`StorageBackend`
"""

from .base import (
    BackendSpec,
    BlockStore,
    StorageBackend,
    make_backend,
    parse_backend,
)
from .memory import MemoryBackend
from .mmapfile import MmapDiskStore, MmapFileBackend, SlotLayout, open_disk_flat

__all__ = [
    "BackendSpec",
    "BlockStore",
    "StorageBackend",
    "MemoryBackend",
    "MmapFileBackend",
    "MmapDiskStore",
    "SlotLayout",
    "open_disk_flat",
    "make_backend",
    "parse_backend",
]
