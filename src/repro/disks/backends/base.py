"""Storage-backend contract for the simulated disks.

A :class:`~repro.disks.disk.Disk` keeps its *allocation* bookkeeping
(free list, next slot, capacity) and delegates the *storage* of block
contents to a per-disk **store**: a mutable mapping ``slot -> Block``.
Everything above the disk layer — scheduler, mergers, fault machinery —
keeps speaking addresses and :class:`~repro.disks.block.Block` objects;
only where the bytes live changes.

Two backends ship:

* :class:`~repro.disks.backends.memory.MemoryBackend` — plain dicts,
  the historical in-RAM behavior and the default.
* :class:`~repro.disks.backends.mmapfile.MmapFileBackend` — one
  preallocated file per disk, slots as fixed-size records, blocks read
  back as zero-copy ``np.memmap`` views.  Sorts can exceed RAM, and
  worker processes can reopen the same files for parallel merging.

Backends are *geometry-lazy*: construct one with its own options, then
the :class:`~repro.disks.system.ParallelDiskSystem` calls
:meth:`StorageBackend.attach` with ``(n_disks, block_size)`` before
asking for stores.  One backend serves exactly one system.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import MutableMapping

from ...errors import ConfigError

#: A per-disk block store: mutable mapping ``slot -> Block``.  Stores
#: must support ``[]`` get/set, ``in``, ``pop(slot, default)``,
#: ``items()``, iteration, ``len()`` and ``clear()``.  ``pop`` is used
#: only to discard (callers ignore the return value), so a store may
#: return *default* without materializing the evicted block.
BlockStore = MutableMapping


class StorageBackend:
    """Base class for pluggable block-storage backends."""

    #: Short name used in CLI/specs ("memory", "mmap", ...).
    kind: str = "?"

    def __init__(self) -> None:
        self.n_disks: int | None = None
        self.block_size: int | None = None

    # -- lifecycle -------------------------------------------------------

    def attach(self, n_disks: int, block_size: int) -> None:
        """Bind the backend to one system's geometry (called once)."""
        if self.n_disks is not None:
            raise ConfigError(
                f"{self.kind} backend already attached to a system "
                f"(D={self.n_disks}, B={self.block_size}); backends are "
                "not shareable — create one per system"
            )
        self.n_disks = int(n_disks)
        self.block_size = int(block_size)

    def store_for(self, disk_id: int) -> BlockStore:
        """Return the block store for disk *disk_id* (after attach)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Persist any buffered state (no-op for volatile backends)."""

    def close(self) -> None:
        """Release resources (and scratch files, where applicable)."""

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict:
        """Counters describing backend activity (``backend.*`` metrics)."""
        return {"kind": self.kind}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        geo = (
            f"D={self.n_disks}, B={self.block_size}"
            if self.n_disks is not None
            else "unattached"
        )
        return f"{type(self).__name__}({geo})"


@dataclass(frozen=True)
class BackendSpec:
    """A recipe for creating storage backends.

    Unlike a :class:`StorageBackend` *instance* (bound to one system), a
    spec can be handed to drivers that build many systems — the cluster
    layer creates one backend per node from the same spec, placing each
    node's files under its own subdirectory.
    """

    kind: str = "memory"
    #: Directory for the mmap backend's disk files.  ``None`` means a
    #: self-cleaning temporary directory.
    workdir: str | None = None
    #: Initial slots preallocated per disk file (files grow by doubling).
    initial_slots: int = 256
    #: Keep files on close.  Defaults to True for explicit workdirs and
    #: False for temporary ones (``None`` = that default).
    keep_files: bool | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("memory", "mmap"):
            raise ConfigError(
                f"unknown storage backend {self.kind!r} (expected 'memory' or 'mmap')"
            )
        if self.initial_slots < 1:
            raise ConfigError(
                f"initial_slots must be >= 1, got {self.initial_slots}"
            )

    def child(self, label: str) -> "BackendSpec":
        """A spec scoped to a named subdirectory (per cluster node)."""
        if self.kind != "mmap" or self.workdir is None:
            return self
        import os

        return replace(self, workdir=os.path.join(self.workdir, label))

    def create(self) -> StorageBackend:
        """Instantiate an (unattached) backend from this spec."""
        if self.kind == "memory":
            from .memory import MemoryBackend

            return MemoryBackend()
        from .mmapfile import MmapFileBackend

        return MmapFileBackend(
            workdir=self.workdir,
            initial_slots=self.initial_slots,
            keep_files=self.keep_files,
        )


def parse_backend(value) -> BackendSpec | StorageBackend:
    """Normalize a user-facing ``backend=`` argument.

    Accepts ``None`` (memory), a string spec (``"memory"``, ``"mmap"``,
    ``"mmap:/path/to/dir"``), a :class:`BackendSpec`, or an already
    constructed :class:`StorageBackend` instance (returned unchanged).
    """
    if value is None:
        return BackendSpec("memory")
    if isinstance(value, (BackendSpec, StorageBackend)):
        return value
    if isinstance(value, str):
        kind, _, rest = value.partition(":")
        return BackendSpec(kind=kind or "memory", workdir=rest or None)
    raise ConfigError(
        f"backend must be None, a string, a BackendSpec or a "
        f"StorageBackend, got {type(value).__name__}"
    )


def make_backend(value) -> StorageBackend:
    """Resolve a ``backend=`` argument to a fresh (unattached) backend."""
    spec = parse_backend(value)
    if isinstance(spec, StorageBackend):
        return spec
    return spec.create()
