"""File-backed block storage: one preallocated file per simulated disk.

Each simulated disk owns one flat file (``disk0000.dat`` …) laid out as
fixed-size **slot records** of ``slot_words`` int64 words:

====  ================================================================
word  contents
====  ================================================================
0     ``n_records`` — live record count (partial tail blocks < ``B``)
1     ``run_id``
2     ``index`` — position of the block within its run
3     ``n_forecast`` — implanted forecast keys present (0, 1 or ``D``)
4     flags — bit 0: payloads present, bit 1: checksum present
5     CRC-32 checksum (valid iff flag bit 1)
6     ``NO_KEY`` bitmask — forecast entry ``i`` is the ``inf`` sentinel
7…    ``D`` words of forecast keys as exact int64 values
…     ``B`` key words
…     ``B`` payload words
====  ================================================================

Forecast keys are int64 record keys except for the ``NO_KEY = inf``
sentinel marking exhausted chains; storing them as int64 plus a
sentinel bitmask keeps the round trip exact (a float64 detour would
corrupt keys above 2**53).

Files are preallocated by ``ftruncate`` and grown by doubling; on any
filesystem with sparse-file support the untouched tail (and the payload
region of payload-free workloads) consumes no physical space.  Reads
hand back **zero-copy** ``np.memmap`` views in ``Block.keys`` /
``Block.payloads`` — the safe pattern throughout this repo, because
every merge plane copies records into the writer ring before the source
slot can be freed and reused.

Because slots live at deterministic file offsets, worker processes can
reopen the same files read-only (:func:`open_disk_flat`) and gather run
segments without any block pickling — the transport of the
process-parallel merge plane (:mod:`repro.core.parallel_merge`).
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
import weakref
from collections.abc import MutableMapping
from dataclasses import dataclass

import numpy as np

from ...errors import ConfigError, DataError
from ..block import NO_KEY, Block
from .base import BlockStore, StorageBackend

#: Fixed header words before the forecast region.
HEADER_WORDS = 7
FLAG_PAYLOADS = 1
FLAG_CHECKSUM = 2
#: Header word holding the forecast NO_KEY bitmask.
_NOKEY_MASK_WORD = 6


@dataclass(frozen=True)
class SlotLayout:
    """Geometry of one slot record (picklable; shipped to workers)."""

    n_disks: int
    block_size: int
    slot_words: int
    forecast_off: int
    key_off: int
    pay_off: int

    @classmethod
    def for_geometry(cls, n_disks: int, block_size: int) -> "SlotLayout":
        if n_disks > 63:
            raise ConfigError(
                f"mmap backend supports at most 63 disks (forecast NO_KEY "
                f"bitmask is one int64 word), got D={n_disks}"
            )
        forecast_off = HEADER_WORDS
        key_off = forecast_off + n_disks
        pay_off = key_off + block_size
        return cls(
            n_disks=n_disks,
            block_size=block_size,
            slot_words=pay_off + block_size,
            forecast_off=forecast_off,
            key_off=key_off,
            pay_off=pay_off,
        )

    # -- worker-side decoding (flat read-only maps) ----------------------

    def slot_base(self, slot: int) -> int:
        return slot * self.slot_words

    def keys_of(self, flat: np.ndarray, slot: int) -> np.ndarray:
        """Key view of *slot* in a flat per-disk map (zero copy)."""
        base = self.slot_base(slot)
        n = int(flat[base])
        return flat[base + self.key_off : base + self.key_off + n]

    def payloads_of(self, flat: np.ndarray, slot: int) -> np.ndarray | None:
        base = self.slot_base(slot)
        if not int(flat[base + 4]) & FLAG_PAYLOADS:
            return None
        n = int(flat[base])
        return flat[base + self.pay_off : base + self.pay_off + n]


def open_disk_flat(path: str) -> np.ndarray:
    """Reopen a disk file as a flat read-only int64 map (worker side).

    A disk that never received a block has a zero-length file (created
    eagerly, grown on first write); mmap rejects empty files, so hand
    back an empty array instead.
    """
    if os.path.getsize(path) == 0:
        return np.empty(0, dtype=np.int64)
    return np.memmap(path, dtype=np.int64, mode="r")


class MmapDiskStore(MutableMapping):
    """``slot -> Block`` mapping over one disk's slot-record file."""

    __slots__ = ("_backend", "_disk_id", "path", "_mm", "_capacity", "_live")

    def __init__(self, backend: "MmapFileBackend", disk_id: int, path: str) -> None:
        self._backend = backend
        self._disk_id = disk_id
        self.path = path
        self._mm: np.ndarray | None = None
        self._capacity = 0
        self._live: set[int] = set()
        with open(path, "wb"):
            pass  # create/truncate; mapped lazily on first use

    # -- file management -------------------------------------------------

    def _row(self, slot: int, grow: bool) -> np.ndarray:
        if slot >= self._capacity:
            if not grow:
                raise KeyError(slot)
            self._grow(slot + 1)
        lay = self._backend.layout
        base = slot * lay.slot_words
        return self._mm[base : base + lay.slot_words]

    def _grow(self, min_slots: int) -> None:
        new_cap = max(self._backend.initial_slots, self._capacity * 2, min_slots)
        lay = self._backend.layout
        with open(self.path, "r+b") as f:
            f.truncate(new_cap * lay.slot_words * 8)
        # Remapping invalidates nothing: existing Block views map the
        # same (shared) file pages at their old offsets.
        self._mm = np.memmap(self.path, dtype=np.int64, mode="r+")
        self._capacity = new_cap
        self._backend._grows += 1

    # -- mapping protocol -------------------------------------------------

    def __setitem__(self, slot: int, block: Block) -> None:
        lay = self._backend.layout
        n = int(block.keys.size)
        if n > lay.block_size:
            raise DataError(
                f"block of {n} records exceeds slot capacity B={lay.block_size}"
            )
        fc = block.forecast
        if len(fc) > lay.n_disks:
            raise DataError(
                f"{len(fc)} forecast keys exceed the D={lay.n_disks} slot region"
            )
        row = self._row(slot, grow=True)
        row[0] = n
        row[1] = block.run_id
        row[2] = block.index
        row[3] = len(fc)
        flags = 0
        if block.payloads is not None:
            flags |= FLAG_PAYLOADS
        if block.checksum is not None:
            flags |= FLAG_CHECKSUM
        row[4] = flags
        row[5] = 0 if block.checksum is None else int(block.checksum)
        mask = 0
        for i, v in enumerate(fc):
            fc_slot = lay.forecast_off + i
            if isinstance(v, float) and math.isinf(v):
                mask |= 1 << i
                row[fc_slot] = 0
            else:
                row[fc_slot] = int(v)
        row[_NOKEY_MASK_WORD] = mask
        row[lay.key_off : lay.key_off + n] = block.keys
        words = n
        if block.payloads is not None:
            row[lay.pay_off : lay.pay_off + n] = block.payloads
            words += n
        self._live.add(slot)
        self._backend._blocks_written += 1
        self._backend._bytes_written += 8 * words

    def __getitem__(self, slot: int) -> Block:
        if slot not in self._live:
            raise KeyError(slot)
        lay = self._backend.layout
        row = self._row(slot, grow=False)
        n = int(row[0])
        nf = int(row[3])
        flags = int(row[4])
        forecast = ()
        if nf:
            mask = int(row[_NOKEY_MASK_WORD])
            forecast = tuple(
                NO_KEY if mask & (1 << i) else int(row[lay.forecast_off + i])
                for i in range(nf)
            )
        payloads = None
        words = n
        if flags & FLAG_PAYLOADS:
            payloads = row[lay.pay_off : lay.pay_off + n]
            words += n
        self._backend._blocks_read += 1
        self._backend._bytes_read += 8 * words
        return Block(
            keys=row[lay.key_off : lay.key_off + n],
            run_id=int(row[1]),
            index=int(row[2]),
            forecast=forecast,
            payloads=payloads,
            checksum=int(row[5]) if flags & FLAG_CHECKSUM else None,
        )

    def __delitem__(self, slot: int) -> None:
        self._live.remove(slot)

    def pop(self, slot: int, *default):
        """Discard *slot* without decoding the evicted block.

        Callers (``Disk.free``) ignore the return value; skipping the
        decode keeps frees O(1) instead of rebuilding a Block per free.
        """
        if slot in self._live:
            self._live.discard(slot)
            return None
        if default:
            return default[0]
        raise KeyError(slot)

    def __contains__(self, slot) -> bool:
        return slot in self._live

    def __iter__(self):
        return iter(sorted(self._live))

    def __len__(self) -> int:
        return len(self._live)

    def clear(self) -> None:
        self._live.clear()

    # -- maintenance -----------------------------------------------------

    def flush(self) -> None:
        if isinstance(self._mm, np.memmap):
            self._mm.flush()

    @property
    def capacity_slots(self) -> int:
        return self._capacity

    @property
    def file_bytes(self) -> int:
        return self._capacity * self._backend.layout.slot_words * 8


class MmapFileBackend(StorageBackend):
    """One slot-record file per disk under a working directory."""

    kind = "mmap"

    def __init__(
        self,
        workdir: str | None = None,
        initial_slots: int = 256,
        keep_files: bool | None = None,
    ) -> None:
        super().__init__()
        if initial_slots < 1:
            raise ConfigError(f"initial_slots must be >= 1, got {initial_slots}")
        self._requested_workdir = workdir
        self.workdir: str | None = None
        self.initial_slots = int(initial_slots)
        self._requested_keep = keep_files
        self.keep_files = bool(keep_files)
        self.layout: SlotLayout | None = None
        self._stores: dict[int, MmapDiskStore] = {}
        self._cleanup = None
        self._grows = 0
        self._blocks_written = 0
        self._blocks_read = 0
        self._bytes_written = 0
        self._bytes_read = 0

    def attach(self, n_disks: int, block_size: int) -> None:
        super().attach(n_disks, block_size)
        self.layout = SlotLayout.for_geometry(n_disks, block_size)
        if self._requested_workdir is None:
            self.workdir = tempfile.mkdtemp(prefix="repro-disks-")
            keep = False if self._requested_keep is None else self._requested_keep
        else:
            self.workdir = str(self._requested_workdir)
            os.makedirs(self.workdir, exist_ok=True)
            keep = True if self._requested_keep is None else self._requested_keep
        self.keep_files = keep
        if not keep:
            # Scratch directories self-destruct even if close() is
            # never called (interpreter exit, abandoned systems).
            self._cleanup = weakref.finalize(
                self, shutil.rmtree, self.workdir, ignore_errors=True
            )

    def path_for(self, disk_id: int) -> str:
        if self.workdir is None:
            raise ConfigError("mmap backend not attached to a system yet")
        return os.path.join(self.workdir, f"disk{disk_id:04d}.dat")

    def file_paths(self) -> list[str]:
        """Per-disk file paths (what worker processes reopen)."""
        assert self.n_disks is not None
        return [self.path_for(d) for d in range(self.n_disks)]

    def store_for(self, disk_id: int) -> BlockStore:
        store = self._stores.get(disk_id)
        if store is None:
            store = self._stores[disk_id] = MmapDiskStore(
                self, disk_id, self.path_for(disk_id)
            )
        return store

    def flush(self) -> None:
        for store in self._stores.values():
            store.flush()

    def close(self) -> None:
        for store in self._stores.values():
            store._mm = None
            store._capacity = 0
            store._live.clear()
        self._stores.clear()
        if self._cleanup is not None:
            self._cleanup()
            self._cleanup = None

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "workdir": self.workdir,
            "live_blocks": sum(len(s) for s in self._stores.values()),
            "blocks_written": self._blocks_written,
            "blocks_read": self._blocks_read,
            "bytes_written": self._bytes_written,
            "bytes_read": self._bytes_read,
            "file_grows": self._grows,
            "file_bytes": sum(s.file_bytes for s in self._stores.values()),
        }
