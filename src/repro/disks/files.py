"""On-disk file and run representations.

Two layouts exist in the paper's world:

* :class:`StripedFile` — an unsorted input file, blocks laid out
  round-robin across disks (block ``j`` on disk ``j mod D``).  Reading
  it sequentially achieves full parallelism, which is all run formation
  needs.
* :class:`StripedRun` — a *sorted* run in SRM's forecast format,
  cyclically striped from a chosen start disk (§3, §4).  This is both
  the output of run formation / a merge and the input of the next merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import DataError
from .block import Block, attach_forecasts, split_into_blocks
from .striping import cyclic_disk
from .system import BlockAddress, ParallelDiskSystem


@dataclass
class StripedFile:
    """An unsorted file striped round-robin across the disks.

    Attributes
    ----------
    addresses:
        Physical address of each block, in file order.
    n_records:
        Total record count (the final block may be partial).
    block_size:
        Records per full block.
    """

    addresses: list[BlockAddress]
    n_records: int
    block_size: int

    @property
    def n_blocks(self) -> int:
        return len(self.addresses)

    @classmethod
    def from_records(
        cls,
        system: ParallelDiskSystem,
        keys: np.ndarray,
        count_ios: bool = False,
        payloads: np.ndarray | None = None,
    ) -> "StripedFile":
        """Materialize *keys* (with optional payloads) on disk, round-robin.

        By default the placement is treated as pre-existing input (no
        I/O charged); pass ``count_ios=True`` to charge the writes.
        """
        keys = np.asarray(keys, dtype=np.int64)
        blocks = split_into_blocks(keys, system.block_size, payloads=payloads)
        addresses: list[BlockAddress] = []
        pending: list[tuple[BlockAddress, Block]] = []
        for j, blk in enumerate(blocks):
            addr = system.allocate(j % system.n_disks)
            addresses.append(addr)
            if count_ios:
                pending.append((addr, blk))
                if len(pending) == system.n_disks:
                    system.write_stripe(pending)
                    pending = []
            else:
                system.install_block(addr, blk)
        if pending:
            system.write_stripe(pending)
        return cls(addresses=addresses, n_records=int(keys.size), block_size=system.block_size)

    def read_all(self, system: ParallelDiskSystem) -> np.ndarray:
        """Read the whole file back (charging parallel reads)."""
        blocks, _ = system.read_batch(self.addresses)
        if not blocks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([b.keys for b in blocks])

    def read_all_records(
        self, system: ParallelDiskSystem
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Read keys and payloads back (charging parallel reads)."""
        blocks, _ = system.read_batch(self.addresses)
        if not blocks:
            return np.empty(0, dtype=np.int64), None
        keys = np.concatenate([b.keys for b in blocks])
        if blocks[0].payloads is None:
            return keys, None
        return keys, np.concatenate([b.payloads for b in blocks])


@dataclass
class StripedRun:
    """A sorted run in SRM forecast format, cyclically striped.

    Attributes
    ----------
    run_id:
        Identifier (unique within one merge).
    start_disk:
        Disk ``d_r`` holding block 0; block ``i`` is on
        ``(d_r + i) mod D``.
    addresses:
        Physical address of block ``i`` at position ``i``.
    n_records:
        Total records in the run.
    block_size:
        Records per full block (the final block may be partial).
    first_keys:
        Smallest key of each block, ``k_{r,i}`` — retained in the extent
        map so jobs for the block-level simulator can be built without
        re-reading the run.  The *algorithms* never peek at this: the
        scheduler learns keys only through implanted forecasts.
    """

    run_id: int
    start_disk: int
    addresses: list[BlockAddress]
    n_records: int
    block_size: int
    first_keys: np.ndarray = field(repr=False)
    last_keys: np.ndarray = field(repr=False)

    @property
    def n_blocks(self) -> int:
        return len(self.addresses)

    def disk_of_block(self, index: int) -> int:
        """Disk holding block *index* (cyclic rule)."""
        return self.addresses[index].disk

    @classmethod
    def from_sorted_keys(
        cls,
        system: ParallelDiskSystem,
        keys: np.ndarray,
        run_id: int,
        start_disk: int,
        count_ios: bool = True,
        payloads: np.ndarray | None = None,
    ) -> "StripedRun":
        """Write a sorted key array to disk as a forecast-format run.

        Writes proceed stripe-by-stripe with full parallelism (``D``
        blocks per operation, except the final partial stripe), matching
        the paper's perfect write parallelism.  *payloads*, if given,
        must already be aligned with the sorted keys.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            raise DataError("cannot create an empty run")
        if np.any(keys[:-1] > keys[1:]):
            raise DataError("run keys must be sorted ascending")
        blocks = split_into_blocks(
            keys, system.block_size, run_id=run_id, payloads=payloads
        )
        attach_forecasts(blocks, system.n_disks)
        addresses: list[BlockAddress] = []
        for i in range(len(blocks)):
            addresses.append(system.allocate(cyclic_disk(start_disk, i, system.n_disks)))
        D = system.n_disks
        for s in range(0, len(blocks), D):
            stripe = [(addresses[i], blocks[i]) for i in range(s, min(s + D, len(blocks)))]
            if count_ios:
                system.write_stripe(stripe)
            else:
                for addr, blk in stripe:
                    system.install_block(addr, blk)
        return cls(
            run_id=run_id,
            start_disk=start_disk,
            addresses=addresses,
            n_records=int(keys.size),
            block_size=system.block_size,
            first_keys=np.array([b.first_key for b in blocks], dtype=np.int64),
            last_keys=np.array([b.last_key for b in blocks], dtype=np.int64),
        )

    def read_all(self, system: ParallelDiskSystem) -> np.ndarray:
        """Read the whole run back in order (charging parallel reads)."""
        blocks, _ = system.read_batch(self.addresses)
        return np.concatenate([b.keys for b in blocks])

    def read_all_records(
        self, system: ParallelDiskSystem
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Read keys and payloads back in order (charging parallel reads)."""
        blocks, _ = system.read_batch(self.addresses)
        keys = np.concatenate([b.keys for b in blocks])
        if blocks[0].payloads is None:
            return keys, None
        return keys, np.concatenate([b.payloads for b in blocks])
