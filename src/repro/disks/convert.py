"""Layout conversions between the run formats, with counted I/O.

Three on-disk layouts exist in this codebase — cyclically striped
forecast-format runs (SRM), slot-synchronized superblock runs (DSM),
and single-disk runs (PSV) — and real pipelines mix stages (e.g. an
SRM sort feeding a DSM-style consumer).  These converters rewrite a
run between layouts at the cost of one full read + write pass, both
fully parallel, using the same accounting as everything else.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from .files import StripedRun
from .system import ParallelDiskSystem


def striped_run_to_superblock_run(
    system: ParallelDiskSystem,
    run: StripedRun,
    run_id: int,
    free_input: bool = True,
):
    """Rewrite a cyclic forecast-format run as a DSM superblock run.

    Costs ``ceil(blocks/D)`` parallel reads + the same in writes.
    """
    from ..baselines.dsm import write_superblock_run

    keys, payloads = run.read_all_records(system)
    if free_input:
        for a in run.addresses:
            system.free(a)
    return write_superblock_run(system, keys, run_id, payloads=payloads)


def superblock_run_to_striped_run(
    system: ParallelDiskSystem,
    run,
    run_id: int,
    start_disk: int,
    free_input: bool = True,
) -> StripedRun:
    """Rewrite a DSM superblock run as a cyclic forecast-format run.

    The output is a fully valid SRM input (implanted forecasts, cyclic
    layout from *start_disk*).
    """
    parts_k: list[np.ndarray] = []
    parts_p: list[np.ndarray] = []
    has_payloads: bool | None = None
    for stripe in run.stripes:
        blocks = system.read_stripe(stripe)
        for b in blocks:
            if b is None:
                continue
            parts_k.append(b.keys)
            if has_payloads is None:
                has_payloads = b.payloads is not None
            if b.payloads is not None:
                parts_p.append(b.payloads)
        if free_input:
            for a in stripe:
                system.free(a)
    keys = np.concatenate(parts_k)
    payloads = np.concatenate(parts_p) if has_payloads else None
    return StripedRun.from_sorted_keys(
        system, keys, run_id=run_id, start_disk=start_disk, payloads=payloads
    )


def restripe_run(
    system: ParallelDiskSystem,
    run: StripedRun,
    run_id: int,
    new_start_disk: int,
    free_input: bool = True,
) -> StripedRun:
    """Rewrite a striped run with a different starting disk.

    Mostly useful for tests and repair tooling (e.g. rebalancing after
    replacing a disk); SRM itself never needs this — output start disks
    are chosen fresh at write time.
    """
    if not 0 <= new_start_disk < system.n_disks:
        raise DataError(
            f"start disk {new_start_disk} out of range for D={system.n_disks}"
        )
    keys, payloads = run.read_all_records(system)
    if free_input:
        for a in run.addresses:
            system.free(a)
    return StripedRun.from_sorted_keys(
        system, keys, run_id=run_id, start_disk=new_start_disk, payloads=payloads
    )
