"""Simulated parallel disk substrate (Vitter–Shriver D-disk model).

Public surface:

* :class:`Block`, :func:`split_into_blocks`, :func:`attach_forecasts`
* :class:`Disk` — one slot-addressed block store
* :class:`ParallelDiskSystem`, :class:`BlockAddress` — the D-disk system
  with parallel-I/O enforcement and accounting
* :class:`IOStats` — operation/traffic counters
* :class:`StripedFile`, :class:`StripedRun` — file/run layouts
* striping arithmetic helpers (:func:`cyclic_disk` et al.)
* :class:`DiskTimingModel` and the :data:`DISK_1996` preset
* :class:`DiskService`, :class:`ServiceNetwork` — per-disk FIFO queues
  for the overlapped-I/O engine
* storage backends (:mod:`repro.disks.backends`): :class:`MemoryBackend`
  (default), :class:`MmapFileBackend` (file-per-disk, out-of-core),
  selected via ``ParallelDiskSystem(..., backend=...)``
"""

from .backends import (
    BackendSpec,
    MemoryBackend,
    MmapFileBackend,
    StorageBackend,
    make_backend,
    parse_backend,
)
from .block import NO_KEY, Block, attach_forecasts, split_into_blocks
from .counters import IOStats
from .disk import Disk
from .files import StripedFile, StripedRun
from .convert import (
    restripe_run,
    striped_run_to_superblock_run,
    superblock_run_to_striped_run,
)
from .scan import RunScanner
from .trace import IOTrace, TraceEvent
from .striping import (
    blocks_per_disk,
    chain_length,
    chain_position_to_block,
    chain_start_index,
    cyclic_disk,
)
from .service import DiskService, ServiceEwma, ServiceNetwork
from .system import BlockAddress, ParallelDiskSystem
from .timing import DISK_1996, DISK_MODERN, DiskTimingModel

__all__ = [
    "BackendSpec",
    "MemoryBackend",
    "MmapFileBackend",
    "StorageBackend",
    "make_backend",
    "parse_backend",
    "NO_KEY",
    "Block",
    "attach_forecasts",
    "split_into_blocks",
    "IOStats",
    "Disk",
    "StripedFile",
    "StripedRun",
    "RunScanner",
    "restripe_run",
    "striped_run_to_superblock_run",
    "superblock_run_to_striped_run",
    "IOTrace",
    "TraceEvent",
    "blocks_per_disk",
    "chain_length",
    "chain_position_to_block",
    "chain_start_index",
    "cyclic_disk",
    "BlockAddress",
    "ParallelDiskSystem",
    "DiskService",
    "ServiceEwma",
    "ServiceNetwork",
    "DiskTimingModel",
    "DISK_1996",
    "DISK_MODERN",
]
