"""The Vitter–Shriver D-disk parallel I/O system.

One *parallel I/O operation* transfers at most one block to or from each
of the ``D`` independent disks.  The system enforces that constraint
(raising :class:`InvalidIOError` on violations), counts operations and
per-disk traffic, and — when given a :class:`DiskTimingModel` — advances
a simulated clock.

Addresses are ``(disk, slot)`` pairs (:class:`BlockAddress`).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, NamedTuple, Optional, Sequence

from ..errors import ConfigError, InvalidIOError
from .block import Block
from .counters import IOStats
from .disk import Disk
from .timing import DiskTimingModel


class BlockAddress(NamedTuple):
    """Physical location of a block: which disk, which slot."""

    disk: int
    slot: int


class ParallelDiskSystem:
    """``D`` independent disks with parallel-I/O accounting.

    Parameters
    ----------
    n_disks:
        Number of independent disks, ``D >= 1``.
    block_size:
        Records per full block, ``B >= 1``.  Stored for convenience and
        used by the timing model; partial blocks are permitted (run
        tails).
    capacity_blocks_per_disk:
        Optional per-disk capacity.
    timing:
        Optional service-time model; when present, ``elapsed_ms``
        accumulates the simulated wall time of all operations.
    channel_width:
        Optional I/O channel bandwidth in blocks (the paper's §1
        two-parameter model with ``D`` the channel width and ``D'`` the
        disk count).  When set to ``c < n_disks``, a parallel operation
        touching ``n`` disks costs ``ceil(n / c)`` channel rounds — the
        disks still seek concurrently, but only ``c`` blocks cross the
        channel at a time.  ``None`` (default) models ``D = D'``: the
        channel matches the disks, one round per operation.
    """

    def __init__(
        self,
        n_disks: int,
        block_size: int,
        capacity_blocks_per_disk: Optional[int] = None,
        timing: Optional[DiskTimingModel] = None,
        channel_width: Optional[int] = None,
    ) -> None:
        if n_disks < 1:
            raise ConfigError(f"need at least one disk, got D={n_disks}")
        if block_size < 1:
            raise ConfigError(f"block size must be >= 1, got B={block_size}")
        if channel_width is not None and channel_width < 1:
            raise ConfigError(
                f"channel width must be >= 1, got {channel_width}"
            )
        self.n_disks = n_disks
        self.block_size = block_size
        self.channel_width = channel_width
        self.disks = [Disk(d, capacity_blocks_per_disk) for d in range(n_disks)]
        self.stats = IOStats(n_disks=n_disks)
        self.timing = timing
        self.elapsed_ms = 0.0
        #: Channel rounds consumed (== parallel ops when channel matches).
        self.channel_rounds = 0
        #: Optional IOTrace; assign one to record every operation.
        self.trace = None

    # -- allocation ------------------------------------------------------

    def allocate(self, disk: int) -> BlockAddress:
        """Reserve a slot on *disk* and return its address."""
        return BlockAddress(disk, self.disks[disk].allocate())

    def free(self, addr: BlockAddress) -> None:
        """Release the slot at *addr* (discarding any live block)."""
        self.disks[addr.disk].free(addr.slot)

    # -- parallel I/O ------------------------------------------------------

    def _check_one_per_disk(self, disks: Sequence[int]) -> None:
        if len(set(disks)) != len(disks):
            raise InvalidIOError(
                f"parallel I/O may touch each disk at most once, got disks {list(disks)}"
            )

    def _advance_clock(self, n_active: int) -> None:
        if n_active <= 0:
            return
        width = self.channel_width or n_active
        rounds = -(-n_active // width)
        self.channel_rounds += rounds
        if self.timing is not None:
            # One seek+rotation overlapped across disks, then the channel
            # streams the blocks `width` at a time.
            base = self.timing.stripe_time_ms(self.block_size, n_active)
            extra = (rounds - 1) * self.timing.block_transfer_ms(self.block_size)
            self.elapsed_ms += base + extra

    def read_stripe(self, addresses: Sequence[Optional[BlockAddress]]) -> list[Optional[Block]]:
        """Perform one parallel read.

        Parameters
        ----------
        addresses:
            Up to ``D`` addresses on pairwise-distinct disks; ``None``
            entries are skipped (that disk idles).  An all-``None``
            request costs no I/O.

        Returns
        -------
        list of blocks positionally matching *addresses*.
        """
        live = [a for a in addresses if a is not None]
        if not live:
            return [None] * len(addresses)
        self._check_one_per_disk([a.disk for a in live])
        out: list[Optional[Block]] = []
        for a in addresses:
            out.append(None if a is None else self.disks[a.disk].read(a.slot))
        self.stats.record_read([a.disk for a in live])
        self._advance_clock(len(live))
        if self.trace is not None:
            self.trace.record("read", [a.disk for a in live], self.elapsed_ms)
        return out

    def write_stripe(self, writes: Sequence[tuple[BlockAddress, Block]]) -> None:
        """Perform one parallel write of ``(address, block)`` pairs.

        All addresses must be on pairwise-distinct disks.  An empty
        request costs no I/O.
        """
        if not writes:
            return
        self._check_one_per_disk([a.disk for a, _ in writes])
        for addr, block in writes:
            self.disks[addr.disk].write(addr.slot, block)
        self.stats.record_write([a.disk for a, _ in writes])
        self._advance_clock(len(writes))
        if self.trace is not None:
            self.trace.record("write", [a.disk for a, _ in writes], self.elapsed_ms)

    def read_batch(self, addresses: Iterable[BlockAddress]) -> tuple[list[Block], int]:
        """Read arbitrarily many blocks using greedy stripe packing.

        Consecutive parallel reads are formed by taking at most one
        pending address per disk, so the number of operations equals the
        maximum number of requested blocks on any single disk — exactly
        the "maximum occupancy" cost that SRM's analysis charges for
        loading the ``R`` initial run blocks (``I_0`` in §6).

        Returns
        -------
        (blocks, n_operations):
            Blocks in the order requested, and the parallel reads used.
        """
        addrs = list(addresses)
        pending: dict[int, deque[tuple[int, BlockAddress]]] = {}
        for pos, a in enumerate(addrs):
            pending.setdefault(a.disk, deque()).append((pos, a))
        out: list[Optional[Block]] = [None] * len(addrs)
        n_ops = 0
        while pending:
            # FIFO per disk: each disk serves its requests in the order
            # they were submitted, so a caller streaming a run's blocks
            # sees them fetched in file order (popping the newest request
            # first would starve the oldest until its queue drained).
            stripe = [queue.popleft() for queue in pending.values()]
            pending = {d: q for d, q in pending.items() if q}
            blocks = self.read_stripe([a for _, a in stripe])
            for (pos, _), blk in zip(stripe, blocks):
                out[pos] = blk
            n_ops += 1
        return out, n_ops  # type: ignore[return-value]

    # -- convenience (single-block I/O, costs one parallel op) -------------

    def read_block(self, addr: BlockAddress) -> Block:
        """Read a single block (one full parallel operation)."""
        return self.read_stripe([addr])[0]  # type: ignore[return-value]

    def write_block(self, addr: BlockAddress, block: Block) -> None:
        """Write a single block (one full parallel operation)."""
        self.write_stripe([(addr, block)])

    # -- introspection -------------------------------------------------------

    @property
    def used_blocks(self) -> int:
        """Total live blocks across all disks."""
        return sum(d.used_blocks for d in self.disks)

    def usage_per_disk(self) -> list[int]:
        """Live block count per disk."""
        return [d.used_blocks for d in self.disks]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelDiskSystem(D={self.n_disks}, B={self.block_size}, "
            f"used={self.used_blocks}, {self.stats})"
        )
