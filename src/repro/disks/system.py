"""The Vitter–Shriver D-disk parallel I/O system.

One *parallel I/O operation* transfers at most one block to or from each
of the ``D`` independent disks.  The system enforces that constraint
(raising :class:`InvalidIOError` on violations), counts operations and
per-disk traffic, and — when given a :class:`DiskTimingModel` — advances
a simulated clock.

Addresses are ``(disk, slot)`` pairs (:class:`BlockAddress`).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, NamedTuple, Optional, Sequence

from ..errors import ConfigError, DataError, DiskDeadError, InvalidIOError
from .backends import StorageBackend, make_backend
from .block import Block
from .counters import IOStats
from .disk import Disk
from .timing import DiskTimingModel


class BlockAddress(NamedTuple):
    """Physical location of a block: which disk, which slot."""

    disk: int
    slot: int


class ParallelDiskSystem:
    """``D`` independent disks with parallel-I/O accounting.

    Parameters
    ----------
    n_disks:
        Number of independent disks, ``D >= 1``.
    block_size:
        Records per full block, ``B >= 1``.  Stored for convenience and
        used by the timing model; partial blocks are permitted (run
        tails).
    capacity_blocks_per_disk:
        Optional per-disk capacity.
    timing:
        Optional service-time model; when present, ``elapsed_ms``
        accumulates the simulated wall time of all operations.
    channel_width:
        Optional I/O channel bandwidth in blocks (the paper's §1
        two-parameter model with ``D`` the channel width and ``D'`` the
        disk count).  When set to ``c < n_disks``, a parallel operation
        touching ``n`` disks costs ``ceil(n / c)`` channel rounds — the
        disks still seek concurrently, but only ``c`` blocks cross the
        channel at a time.  ``None`` (default) models ``D = D'``: the
        channel matches the disks, one round per operation.
    backend:
        Block-storage backend selection (see
        :mod:`repro.disks.backends`): ``None``/``"memory"`` keeps blocks
        in RAM, ``"mmap"`` / ``"mmap:/path"`` stores them in one
        ``np.memmap``-ed file per disk so data sets can exceed RAM.
        Also accepts a :class:`~repro.disks.backends.BackendSpec` or a
        constructed (unattached) backend instance.
    """

    def __init__(
        self,
        n_disks: int,
        block_size: int,
        capacity_blocks_per_disk: Optional[int] = None,
        timing: Optional[DiskTimingModel] = None,
        channel_width: Optional[int] = None,
        backend=None,
    ) -> None:
        if n_disks < 1:
            raise ConfigError(f"need at least one disk, got D={n_disks}")
        if block_size < 1:
            raise ConfigError(f"block size must be >= 1, got B={block_size}")
        if channel_width is not None and channel_width < 1:
            raise ConfigError(
                f"channel width must be >= 1, got {channel_width}"
            )
        self.n_disks = n_disks
        self.block_size = block_size
        self.channel_width = channel_width
        #: Block-storage backend; disks hold stores it handed out.
        self.backend: StorageBackend = make_backend(backend)
        self.backend.attach(n_disks, block_size)
        self.disks = [
            Disk(d, capacity_blocks_per_disk, store=self.backend.store_for(d))
            for d in range(n_disks)
        ]
        self.stats = IOStats(n_disks=n_disks)
        self.timing = timing
        self.elapsed_ms = 0.0
        #: Channel rounds consumed (== parallel ops when channel matches).
        self.channel_rounds = 0
        #: Optional IOTrace; assign one to record every operation.
        self.trace = None
        #: Optional causal tracer (:class:`~repro.telemetry.trace
        #: .SystemTracer` or a cluster ``StagedTracer``): every charged
        #: clock advance emits one timeline record on the channel lane.
        self.tracer = None
        #: Optional pre-operation hook called once at the top of every
        #: charged stripe operation (read, charged read, write) *before*
        #: any work happens.  The multi-tenant service installs a round
        #: gate here: the hook blocks the calling job until the fairness
        #: policy grants it the next parallel-I/O round, which is what
        #: lets many sorts interleave on one shared system at round
        #: granularity.  ``None`` (default) costs nothing.
        self.round_hook = None
        #: Optional secondary :class:`IOStats` mirror.  Every charged
        #: operation recorded in :attr:`stats` is also recorded here.
        #: The service points this at the granted job's private counters
        #: for the duration of its round, giving exact per-job
        #: accounting (and uncontaminated per-pass deltas inside the
        #: driver) on a shared farm.  ``None`` (default) costs nothing.
        self.stats_sink = None
        #: Fault injection state (see :meth:`attach_faults`).  ``None``
        #: keeps every I/O on the original fault-free fast path.
        self.faults = None
        self.retry_policy = None
        self.breaker = None
        #: Disks that have permanently failed.
        self.dead_disks: set[int] = set()
        #: Migrated addresses: original -> survivor location.  Callers
        #: keep their original addresses; :meth:`resolve` follows chains.
        self._remap: dict[BlockAddress, BlockAddress] = {}
        self._redirect_rr = 0
        #: One :class:`~repro.faults.degraded.DeathReport` per disk loss.
        self.death_reports: list = []
        #: Rotating-parity bookkeeping (``redundancy="parity"`` plans).
        self._parity = None

    # -- fault injection --------------------------------------------------

    def attach_faults(self, plan, retry=None, telemetry=None) -> None:
        """Arm this system with a seeded fault plan.

        Parameters
        ----------
        plan:
            A :class:`~repro.faults.plan.FaultPlan` (or an already
            constructed :class:`~repro.faults.plan.FaultInjector`).
        retry:
            Optional :class:`~repro.faults.retry.RetryPolicy`; defaults
            to :data:`~repro.faults.retry.DEFAULT_RETRY`.
        telemetry:
            Optional :class:`~repro.telemetry.Telemetry`; fault events
            and counters land in its registry under ``faults.*``.

        Must be called before any data is written: blocks are sealed
        with checksums at write time, so pre-attach writes would be
        unverifiable (their corruption counts as undetected).
        """
        from ..faults.plan import FaultInjector
        from ..faults.retry import DEFAULT_RETRY, CircuitBreaker

        if self.faults is not None:
            raise ConfigError("faults already attached to this system")
        if isinstance(plan, FaultInjector):
            inj = plan
        else:
            inj = FaultInjector(
                plan, self.n_disks, retry=retry, telemetry=telemetry
            )
        self.faults = inj
        self.retry_policy = inj.retry if retry is None else retry
        self.breaker = CircuitBreaker()
        if inj.plan.redundancy == "parity":
            from ..faults.parity import ParityStore

            self._parity = ParityStore(self)

    @property
    def degraded(self) -> bool:
        """True once at least one disk has died."""
        return bool(self.dead_disks)

    def resolve(self, addr: BlockAddress) -> BlockAddress:
        """Physical location of *addr*, following degraded-mode remaps."""
        remap = self._remap
        while addr in remap:
            addr = remap[addr]
        return addr

    def peek(self, addr: BlockAddress) -> Block:
        """Read a block without charging I/O (verification aid)."""
        a = self.resolve(addr)
        return self.disks[a.disk].read(a.slot)

    def install_block(self, addr: BlockAddress, block: Block) -> None:
        """Place *block* at *addr* without charging I/O.

        Models pre-existing data (input files); when faults are armed
        the block is sealed so later corrupted transfers are detectable.
        """
        tgt = self.resolve(addr)
        if self.faults is not None:
            if tgt.disk in self.dead_disks:
                new = self.allocate(tgt.disk)
                self._remap[tgt] = new
                tgt = new
            block.seal()
        self.disks[tgt.disk].write(tgt.slot, block)
        if self._parity is not None:
            # Pre-existing data arrives with pre-existing parity: track
            # the block and persist any completed group's parity block
            # without charging I/O, like the data itself.
            self._parity.add_block(addr, tgt.disk, block)
            self._flush_parity_writes(charged=False)

    def _next_survivor(self) -> int:
        survivors = [
            d for d in range(self.n_disks) if d not in self.dead_disks
        ]
        if not survivors:
            raise DiskDeadError(f"all {self.n_disks} disks have died")
        d = survivors[self._redirect_rr % len(survivors)]
        self._redirect_rr += 1
        return d

    def _kill_disk(self, disk: int, trigger: str) -> None:
        """Declare *disk* dead and recover its blocks onto the survivors."""
        from ..faults.degraded import migrate_dead_disk

        if disk in self.dead_disks:
            # A death cascading out of another death's recovery writes
            # can re-nominate a disk the outer frame is already burying.
            return
        self.dead_disks.add(disk)
        report = migrate_dead_disk(self, disk, trigger)
        self.faults.mark_dead(disk, trigger, report.recovered_blocks)
        self.death_reports.append(report)

    def _charge_backoff(self, disk: int, backoff_ms: float) -> None:
        """Account one retry delay on the clock and the disk's queue."""
        self.faults.count_retry(disk, backoff_ms)
        if self.timing is not None:
            t0 = self.elapsed_ms
            self.elapsed_ms += backoff_ms
            if self.tracer is not None:
                self.tracer.op("backoff", 1, t0, self.elapsed_ms)

    # -- allocation ------------------------------------------------------

    def allocate(self, disk: int) -> BlockAddress:
        """Reserve a slot on *disk* and return its address.

        In degraded mode a request for a dead disk is redirected
        round-robin onto the survivors (new data never lands on a lost
        spindle; the logical layout rule keeps naming the dead disk).
        """
        if self.dead_disks and disk in self.dead_disks:
            disk = self._next_survivor()
            self.faults.count_redirect()
        return BlockAddress(disk, self.disks[disk].allocate())

    def free(self, addr: BlockAddress) -> None:
        """Release the slot at *addr* (discarding any live block).

        Under ``redundancy="parity"`` the physical release of a
        parity-group member is deferred until its whole group is freed,
        keeping reconstruction sources on disk (see
        :meth:`~repro.faults.parity.ParityStore.note_free`).
        """
        if self._parity is not None and self._parity.note_free(addr):
            return
        addr = self.resolve(addr)
        if addr.disk in self.dead_disks:
            # The slot vanished with its spindle (allocated, never
            # written before the death) — nothing to release.
            return
        self.disks[addr.disk].free(addr.slot)

    # -- parallel I/O ------------------------------------------------------

    def _check_one_per_disk(self, disks: Sequence[int]) -> None:
        if len(set(disks)) != len(disks):
            raise InvalidIOError(
                f"parallel I/O may touch each disk at most once, got disks {list(disks)}"
            )

    def _record_read(self, disks: list[int]) -> None:
        self.stats.record_read(disks)
        if self.stats_sink is not None:
            self.stats_sink.record_read(disks)

    def _record_write(self, disks: list[int]) -> None:
        self.stats.record_write(disks)
        if self.stats_sink is not None:
            self.stats_sink.record_write(disks)

    def _advance_clock(self, n_active: int) -> None:
        if n_active <= 0:
            return
        width = self.channel_width or n_active
        rounds = -(-n_active // width)
        self.channel_rounds += rounds
        if self.timing is not None:
            # One seek+rotation overlapped across disks, then the channel
            # streams the blocks `width` at a time.
            base = self.timing.stripe_time_ms(self.block_size, n_active)
            extra = (rounds - 1) * self.timing.block_transfer_ms(self.block_size)
            self.elapsed_ms += base + extra

    def read_stripe(self, addresses: Sequence[Optional[BlockAddress]]) -> list[Optional[Block]]:
        """Perform one parallel read.

        Parameters
        ----------
        addresses:
            Up to ``D`` addresses on pairwise-distinct disks; ``None``
            entries are skipped (that disk idles).  An all-``None``
            request costs no I/O.

        Returns
        -------
        list of blocks positionally matching *addresses*.
        """
        if self.round_hook is not None and any(
            a is not None for a in addresses
        ):
            self.round_hook()
        if self.faults is not None:
            return self._read_stripe_faulty(addresses)
        live = [a for a in addresses if a is not None]
        if not live:
            return [None] * len(addresses)
        self._check_one_per_disk([a.disk for a in live])
        out: list[Optional[Block]] = []
        for a in addresses:
            out.append(None if a is None else self.disks[a.disk].read(a.slot))
        self._record_read([a.disk for a in live])
        t0 = self.elapsed_ms
        self._advance_clock(len(live))
        if self.trace is not None:
            self.trace.record("read", [a.disk for a in live], self.elapsed_ms)
        if self.tracer is not None:
            self.tracer.op("read", len(live), t0, self.elapsed_ms)
        return out

    def charge_read_stripe(self, addresses: Sequence[BlockAddress]) -> None:
        """Charge one parallel read without materializing the blocks.

        Accounting-identical to :meth:`read_stripe` on a fault-free
        system — same distinct-disk check, :class:`IOStats` update,
        clock advance and trace record — but the stored blocks are never
        decoded.  The ghost schedule drive of the parallel merge plane
        uses this: worker processes read the bytes out-of-band, so the
        parent only owes the accounting.  Refuses to run with faults
        armed (every armed read must pass the retry/checksum ladder).
        """
        if self.faults is not None:
            raise InvalidIOError(
                "charge_read_stripe requires a fault-free system"
            )
        live = [a for a in addresses if a is not None]
        if not live:
            return
        if self.round_hook is not None:
            self.round_hook()
        self._check_one_per_disk([a.disk for a in live])
        for a in live:
            if not self.disks[a.disk].has_block(a.slot):
                raise InvalidIOError(
                    f"disk {a.disk} slot {a.slot} holds no block"
                )
        self._record_read([a.disk for a in live])
        t0 = self.elapsed_ms
        self._advance_clock(len(live))
        if self.trace is not None:
            self.trace.record("read", [a.disk for a in live], self.elapsed_ms)
        if self.tracer is not None:
            self.tracer.op("read", len(live), t0, self.elapsed_ms)

    def write_stripe(
        self, writes: Sequence[tuple[BlockAddress, Block]]
    ) -> list[int]:
        """Perform one parallel write of ``(address, block)`` pairs.

        All addresses must be on pairwise-distinct disks.  An empty
        request costs no I/O.

        Returns the physical disks written, positionally matching
        *writes* — identical to the address disks fault-free, but
        possibly relocated onto survivors in degraded mode (callers
        such as the overlap engine need the *physical* spindles).
        """
        if not writes:
            return []
        if self.round_hook is not None:
            self.round_hook()
        if self.faults is not None:
            return self._write_stripe_faulty(writes)
        self._check_one_per_disk([a.disk for a, _ in writes])
        for addr, block in writes:
            self.disks[addr.disk].write(addr.slot, block)
        self._record_write([a.disk for a, _ in writes])
        t0 = self.elapsed_ms
        self._advance_clock(len(writes))
        if self.trace is not None:
            self.trace.record("write", [a.disk for a, _ in writes], self.elapsed_ms)
        if self.tracer is not None:
            self.tracer.op("write", len(writes), t0, self.elapsed_ms)
        return [a.disk for a, _ in writes]

    # -- fault-injected I/O paths ------------------------------------------
    #
    # Mirrors of read_stripe/write_stripe taken only when faults are
    # armed.  Differences: addresses go through resolve(), reads run the
    # retry/checksum/escalation loop, and a stripe whose blocks resolve
    # onto colliding physical disks is split into multiple accounting
    # rounds (the degraded-mode overhead, counted as
    # ``faults.degraded_split_ios``).

    def _account_round(self, kind: str, disks: list[int]) -> None:
        if not disks:
            return
        if kind == "read":
            self._record_read(disks)
        else:
            self._record_write(disks)
        t0 = self.elapsed_ms
        self._advance_clock(len(disks))
        if self.trace is not None:
            self.trace.record(kind, disks, self.elapsed_ms)
        if self.tracer is not None:
            self.tracer.op(kind, len(disks), t0, self.elapsed_ms)

    def _account_rounds(self, kind: str, physical_disks: list[int]) -> None:
        """Charge operations, splitting same-disk collisions into rounds."""
        rounds = 0
        used: set[int] = set()
        group: list[int] = []
        for d in physical_disks:
            if d in used:
                self._account_round(kind, group)
                rounds += 1
                used, group = set(), []
            used.add(d)
            group.append(d)
        if group:
            self._account_round(kind, group)
            rounds += 1
        if rounds > 1:
            self.faults.count_split_ios(rounds - 1)

    def _read_stripe_faulty(
        self, addresses: Sequence[Optional[BlockAddress]]
    ) -> list[Optional[Block]]:
        out: list[Optional[Block]] = [None] * len(addresses)
        disks: list[int] = []
        for i, a in enumerate(addresses):
            if a is None:
                continue
            blk, d = self._read_one_with_retry(a)
            out[i] = blk
            disks.append(d)
        self._account_rounds("read", disks)
        return out

    def _read_one_with_retry(self, orig: BlockAddress) -> tuple[Block, int]:
        """Read one block under the fault plan; returns (block, disk).

        Each pass resolves the address, asks the plan for this read's
        fate, and runs the retry ladder.  A circuit-breaker trip or an
        exhausted ladder escalates to disk death — degraded migration
        re-homes the block, and the loop re-resolves onto the survivor.
        """
        inj = self.faults
        pol = self.retry_policy
        while True:
            addr = self.resolve(orig)
            d = addr.disk
            if d in self.dead_disks:
                raise DiskDeadError(
                    f"block at {tuple(orig)} lives only on dead disk {d}"
                )
            if inj.death_due(d):
                self._kill_disk(d, "planned")
                continue
            outcome = inj.plan_read(d)
            corrupt_pending = outcome.corrupt
            killed = False
            for attempt in range(pol.max_attempts):
                if attempt < outcome.n_failures:
                    inj.count_transient()
                    if self.breaker.record_failure(d):
                        inj.count_breaker_trip()
                        self._kill_disk(d, "breaker")
                        killed = True
                        break
                    self._charge_backoff(d, pol.backoff_ms(attempt, inj.rng(d)))
                    continue
                blk = self.disks[d].read(addr.slot)
                if not blk.verify():
                    # The *stored* bytes fail their seal: a torn write
                    # persisted a block whose checksum went stale.  Not
                    # a transfer fault, so it doesn't feed the breaker;
                    # the fix is reconstruction, not a re-read.
                    blk = self._repair_torn(orig, d)
                if corrupt_pending:
                    corrupt_pending = False
                    inj.count_corrupt()
                    from ..faults.plan import corrupt_copy

                    bad = corrupt_copy(blk, inj.rng(d))
                    if not bad.verify():
                        # Checksum caught the bad transfer: one more
                        # failed attempt, then re-read the pristine data.
                        inj.count_detected()
                        if self.breaker.record_failure(d):
                            inj.count_breaker_trip()
                            self._kill_disk(d, "breaker")
                            killed = True
                            break
                        self._charge_backoff(
                            d, pol.backoff_ms(attempt, inj.rng(d))
                        )
                        continue
                    # Unsealed block: the corruption is invisible.  The
                    # chaos harness asserts this counter stays zero.
                    inj.count_undetected()
                    self.breaker.record_success(d)
                    inj.note_op(d)
                    return bad, d
                self.breaker.record_success(d)
                inj.note_op(d)
                return blk, d
            if not killed:
                # Retry budget exhausted without a clean read — treat
                # the spindle as failed and recover from the survivors.
                self._kill_disk(d, "retry_exhausted")

    def _repair_torn(self, orig: BlockAddress, disk: int) -> Block:
        """A stored block failed its seal: rebuild it from parity."""
        inj = self.faults
        inj.count_torn_detected()
        if self._parity is None:
            raise DataError(
                f"torn write detected at {tuple(orig)} on disk {disk} "
                "but the plan has redundancy='none' — nothing to rebuild "
                "from"
            )
        return self._parity.repair_in_place(orig)

    def _write_stripe_faulty(
        self, writes: Sequence[tuple[BlockAddress, Block]]
    ) -> list[int]:
        disks: list[int] = []
        for addr, block in writes:
            disks.append(self._write_one_with_retry(addr, block))
        self._account_rounds("write", disks)
        # Any parity group completed by this stripe flushes now, as
        # separately-charged rounds: the data stripe's accounting (and
        # its positional disk list, which callers rely on) stays intact.
        self._flush_parity_writes()
        return disks

    def _write_one_with_retry(self, orig: BlockAddress, block: Block) -> int:
        """Write one block under the fault plan; returns the disk used.

        Mirrors :meth:`_read_one_with_retry`: the plan decides this
        write's fate, transient failures back off and feed the breaker,
        and exhaustion escalates to disk death — after which the loop
        re-resolves onto a survivor and the write goes through there.
        A torn write persists a corrupted copy under the pristine seal;
        the staleness is caught by :meth:`Block.verify` on next read.
        """
        inj = self.faults
        pol = self.retry_policy
        while True:
            addr = self.resolve(orig)
            if addr.disk in self.dead_disks:
                # Allocated before the death, written after: relocate
                # the slot onto a survivor and remember the move.
                new = self.allocate(addr.disk)
                self._remap[addr] = new
                continue
            d = addr.disk
            if inj.death_due(d):
                self._kill_disk(d, "planned")
                continue
            outcome = inj.plan_write(d)
            killed = False
            for attempt in range(pol.max_attempts):
                if attempt < outcome.n_failures:
                    inj.count_write_failure()
                    if self.breaker.record_failure(d):
                        inj.count_breaker_trip()
                        self._kill_disk(d, "breaker")
                        killed = True
                        break
                    self._charge_backoff(d, pol.backoff_ms(attempt, inj.rng(d)))
                    continue
                block.seal()
                torn = outcome.torn
                if self._parity is not None:
                    # The store may veto the tear: one parity arm can
                    # absorb only one latent loss per group.
                    torn = self._parity.add_block(orig, d, block, torn=torn)
                if torn:
                    inj.count_torn_injected()
                    from ..faults.plan import corrupt_copy

                    stored = corrupt_copy(block, inj.rng(d))
                    self.disks[d].write(addr.slot, stored)
                else:
                    self.disks[d].write(addr.slot, block)
                self.breaker.record_success(d)
                inj.note_op(d)
                return d
            if not killed:
                self._kill_disk(d, "retry_exhausted")

    def _flush_parity_writes(self, charged: bool = True) -> None:
        """Persist parity blocks for any groups that just closed."""
        if self._parity is None:
            return
        for g, pblk in self._parity.drain_pending():
            self._write_parity_block(g, pblk, charged=charged)

    def _write_parity_block(self, g, pblk: Block, charged: bool = True) -> None:
        """Write one group's parity block on its rotating spindle.

        Parity rides the controller's reliable path (no injected
        faults) but is *charged* like any write — redundancy is paid
        for, one extra round per closed group — except when it backs
        uncharged pre-existing data (``install_block``).
        """
        inj = self.faults
        d = g.parity_disk
        if d is None or d in self.dead_disks:
            d = self._parity.repick_parity_disk(g)
        addr = BlockAddress(d, self.disks[d].allocate())
        self.disks[d].write(addr.slot, pblk)
        if charged:
            self._record_write([d])
            t0 = self.elapsed_ms
            self._advance_clock(1)
            if self.trace is not None:
                self.trace.record("write", [d], self.elapsed_ms)
            if self.tracer is not None:
                self.tracer.op("parity", 1, t0, self.elapsed_ms)
            inj.note_op(d)
            # Let the overlap engine feel the extra spindle time too.
            inj.add_recovery_ops(d)
        inj.count_parity_block()
        self._parity.note_parity_written(g, addr)

    def read_batch(self, addresses: Iterable[BlockAddress]) -> tuple[list[Block], int]:
        """Read arbitrarily many blocks using greedy stripe packing.

        Consecutive parallel reads are formed by taking at most one
        pending address per disk, so the number of operations equals the
        maximum number of requested blocks on any single disk — exactly
        the "maximum occupancy" cost that SRM's analysis charges for
        loading the ``R`` initial run blocks (``I_0`` in §6).

        Returns
        -------
        (blocks, n_operations):
            Blocks in the order requested, and the parallel reads used.
        """
        addrs = list(addresses)
        pending: dict[int, deque[tuple[int, BlockAddress]]] = {}
        for pos, a in enumerate(addrs):
            pending.setdefault(a.disk, deque()).append((pos, a))
        out: list[Optional[Block]] = [None] * len(addrs)
        n_ops = 0
        while pending:
            # FIFO per disk: each disk serves its requests in the order
            # they were submitted, so a caller streaming a run's blocks
            # sees them fetched in file order (popping the newest request
            # first would starve the oldest until its queue drained).
            stripe = [queue.popleft() for queue in pending.values()]
            pending = {d: q for d, q in pending.items() if q}
            blocks = self.read_stripe([a for _, a in stripe])
            for (pos, _), blk in zip(stripe, blocks):
                out[pos] = blk
            n_ops += 1
        return out, n_ops  # type: ignore[return-value]

    # -- convenience (single-block I/O, costs one parallel op) -------------

    def read_block(self, addr: BlockAddress) -> Block:
        """Read a single block (one full parallel operation)."""
        return self.read_stripe([addr])[0]  # type: ignore[return-value]

    def write_block(self, addr: BlockAddress, block: Block) -> None:
        """Write a single block (one full parallel operation)."""
        self.write_stripe([(addr, block)])

    # -- introspection -------------------------------------------------------

    @property
    def used_blocks(self) -> int:
        """Total live blocks across all disks."""
        return sum(d.used_blocks for d in self.disks)

    def usage_per_disk(self) -> list[int]:
        """Live block count per disk."""
        return [d.used_blocks for d in self.disks]

    def close(self) -> None:
        """Release backend resources (scratch files for mmap storage)."""
        self.backend.close()

    def __enter__(self) -> "ParallelDiskSystem":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelDiskSystem(D={self.n_disks}, B={self.block_size}, "
            f"used={self.used_blocks}, {self.stats})"
        )
