"""A simple disk service-time model (Ruemmler & Wilkes style).

The paper counts parallel I/O operations; real systems also care about
wall-clock time.  This optional model converts an I/O trace into
estimated time so the overlap-of-I/O-and-computation ablation can show
*why* counting parallel operations is the right abstraction: disks in
one parallel operation work concurrently, so an operation costs the
*maximum* of its per-disk service times — which for equal block sizes is
just one seek + rotation + transfer.

The defaults approximate a mid-1990s drive (the paper's era): ~10 ms
average seek, 5400 RPM, ~5 MB/s media rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class DiskTimingModel:
    """Per-operation disk timing parameters.

    Attributes
    ----------
    avg_seek_ms:
        Average seek time in milliseconds.
    rpm:
        Spindle speed; average rotational latency is half a revolution.
    transfer_mb_per_s:
        Sustained media transfer rate.
    record_bytes:
        Size of one record in bytes (keys-only simulation uses 8).
    """

    avg_seek_ms: float = 10.0
    rpm: float = 5400.0
    transfer_mb_per_s: float = 5.0
    record_bytes: int = 8

    def __post_init__(self) -> None:
        # rpm and the transfer rate are divisors downstream; zero would
        # surface as a far-away ZeroDivisionError instead of a clear
        # configuration failure.
        if self.rpm <= 0:
            raise ConfigError(f"rpm must be > 0, got {self.rpm}")
        if self.transfer_mb_per_s <= 0:
            raise ConfigError(
                f"transfer_mb_per_s must be > 0, got {self.transfer_mb_per_s}"
            )
        if self.record_bytes <= 0:
            raise ConfigError(
                f"record_bytes must be > 0, got {self.record_bytes}"
            )
        if self.avg_seek_ms < 0:
            raise ConfigError(
                f"avg_seek_ms must be >= 0, got {self.avg_seek_ms}"
            )

    @property
    def avg_rotation_ms(self) -> float:
        """Average rotational latency (half a revolution) in ms."""
        return 0.5 * 60_000.0 / self.rpm

    def block_transfer_ms(self, block_records: int) -> float:
        """Media transfer time for one block of *block_records* records."""
        nbytes = block_records * self.record_bytes
        return nbytes / (self.transfer_mb_per_s * 1e6) * 1e3

    def op_time_ms(self, block_records: int) -> float:
        """Service time of one block access: seek + rotation + transfer."""
        return self.avg_seek_ms + self.avg_rotation_ms + self.block_transfer_ms(block_records)

    def stripe_time_ms(self, block_records: int, n_active_disks: int) -> float:
        """Elapsed time of one parallel I/O operation.

        All active disks work concurrently, so the operation costs the
        maximum single-disk service time; with identical block sizes that
        is independent of how many disks participate (as long as at least
        one does).
        """
        if n_active_disks <= 0:
            return 0.0
        return self.op_time_ms(block_records)


#: A drive typical of the paper's era (1996).
DISK_1996 = DiskTimingModel(avg_seek_ms=10.0, rpm=5400.0, transfer_mb_per_s=5.0)

#: A modern 7200 RPM nearline drive, for contrast in examples.
DISK_MODERN = DiskTimingModel(avg_seek_ms=8.0, rpm=7200.0, transfer_mb_per_s=200.0)
