"""I/O accounting for the simulated parallel disk system.

The figures of merit in the paper are counts of *parallel I/O
operations*: one operation moves at most one block per disk, so an
operation that touches only 3 of 10 disks still costs one I/O.  These
counters record both the parallel-operation counts (what Theorem 1
bounds) and per-disk block traffic (useful for diagnosing imbalance,
e.g. the worst-case layout of §3 where every read is 1/D efficient).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class IOStats:
    """Mutable I/O counters for a :class:`ParallelDiskSystem`.

    Attributes
    ----------
    parallel_reads / parallel_writes:
        Number of parallel I/O operations of each kind.
    blocks_read / blocks_written:
        Total blocks moved (``<= D`` per operation).
    reads_per_disk / writes_per_disk:
        Per-disk block counts, for utilization analysis.
    """

    n_disks: int
    parallel_reads: int = 0
    parallel_writes: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    reads_per_disk: np.ndarray | None = None
    writes_per_disk: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.reads_per_disk is None:
            self.reads_per_disk = np.zeros(self.n_disks, dtype=np.int64)
        elif len(self.reads_per_disk) != self.n_disks:
            raise ValueError(
                f"reads_per_disk has {len(self.reads_per_disk)} entries "
                f"for n_disks={self.n_disks}"
            )
        if self.writes_per_disk is None:
            self.writes_per_disk = np.zeros(self.n_disks, dtype=np.int64)
        elif len(self.writes_per_disk) != self.n_disks:
            raise ValueError(
                f"writes_per_disk has {len(self.writes_per_disk)} entries "
                f"for n_disks={self.n_disks}"
            )

    # -- recording ----------------------------------------------------

    def record_read(self, disks: list[int]) -> None:
        """Record one parallel read touching *disks* (distinct)."""
        self.parallel_reads += 1
        self.blocks_read += len(disks)
        for d in disks:
            self.reads_per_disk[d] += 1

    def record_write(self, disks: list[int]) -> None:
        """Record one parallel write touching *disks* (distinct)."""
        self.parallel_writes += 1
        self.blocks_written += len(disks)
        for d in disks:
            self.writes_per_disk[d] += 1

    # -- derived quantities -------------------------------------------

    @property
    def parallel_ios(self) -> int:
        """Total parallel operations (reads + writes)."""
        return self.parallel_reads + self.parallel_writes

    @property
    def read_efficiency(self) -> float:
        """Mean fraction of disk bandwidth used per parallel read.

        1.0 means every read moved ``D`` blocks; the §3 adversarial
        layout drives this toward ``1/D``.
        """
        if self.parallel_reads == 0:
            return 1.0
        return self.blocks_read / (self.parallel_reads * self.n_disks)

    @property
    def write_efficiency(self) -> float:
        """Mean fraction of disk bandwidth used per parallel write."""
        if self.parallel_writes == 0:
            return 1.0
        return self.blocks_written / (self.parallel_writes * self.n_disks)

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> "IOStats":
        """Immutable-by-convention copy of the current counters."""
        return IOStats(
            n_disks=self.n_disks,
            parallel_reads=self.parallel_reads,
            parallel_writes=self.parallel_writes,
            blocks_read=self.blocks_read,
            blocks_written=self.blocks_written,
            reads_per_disk=self.reads_per_disk.copy(),
            writes_per_disk=self.writes_per_disk.copy(),
        )

    def since(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated after the *earlier* snapshot was taken."""
        if earlier.n_disks != self.n_disks:
            raise ValueError("snapshots are from systems with different D")
        return IOStats(
            n_disks=self.n_disks,
            parallel_reads=self.parallel_reads - earlier.parallel_reads,
            parallel_writes=self.parallel_writes - earlier.parallel_writes,
            blocks_read=self.blocks_read - earlier.blocks_read,
            blocks_written=self.blocks_written - earlier.blocks_written,
            reads_per_disk=self.reads_per_disk - earlier.reads_per_disk,
            writes_per_disk=self.writes_per_disk - earlier.writes_per_disk,
        )

    def add(self, delta: "IOStats") -> None:
        """Accumulate *delta* (a :meth:`since` result) into these counters.

        The service executor charges each job the exact counter delta of
        its granted rounds; summing those deltas per job reproduces the
        counters a solo run would have accumulated.
        """
        if delta.n_disks != self.n_disks:
            raise ValueError("deltas are from systems with different D")
        self.parallel_reads += delta.parallel_reads
        self.parallel_writes += delta.parallel_writes
        self.blocks_read += delta.blocks_read
        self.blocks_written += delta.blocks_written
        self.reads_per_disk += delta.reads_per_disk
        self.writes_per_disk += delta.writes_per_disk

    def same_counts(self, other: "IOStats") -> bool:
        """Bit-exact equality of every counter, including per-disk arrays."""
        return (
            self.n_disks == other.n_disks
            and self.parallel_reads == other.parallel_reads
            and self.parallel_writes == other.parallel_writes
            and self.blocks_read == other.blocks_read
            and self.blocks_written == other.blocks_written
            and bool(np.array_equal(self.reads_per_disk, other.reads_per_disk))
            and bool(
                np.array_equal(self.writes_per_disk, other.writes_per_disk)
            )
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.parallel_reads = 0
        self.parallel_writes = 0
        self.blocks_read = 0
        self.blocks_written = 0
        self.reads_per_disk[:] = 0
        self.writes_per_disk[:] = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IOStats(reads={self.parallel_reads}, writes={self.parallel_writes}, "
            f"blocks_read={self.blocks_read}, blocks_written={self.blocks_written}, "
            f"read_eff={self.read_efficiency:.3f}, write_eff={self.write_efficiency:.3f})"
        )
