"""Sequential run scanning with bounded memory.

Downstream consumers of a sorted :class:`StripedRun` (joins, group-bys,
verification passes) rarely want the whole run in memory.
:class:`RunScanner` streams a run's records in order while holding at
most ``D`` blocks, fetching each next stripe with one fully-parallel
read — the access pattern cyclic striping is designed for.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import DataError
from .files import StripedRun
from .system import ParallelDiskSystem


class RunScanner:
    """Streams a striped run's records in sorted order.

    Parameters
    ----------
    system / run:
        Where and what to scan.
    free:
        Release each block's disk slot after it is consumed.

    The scanner reads ``D`` blocks (one stripe of the cyclic layout) per
    parallel I/O, so a full scan costs ``ceil(n_blocks / D)`` reads —
    the same perfect parallelism as writing the run.
    """

    def __init__(
        self,
        system: ParallelDiskSystem,
        run: StripedRun,
        free: bool = False,
    ) -> None:
        self.system = system
        self.run = run
        self.free = free
        self._next_block = 0
        self._buffer: list[np.ndarray] = []
        self._records_out = 0

    @property
    def exhausted(self) -> bool:
        """True once every record has been yielded."""
        return self._records_out >= self.run.n_records and not self._buffer

    def _fetch_stripe(self) -> None:
        if self._next_block >= self.run.n_blocks:
            raise DataError("scan past the end of the run")
        hi = min(self._next_block + self.system.n_disks, self.run.n_blocks)
        addrs = self.run.addresses[self._next_block : hi]
        blocks = self.system.read_stripe(addrs)
        if self.free:
            for a in addrs:
                self.system.free(a)
        self._buffer.extend(b.keys for b in blocks)  # type: ignore[union-attr]
        self._next_block = hi

    def next_chunk(self) -> np.ndarray:
        """Return the next block's worth of records (raises at the end)."""
        if not self._buffer:
            self._fetch_stripe()
        chunk = self._buffer.pop(0)
        self._records_out += int(chunk.size)
        return chunk

    def __iter__(self) -> Iterator[int]:
        """Iterate records one by one (convenience; chunked is faster)."""
        while not self.exhausted:
            for key in self.next_chunk():
                yield int(key)

    def read_remaining(self) -> np.ndarray:
        """Drain the rest of the run into one array."""
        parts = list(self._buffer)
        self._buffer = []
        while self._next_block < self.run.n_blocks:
            hi = min(self._next_block + self.system.n_disks, self.run.n_blocks)
            addrs = self.run.addresses[self._next_block : hi]
            blocks = self.system.read_stripe(addrs)
            if self.free:
                for a in addrs:
                    self.system.free(a)
            parts.extend(b.keys for b in blocks)  # type: ignore[union-attr]
            self._next_block = hi
        self._records_out = self.run.n_records
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)
