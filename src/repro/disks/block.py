"""The unit of transfer: a block of ``B`` contiguous records.

In the Vitter–Shriver D-disk model every I/O moves whole blocks.  For SRM
(paper §4) blocks additionally carry *implanted forecasting keys*:

* the initial block ``b_{r,0}`` of run ``r`` carries the smallest keys
  ``k_{r,0} .. k_{r,D-1}`` of the first ``D`` blocks of the run;
* block ``b_{r,i}`` (``i > 0``) carries the single key ``k_{r,i+D}`` —
  the smallest key of the *next* block of run ``r`` that lives on the
  same disk (cyclic striping places blocks ``i`` and ``i+D`` together).

The forecast payload is a handful of key values, so — as the paper notes
— the space overhead is negligible; we store it out-of-band on the block
object rather than stealing record slots.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import DataError

#: Sentinel forecast key meaning "run has no further block on this disk".
#: Any real key compares smaller, so exhausted chains sort last in the
#: forecasting structure.
NO_KEY: float = float("inf")


@dataclass(slots=True)
class Block:
    """A block of records plus SRM forecasting metadata.

    Parameters
    ----------
    keys:
        The record keys in this block, sorted ascending (sorted-run
        blocks) — at most ``B`` of them.  Records are modelled as their
        int64 keys; every algorithm in the paper depends only on the
        relative order of keys.
    run_id:
        Identifier of the run this block belongs to (or ``-1`` for
        blocks of an unsorted input file).
    index:
        Position of this block within its run (0-based).
    forecast:
        Implanted forecast key(s).  ``()`` for unsorted-file blocks,
        a length-``D`` tuple for a run's initial block, and a length-1
        tuple for every later block (``NO_KEY`` entries mark exhausted
        chains).
    payloads:
        Optional per-record payload handles (int64, aligned with
        ``keys``).  Payloads ride along with their keys through every
        algorithm; the scheduling never inspects them.
    checksum:
        Optional CRC-32 of the block's record bytes, sealed at write
        time when fault injection is active so corrupted transfers are
        detected on read rather than silently merged.  ``None`` means
        unsealed (the fault-free default; verification is skipped).
    """

    keys: np.ndarray
    run_id: int = -1
    index: int = 0
    forecast: tuple[float, ...] = field(default=())
    payloads: np.ndarray | None = None
    checksum: int | None = None

    def __post_init__(self) -> None:
        self.keys = np.asarray(self.keys, dtype=np.int64)
        if self.keys.ndim != 1:
            raise DataError(f"block keys must be 1-D, got shape {self.keys.shape}")
        if self.keys.size == 0:
            raise DataError("a block must contain at least one record")
        if self.payloads is not None:
            self.payloads = np.asarray(self.payloads, dtype=np.int64)
            if self.payloads.shape != self.keys.shape:
                raise DataError(
                    f"payloads shape {self.payloads.shape} does not match "
                    f"keys shape {self.keys.shape}"
                )

    def __len__(self) -> int:
        return int(self.keys.size)

    @property
    def first_key(self) -> int:
        """Smallest key in the block (``k_{r,i}`` in the paper)."""
        return int(self.keys[0])

    @property
    def last_key(self) -> int:
        """Largest key in the block."""
        return int(self.keys[-1])

    def is_sorted(self) -> bool:
        """True if the block's keys are non-decreasing."""
        return bool(np.all(self.keys[:-1] <= self.keys[1:]))

    # -- integrity --------------------------------------------------------

    def compute_checksum(self) -> int:
        """CRC-32 over the record bytes (keys, then payloads if any).

        ``zlib.crc32`` consumes the arrays through the buffer protocol
        (``arr.data``) — no ``tobytes()`` copy per sealed block; only a
        non-contiguous array (never produced by the pipeline, but legal
        input) pays for a contiguous staging copy.
        """
        crc = zlib.crc32(_crc_buffer(self.keys))
        if self.payloads is not None:
            crc = zlib.crc32(_crc_buffer(self.payloads), crc)
        return crc

    def seal(self) -> "Block":
        """Stamp the block with its current checksum; returns ``self``."""
        self.checksum = self.compute_checksum()
        return self

    def verify(self) -> bool:
        """True if the contents match the sealed checksum.

        Unsealed blocks (``checksum is None``) verify trivially — the
        fault-free pipeline never pays for hashing.
        """
        return self.checksum is None or self.compute_checksum() == self.checksum


def _crc_buffer(arr: np.ndarray):
    """A zero-copy C-contiguous buffer over *arr* for ``zlib.crc32``."""
    if arr.flags["C_CONTIGUOUS"]:
        return arr.data
    return np.ascontiguousarray(arr).data


def xor_accumulate(acc: np.ndarray | None, arr: np.ndarray) -> np.ndarray:
    """XOR *arr* into the running parity accumulator *acc*.

    Arrays of different lengths (partial run-tail blocks) are combined
    as if zero-padded to the longer one, which is how a RAID-5 arm
    folds a short member into a full-width parity stripe.  Returns a
    fresh array; neither input is mutated.
    """
    arr = np.asarray(arr, dtype=np.int64)
    if acc is None:
        return arr.copy()
    n = max(acc.size, arr.size)
    out = np.zeros(n, dtype=np.int64)
    out[: acc.size] = acc
    np.bitwise_xor(out[: arr.size], arr, out=out[: arr.size])
    return out


def split_into_blocks(
    keys: np.ndarray,
    block_size: int,
    run_id: int = -1,
    payloads: np.ndarray | None = None,
) -> list[Block]:
    """Cut a key array (and aligned payloads) into ``block_size`` blocks.

    The final block may be partial.  No forecast keys are attached; use
    :func:`attach_forecasts` for sorted runs.
    """
    if block_size < 1:
        raise DataError(f"block_size must be >= 1, got {block_size}")
    keys = np.asarray(keys, dtype=np.int64)
    if payloads is not None:
        payloads = np.asarray(payloads, dtype=np.int64)
        if payloads.shape != keys.shape:
            raise DataError("payloads must align with keys")
    if keys.size == 0:
        return []
    return [
        Block(
            keys=keys[i : i + block_size],
            run_id=run_id,
            index=i // block_size,
            payloads=None if payloads is None else payloads[i : i + block_size],
        )
        for i in range(0, keys.size, block_size)
    ]


def attach_forecasts(blocks: list[Block], n_disks: int) -> list[Block]:
    """Implant forecast keys per the paper's run format (§4).

    Mutates (and returns) *blocks*, which must be the complete ordered
    block list of one sorted run.
    """
    n = len(blocks)
    if n == 0:
        return blocks
    first_keys = [b.first_key for b in blocks]

    def key_of(i: int) -> float:
        return int(first_keys[i]) if i < n else NO_KEY

    blocks[0].forecast = tuple(key_of(j) for j in range(n_disks))
    for i in range(1, n):
        blocks[i].forecast = (key_of(i + n_disks),)
    return blocks
