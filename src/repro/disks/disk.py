"""A single simulated disk: a slot-addressed block store.

Each disk exposes an allocate/write/read/free interface at block
granularity.  Slots model physical block locations; a run's extent map
(:mod:`repro.disks.striping`) records which slot on which disk holds
each of its blocks, the way an inode maps file offsets to disk blocks.

The disk owns *allocation* (free list, capacity); the *storage* of
block contents is delegated to a per-disk store supplied by the
system's :class:`~repro.disks.backends.StorageBackend` — a dict for the
in-memory backend, a slot-record file for the mmap backend.
"""

from __future__ import annotations

from typing import Optional

from ..errors import DiskFullError, InvalidIOError
from .backends.base import BlockStore
from .block import Block


class Disk:
    """One independent disk drive of the parallel disk system.

    Parameters
    ----------
    disk_id:
        Index of this disk within its system (``0 .. D-1``).
    capacity_blocks:
        Optional maximum number of simultaneously live blocks; ``None``
        means unbounded.  Freed slots are recycled.
    store:
        Block store mapping ``slot -> Block`` (see
        :mod:`repro.disks.backends`).  ``None`` uses a plain dict — the
        in-memory behavior.
    """

    __slots__ = ("disk_id", "capacity_blocks", "_slots", "_free", "_next_slot")

    def __init__(
        self,
        disk_id: int,
        capacity_blocks: Optional[int] = None,
        store: BlockStore | None = None,
    ) -> None:
        self.disk_id = disk_id
        self.capacity_blocks = capacity_blocks
        self._slots: BlockStore = {} if store is None else store
        self._free: list[int] = []
        self._next_slot = 0

    # -- allocation -----------------------------------------------------

    def allocate(self) -> int:
        """Reserve a free slot and return its address."""
        if self.capacity_blocks is not None and self.used_blocks >= self.capacity_blocks:
            raise DiskFullError(
                f"disk {self.disk_id} is full ({self.capacity_blocks} blocks)"
            )
        if self._free:
            return self._free.pop()
        slot = self._next_slot
        self._next_slot += 1
        return slot

    def free(self, slot: int) -> None:
        """Release *slot*; its block (if any) is discarded."""
        self._slots.pop(slot, None)
        self._free.append(slot)

    # -- I/O (called by the system, which does the accounting) -----------

    def write(self, slot: int, block: Block) -> None:
        """Store *block* at *slot* (the slot must not hold a live block)."""
        if slot in self._slots:
            raise InvalidIOError(
                f"disk {self.disk_id} slot {slot} already holds a live block"
            )
        self._slots[slot] = block

    def read(self, slot: int) -> Block:
        """Return the block stored at *slot*."""
        try:
            return self._slots[slot]
        except KeyError:
            raise InvalidIOError(
                f"disk {self.disk_id} slot {slot} holds no block"
            ) from None

    def has_block(self, slot: int) -> bool:
        """True if *slot* currently holds a live block."""
        return slot in self._slots

    # -- introspection ----------------------------------------------------

    @property
    def used_blocks(self) -> int:
        """Number of live blocks currently stored."""
        return len(self._slots)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if self.capacity_blocks is None else str(self.capacity_blocks)
        return f"Disk(id={self.disk_id}, used={self.used_blocks}, capacity={cap})"
