"""Per-disk service queues on a shared simulated clock.

The paper's cost model counts synchronized parallel operations; the
overlapped-I/O engine (:mod:`repro.core.events`) instead models each
disk as an independent FIFO server driven by the
:class:`~repro.disks.timing.DiskTimingModel`.  A request submitted at
time ``t`` to a disk that is free at ``f`` starts at ``max(t, f)`` and
completes one service time later — so reads queue behind writes on the
same spindle, stripes touching disjoint disks proceed concurrently, and
the engine's clock advances only when the *computation* actually has to
wait.

This is deliberately the smallest queueing model that makes overlap a
measured quantity: no reordering, no elevator scheduling, one
outstanding request in service per disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from .timing import DiskTimingModel


class ServiceEwma:
    """Per-disk service-time EWMA fed from :class:`DiskService` completions.

    The latency-adaptive scheduler's measurement plane: every accepted
    request folds its *felt* cost — straggler-scaled service time,
    penalties and recovery ops, plus any stall-window wait beyond
    ordinary queueing — into its disk's moving average.  Classification
    is *relative*: a disk is slow when its EWMA exceeds ``threshold``
    times the median EWMA of the disks observed so far, so a uniformly
    slow farm has no stragglers.
    """

    __slots__ = ("alpha", "values", "samples")

    def __init__(self, n_disks: int, alpha: float = 0.35) -> None:
        if n_disks < 1:
            raise ConfigError(f"need at least one disk, got D={n_disks}")
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        #: EWMA per disk; ``None`` until the disk's first completion.
        self.values: list[float | None] = [None] * n_disks
        self.samples = [0] * n_disks

    def observe(self, disk: int, service_ms: float) -> None:
        """Fold one completed request's service time into *disk*'s EWMA."""
        prev = self.values[disk]
        if prev is None:
            self.values[disk] = service_ms
        else:
            self.values[disk] = prev + self.alpha * (service_ms - prev)
        self.samples[disk] += 1

    def value(self, disk: int) -> float | None:
        """Current EWMA of *disk* (``None`` before its first sample)."""
        return self.values[disk]

    def cost(self, disk: int) -> float:
        """Re-read cost estimate for *disk*: its EWMA, 0.0 if unseen.

        Unseen disks rank cheapest — with no evidence against a disk
        the adaptive policy treats it like the homogeneous default.
        """
        v = self.values[disk]
        return v if v is not None else 0.0

    def median(self) -> float:
        """Median EWMA over the disks observed so far (0.0 if none)."""
        seen = sorted(v for v in self.values if v is not None)
        if not seen:
            return 0.0
        mid = len(seen) // 2
        if len(seen) % 2:
            return seen[mid]
        return 0.5 * (seen[mid - 1] + seen[mid])

    def slow_disks(self, threshold: float) -> tuple[int, ...]:
        """Disks whose EWMA exceeds ``threshold`` x the observed median.

        Empty until at least two disks have completions: a single
        sampled disk has no peer group to straggle behind.
        """
        if sum(1 for v in self.values if v is not None) < 2:
            return ()
        med = self.median()
        if med <= 0.0:
            return ()
        cut = threshold * med
        return tuple(
            d for d, v in enumerate(self.values) if v is not None and v > cut
        )


@dataclass
class DiskService:
    """One disk's FIFO request queue.

    Attributes
    ----------
    free_at:
        Simulated time at which the disk finishes its last accepted
        request (0.0 when idle since the start).
    busy_ms:
        Total time spent servicing requests.
    ops:
        Requests accepted.
    """

    free_at: float = 0.0
    busy_ms: float = 0.0
    ops: int = 0
    #: Summed gaps during which the disk sat idle between requests —
    #: the per-spindle complement of ``busy_ms`` that the telemetry
    #: layer reports as the overlap engine's idle-gap signal.
    idle_ms: float = 0.0
    #: Completion time of the last request, or ``None`` before the first
    #: request arrives.  Tracked separately from ``free_at`` so the time
    #: before a disk's first request is never attributed as an
    #: inter-request idle gap (``free_at`` starts at 0.0 either way).
    last_complete: float | None = None

    def submit(
        self, issue_ms: float, service_ms: float, not_before: float = 0.0
    ) -> float:
        """Accept a request at *issue_ms*; return its completion time.

        *not_before* floors the service start (a fault-plan stall window
        holds the head off the platter until the window ends).
        """
        start = max(issue_ms, self.free_at, not_before)
        if self.last_complete is not None:
            self.idle_ms += start - self.last_complete
        complete = start + service_ms
        self.free_at = complete
        self.last_complete = complete
        self.busy_ms += service_ms
        self.ops += 1
        return complete

    def utilization(self, makespan_ms: float) -> float:
        """Busy fraction of this disk over *makespan_ms*.

        A zero or negative makespan (empty merge, stall-only timeline
        that never served a request) yields 0.0 rather than a division
        error — the same degenerate-case rule the trace attribution
        applies to its lane utilizations.
        """
        if makespan_ms <= 0.0:
            return 0.0
        return self.busy_ms / makespan_ms


@dataclass
class ServiceNetwork:
    """``D`` independent disk queues with read/write accounting.

    Parameters
    ----------
    n_disks:
        Number of disk servers.
    timing:
        Service-time model; every block request costs
        ``timing.op_time_ms(block_size)``.
    block_size:
        Records per block (service times assume full blocks, like the
        rest of the timing layer).
    faults:
        Optional :class:`~repro.faults.plan.FaultInjector`.  When set,
        each request's service time is scaled by the disk's straggler
        latency factor, stall windows floor the service start, and
        retry/backoff penalties accumulated by the synchronous data
        path are drained into the affected disk's queue — so the
        overlap engine's simulated clock feels the same faults the
        block layer injected.
    """

    n_disks: int
    timing: DiskTimingModel
    block_size: int
    disks: list[DiskService] = field(default_factory=list)
    read_busy_ms: float = 0.0
    write_busy_ms: float = 0.0
    read_ops: int = 0
    write_ops: int = 0
    faults: object | None = None
    #: Optional :class:`~repro.telemetry.trace.NetTracer`.  When armed,
    #: every accepted request emits causal trace records (op body,
    #: fault-stall window, recovery tail) with binding predecessors.
    tracer: object | None = None
    #: Optional :class:`ServiceEwma`.  When armed (by the engine's
    #: latency-adaptive mode), every accepted request feeds its service
    #: time into the per-disk moving average.  Pure measurement — the
    #: queueing behavior is identical with or without it.
    ewma: ServiceEwma | None = None

    def __post_init__(self) -> None:
        if self.n_disks < 1:
            raise ConfigError(f"need at least one disk, got D={self.n_disks}")
        if self.block_size < 1:
            raise ConfigError(f"block size must be >= 1, got B={self.block_size}")
        if not self.disks:
            self.disks = [DiskService() for _ in range(self.n_disks)]

    def submit(
        self, disk_ids: list[int], issue_ms: float, kind: str = "read"
    ) -> list[float]:
        """Submit one block request per disk in *disk_ids* at *issue_ms*.

        Returns the per-disk completion times, positionally matching
        *disk_ids*.  Disks not listed stay untouched (they idle or keep
        draining their queues).
        """
        base = self.timing.op_time_ms(self.block_size)
        inj = self.faults
        tracer = self.tracer
        if tracer is not None:
            tracer.begin_batch()
        completes = []
        busy = 0.0
        for d in disk_ids:
            service = base
            core = base
            not_before = 0.0
            if inj is not None:
                service = service * inj.latency_factor(d)
                core = service  # the data op itself (straggler-scaled)
                service += inj.take_penalty_ms(d)
                # Charged recovery block-ops (parity reconstruction
                # reads, rebuild and repair writes) queue as extra
                # whole-block service on the spindle that did the work.
                service += base * inj.take_recovery_ops(d)
                candidate = max(issue_ms, self.disks[d].free_at)
                not_before = inj.stall_release(d, candidate)
            free_at = self.disks[d].free_at
            completes.append(self.disks[d].submit(issue_ms, service, not_before))
            if self.ewma is not None:
                # Observe the *felt* cost: service plus any stall-window
                # wait beyond ordinary queueing (completion minus the
                # time the disk could have started absent faults).  A
                # straggler folds in as service * factor; a disk under
                # repeated stall windows measures slow too, even though
                # its raw service time is nominal.
                self.ewma.observe(d, completes[-1] - max(issue_ms, free_at))
            if tracer is not None:
                tracer.disk_op(
                    d, kind, issue_ms, free_at, not_before,
                    core, service, completes[-1],
                )
            busy += service
        if kind == "write":
            self.write_busy_ms += busy
            self.write_ops += 1
        else:
            self.read_busy_ms += busy
            self.read_ops += 1
        return completes

    @property
    def busy_ms(self) -> float:
        """Total service time across all disks."""
        return self.read_busy_ms + self.write_busy_ms

    @property
    def latest_completion_ms(self) -> float:
        """Time the last-finishing disk goes idle."""
        return max((d.free_at for d in self.disks), default=0.0)

    def drained_completion_ms(self) -> float:
        """Completion time after flushing residual fault penalties.

        Recovery ops (and backoff penalties) accumulated *after* a
        disk's last data request would otherwise evaporate; appending
        them to the affected queues keeps an end-of-run rebuild or
        output scrub visible in the makespan.
        """
        inj = self.faults
        if inj is not None:
            base = self.timing.op_time_ms(self.block_size)
            for d, srv in enumerate(self.disks):
                residual = base * inj.take_recovery_ops(d)
                residual += inj.take_penalty_ms(d)
                if residual > 0.0:
                    free_at = srv.free_at
                    complete = srv.submit(free_at, residual)
                    if self.tracer is not None:
                        self.tracer.residual(d, free_at, complete)
        return self.latest_completion_ms

    def per_disk_summary(self, makespan_ms: float | None = None) -> list[dict]:
        """Per-disk ``{busy_ms, idle_ms, ops}`` for telemetry events.

        ``idle_ms`` counts only inter-request gaps; trailing idleness up
        to the makespan is the caller's to account (it depends on when
        the merge as a whole finishes).  When *makespan_ms* is given,
        each entry also carries the disk's busy fraction (zero-guarded,
        so a stall-only or empty timeline reports 0.0) and — if the EWMA
        plane is armed — its current service-time estimate.
        """
        out = []
        for d in range(self.n_disks):
            srv = self.disks[d]
            entry: dict = {
                "busy_ms": srv.busy_ms, "idle_ms": srv.idle_ms, "ops": srv.ops,
            }
            if makespan_ms is not None:
                entry["utilization"] = srv.utilization(makespan_ms)
            if self.ewma is not None:
                entry["ewma_ms"] = self.ewma.value(d)
            out.append(entry)
        return out

    def utilization(self, makespan_ms: float) -> float:
        """Mean per-disk busy fraction over *makespan_ms*."""
        if makespan_ms <= 0.0:
            return 0.0
        return self.busy_ms / (self.n_disks * makespan_ms)
