"""Per-disk service queues on a shared simulated clock.

The paper's cost model counts synchronized parallel operations; the
overlapped-I/O engine (:mod:`repro.core.events`) instead models each
disk as an independent FIFO server driven by the
:class:`~repro.disks.timing.DiskTimingModel`.  A request submitted at
time ``t`` to a disk that is free at ``f`` starts at ``max(t, f)`` and
completes one service time later — so reads queue behind writes on the
same spindle, stripes touching disjoint disks proceed concurrently, and
the engine's clock advances only when the *computation* actually has to
wait.

This is deliberately the smallest queueing model that makes overlap a
measured quantity: no reordering, no elevator scheduling, one
outstanding request in service per disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from .timing import DiskTimingModel


@dataclass
class DiskService:
    """One disk's FIFO request queue.

    Attributes
    ----------
    free_at:
        Simulated time at which the disk finishes its last accepted
        request (0.0 when idle since the start).
    busy_ms:
        Total time spent servicing requests.
    ops:
        Requests accepted.
    """

    free_at: float = 0.0
    busy_ms: float = 0.0
    ops: int = 0
    #: Summed gaps during which the disk sat idle between requests —
    #: the per-spindle complement of ``busy_ms`` that the telemetry
    #: layer reports as the overlap engine's idle-gap signal.
    idle_ms: float = 0.0
    #: Completion time of the last request, or ``None`` before the first
    #: request arrives.  Tracked separately from ``free_at`` so the time
    #: before a disk's first request is never attributed as an
    #: inter-request idle gap (``free_at`` starts at 0.0 either way).
    last_complete: float | None = None

    def submit(
        self, issue_ms: float, service_ms: float, not_before: float = 0.0
    ) -> float:
        """Accept a request at *issue_ms*; return its completion time.

        *not_before* floors the service start (a fault-plan stall window
        holds the head off the platter until the window ends).
        """
        start = max(issue_ms, self.free_at, not_before)
        if self.last_complete is not None:
            self.idle_ms += start - self.last_complete
        complete = start + service_ms
        self.free_at = complete
        self.last_complete = complete
        self.busy_ms += service_ms
        self.ops += 1
        return complete


@dataclass
class ServiceNetwork:
    """``D`` independent disk queues with read/write accounting.

    Parameters
    ----------
    n_disks:
        Number of disk servers.
    timing:
        Service-time model; every block request costs
        ``timing.op_time_ms(block_size)``.
    block_size:
        Records per block (service times assume full blocks, like the
        rest of the timing layer).
    faults:
        Optional :class:`~repro.faults.plan.FaultInjector`.  When set,
        each request's service time is scaled by the disk's straggler
        latency factor, stall windows floor the service start, and
        retry/backoff penalties accumulated by the synchronous data
        path are drained into the affected disk's queue — so the
        overlap engine's simulated clock feels the same faults the
        block layer injected.
    """

    n_disks: int
    timing: DiskTimingModel
    block_size: int
    disks: list[DiskService] = field(default_factory=list)
    read_busy_ms: float = 0.0
    write_busy_ms: float = 0.0
    read_ops: int = 0
    write_ops: int = 0
    faults: object | None = None
    #: Optional :class:`~repro.telemetry.trace.NetTracer`.  When armed,
    #: every accepted request emits causal trace records (op body,
    #: fault-stall window, recovery tail) with binding predecessors.
    tracer: object | None = None

    def __post_init__(self) -> None:
        if self.n_disks < 1:
            raise ConfigError(f"need at least one disk, got D={self.n_disks}")
        if self.block_size < 1:
            raise ConfigError(f"block size must be >= 1, got B={self.block_size}")
        if not self.disks:
            self.disks = [DiskService() for _ in range(self.n_disks)]

    def submit(
        self, disk_ids: list[int], issue_ms: float, kind: str = "read"
    ) -> list[float]:
        """Submit one block request per disk in *disk_ids* at *issue_ms*.

        Returns the per-disk completion times, positionally matching
        *disk_ids*.  Disks not listed stay untouched (they idle or keep
        draining their queues).
        """
        base = self.timing.op_time_ms(self.block_size)
        inj = self.faults
        tracer = self.tracer
        if tracer is not None:
            tracer.begin_batch()
        completes = []
        busy = 0.0
        for d in disk_ids:
            service = base
            core = base
            not_before = 0.0
            if inj is not None:
                service = service * inj.latency_factor(d)
                core = service  # the data op itself (straggler-scaled)
                service += inj.take_penalty_ms(d)
                # Charged recovery block-ops (parity reconstruction
                # reads, rebuild and repair writes) queue as extra
                # whole-block service on the spindle that did the work.
                service += base * inj.take_recovery_ops(d)
                candidate = max(issue_ms, self.disks[d].free_at)
                not_before = inj.stall_release(d, candidate)
            free_at = self.disks[d].free_at
            completes.append(self.disks[d].submit(issue_ms, service, not_before))
            if tracer is not None:
                tracer.disk_op(
                    d, kind, issue_ms, free_at, not_before,
                    core, service, completes[-1],
                )
            busy += service
        if kind == "write":
            self.write_busy_ms += busy
            self.write_ops += 1
        else:
            self.read_busy_ms += busy
            self.read_ops += 1
        return completes

    @property
    def busy_ms(self) -> float:
        """Total service time across all disks."""
        return self.read_busy_ms + self.write_busy_ms

    @property
    def latest_completion_ms(self) -> float:
        """Time the last-finishing disk goes idle."""
        return max((d.free_at for d in self.disks), default=0.0)

    def drained_completion_ms(self) -> float:
        """Completion time after flushing residual fault penalties.

        Recovery ops (and backoff penalties) accumulated *after* a
        disk's last data request would otherwise evaporate; appending
        them to the affected queues keeps an end-of-run rebuild or
        output scrub visible in the makespan.
        """
        inj = self.faults
        if inj is not None:
            base = self.timing.op_time_ms(self.block_size)
            for d, srv in enumerate(self.disks):
                residual = base * inj.take_recovery_ops(d)
                residual += inj.take_penalty_ms(d)
                if residual > 0.0:
                    free_at = srv.free_at
                    complete = srv.submit(free_at, residual)
                    if self.tracer is not None:
                        self.tracer.residual(d, free_at, complete)
        return self.latest_completion_ms

    def per_disk_summary(self) -> list[dict]:
        """Per-disk ``{busy_ms, idle_ms, ops}`` for telemetry events.

        ``idle_ms`` counts only inter-request gaps; trailing idleness up
        to the makespan is the caller's to account (it depends on when
        the merge as a whole finishes).
        """
        return [
            {"busy_ms": d.busy_ms, "idle_ms": d.idle_ms, "ops": d.ops}
            for d in self.disks
        ]

    def utilization(self, makespan_ms: float) -> float:
        """Mean per-disk busy fraction over *makespan_ms*."""
        if makespan_ms <= 0.0:
            return 0.0
        return self.busy_ms / (self.n_disks * makespan_ms)
