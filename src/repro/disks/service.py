"""Per-disk service queues on a shared simulated clock.

The paper's cost model counts synchronized parallel operations; the
overlapped-I/O engine (:mod:`repro.core.events`) instead models each
disk as an independent FIFO server driven by the
:class:`~repro.disks.timing.DiskTimingModel`.  A request submitted at
time ``t`` to a disk that is free at ``f`` starts at ``max(t, f)`` and
completes one service time later — so reads queue behind writes on the
same spindle, stripes touching disjoint disks proceed concurrently, and
the engine's clock advances only when the *computation* actually has to
wait.

This is deliberately the smallest queueing model that makes overlap a
measured quantity: no reordering, no elevator scheduling, one
outstanding request in service per disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from .timing import DiskTimingModel


@dataclass
class DiskService:
    """One disk's FIFO request queue.

    Attributes
    ----------
    free_at:
        Simulated time at which the disk finishes its last accepted
        request (0.0 when idle since the start).
    busy_ms:
        Total time spent servicing requests.
    ops:
        Requests accepted.
    """

    free_at: float = 0.0
    busy_ms: float = 0.0
    ops: int = 0
    #: Summed gaps during which the disk sat idle between requests —
    #: the per-spindle complement of ``busy_ms`` that the telemetry
    #: layer reports as the overlap engine's idle-gap signal.
    idle_ms: float = 0.0

    def submit(self, issue_ms: float, service_ms: float) -> float:
        """Accept a request at *issue_ms*; return its completion time."""
        start = max(issue_ms, self.free_at)
        self.idle_ms += start - self.free_at
        complete = start + service_ms
        self.free_at = complete
        self.busy_ms += service_ms
        self.ops += 1
        return complete


@dataclass
class ServiceNetwork:
    """``D`` independent disk queues with read/write accounting.

    Parameters
    ----------
    n_disks:
        Number of disk servers.
    timing:
        Service-time model; every block request costs
        ``timing.op_time_ms(block_size)``.
    block_size:
        Records per block (service times assume full blocks, like the
        rest of the timing layer).
    """

    n_disks: int
    timing: DiskTimingModel
    block_size: int
    disks: list[DiskService] = field(default_factory=list)
    read_busy_ms: float = 0.0
    write_busy_ms: float = 0.0
    read_ops: int = 0
    write_ops: int = 0

    def __post_init__(self) -> None:
        if self.n_disks < 1:
            raise ConfigError(f"need at least one disk, got D={self.n_disks}")
        if self.block_size < 1:
            raise ConfigError(f"block size must be >= 1, got B={self.block_size}")
        if not self.disks:
            self.disks = [DiskService() for _ in range(self.n_disks)]

    def submit(
        self, disk_ids: list[int], issue_ms: float, kind: str = "read"
    ) -> list[float]:
        """Submit one block request per disk in *disk_ids* at *issue_ms*.

        Returns the per-disk completion times, positionally matching
        *disk_ids*.  Disks not listed stay untouched (they idle or keep
        draining their queues).
        """
        service = self.timing.op_time_ms(self.block_size)
        completes = [self.disks[d].submit(issue_ms, service) for d in disk_ids]
        if kind == "write":
            self.write_busy_ms += service * len(disk_ids)
            self.write_ops += 1
        else:
            self.read_busy_ms += service * len(disk_ids)
            self.read_ops += 1
        return completes

    @property
    def busy_ms(self) -> float:
        """Total service time across all disks."""
        return self.read_busy_ms + self.write_busy_ms

    @property
    def latest_completion_ms(self) -> float:
        """Time the last-finishing disk goes idle."""
        return max((d.free_at for d in self.disks), default=0.0)

    def per_disk_summary(self) -> list[dict]:
        """Per-disk ``{busy_ms, idle_ms, ops}`` for telemetry events.

        ``idle_ms`` counts only inter-request gaps; trailing idleness up
        to the makespan is the caller's to account (it depends on when
        the merge as a whole finishes).
        """
        return [
            {"busy_ms": d.busy_ms, "idle_ms": d.idle_ms, "ops": d.ops}
            for d in self.disks
        ]

    def utilization(self, makespan_ms: float) -> float:
        """Mean per-disk busy fraction over *makespan_ms*."""
        if makespan_ms <= 0.0:
            return 0.0
        return self.busy_ms / (self.n_disks * makespan_ms)
