"""Cyclic striping arithmetic (paper §3).

SRM stores run ``r`` with its 0th block on disk ``d_r`` and block ``i``
on disk ``(i + d_r) mod D``.  Because an output run is written this way
with full write parallelism, it can be consumed as an input run by the
next merge pass with no transposition — the key structural advantage
over the Pai–Schaffer–Varman layout.

DSM instead uses *synchronized* striping: logical superblock ``j`` is
the set of blocks at the same slot ``j`` on all ``D`` disks, giving the
logical effect of one disk with block size ``D·B``.
"""

from __future__ import annotations

from ..errors import ConfigError


def cyclic_disk(start_disk: int, block_index: int, n_disks: int) -> int:
    """Disk holding block *block_index* of a run starting on *start_disk*."""
    if not 0 <= start_disk < n_disks:
        raise ConfigError(
            f"start disk {start_disk} out of range for D={n_disks}"
        )
    return (start_disk + block_index) % n_disks


def chain_start_index(start_disk: int, disk: int, n_disks: int) -> int:
    """Index of the first block of the run that lives on *disk*.

    Blocks of the run on *disk* form the *chain*
    ``i0, i0 + D, i0 + 2D, ...`` with ``i0`` the returned value.  The
    chain view is what the forecasting structure tracks and what the
    dependent occupancy problem (§7.1) abstracts.
    """
    return (disk - start_disk) % n_disks


def chain_position_to_block(
    start_disk: int, disk: int, position: int, n_disks: int
) -> int:
    """Block index of the chain element at *position* on *disk*."""
    return chain_start_index(start_disk, disk, n_disks) + position * n_disks


def chain_length(
    start_disk: int, disk: int, n_blocks: int, n_disks: int
) -> int:
    """Number of blocks of an ``n_blocks``-long run stored on *disk*."""
    i0 = chain_start_index(start_disk, disk, n_disks)
    if i0 >= n_blocks:
        return 0
    return 1 + (n_blocks - 1 - i0) // n_disks


def blocks_per_disk(start_disk: int, n_blocks: int, n_disks: int) -> list[int]:
    """Chain length on every disk — the occupancy contribution of one run."""
    return [chain_length(start_disk, d, n_blocks, n_disks) for d in range(n_disks)]
