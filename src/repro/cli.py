"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro table1 [--trials N] [--seed S]
    python -m repro table2 [--paper-v | --trials N]
    python -m repro table3 [--blocks-per-run L] [--block-size B] [--full]
    python -m repro table4 [--blocks-per-run L] [--block-size B]
    python -m repro figure1
    python -m repro sort --n 100000 --disks 4 --block 64 --k 4 [--dsm]
    python -m repro sort --telemetry run.jsonl
    python -m repro sort --trace run.jsonl [--overlap full]
    python -m repro cluster-sort --n 100000 --nodes 4 [--check] [--lose-node 1]
    python -m repro inspect run.jsonl [--check] [--attribution]
    python -m repro trace run.jsonl [--out run.trace.json]
    python -m repro bench [--quick] [--out BENCH_sort_throughput.json]
    python -m repro chaos [--quick] [--check] [--out chaos.jsonl]
    python -m repro cliff [--quick] [--check] [--out cliff_grid.jsonl]
    python -m repro demo

``--full`` switches Table 3/4 to paper-scale run lengths (slow).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from .analysis import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    figure1,
    render_comparison,
    table1,
    table2,
    table3,
    table4,
)
from .core import (
    OVERLAP_MODES,
    DSMConfig,
    LayoutStrategy,
    OverlapConfig,
    SRMConfig,
    srm_sort,
)
from .baselines import dsm_sort
from .telemetry import RunReport, Telemetry
from .workloads import uniform_permutation

#: Paper-scale Table 3 run length (blocks per run).
FULL_BLOCKS_PER_RUN = 1000


def _cmd_table1(args: argparse.Namespace) -> int:
    grid = table1(n_trials=args.trials, rng=args.seed)
    print(render_comparison(PAPER_TABLE1, grid))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    v = PAPER_TABLE1 if args.paper_v else table1(n_trials=args.trials, rng=args.seed)
    grid = table2(v)
    print(render_comparison(PAPER_TABLE2, grid))
    return 0


def _table3_grid(args: argparse.Namespace):
    blocks = FULL_BLOCKS_PER_RUN if args.full else args.blocks_per_run
    return table3(
        blocks_per_run=blocks,
        block_size=args.block_size,
        n_trials=args.trials,
        rng=args.seed,
    )


def _cmd_table3(args: argparse.Namespace) -> int:
    grid = _table3_grid(args)
    print(render_comparison(PAPER_TABLE3, grid))
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    grid = table4(_table3_grid(args))
    print(render_comparison(PAPER_TABLE4, grid))
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    f = figure1()
    print("Figure 1 reproduction (N_b = 12 balls, C = 5 chains, D = 4 bins)")
    print(f"  (a) dependent instance occupancies: {[int(x) for x in f.dependent_instance]}"
          f"  -> max {int(f.dependent_instance.max())} in bin 2")
    print(f"  (b) classical instance occupancies: {[int(x) for x in f.classical_instance]}"
          f"  -> max {int(f.classical_instance.max())} in bin 2")
    print(f"  exact E[max] dependent = {f.dependent_expected_max:.4f}")
    print(f"  exact E[max] classical = {f.classical_expected_max:.4f}")
    print(f"  §7.2 conjecture (dependent <= classical): "
          f"{'holds' if f.conjecture_holds else 'VIOLATED'}")
    return 0


def _cmd_sort(args: argparse.Namespace) -> int:
    keys = uniform_permutation(args.n, rng=args.seed)
    backend = args.backend
    if args.workdir is not None:
        if backend != "mmap":
            print("error: --workdir requires --backend mmap", file=sys.stderr)
            return 2
        backend = f"mmap:{args.workdir}"
    if args.workers > 1 and args.backend != "mmap":
        print("error: --workers > 1 requires --backend mmap "
              "(worker processes share the backend's disk files)",
              file=sys.stderr)
        return 2
    merge_workers = args.workers if args.workers > 1 else None
    overlap = None
    if args.overlap is not None:
        overlap = OverlapConfig(
            mode=args.overlap,
            prefetch_depth=args.prefetch_depth,
            cpu_us_per_record=args.cpu_us,
        )
    telemetry = None
    if args.telemetry is not None or args.trace is not None:
        telemetry = Telemetry(
            algo="dsm" if args.dsm else "srm",
            n_records=args.n,
            n_disks=args.disks,
            block_size=args.block,
            seed=args.seed,
        )
        if args.trace is not None:
            telemetry.attach_trace()
    t0 = time.perf_counter()
    if args.dsm:
        cfg = DSMConfig.matching_srm(
            SRMConfig.from_k(args.k, args.disks, args.block)
        )
        out, res = dsm_sort(keys, cfg, telemetry=telemetry, backend=backend)
        name = "DSM"
    else:
        cfg = SRMConfig.from_k(args.k, args.disks, args.block)
        out, res = srm_sort(
            keys, cfg, rng=args.seed, overlap=overlap, telemetry=telemetry,
            backend=backend, merge_workers=merge_workers,
        )
        name = "SRM"
    dt = time.perf_counter() - t0
    if telemetry is not None:
        telemetry.set_meta(merge_order=cfg.merge_order)
        telemetry.finish()
        for path in {args.telemetry, args.trace} - {None}:
            telemetry.write_jsonl(path)
    ok = bool(np.array_equal(out, np.sort(keys)))
    print(f"{name}: sorted {args.n} records on D={args.disks}, B={args.block}, "
          f"R={cfg.merge_order} in {dt:.2f}s  (correct: {ok})")
    print(f"  runs formed: {res.runs_formed}, merge passes: {res.n_merge_passes}")
    print(f"  parallel I/Os: {res.io.parallel_ios} "
          f"(reads {res.io.parallel_reads}, writes {res.io.parallel_writes})")
    print(f"  read efficiency: {res.io.read_efficiency:.3f}, "
          f"write efficiency: {res.io.write_efficiency:.3f}")
    if backend is not None and backend != "memory":
        bs = res.system.backend.stats()
        print(f"  backend: {bs['kind']} at {bs.get('workdir')} — "
              f"{bs.get('file_bytes', 0) / 1e6:.1f} MB of slot files, "
              f"{bs.get('blocks_written', 0)} blocks written, "
              f"{bs.get('blocks_read', 0)} read"
              + (f", merge workers: {args.workers}" if merge_workers else ""))
    if args.trace is not None and telemetry is not None:
        col = telemetry.trace
        print(f"  trace: {col.emitted} records emitted "
              f"({col.dropped} dropped) -> {args.trace}")
        print(f"  render: repro trace {args.trace}   "
              f"attribute: repro inspect {args.trace} --attribution")
    if overlap is not None and not args.dsm and res.overlap_reports:
        stall = sum(r.cpu_stall_ms for r in res.overlap_reports)
        eager = sum(r.eager_reads for r in res.overlap_reports)
        demand = sum(r.demand_reads for r in res.overlap_reports)
        util = float(np.mean([r.disk_utilization for r in res.overlap_reports]))
        print(f"  overlap engine ({overlap.mode}, depth {overlap.prefetch_depth}): "
              f"simulated merge wall-clock {res.simulated_merge_ms:.0f} ms")
        print(f"    cpu stall {stall:.0f} ms, eager reads {eager}, "
              f"demand reads {demand}, mean disk utilization {util:.2f}")
    return 0 if ok else 1


def _cmd_cluster_sort(args: argparse.Namespace) -> int:
    from .cluster import ClusterConfig, NodeLoss, cluster_sort
    from .verify import check_cluster_shards
    from .workloads import zipf_keys

    if args.workload == "zipf":
        keys = zipf_keys(args.n, alpha=1.2, n_distinct=max(2, args.n // 100),
                         rng=args.seed)
    else:
        keys = uniform_permutation(args.n, rng=args.seed)
    cfg = SRMConfig.from_k(args.k, args.disks, args.block)
    cluster = ClusterConfig(n_nodes=args.nodes, oversample=args.oversample)
    loss = None
    if args.lose_node is not None:
        loss = NodeLoss(node=args.lose_node, after_round=args.lose_after_round)
    telemetry = None
    if args.telemetry is not None or args.trace is not None:
        telemetry = Telemetry(
            algo="cluster",
            n_records=args.n,
            n_nodes=args.nodes,
            n_disks=args.disks,
            block_size=args.block,
            seed=args.seed,
        )
        if args.trace is not None:
            telemetry.attach_trace()
    backend = args.backend
    if args.workdir is not None:
        if backend != "mmap":
            print("error: --workdir requires --backend mmap", file=sys.stderr)
            return 2
        backend = f"mmap:{args.workdir}"
    t0 = time.perf_counter()
    out, res = cluster_sort(
        keys, cluster, cfg, rng=args.seed, telemetry=telemetry, node_loss=loss,
        backend=backend,
    )
    dt = time.perf_counter() - t0
    if telemetry is not None:
        telemetry.set_meta(merge_order=cfg.merge_order)
        telemetry.finish()
        for path in {args.telemetry, args.trace} - {None}:
            telemetry.write_jsonl(path)
    ok = bool(np.array_equal(out, np.sort(keys)))
    ex = res.exchange
    print(f"cluster: sorted {args.n} records on P={args.nodes} nodes "
          f"(D={args.disks}, B={args.block}, R={cfg.merge_order}) "
          f"in {dt:.2f}s  (correct: {ok})")
    print(f"  shards: {res.shard_sizes}  partition skew: "
          f"{res.partition_skew:.3f}")
    print(f"  exchange: {ex.rounds} rounds, {ex.blocks_crossed} blocks "
          f"crossed links ({ex.self_blocks} stayed local), "
          f"link time {ex.link_ms:.1f} ms")
    if ex.node_losses:
        print(f"  node losses: {ex.node_losses} "
              f"({ex.rebuild_blocks_resent} blocks re-sent, "
              f"{ex.rebuild_read_ios} recovery reads charged)")
    print(f"  parallel I/Os: {res.total_parallel_ios} total, "
          f"{res.max_node_parallel_ios} on the busiest node")
    phases = ", ".join(
        f"{k} {v:.0f}" for k, v in res.makespan_breakdown.items()
    )
    print(f"  makespan: {res.makespan_ms:.0f} ms ({phases})")
    if args.trace is not None and telemetry is not None:
        col = telemetry.trace
        print(f"  trace: {col.emitted} records emitted "
              f"({col.dropped} dropped) -> {args.trace}")
    if args.check:
        from .errors import DataError

        try:
            check_cluster_shards(res)
        except DataError as exc:
            print(f"\ncluster check FAILED: {exc}", file=sys.stderr)
            return 1
        if not ok:
            print("\ncluster check FAILED: output is not sorted(input)",
                  file=sys.stderr)
            return 1
        print("\ncluster check passed (shards valid, globally ordered)")
    return 0 if ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .telemetry import load_events
    from .telemetry.trace import trace_events_from_stream, write_chrome_trace

    events = load_events(args.input)
    recs, sums = trace_events_from_stream(events)
    if not recs and not sums:
        print("error: no trace records in stream "
              "(capture one with sort --trace)", file=sys.stderr)
        return 1
    out = args.out
    if out is None:
        stem = args.input[:-6] if args.input.endswith(".jsonl") else args.input
        out = stem + ".trace.json"
    doc = write_chrome_trace(out, events)
    doms = doc["otherData"]["domains"]
    print(f"wrote {out}: {len(recs)} trace records, {len(doms)} domains, "
          f"{len(doc['traceEvents'])} Chrome trace events")
    for dom, info in sorted(doms.items()):
        tag = "exact" if info["exact"] else "inexact"
        print(f"  {dom}: makespan {info['makespan_ms']:.3f} ms [{tag}]")
    dropped = doc["otherData"].get("dropped", 0)
    if dropped:
        print(f"  WARNING: ring overflow dropped {dropped} records")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    report = RunReport.from_jsonl(args.trace)
    print(report.render())
    if args.attribution:
        print()
        print(report.render_attribution())
    if args.check:
        failures = report.check()
        if failures:
            print("\ncheck FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\ncheck passed")
    return 0


def _cmd_records(args: argparse.Namespace) -> int:
    from .sorting import external_sort_records

    rng = np.random.default_rng(args.seed)
    keys = rng.integers(0, max(2, args.n // 8), size=args.n)  # duplicates
    rows = np.arange(args.n)
    out_k, out_p, stats = external_sort_records(
        keys, rows, memory_records=args.memory, n_disks=args.disks,
        block_size=args.block, rng=args.seed,
    )
    stable = bool(np.array_equal(out_p, np.argsort(keys, kind="stable")))
    print(f"sorted {stats.n_records} (key, payload) records: "
          f"R={stats.merge_order}, {stats.merge_passes} passes, "
          f"{stats.parallel_ios} parallel I/Os")
    print(f"  payloads follow keys: "
          f"{bool(np.array_equal(keys[out_p], out_k))}")
    print(f"  stable (ties keep input order): {stable}")
    return 0 if stable else 1


def _cmd_bounds(args: argparse.Namespace) -> int:
    from .occupancy import (
        classical_expected_max_lower_bound,
        expected_max_occupancy,
        gf_expected_max_bound,
    )

    print("Occupancy C(kD, D)/k: lower bound <= Monte-Carlo <= GF upper bound")
    print(f"{'k':>6} {'D':>6} {'lower':>8} {'MC':>8} {'upper':>8}")
    for k, d in [(5, 5), (5, 50), (20, 50), (100, 50), (100, 1000)]:
        mc = expected_max_occupancy(k * d, d, n_trials=args.trials, rng=args.seed).mean / k
        lo = classical_expected_max_lower_bound(k * d, d) / k
        hi = gf_expected_max_bound(k * d, d) / k
        print(f"{k:>6} {d:>6} {lo:>8.3f} {mc:>8.3f} {hi:>8.3f}")
    return 0


def _cmd_reproduce_all(args: argparse.Namespace) -> int:
    from .experiments import run_all_experiments

    blocks = FULL_BLOCKS_PER_RUN if args.full else args.blocks_per_run
    report = run_all_experiments(
        out_dir=args.out,
        rng=args.seed,
        occupancy_trials=args.trials,
        blocks_per_run=blocks,
    )
    for o in report.outcomes:
        print(o.report)
        print()
    print(report.summary())
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    print("SRM vs DSM on the same memory and data (N = 200_000, D = 8, B = 32):\n")
    keys = uniform_permutation(200_000, rng=0)
    srm_cfg = SRMConfig.from_k(4, 8, 32)
    dsm_cfg = DSMConfig.matching_srm(srm_cfg)
    run_length = srm_cfg.memory_records
    srm_out, srm_res = srm_sort(keys, srm_cfg, rng=1, run_length=run_length)
    dsm_out, dsm_res = dsm_sort(keys, dsm_cfg, run_length=run_length)
    assert np.array_equal(srm_out, dsm_out)
    print(f"  SRM (R={srm_cfg.merge_order}): passes={srm_res.n_merge_passes}, "
          f"I/Os={srm_res.io.parallel_ios}")
    print(f"  DSM (R={dsm_cfg.merge_order}): passes={dsm_res.n_merge_passes}, "
          f"I/Os={dsm_res.io.parallel_ios}")
    ratio = srm_res.io.parallel_ios / dsm_res.io.parallel_ios
    print(f"  I/O ratio SRM/DSM = {ratio:.2f}  (paper Table 4 regime: < 1)")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import run_chaos

    report = run_chaos(
        n_records=args.n,
        n_disks=args.disks,
        k=args.k,
        block_size=args.block,
        seed=args.seed,
        quick=args.quick,
        cluster_nodes=args.nodes,
    )
    print(report.render())
    if args.out is not None:
        report.write_jsonl(args.out)
        print(f"wrote {args.out}")
    if args.check:
        failures = report.failures()
        if failures:
            print("\nchaos check FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\nchaos check passed")
    return 0


def _cmd_cliff(args: argparse.Namespace) -> int:
    from .analysis.cliff import CliffSweepConfig, render_cliff, run_cliff

    common = dict(
        n_records=args.n,
        n_disks=args.disks,
        k=args.k,
        block_size=args.block,
        seed=args.seed,
        cpu_us_per_record=args.cpu_us,
        adaptive=not args.no_adaptive,
    )
    if args.quick:
        cfg = CliffSweepConfig.quick(**common)
    else:
        cfg = CliffSweepConfig(
            **common,
            modes=tuple(args.modes.split(",")),
            depths=tuple(int(d) for d in args.depths.split(",")),
            factors=tuple(float(f) for f in args.factors.split(",")),
            stalls=tuple(int(s) for s in args.stall_densities.split(",")),
        )
    report = run_cliff(cfg)
    print(render_cliff(report))
    if args.out is not None:
        report.write_jsonl(args.out)
        print(f"wrote {args.out}")
    if args.check:
        failures = report.failures()
        if failures:
            print("\ncliff check FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\ncliff check passed")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import math

    from .analysis.critical_path import analyze_events, tenant_attribution
    from .service import run_arrival_script
    from .service.policy import POLICIES
    from .workloads import (
        batch_arrivals,
        bursty_arrivals,
        load_arrivals,
        poisson_arrivals,
    )

    cfg = SRMConfig.from_k(args.k, args.disks, args.block)
    n_jobs = 4 if args.quick else args.jobs
    lo = 300 if args.quick else args.min_records
    hi = 800 if args.quick else args.max_records

    def build_arrivals(n_tenants: int):
        if args.arrivals_file is not None:
            return load_arrivals(args.arrivals_file)
        if args.arrivals == "poisson":
            return poisson_arrivals(
                n_jobs, rate_per_s=args.rate, n_tenants=n_tenants,
                min_records=lo, max_records=hi, rng=args.seed,
            )
        if args.arrivals == "burst":
            return bursty_arrivals(
                n_jobs, burst_size=max(2, n_jobs // 2),
                burst_gap_ms=1_000.0 / max(args.rate, 1e-9),
                n_tenants=n_tenants, min_records=lo, max_records=hi,
                rng=args.seed,
            )
        return batch_arrivals(
            n_jobs, n_tenants=n_tenants, min_records=lo, max_records=hi,
            rng=args.seed,
        )

    if args.sweep:
        combos = [(p, nt) for p in POLICIES for nt in (2, 3)]
    else:
        combos = [(args.policy, args.tenants)]
    if args.out is not None:
        open(args.out, "w").close()  # one file, rows appended per combo

    failures: list[str] = []
    for policy, n_tenants in combos:
        arrivals = build_arrivals(n_tenants)
        tenants = sorted({a.tenant for a in arrivals})
        # First tenant weighted 2x so wfq visibly differs from rr.
        weights = {t: (2.0 if i == 0 else 1.0) for i, t in enumerate(tenants)}
        tel = Telemetry(run="serve", policy=policy, n_tenants=len(tenants))
        tel.attach_trace()
        result = run_arrival_script(
            arrivals, cfg, policy=policy, tenant_weights=weights,
            max_slots=args.slots, telemetry=tel,
        )
        if args.check:
            for f in result.verify_against_solo():
                failures.append(f"[{policy} x{len(tenants)}] {f}")
            events = tel.finish()
            att = tenant_attribution(events, "service:0")
            att_sum = sum(att.values())
            dom = analyze_events(events).get("service:0")
            if dom is None or not dom.exact:
                failures.append(
                    f"[{policy} x{len(tenants)}] service trace not exact"
                )
            if not math.isclose(att_sum, result.makespan_ms, rel_tol=1e-9):
                failures.append(
                    f"[{policy} x{len(tenants)}] tenant attribution sums to "
                    f"{att_sum:.6f} ms, makespan is {result.makespan_ms:.6f} ms"
                )
        print(result.render())
        print()
        if args.out is not None:
            result.write_jsonl(args.out)
        if args.telemetry is not None:
            # One stream per invocation: under --sweep the last combo wins.
            tel.write_jsonl(args.telemetry)
    if args.out is not None:
        print(f"wrote {args.out}")
    if args.telemetry is not None:
        print(f"wrote {args.telemetry} (inspect with: "
              f"repro inspect {args.telemetry} --attribution)")
    if args.check:
        if failures:
            print("serve check FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("serve check passed: every tenant bit-identical to solo, "
              "work conserved, attribution exact")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import main as bench_main

    argv = ["--out", args.out]
    if args.quick:
        argv.append("--quick")
    if args.min_merge_speedup is not None:
        argv += ["--min-merge-speedup", str(args.min_merge_speedup)]
    if args.min_rs_speedup is not None:
        argv += ["--min-rs-speedup", str(args.min_rs_speedup)]
    return bench_main(argv)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Simple Randomized Mergesort on Parallel Disks' "
        "(Barve, Grove, Vitter; SPAA 1996)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="overhead v(k,D) by ball throwing")
    t1.add_argument("--trials", type=int, default=400)
    t1.add_argument("--seed", type=int, default=1996)
    t1.set_defaults(func=_cmd_table1)

    t2 = sub.add_parser("table2", help="C_SRM/C_DSM ratio, worst-case v")
    t2.add_argument("--trials", type=int, default=400)
    t2.add_argument("--seed", type=int, default=1996)
    t2.add_argument("--paper-v", action="store_true",
                    help="use the paper's published Table 1 values for v")
    t2.set_defaults(func=_cmd_table2)

    for name, fn, helptext in [
        ("table3", _cmd_table3, "overhead v(k,D) from SRM merge simulation"),
        ("table4", _cmd_table4, "C'_SRM/C_DSM ratio, average-case v"),
    ]:
        t = sub.add_parser(name, help=helptext)
        t.add_argument("--blocks-per-run", type=int, default=100)
        t.add_argument("--block-size", type=int, default=8)
        t.add_argument("--trials", type=int, default=1)
        t.add_argument("--seed", type=int, default=1996)
        t.add_argument("--full", action="store_true",
                       help=f"paper-scale run length ({FULL_BLOCKS_PER_RUN} blocks/run)")
        t.set_defaults(func=fn)

    f1 = sub.add_parser("figure1", help="dependent vs classical occupancy instance")
    f1.set_defaults(func=_cmd_figure1)

    s = sub.add_parser("sort", help="sort random records and report I/O stats")
    s.add_argument("--n", type=int, default=100_000)
    s.add_argument("--disks", type=int, default=4)
    s.add_argument("--block", type=int, default=64)
    s.add_argument("--k", type=int, default=4)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--dsm", action="store_true", help="use the DSM baseline")
    s.add_argument("--overlap", choices=list(OVERLAP_MODES), default=None,
                   help="drive merges through the discrete-event overlap "
                   "engine and report simulated wall-clock")
    s.add_argument("--prefetch-depth", type=int, default=2,
                   help="read-ahead window in eager ParReads (with --overlap)")
    s.add_argument("--cpu-us", type=float, default=1.0,
                   help="merge CPU cost per record in microseconds "
                   "(with --overlap)")
    s.add_argument("--backend", choices=["memory", "mmap"], default="memory",
                   help="block storage backend: in-RAM dicts (default) or "
                        "one mmap'd slot file per simulated disk "
                        "(out-of-core; inputs may exceed RAM)")
    s.add_argument("--workdir", metavar="DIR", default=None,
                   help="directory for the mmap backend's disk files "
                        "(default: self-cleaning temp dir; explicit dirs "
                        "are kept)")
    s.add_argument("--workers", type=int, default=1, metavar="W",
                   help="process-parallel Merge Path drain width for SRM "
                        "merges (>1 requires --backend mmap; default 1 = "
                        "serial data plane)")
    s.add_argument("--telemetry", metavar="PATH", default=None,
                   help="capture a structured JSONL trace to PATH "
                   "(render it with 'repro inspect PATH')")
    s.add_argument("--trace", metavar="PATH", default=None,
                   help="arm causal event tracing and write the "
                        "telemetry stream (with per-op trace records) "
                        "to PATH; export Chrome/Perfetto JSON with "
                        "'repro trace PATH', attribute the makespan "
                        "with 'repro inspect PATH --attribution'")
    s.set_defaults(func=_cmd_sort)

    cs = sub.add_parser(
        "cluster-sort",
        help="sharded multi-node sort: splitters, all-to-all, shard merges",
    )
    cs.add_argument("--n", type=int, default=100_000)
    cs.add_argument("--nodes", type=int, default=4,
                    help="cluster size P (each node owns its own disks)")
    cs.add_argument("--disks", type=int, default=4,
                    help="disks per node")
    cs.add_argument("--block", type=int, default=64)
    cs.add_argument("--k", type=int, default=4)
    cs.add_argument("--seed", type=int, default=0)
    cs.add_argument("--oversample", type=int, default=32,
                    help="samples per node per splitter")
    cs.add_argument("--workload", choices=["uniform", "zipf"],
                    default="uniform",
                    help="input distribution (zipf stresses the splitters)")
    cs.add_argument("--lose-node", type=int, default=None, metavar="NODE",
                    help="kill NODE mid-exchange and rebuild it, charged")
    cs.add_argument("--lose-after-round", type=int, default=1,
                    help="exchange round after which the node dies "
                    "(with --lose-node)")
    cs.add_argument("--check", action="store_true",
                    help="exit 1 unless shards pass on-disk + global-order "
                    "verification")
    cs.add_argument("--backend", choices=["memory", "mmap"], default="memory",
                   help="per-node block storage backend (mmap = out-of-core)")
    cs.add_argument("--workdir", metavar="DIR", default=None,
                   help="directory for mmap disk files; each node gets its "
                        "own node<n>/ subdirectory")
    cs.add_argument("--telemetry", metavar="PATH", default=None,
                    help="capture a structured JSONL trace to PATH")
    cs.add_argument("--trace", metavar="PATH", default=None,
                    help="arm causal event tracing and write the "
                         "telemetry stream to PATH")
    cs.set_defaults(func=_cmd_cluster_sort)

    ins = sub.add_parser(
        "inspect",
        help="render a telemetry JSONL trace as a per-phase run report",
    )
    ins.add_argument("trace", help="JSONL file written by sort --telemetry")
    ins.add_argument("--check", action="store_true",
                     help="exit 1 unless paper-bound assertions hold "
                     "(Theorem-1 read overhead, §5.4 flush occupancy, "
                     "critical path == makespan for exact trace domains)")
    ins.add_argument("--attribution", action="store_true",
                     help="decompose each traced domain's makespan along "
                     "its critical path (read/write/compute/stall/link/"
                     "recovery), with per-lane utilization and stragglers")
    ins.set_defaults(func=_cmd_inspect)

    tr = sub.add_parser(
        "trace",
        help="export a captured trace as Chrome trace-event JSON "
        "(Perfetto / chrome://tracing)",
    )
    tr.add_argument("input", help="JSONL file written by sort --trace")
    tr.add_argument("--out", metavar="PATH", default=None,
                    help="output JSON path (default: INPUT with a "
                    ".trace.json suffix)")
    tr.set_defaults(func=_cmd_trace)

    r = sub.add_parser("records", help="stable key+payload record sort demo")
    r.add_argument("--n", type=int, default=50_000)
    r.add_argument("--disks", type=int, default=4)
    r.add_argument("--block", type=int, default=64)
    r.add_argument("--memory", type=int, default=8192)
    r.add_argument("--seed", type=int, default=0)
    r.set_defaults(func=_cmd_records)

    b = sub.add_parser("bounds", help="occupancy bounds sandwich table")
    b.add_argument("--trials", type=int, default=1000)
    b.add_argument("--seed", type=int, default=1996)
    b.set_defaults(func=_cmd_bounds)

    ra = sub.add_parser("reproduce-all", help="regenerate every table + figure")
    ra.add_argument("--out", type=str, default=None,
                    help="directory for per-experiment reports")
    ra.add_argument("--trials", type=int, default=400)
    ra.add_argument("--blocks-per-run", type=int, default=100)
    ra.add_argument("--full", action="store_true",
                    help=f"paper-scale Table 3 ({FULL_BLOCKS_PER_RUN} blocks/run)")
    ra.add_argument("--seed", type=int, default=1996)
    ra.set_defaults(func=_cmd_reproduce_all)

    d = sub.add_parser("demo", help="quick SRM-vs-DSM comparison")
    d.set_defaults(func=_cmd_demo)

    be = sub.add_parser(
        "bench",
        help="hot-path perf harness: vectorized vs reference data planes",
    )
    be.add_argument("--quick", action="store_true",
                    help="reduced scale (CI smoke)")
    be.add_argument("--out", default="BENCH_sort_throughput.json",
                    help="JSON report path (default: %(default)s)")
    be.add_argument("--min-merge-speedup", type=float, default=None,
                    help="fail unless losertree/heapq >= this ratio")
    be.add_argument("--min-rs-speedup", type=float, default=None,
                    help="fail unless block/record >= this ratio")
    be.set_defaults(func=_cmd_bench)

    sv = sub.add_parser(
        "serve",
        help="multi-tenant sort service: fair dispatch over one shared farm",
    )
    sv.add_argument("--policy", choices=("rr", "wfq", "srpt"), default="rr",
                    help="fairness policy (default: %(default)s)")
    sv.add_argument("--sweep", action="store_true",
                    help="run all 3 policies x 2 tenant counts (2 and 3)")
    sv.add_argument("--arrivals", choices=("poisson", "burst", "batch"),
                    default="poisson",
                    help="arrival script shape (default: %(default)s)")
    sv.add_argument("--arrivals-file", metavar="PATH", default=None,
                    help="replay a JSON arrival script instead of generating")
    sv.add_argument("--jobs", type=int, default=8,
                    help="jobs in the generated script (default: %(default)s)")
    sv.add_argument("--tenants", type=int, default=2,
                    help="tenants in the generated script (default: %(default)s)")
    sv.add_argument("--rate", type=float, default=40.0,
                    help="mean arrivals per simulated second (default: %(default)s)")
    sv.add_argument("--min-records", type=int, default=500)
    sv.add_argument("--max-records", type=int, default=1500)
    sv.add_argument("--disks", type=int, default=4)
    sv.add_argument("--block", type=int, default=8)
    sv.add_argument("--k", type=int, default=2, help="merge order R = kD")
    sv.add_argument("--slots", type=int, default=8,
                    help="admission queue slots (default: %(default)s)")
    sv.add_argument("--seed", type=int, default=1234)
    sv.add_argument("--quick", action="store_true",
                    help="reduced scale (CI smoke): 4 jobs, 300-800 records")
    sv.add_argument("--check", action="store_true",
                    help="exit 1 unless every tenant is bit-identical to its "
                         "solo run, the service is work-conserving, and the "
                         "per-tenant attribution sums to the makespan")
    sv.add_argument("--out", metavar="PATH", default=None,
                    help="append per-run summary + job rows as JSONL to PATH")
    sv.add_argument("--telemetry", metavar="PATH", default=None,
                    help="write the service telemetry stream (spans, "
                         "service.* metrics, tagged trace) to PATH")
    sv.set_defaults(func=_cmd_serve)

    ch = sub.add_parser(
        "chaos",
        help="fault-injection sweep: every plan must sort bit-identically",
    )
    ch.add_argument("--n", type=int, default=20_000,
                    help="records per sort (default: %(default)s)")
    ch.add_argument("--disks", type=int, default=4)
    ch.add_argument("--k", type=int, default=2,
                    help="merge order R = kD")
    ch.add_argument("--block", type=int, default=16)
    ch.add_argument("--seed", type=int, default=1234,
                    help="root seed for data, layout, and fault streams")
    ch.add_argument("--nodes", type=int, default=4,
                    help="also run the cluster sweep (node loss, skewed "
                    "partitions) on this many nodes; 0 disables")
    ch.add_argument("--quick", action="store_true",
                    help="core scenarios only: transient/corrupt/death plus "
                         "write storm, torn writes, parity rebuild, and "
                         "double death (CI smoke)")
    ch.add_argument("--check", action="store_true",
                    help="exit 1 unless every resilience property holds")
    ch.add_argument("--out", metavar="PATH", default=None,
                    help="write the scenario results as JSONL to PATH")
    ch.set_defaults(func=_cmd_chaos)

    cl = sub.add_parser(
        "cliff",
        help="sweep straggler factors / stall densities to map where "
             "overlap stops hiding latency; pairs each faulted point "
             "with the latency-adaptive policy",
    )
    cl.add_argument("--n", type=int, default=20_000,
                    help="records per sort (default: %(default)s)")
    cl.add_argument("--disks", type=int, default=4)
    cl.add_argument("--k", type=int, default=2, help="merge order R = kD")
    cl.add_argument("--block", type=int, default=16)
    cl.add_argument("--seed", type=int, default=1996,
                    help="root seed for data, layout, and fault streams")
    cl.add_argument("--cpu-us", type=float, default=1000.0,
                    help="merge cost per record in us; the default puts "
                         "compute and block service in the same regime "
                         "so the cliff falls inside the sweep")
    cl.add_argument("--modes", default="none,full",
                    help="comma-separated overlap modes to sweep")
    cl.add_argument("--depths", default="0,1,2",
                    help="comma-separated prefetch depths to sweep")
    cl.add_argument("--factors", default="1,2,4,8",
                    help="comma-separated straggler latency factors")
    cl.add_argument("--stall-densities", default="0,4",
                    help="comma-separated stall-window counts on the "
                         "victim disk")
    cl.add_argument("--no-adaptive", action="store_true",
                    help="skip the adaptive-policy re-runs (fixed grid only)")
    cl.add_argument("--quick", action="store_true",
                    help="CI-sized grid: full mode, depths 0/2, factors "
                         "1/4, stall densities 0/2")
    cl.add_argument("--check", action="store_true",
                    help="exit 1 unless every point sorts identically, "
                         "attribution is exact, and adaptive is no worse")
    cl.add_argument("--out", metavar="PATH", default=None,
                    help="write the grid as JSONL to PATH")
    cl.set_defaults(func=_cmd_cliff)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
