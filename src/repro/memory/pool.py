"""Internal-memory buffer accounting: the ``{M_L, M_R, M_D, M_W}`` partition.

Paper §5.1–5.2: SRM partitions ``2R + 4D`` internal blocks into

* ``M_L`` — ``R`` blocks, one per run, holding the run's *leading* block
  whenever it is resident;
* ``M_R`` — ``R + D`` blocks holding full, non-leading resident blocks;
* ``M_D`` — ``D`` staging blocks that every ``ParRead`` lands in;
* ``M_W`` — ``2D`` output-buffer blocks (enough to write full stripes in
  forecast format, since block ``i``'s forecast key comes from block
  ``i + D``).

The three exchange rules of §5.2 move *buffer frames* between the sets
so that occupied/unoccupied counts are preserved; at block granularity
that is pure accounting, which is what this class implements.  It exists
to make the budget explicit and violently checkable: every transition
the scheduler performs calls into the pool, and exceeding any set's
capacity raises :class:`ScheduleError` — turning Lemma 1 (“there is
always room for the next ``ParRead``”) into an executable assertion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, ScheduleError


@dataclass
class BufferPool:
    """Occupancy accounting for SRM's internal-memory partition.

    Parameters
    ----------
    merge_order:
        ``R``, the number of runs being merged.
    n_disks:
        ``D``.
    """

    merge_order: int
    n_disks: int
    ml_occupied: int = 0
    mr_occupied: int = 0
    mw_occupied: int = 0

    def __post_init__(self) -> None:
        if self.merge_order < 1:
            raise ConfigError(f"merge order must be >= 1, got {self.merge_order}")
        if self.n_disks < 1:
            raise ConfigError(f"need at least one disk, got {self.n_disks}")
        for name, occ, cap in (
            ("M_L", self.ml_occupied, self.ml_capacity),
            ("M_R", self.mr_occupied, self.mr_capacity),
            ("M_W", self.mw_occupied, self.mw_capacity),
        ):
            if not 0 <= occ <= cap:
                raise ConfigError(
                    f"{name} occupancy {occ} outside [0, {cap}]"
                )

    # -- capacities (Definition 3) ----------------------------------------

    @property
    def ml_capacity(self) -> int:
        """``|M_L| = R`` — one leading-block frame per run."""
        return self.merge_order

    @property
    def mr_capacity(self) -> int:
        """``|M_R| = R + D`` — full non-leading resident blocks."""
        return self.merge_order + self.n_disks

    @property
    def md_capacity(self) -> int:
        """``|M_D| = D`` — read-staging frames."""
        return self.n_disks

    @property
    def mw_capacity(self) -> int:
        """``|M_W| = 2D`` — output-buffer frames."""
        return 2 * self.n_disks

    @property
    def total_frames(self) -> int:
        """``2R + 4D`` internal blocks managed by the partition."""
        return self.ml_capacity + self.mr_capacity + self.md_capacity + self.mw_capacity

    @property
    def mr_free(self) -> int:
        """Unoccupied ``M_R`` frames."""
        return self.mr_capacity - self.mr_occupied

    # -- transitions ----------------------------------------------------

    def load_leading(self) -> None:
        """A run's leading block arrives in memory (lands in ``M_L``)."""
        if self.ml_occupied >= self.ml_capacity:
            raise ScheduleError("M_L overflow: more leading blocks than runs")
        self.ml_occupied += 1

    def retire_leading(self) -> None:
        """A leading block is fully consumed; its ``M_L`` frame frees up."""
        if self.ml_occupied <= 0:
            raise ScheduleError("M_L underflow: retiring a block that is not there")
        self.ml_occupied -= 1

    def stage_read_into_mr(self, n_blocks: int) -> None:
        """A ``ParRead`` lands *n_blocks* non-leading blocks in ``M_R``.

        Physically the blocks arrive in ``M_D`` and are exchanged with
        unoccupied ``M_R`` frames (rule 3 of §5.2); the net effect at
        block granularity is ``M_R`` occupancy rising by *n_blocks*.
        """
        if self.mr_occupied + n_blocks > self.mr_capacity:
            raise ScheduleError(
                f"M_R overflow: {self.mr_occupied} + {n_blocks} > {self.mr_capacity}"
                " — the scheduler failed to flush before reading (Lemma 1 violated)"
            )
        self.mr_occupied += n_blocks

    def promote_to_leading(self) -> None:
        """A resident ``M_R`` block becomes its run's leading block.

        Rule 1 of §5.2: ``M_R`` and ``M_L`` exchange frames, so ``M_R``
        gains a free frame while ``M_L`` gains an occupied one.
        """
        if self.mr_occupied <= 0:
            raise ScheduleError("M_R underflow: promoting a block that is not there")
        if self.ml_occupied >= self.ml_capacity:
            # Checked before mutating so a rejected promotion is atomic.
            raise ScheduleError("M_L overflow: more leading blocks than runs")
        self.mr_occupied -= 1
        self.ml_occupied += 1

    def flush(self, n_blocks: int) -> None:
        """``Flush_t(n)``: *n_blocks* leave ``M_R`` with **no I/O** (§ Def. 6)."""
        if n_blocks < 0:
            raise ScheduleError(f"cannot flush {n_blocks} blocks")
        if self.mr_occupied < n_blocks:
            raise ScheduleError(
                f"M_R underflow: flushing {n_blocks} of {self.mr_occupied} blocks"
            )
        self.mr_occupied -= n_blocks

    def can_read_without_flush(self) -> bool:
        """True if ``D`` unoccupied ``M_R`` frames exist (§5.5 case 2a)."""
        return self.mr_free >= self.n_disks

    @property
    def extra(self) -> int:
        """``extra`` of §5.5: occupied ``M_R`` frames beyond ``R`` (0 if none)."""
        return max(0, self.mr_occupied - self.merge_order)

    # -- output buffer -------------------------------------------------

    def buffer_output_block(self) -> None:
        """One output block materializes in ``M_W``."""
        if self.mw_occupied >= self.mw_capacity:
            raise ScheduleError("M_W overflow: output stripe not drained in time")
        self.mw_occupied += 1

    def drain_output_stripe(self, n_blocks: int) -> None:
        """A parallel write drains *n_blocks* from ``M_W``."""
        if self.mw_occupied < n_blocks:
            raise ScheduleError(
                f"M_W underflow: draining {n_blocks} of {self.mw_occupied} blocks"
            )
        self.mw_occupied -= n_blocks


# ---------------------------------------------------------------------------
# Multi-tenant sub-pools (the shared service's contended resource).
# ---------------------------------------------------------------------------


class TenantPartition:
    """One tenant's carve-out of the service's internal-memory frames.

    A sort job needs one full §5.1 partition — ``2R + 4D`` frames
    (:attr:`BufferPool.total_frames` for its config) — for its whole
    lifetime.  Admission reserves the frames here; completion (or abort)
    releases them.  The accounting is exact and violently checked:
    releasing more than is reserved raises :class:`ScheduleError`
    (catching the double-free bug class), and a closed partition rejects
    every further transition.
    """

    __slots__ = ("name", "capacity_frames", "reserved_frames", "weight", "_closed")

    def __init__(self, name: str, capacity_frames: int, weight: float = 1.0) -> None:
        if not name:
            raise ConfigError("tenant partition needs a non-empty name")
        if capacity_frames <= 0:
            raise ConfigError(
                f"tenant {name!r}: partition size must be positive, "
                f"got {capacity_frames} frames"
            )
        if not weight > 0.0:
            raise ConfigError(
                f"tenant {name!r}: weight must be positive, got {weight}"
            )
        self.name = name
        self.capacity_frames = capacity_frames
        self.weight = float(weight)
        self.reserved_frames = 0
        self._closed = False

    @property
    def free_frames(self) -> int:
        return self.capacity_frames - self.reserved_frames

    @property
    def closed(self) -> bool:
        return self._closed

    def fits(self, frames: int) -> bool:
        """Could *frames* ever be reserved here (quota check, phase 1)?"""
        return 0 < frames <= self.capacity_frames

    def try_reserve(self, frames: int) -> bool:
        """Reserve *frames* if currently free; False if the job must wait.

        A request that could *never* fit (``frames > capacity``) is a
        quota violation and raises instead of silently queueing forever.
        """
        self._check_open()
        if frames <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: cannot reserve {frames} frames"
            )
        if frames > self.capacity_frames:
            raise ConfigError(
                f"tenant {self.name!r}: job needs {frames} frames but the "
                f"quota is {self.capacity_frames} — the job can never run"
            )
        if frames > self.free_frames:
            return False
        self.reserved_frames += frames
        return True

    def release(self, frames: int) -> None:
        """Return *frames* reserved by a completed or aborted job."""
        self._check_open()
        if frames < 0:
            raise ConfigError(
                f"tenant {self.name!r}: cannot release {frames} frames"
            )
        if frames > self.reserved_frames:
            raise ScheduleError(
                f"tenant {self.name!r}: double free — releasing {frames} "
                f"frames with only {self.reserved_frames} reserved"
            )
        self.reserved_frames -= frames

    def close(self) -> None:
        """Tear the partition down; all reservations must be back."""
        self._check_open()
        if self.reserved_frames != 0:
            raise ScheduleError(
                f"tenant {self.name!r}: closing with {self.reserved_frames} "
                "frames still reserved"
            )
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ScheduleError(
                f"tenant {self.name!r}: partition already closed (double free)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TenantPartition({self.name!r}, "
            f"{self.reserved_frames}/{self.capacity_frames} frames)"
        )


class ServicePool:
    """The shared farm's memory frames, partitioned per tenant.

    The Arge–Thorup view: internal memory, not the disks, is the scarce
    resource a multi-tenant sorter must ration.  Each tenant gets a
    fixed carve-out (its quota); jobs reserve whole §5.1 partitions from
    their tenant's carve-out and two tenants can never eat into each
    other's frames.
    """

    def __init__(self) -> None:
        self._partitions: dict[str, TenantPartition] = {}

    def create_partition(
        self, name: str, capacity_frames: int, weight: float = 1.0
    ) -> TenantPartition:
        if name in self._partitions:
            raise ConfigError(f"tenant {name!r} already has a partition")
        part = TenantPartition(name, capacity_frames, weight)
        self._partitions[name] = part
        return part

    def partition(self, name: str) -> TenantPartition:
        part = self._partitions.get(name)
        if part is None:
            raise ConfigError(f"unknown tenant {name!r}")
        return part

    def remove_partition(self, name: str) -> None:
        """Close and drop a tenant's partition (all frames must be free)."""
        self.partition(name).close()
        del self._partitions[name]

    @property
    def tenants(self) -> list[str]:
        return sorted(self._partitions)

    @property
    def total_frames(self) -> int:
        return sum(p.capacity_frames for p in self._partitions.values())

    @property
    def reserved_frames(self) -> int:
        return sum(p.reserved_frames for p in self._partitions.values())
