"""Internal-memory management (the §5.1 buffer partition)."""

from .pool import BufferPool, ServicePool, TenantPartition

__all__ = ["BufferPool", "ServicePool", "TenantPartition"]
