"""Internal-memory management (the §5.1 buffer partition)."""

from .pool import BufferPool

__all__ = ["BufferPool"]
