"""Plain-text rendering of k×D grids in the paper's table format."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass
class TableGrid:
    """A k-by-D grid of values, like the paper's Tables 1-4.

    Attributes
    ----------
    ks / ds:
        Row (``k``) and column (``D``) labels.
    values:
        Array of shape ``(len(ks), len(ds))``.
    title:
        Caption shown above the rendered table.
    """

    ks: Sequence[int]
    ds: Sequence[int]
    values: np.ndarray
    title: str = ""
    #: Optional per-cell standard errors (same shape as values).
    errors: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.shape != (len(self.ks), len(self.ds)):
            raise ValueError(
                f"values shape {self.values.shape} does not match "
                f"({len(self.ks)}, {len(self.ds)}) labels"
            )
        if self.errors is not None:
            self.errors = np.asarray(self.errors, dtype=float)
            if self.errors.shape != self.values.shape:
                raise ValueError(
                    f"errors shape {self.errors.shape} does not match values"
                )

    def value(self, k: int, d: int) -> float:
        """Cell lookup by labels."""
        return float(self.values[list(self.ks).index(k), list(self.ds).index(d)])

    def render(
        self,
        fmt: str = "{:.2f}",
        col_width: int = 9,
        show_errors: bool = False,
    ) -> str:
        """Render in the paper's layout: D across, k down.

        With ``show_errors=True`` (and errors present) cells render as
        ``value±err``.
        """
        if show_errors and self.errors is not None:
            col_width = max(col_width, 14)

        def cell(i: int, j: int) -> str:
            v = fmt.format(self.values[i, j])
            if show_errors and self.errors is not None:
                return f"{v}±{fmt.format(self.errors[i, j])}"
            return v

        lines = []
        if self.title:
            lines.append(self.title)
        header = " " * col_width + "".join(
            f"{'D=' + str(d):>{col_width}}" for d in self.ds
        )
        lines.append(header)
        for i, k in enumerate(self.ks):
            row = f"{'k=' + str(k):<{col_width}}" + "".join(
                f"{cell(i, j):>{col_width}}" for j in range(len(self.ds))
            )
            lines.append(row)
        return "\n".join(lines)


def render_comparison(
    paper: TableGrid, measured: TableGrid, fmt: str = "{:.2f}"
) -> str:
    """Side-by-side "paper / measured" rendering for EXPERIMENTS.md."""
    if list(paper.ks) != list(measured.ks) or list(paper.ds) != list(measured.ds):
        raise ValueError("grids have different labels")
    lines = []
    title = measured.title or paper.title
    if title:
        lines.append(f"{title} (paper / measured)")
    width = 15
    header = " " * 9 + "".join(f"{'D=' + str(d):>{width}}" for d in paper.ds)
    lines.append(header)
    for i, k in enumerate(paper.ks):
        cells = []
        for j in range(len(paper.ds)):
            cells.append(
                f"{fmt.format(paper.values[i, j])}/{fmt.format(measured.values[i, j])}"
            )
        lines.append(
            f"{'k=' + str(k):<9}" + "".join(f"{c:>{width}}" for c in cells)
        )
    return "\n".join(lines)


def max_abs_deviation(paper: TableGrid, measured: TableGrid) -> float:
    """Largest absolute cellwise difference between two grids."""
    return float(np.max(np.abs(paper.values - measured.values)))
