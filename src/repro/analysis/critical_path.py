"""Critical-path extraction and makespan attribution over a trace.

Input is the causal trace of :mod:`repro.telemetry.trace`: records with
``[start, end]`` intervals on lanes, grouped into domains (one domain =
one timeline with one makespan), each carrying a *binding* predecessor
``dep`` — the record whose completion set this record's start.

The critical path is found backwards: start at the record with the
latest completion (its end *is* the makespan — the engine guarantees
every clock advance leaves a record ending at the new time) and follow
deps toward time zero.  A **frontier** sweeps from the terminal end
toward zero; each visited record charges ``frontier - start`` (clipped
at zero) to its category and pulls the frontier down to its start.
Because producers pick deps with ``dep.end >= start`` bit-exactly, the
walk tiles ``[0, makespan]`` with no float slack, and

``total_ms == makespan_ms`` **exactly** (same float), with
``exact=True`` certifying the chain reached time zero.

A walk that dereferences a ring-evicted dep reports ``truncated=True``
and gives up exactness instead of inventing numbers.

Per-lane utilization, idle-gap histograms, and straggler flags ride
along so ``repro inspect --attribution`` can answer *which* disk, node,
or link made the run slow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..telemetry.trace import (
    TRACE_CATEGORIES,
    TraceCollector,
    trace_events_from_stream,
)

__all__ = [
    "IDLE_GAP_EDGES",
    "PathSegment",
    "LaneStats",
    "DomainAttribution",
    "analyze_events",
    "analyze_collector",
    "combine_attribution",
    "tenant_attribution",
]

#: Fixed idle-gap bucket edges (ms) so histograms compare across runs.
IDLE_GAP_EDGES = (0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0)

#: A lane on the critical path longer than this fraction flags as the
#: dominant lane; a lane busier than STRAGGLER_FACTOR x its peer median
#: flags as a straggler.
STRAGGLER_FACTOR = 1.5


@dataclass(frozen=True, slots=True)
class PathSegment:
    """One record's contribution to the critical path."""

    index: int
    kind: str
    cat: str
    lane: str
    start_ms: float
    end_ms: float
    contrib_ms: float


@dataclass(frozen=True, slots=True)
class LaneStats:
    """Busy/utilization summary of one lane within a domain."""

    lane: str
    ops: int
    busy_ms: float
    utilization: float
    idle_gap_counts: tuple[int, ...]  # len(IDLE_GAP_EDGES) + 1 buckets
    straggler: bool


@dataclass(slots=True)
class DomainAttribution:
    """Makespan decomposition of one domain's timeline."""

    domain: str
    makespan_ms: float
    total_ms: float
    exact: bool
    truncated: bool
    attribution: dict[str, float]
    path: list[PathSegment]
    lanes: list[LaneStats] = field(default_factory=list)
    stragglers: list[str] = field(default_factory=list)
    records: int = 0
    dropped: int = 0

    @property
    def path_by_category(self) -> dict[str, float]:
        return dict(self.attribution)

    def fraction(self, cat: str) -> float:
        if self.makespan_ms <= 0.0:
            return 0.0
        return self.attribution.get(cat, 0.0) / self.makespan_ms


def _lane_group(lane: str) -> str:
    """Peer group of a lane: its name with trailing digits stripped."""
    return lane.rstrip("0123456789")


def _median(values: list[float]) -> float:
    s = sorted(values)
    n = len(s)
    if n == 0:
        return 0.0
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


def _walk_critical_path(
    recs: list[dict],
) -> tuple[float, dict[str, float], list[PathSegment], bool, bool]:
    """Backward frontier walk; returns (total, attribution, path,
    reached_zero, truncated)."""
    by_index = {r["i"]: r for r in recs}
    terminal = max(recs, key=lambda r: (r["te"], r["i"]))
    total = terminal["te"]
    frontier = total
    attribution = {cat: 0.0 for cat in TRACE_CATEGORIES}
    path: list[PathSegment] = []
    truncated = False
    seen: set[int] = set()
    cur: dict | None = terminal
    while cur is not None:
        i = cur["i"]
        if i in seen:  # defensive: malformed cyclic deps
            truncated = True
            break
        seen.add(i)
        contrib = frontier - cur["ts"]
        if contrib > 0.0:
            attribution[cur["cat"]] = attribution.get(cur["cat"], 0.0) + contrib
            path.append(
                PathSegment(
                    i, cur["kind"], cur["cat"], cur["lane"],
                    cur["ts"], cur["te"], contrib,
                )
            )
            frontier = cur["ts"]
        dep = cur.get("dep")
        if dep is None:
            cur = None
        else:
            cur = by_index.get(dep)
            if cur is None:
                truncated = True
                break
    path.reverse()
    return total, attribution, path, (frontier == 0.0), truncated


def _lane_stats(recs: list[dict], makespan_ms: float) -> list[LaneStats]:
    lanes: dict[str, list[dict]] = {}
    for r in recs:
        lanes.setdefault(r["lane"], []).append(r)
    busy = {
        lane: sum(r["te"] - r["ts"] for r in rs) for lane, rs in lanes.items()
    }
    groups: dict[str, list[str]] = {}
    for lane in lanes:
        groups.setdefault(_lane_group(lane), []).append(lane)
    straggle: set[str] = set()
    for members in groups.values():
        if len(members) < 2:
            continue
        med = _median([busy[m] for m in members])
        if med <= 0.0:
            continue
        for m in members:
            if busy[m] > STRAGGLER_FACTOR * med:
                straggle.add(m)
    out: list[LaneStats] = []
    for lane in sorted(lanes):
        rs = sorted(lanes[lane], key=lambda r: (r["ts"], r["i"]))
        counts = [0] * (len(IDLE_GAP_EDGES) + 1)
        for a, b in zip(rs, rs[1:]):
            gap = b["ts"] - a["te"]
            if gap <= 0.0:
                continue
            k = 0
            while k < len(IDLE_GAP_EDGES) and gap > IDLE_GAP_EDGES[k]:
                k += 1
            counts[k] += 1
        util = busy[lane] / makespan_ms if makespan_ms > 0.0 else 0.0
        out.append(
            LaneStats(
                lane, len(rs), busy[lane], util, tuple(counts),
                lane in straggle,
            )
        )
    return out


def analyze_events(events: Iterable[dict]) -> dict[str, DomainAttribution]:
    """Attribute every traced domain in a decoded telemetry stream."""
    recs, sums = trace_events_from_stream(events)
    by_dom: dict[str, list[dict]] = {}
    for r in recs:
        by_dom.setdefault(r["dom"], []).append(r)
    declared = {s["dom"]: s for s in sums}
    out: dict[str, DomainAttribution] = {}
    for dom in list(by_dom) + [d for d in declared if d not in by_dom]:
        if dom in out:
            continue
        drecs = by_dom.get(dom, [])
        s = declared.get(dom)
        dropped = s.get("dropped", 0) if s else 0
        if not drecs:
            out[dom] = DomainAttribution(
                dom, s["makespan_ms"] if s else 0.0, 0.0,
                exact=False, truncated=False,
                attribution={cat: 0.0 for cat in TRACE_CATEGORIES},
                path=[], records=0, dropped=dropped,
            )
            continue
        total, attribution, path, reached_zero, truncated = (
            _walk_critical_path(drecs)
        )
        makespan = s["makespan_ms"] if s else total
        exact = (
            reached_zero
            and not truncated
            and total == makespan
            and (s is None or bool(s.get("exact", True)))
        )
        lanes = _lane_stats(drecs, makespan)
        out[dom] = DomainAttribution(
            dom, makespan, total, exact, truncated, attribution, path,
            lanes=lanes,
            stragglers=[l.lane for l in lanes if l.straggler],
            records=len(drecs), dropped=dropped,
        )
    return out


def analyze_collector(
    collector: TraceCollector,
) -> dict[str, DomainAttribution]:
    """Attribute the domains of an in-memory :class:`TraceCollector`."""
    return analyze_events(list(collector.to_events()))


def tenant_attribution(
    events: Iterable[dict], domain: str = "service:0"
) -> dict[str, float]:
    """Decompose one domain's makespan per tenant (``attrs["tenant"]``).

    The service tracer tags every channel record with the granted job's
    ``{"job", "tenant"}`` and records arrival gaps as ``(idle)``, so the
    critical-path walk over a service domain tiles ``[0, makespan]``
    with tenant-labeled segments.  The returned per-tenant milliseconds
    therefore sum *exactly* (same floats the walk produced) to the
    service makespan — the per-tenant answer to "who was the farm
    working for, when?".  Records without a tenant tag (none, in a
    healthy service trace) land under ``"(untagged)"``.
    """
    recs, _ = trace_events_from_stream(events)
    drecs = [r for r in recs if r["dom"] == domain]
    if not drecs:
        return {}
    _, _, path, _, _ = _walk_critical_path(drecs)
    by_index = {r["i"]: r for r in drecs}
    out: dict[str, float] = {}
    for seg in path:
        attrs = by_index[seg.index].get("attrs") or {}
        tenant = attrs.get("tenant", "(untagged)")
        out[tenant] = out.get(tenant, 0.0) + seg.contrib_ms
    return out


def combine_attribution(
    analyses: Iterable[DomainAttribution],
) -> dict[str, float]:
    """Sum per-category attribution across domains (e.g. all merges)."""
    out = {cat: 0.0 for cat in TRACE_CATEGORIES}
    for a in analyses:
        for cat, ms in a.attribution.items():
            out[cat] = out.get(cat, 0.0) + ms
    return out
