"""Closed-form I/O cost expressions (paper §9.1, Theorem 1).

All formulas follow the paper's convention of dropping ceilings on
logarithmic pass counts (footnote 2) and counting parallel I/O
operations on ``N`` records with memory ``M``, block size ``B`` and
``D`` disks, with the merge-order parametrization ``R = kD``.

Central quantities:

* ``C_SRM = (1 + v) / ln(kD)``  (eq. 40) — total SRM I/Os are
  ``(N/DB)(2 + C_SRM ln(N/M))``; ``v = v(k, D)`` is the per-pass read
  overhead (Table 1 worst-case-expectation or Table 3 average-case).
* ``C_DSM = 2 / ln(k + 1 + kD/2B)``  (eq. 41) — same shape for DSM,
  whose reads and writes are both perfect but whose merge order is only
  ``k + 1 + kD/2B``.
* The ratio ``C_SRM / C_DSM`` is Tables 2 and 4's figure of merit.
"""

from __future__ import annotations

import math

from ..errors import ConfigError
from ..occupancy.bounds import gf_expected_max_bound

__all__ = [
    "c_srm",
    "c_dsm",
    "c_ratio",
    "dsm_merge_order_formula",
    "srm_total_ios",
    "dsm_total_ios",
    "merge_passes",
    "srm_write_ios",
    "theorem1_case1_reads",
    "theorem1_case3_reads",
    "gf_expected_reads_bound",
]


def _check_kd(k: float, n_disks: int) -> None:
    if k <= 0:
        raise ConfigError(f"k must be positive, got {k}")
    if n_disks < 1:
        raise ConfigError(f"need at least one disk, got {n_disks}")
    if k * n_disks <= 1:
        raise ConfigError(f"merge order kD = {k * n_disks} must exceed 1")


def c_srm(k: float, n_disks: int, v: float) -> float:
    """Equation (40): ``C_SRM = (1 + v) / ln(kD)``."""
    _check_kd(k, n_disks)
    if v < 1.0:
        raise ConfigError(f"overhead v must be >= 1, got {v}")
    return (1.0 + v) / math.log(k * n_disks)


def dsm_merge_order_formula(k: float, n_disks: int, block_size: int) -> float:
    """DSM's merge order under SRM's memory: ``k + 1 + kD/2B`` (§9.1)."""
    return k + 1 + k * n_disks / (2 * block_size)


def c_dsm(k: float, n_disks: int, block_size: int) -> float:
    """Equation (41): ``C_DSM = 2 / ln(k + 1 + kD/2B)``."""
    _check_kd(k, n_disks)
    order = dsm_merge_order_formula(k, n_disks, block_size)
    if order <= 1:
        raise ConfigError(f"DSM merge order {order} must exceed 1")
    return 2.0 / math.log(order)


def c_ratio(k: float, n_disks: int, block_size: int, v: float) -> float:
    """``C_SRM / C_DSM`` — the Tables 2/4 figure of merit (< 1: SRM wins)."""
    return c_srm(k, n_disks, v) / c_dsm(k, n_disks, block_size)


def merge_passes(n_records: float, memory_records: float, merge_order: float) -> float:
    """Merge passes after run formation: ``ln(N/M) / ln(R)`` (no ceiling)."""
    if n_records <= memory_records:
        return 0.0
    if merge_order <= 1:
        raise ConfigError(f"merge order {merge_order} must exceed 1")
    return math.log(n_records / memory_records) / math.log(merge_order)


def srm_write_ios(
    n_records: float, memory_records: float, n_disks: int, block_size: int, k: float
) -> float:
    """SRM's writes: ``(N/DB)(1 + ln(N/M)/ln(kD))`` — perfect parallelism."""
    per_pass = n_records / (n_disks * block_size)
    return per_pass * (1.0 + merge_passes(n_records, memory_records, k * n_disks))


def srm_total_ios(
    n_records: float,
    memory_records: float,
    n_disks: int,
    block_size: int,
    k: float,
    v: float,
) -> float:
    """Total SRM I/Os: ``(N/DB)(2 + C_SRM · ln(N/M))`` (§9.1).

    The leading 2 is the shared run-formation read+write pass.
    """
    per_pass = n_records / (n_disks * block_size)
    if n_records <= memory_records:
        return 2.0 * per_pass
    return per_pass * (
        2.0 + c_srm(k, n_disks, v) * math.log(n_records / memory_records)
    )


def dsm_total_ios(
    n_records: float,
    memory_records: float,
    n_disks: int,
    block_size: int,
    k: float,
) -> float:
    """Total DSM I/Os: ``(N/DB)(2 + C_DSM · ln(N/M))`` (§9.1)."""
    per_pass = n_records / (n_disks * block_size)
    if n_records <= memory_records:
        return 2.0 * per_pass
    return per_pass * (
        2.0 + c_dsm(k, n_disks, block_size) * math.log(n_records / memory_records)
    )


def theorem1_case1_reads(
    n_records: float,
    memory_records: float,
    n_disks: int,
    block_size: int,
    k: float,
) -> float:
    """Theorem 1 case 1 (``R = kD``): expected read upper bound.

    ``N/DB + (N/DB) · (ln(N/M)/ln kD) · (ln D / (k ln ln D)) · (1 + ...)``
    with the ``O(·)`` term dropped.  Asymptotic in ``D``; requires
    ``D > e^e`` for the inner logs to be positive.
    """
    if n_disks <= 15:
        raise ConfigError("case-1 expansion needs ln ln D comfortably > 0 (D > 15)")
    per_pass = n_records / (n_disks * block_size)
    if n_records <= memory_records:
        return per_pass
    ln_d = math.log(n_disks)
    lnln_d = math.log(ln_d)
    correction = (
        1.0 + math.log(lnln_d) / lnln_d + (1.0 + math.log(k)) / lnln_d
    )
    return per_pass + per_pass * (
        math.log(n_records / memory_records) / math.log(k * n_disks)
    ) * (ln_d / (k * lnln_d)) * correction


def theorem1_case3_reads(
    n_records: float,
    memory_records: float,
    n_disks: int,
    block_size: int,
    r: float,
) -> float:
    """Theorem 1 case 3 (``R = rD ln D``): asymptotically optimal bound.

    ``N/DB + (N/DB) · (ln(N/M)/ln(rD ln D)) · (1 + sqrt(2/r) + ...)``.
    """
    if r <= 0:
        raise ConfigError(f"r must be positive, got {r}")
    if n_disks < 2:
        raise ConfigError("case-3 expansion requires D >= 2")
    per_pass = n_records / (n_disks * block_size)
    if n_records <= memory_records:
        return per_pass
    big_r = r * n_disks * math.log(n_disks)
    factor = 1.0 + math.sqrt(2.0 / r) + math.log(r) / (
        math.sqrt(2.0 * r) * math.log(n_disks)
    )
    return per_pass + per_pass * (
        math.log(n_records / memory_records) / math.log(big_r)
    ) * factor


def gf_expected_reads_bound(
    n_records: float,
    memory_records: float,
    n_disks: int,
    block_size: int,
    merge_order: int,
) -> float:
    """Rigorous finite-parameter expected-read bound via §7.3's recipe.

    Each merge pass consists of ``N/(R·B)`` phases, each costing at most
    the expected maximum dependent occupancy of ``R`` balls in ``D``
    bins — bounded for all finite sizes by
    :func:`repro.occupancy.gf_expected_max_bound`.  Adds the run
    formation read pass.
    """
    per_pass = n_records / (n_disks * block_size)
    if n_records <= memory_records:
        return per_pass
    passes = merge_passes(n_records, memory_records, merge_order)
    phases_per_pass = n_records / (merge_order * block_size)
    per_phase = gf_expected_max_bound(merge_order, n_disks)
    return per_pass + passes * phases_per_pass * per_phase
