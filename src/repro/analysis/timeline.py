"""Discrete-event timeline simulation of one SRM merge.

Where :mod:`repro.analysis.overlap` *models* pipelining analytically,
this module *executes* it: a two-resource discrete-event simulation
with

* an **I/O channel** serving one parallel operation at a time (the
  D-disk model's synchronized array), each costing the timing model's
  per-operation service time, and
* a **CPU** consuming resident blocks at a configurable rate,

driven by the real :class:`MergeScheduler`.  In *prefetch* mode the
channel opportunistically issues case-2a ``ParRead``s whenever it falls
idle (the paper's overlapping of I/O and computation, enabled by
Lemma 1's early-issue guarantee); in *demand* mode reads are issued
only when the CPU stalls on a missing block.  The difference between
the two makespans is the measured value of SRM's prefetching.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.events import OverlapEngine, OverlapReport
from ..core.job import MergeJob
from ..core.schedule import MergeScheduler
from ..core.simulator import _DEPLETE, build_event_stream
from ..disks.timing import DiskTimingModel
from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class TimelineResult:
    """Outcome of a timeline simulation."""

    makespan_ms: float
    cpu_busy_ms: float
    io_busy_ms: float
    cpu_stall_ms: float
    total_reads: int
    total_writes: int
    prefetch: bool

    @property
    def cpu_utilization(self) -> float:
        """Fraction of the makespan the CPU spent merging.

        A zero-duration (empty-input) timeline has no makespan to be
        busy during; report 0.0 instead of dividing by zero.
        """
        return self.cpu_busy_ms / self.makespan_ms if self.makespan_ms else 0.0

    @property
    def io_utilization(self) -> float:
        """Fraction of the makespan the channel spent transferring.

        Zero-duration timelines report 0.0 (see ``cpu_utilization``).
        """
        return self.io_busy_ms / self.makespan_ms if self.makespan_ms else 0.0


def simulate_merge_timeline(
    job: MergeJob,
    timing: DiskTimingModel,
    block_size: int,
    cpu_us_per_record: float,
    prefetch: bool = True,
) -> TimelineResult:
    """Run one merge through the two-resource timeline simulation.

    Parameters
    ----------
    job:
        The merge's block boundaries and layout.
    timing:
        Per-operation disk service time (all operations move ``<= D``
        blocks concurrently, so one op = one block time).
    block_size:
        Records per block, for transfer and CPU time.
    cpu_us_per_record:
        Internal merge processing cost per record.
    prefetch:
        Issue eager case-2a reads whenever the channel is idle.
    """
    if cpu_us_per_record < 0:
        raise ConfigError(f"cpu cost must be >= 0, got {cpu_us_per_record}")
    if block_size < 1:
        raise ConfigError(f"block size must be >= 1, got {block_size}")
    B = block_size
    t_io = timing.op_time_ms(B)
    cpu_block_ms = B * cpu_us_per_record / 1000.0
    D = job.n_disks

    sched = MergeScheduler(job)
    sched.initial_load()

    now = sched.initial_reads * t_io  # step 1 cannot overlap anything
    io_free = now
    io_busy = sched.initial_reads * t_io
    cpu_busy = 0.0
    stall = 0.0
    writes = 0
    depletions = 0

    _, kinds, runs, blocks = build_event_stream(job)
    for kind, r, b in zip(kinds.tolist(), runs.tolist(), blocks.tolist()):
        if kind == _DEPLETE:
            # CPU consumes the leading block, then retires it.
            now += cpu_block_ms
            cpu_busy += cpu_block_ms
            sched.on_leading_depleted(r)
            depletions += 1
            if depletions % D == 0:
                # An output stripe is ready: one parallel write.
                start = max(io_free, now)
                io_free = start + t_io
                io_busy += t_io
        else:
            if not sched.is_resident(r, b):
                # Demand read(s): CPU stalls until the block lands.
                before = sched.merge_parreads
                sched.ensure_resident(r, b)
                n_reads = sched.merge_parreads - before
                start = max(io_free, now)
                complete = start + n_reads * t_io
                io_free = complete
                io_busy += n_reads * t_io
                stall += max(0.0, complete - now)
                now = complete
        if prefetch:
            # Fill idle channel time with case-2a reads.
            while io_free <= now and sched.maybe_prefetch():
                io_free = max(io_free, now) + t_io
                io_busy += t_io

    # Drain the final partial output stripe.
    if depletions % D:
        start = max(io_free, now)
        io_free = start + t_io
        io_busy += t_io
    writes = depletions // D + (1 if depletions % D else 0)

    makespan = max(now, io_free)
    return TimelineResult(
        makespan_ms=makespan,
        cpu_busy_ms=cpu_busy,
        io_busy_ms=io_busy,
        cpu_stall_ms=stall,
        total_reads=sched.initial_reads + sched.merge_parreads,
        total_writes=writes,
        prefetch=prefetch,
    )


def execute_merge_timeline(
    job: MergeJob,
    timing: DiskTimingModel,
    block_size: int,
    cpu_us_per_record: float,
    mode: str = "full",
    prefetch_depth: int = 2,
) -> OverlapReport:
    """Execute one merge through the per-disk overlap engine.

    Where :func:`simulate_merge_timeline` models a single synchronized
    I/O channel, this drives the same block-level event stream through
    the :class:`~repro.core.events.OverlapEngine`: independent per-disk
    FIFO queues, a ``prefetch_depth``-deep read-ahead window, and (in
    ``mode="full"``) write-behind of output stripes.  The returned
    :class:`~repro.core.events.OverlapReport` is directly comparable to
    the one a data-moving :func:`~repro.core.merge.merge_runs` produces,
    so the predicted-vs-executed overlap gap is a measured quantity.

    Output-stripe writes are synthesized (one full-``D`` stripe per
    ``D`` depletions, matching SRM's perfect write parallelism), since a
    job carries block boundaries, not output addresses.
    """
    if block_size < 1:
        raise ConfigError(f"block size must be >= 1, got {block_size}")
    D = job.n_disks
    eng = OverlapEngine(
        timing,
        block_size,
        D,
        cpu_us_per_record,
        mode=mode,
        prefetch_depth=prefetch_depth,
    )
    sched = MergeScheduler(job, on_read=eng.on_parread, on_flush=eng.on_flush)
    sched.initial_load()

    depletions = 0
    _, kinds, runs, blocks = build_event_stream(job)
    for kind, r, b in zip(kinds.tolist(), runs.tolist(), blocks.tolist()):
        if kind == _DEPLETE:
            eng.wait_for(r, b)
            eng.compute(block_size)
            sched.on_leading_depleted(r)
            depletions += 1
            if depletions % D == 0:
                eng.on_write(list(range(D)))
        else:
            sched.ensure_resident(r, b)
            eng.wait_for(r, b)
        eng.pump(sched)
    if depletions % D:
        eng.on_write(list(range(depletions % D)))
    return eng.finish()
