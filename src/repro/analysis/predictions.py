"""Predicted-vs-measured accounting for completed sorts.

Given a finished :class:`SortResult` (or DSM equivalent), compute what
the §9.1 formulas predicted for the same ``N``, ``M``, ``B``, ``D`` and
merge order, and report line-by-line deviations.  Useful both as a
regression harness (tests assert the predictions track measurements)
and as a user-facing sanity check that a simulated configuration
behaves like the theory says it should.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..baselines.dsm import DSMSortResult
from ..core.mergesort import SortResult
from .formulas import merge_passes


@dataclass(frozen=True, slots=True)
class SortPrediction:
    """Formula-side expectations for one external sort."""

    n_records: int
    run_length: int
    merge_order: int
    n_disks: int
    block_size: int
    expected_runs: int
    expected_passes: int
    expected_writes: float
    expected_reads_floor: float

    @property
    def expected_write_per_pass(self) -> float:
        return self.n_records / (self.n_disks * self.block_size)


def predict_sort(
    n_records: int,
    run_length: int,
    merge_order: int,
    n_disks: int,
    block_size: int,
) -> SortPrediction:
    """Closed-form expectations for a sort with the given geometry.

    * runs formed: ``ceil(N / run_length_block_aligned)``;
    * merge passes: ``ceil(log_R runs)`` (the exact integer count, not
      the paper's un-ceiled convenience expression);
    * writes: one write pass per merge pass plus run formation, each
      ``ceil(blocks / D)`` operations (perfect write parallelism);
    * reads floor: the same quantity — SRM's reads exceed it by the
      factor ``v >= 1``.
    """
    blocks_per_run = max(1, run_length // block_size)
    n_blocks = -(-n_records // block_size)
    runs = -(-n_blocks // blocks_per_run)
    if runs <= 1:
        passes = 0
    else:
        passes = max(1, math.ceil(math.log(runs) / math.log(merge_order) - 1e-12))
    per_pass = -(-n_blocks // n_disks)
    return SortPrediction(
        n_records=n_records,
        run_length=run_length,
        merge_order=merge_order,
        n_disks=n_disks,
        block_size=block_size,
        expected_runs=runs,
        expected_passes=passes,
        expected_writes=float(per_pass * (1 + passes)),
        expected_reads_floor=float(per_pass * (1 + passes)),
    )


@dataclass(frozen=True, slots=True)
class PredictionReport:
    """Measured values next to their predictions."""

    prediction: SortPrediction
    measured_runs: int
    measured_passes: int
    measured_reads: int
    measured_writes: int

    @property
    def read_overhead(self) -> float:
        """Measured reads over the perfect-parallelism floor (>= ~1)."""
        return self.measured_reads / self.prediction.expected_reads_floor

    @property
    def write_overhead(self) -> float:
        """Measured writes over the prediction (~1; >1 only from
        partial-stripe rounding across many runs)."""
        return self.measured_writes / self.prediction.expected_writes

    def render(self) -> str:
        p = self.prediction
        return "\n".join(
            [
                f"runs formed : measured {self.measured_runs}, predicted {p.expected_runs}",
                f"merge passes: measured {self.measured_passes}, predicted {p.expected_passes}",
                f"writes      : measured {self.measured_writes}, "
                f"predicted {p.expected_writes:.0f} (x{self.write_overhead:.3f})",
                f"reads       : measured {self.measured_reads}, "
                f"floor {p.expected_reads_floor:.0f} (v = {self.read_overhead:.3f})",
            ]
        )


def compare_srm_result(
    result: SortResult, run_length: int | None = None
) -> PredictionReport:
    """Prediction report for a completed SRM sort."""
    cfg = result.config
    length = run_length if run_length is not None else cfg.memory_records
    pred = predict_sort(
        result.n_records, length, cfg.merge_order, cfg.n_disks, cfg.block_size
    )
    return PredictionReport(
        prediction=pred,
        measured_runs=result.runs_formed,
        measured_passes=result.n_merge_passes,
        measured_reads=result.io.parallel_reads,
        measured_writes=result.io.parallel_writes,
    )


def compare_dsm_result(
    result: DSMSortResult, run_length: int | None = None
) -> PredictionReport:
    """Prediction report for a completed DSM sort.

    DSM's logical geometry is one disk of block ``D·B``: the per-pass
    operation count is ``ceil(N / DB)`` reads and writes.
    """
    cfg = result.config
    length = run_length if run_length is not None else cfg.memory_records
    pred = predict_sort(
        result.n_records,
        length,
        cfg.merge_order,
        n_disks=1,
        block_size=cfg.superblock_records,
    )
    return PredictionReport(
        prediction=pred,
        measured_runs=result.runs_formed,
        measured_passes=result.n_merge_passes,
        measured_reads=result.io.parallel_reads,
        measured_writes=result.io.parallel_writes,
    )
