"""Mapping the makespan cliff: where overlap stops hiding latency.

SRM's §5.5 schedule plus the overlap engine hide disk latency behind
merge compute — until a straggler gets slow enough (or stalls often
enough) that no legal read-ahead keeps the merge fed.  Past that point
the makespan walks away from its lower bound and the critical path
flips from compute-dominated to read/stall-dominated: the *cliff*.

This module sweeps straggler multipliers (``latency_factors``) and
stall densities across overlap modes and prefetch depths, one traced
:func:`~repro.core.mergesort.srm_sort` per grid point, and uses the
critical-path attribution (:mod:`repro.analysis.critical_path`) to
record, per point:

* the simulated merge makespan and its busy components;
* the **overlap gap** — makespan minus the busiest-lane lower bound
  ``sum over merges of max(cpu busy, busiest disk busy)``, i.e. the
  latency the schedule failed to hide;
* the critical-path category (read/write/compute/stall/...) that
  dominates, locating which resource the cliff hands the makespan to.

When ``adaptive`` is on, every faulted point under an engine-driven
mode is re-run with a :class:`~repro.core.config.LatencyAwareConfig`
and the pair is checked for bit-identical output and no-worse makespan
— the cliff map doubles as the adaptive policy's acceptance harness
(``repro cliff --check``; the ``cliff-smoke`` CI job runs the quick
grid).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.config import LatencyAwareConfig, OverlapConfig, SRMConfig
from ..core.mergesort import srm_sort
from ..faults.plan import FaultPlan, StallWindow
from ..telemetry import Telemetry
from .critical_path import analyze_collector, combine_attribution

#: Default straggler multipliers swept (1.0 = fault-free point).
DEFAULT_FACTORS = (1.0, 2.0, 4.0, 8.0)
#: Default stall densities (count of stall windows on the victim disk).
DEFAULT_STALLS = (0, 4)
#: Default overlap modes: demand-paced reference and full overlap.
DEFAULT_MODES = ("none", "full")
#: Default read-ahead depths.
DEFAULT_DEPTHS = (0, 1, 2)

#: Relative slack for the no-worse gate: simulated clocks are
#: deterministic, so the adaptive makespan must not exceed the fixed
#: one beyond float accumulation noise.
NO_WORSE_RTOL = 1e-9


@dataclass(frozen=True, slots=True)
class CliffSweepConfig:
    """Geometry and axes of one cliff sweep."""

    n_records: int = 20_000
    n_disks: int = 4
    k: int = 2
    block_size: int = 16
    seed: int = 1996
    #: Per-record merge cost; the default puts compute and a fast
    #: disk's block service in the same regime, so overlap has
    #: something to hide and the cliff is visible inside the sweep.
    cpu_us_per_record: float = 1000.0
    modes: tuple[str, ...] = DEFAULT_MODES
    depths: tuple[int, ...] = DEFAULT_DEPTHS
    factors: tuple[float, ...] = DEFAULT_FACTORS
    stalls: tuple[int, ...] = DEFAULT_STALLS
    #: Disk receiving the straggler factor / stall windows.
    victim_disk: int = 1
    #: Re-run faulted engine-driven points with the adaptive policy.
    adaptive: bool = True

    @classmethod
    def quick(cls, **overrides) -> "CliffSweepConfig":
        """The CI-sized grid (8 points): one mode, two depths."""
        defaults = dict(
            modes=("full",), depths=(0, 2), factors=(1.0, 4.0), stalls=(0, 2)
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass(slots=True)
class CliffPoint:
    """One swept grid point (fixed policy, optionally paired adaptive)."""

    mode: str
    prefetch_depth: int
    latency_factor: float
    n_stalls: int
    makespan_ms: float
    cpu_busy_ms: float
    read_stall_ms: float
    write_stall_ms: float
    io_busy_ms: float
    disk_utilization: float
    #: Busiest-lane lower bound: per merge, the slower of CPU busy and
    #: the busiest disk's busy time, summed across merges.
    bound_ms: float
    #: makespan - bound: simulated latency the schedule failed to hide.
    overlap_gap_ms: float
    #: Critical-path category with the largest share of the makespan.
    dominant: str
    #: Critical-path attribution (category -> ms on the path).
    attribution: dict = field(default_factory=dict)
    #: Critical path tiles the makespan bit-exactly in every domain.
    exact: bool = True
    #: Output matched the fault-free sorted reference.
    sorted_ok: bool = True
    # -- adaptive pair (None when the point was not re-run) -----------
    adaptive_makespan_ms: float | None = None
    adaptive_identical: bool | None = None
    improvement_pct: float | None = None
    depth_boosts: int = 0
    floor_issues: int = 0
    slow_disks: tuple[int, ...] = ()

    @property
    def gap_pct(self) -> float:
        """Overlap gap as a fraction of the makespan (percent)."""
        if self.makespan_ms <= 0.0:
            return 0.0
        return 100.0 * self.overlap_gap_ms / self.makespan_ms

    def row(self) -> dict:
        """JSONL-serializable record of this point."""
        d = asdict(self)
        d["gap_pct"] = round(self.gap_pct, 3)
        d["slow_disks"] = list(self.slow_disks)
        return d


@dataclass(slots=True)
class CliffReport:
    """All points of one sweep plus the geometry that produced them."""

    config: CliffSweepConfig
    points: list[CliffPoint] = field(default_factory=list)

    def failures(self) -> list[str]:
        """Gate violations across the grid (empty means all pass)."""
        bad = []
        for p in self.points:
            tag = (
                f"mode={p.mode} depth={p.prefetch_depth}"
                f" factor={p.latency_factor} stalls={p.n_stalls}"
            )
            if not p.sorted_ok:
                bad.append(f"{tag}: output not sorted-identical to reference")
            if not p.exact:
                bad.append(f"{tag}: critical path does not tile the makespan")
            if p.adaptive_makespan_ms is not None:
                if not p.adaptive_identical:
                    bad.append(f"{tag}: adaptive output differs from fixed")
                if p.adaptive_makespan_ms > p.makespan_ms * (1 + NO_WORSE_RTOL):
                    bad.append(
                        f"{tag}: adaptive makespan {p.adaptive_makespan_ms:.1f}"
                        f" > fixed {p.makespan_ms:.1f}"
                    )
        return bad

    def write_jsonl(self, path) -> None:
        """One meta line plus one line per grid point."""
        with open(path, "w", encoding="utf-8") as fh:
            meta = {"type": "meta", **asdict(self.config)}
            fh.write(json.dumps(meta) + "\n")
            for p in self.points:
                fh.write(json.dumps({"type": "point", **p.row()}) + "\n")


def _plan(cfg: CliffSweepConfig, factor: float, n_stalls: int, salt: int):
    """The deterministic fault plan of one grid point (None = clean)."""
    factors = {cfg.victim_disk: factor} if factor != 1.0 else {}
    stalls = tuple(
        # Recurring windows early in the merge: long enough to bite
        # (a window covers several block services), spaced so the
        # disk recovers in between.
        StallWindow(cfg.victim_disk, 1_000.0 + 3_000.0 * i, 500.0)
        for i in range(n_stalls)
    )
    if not factors and not stalls:
        return None
    return FaultPlan(
        seed=cfg.seed + salt, latency_factors=factors, stalls=stalls
    )


def _traced_sort(keys, srm, cfg, overlap, plan):
    """One traced sort; returns (output, result, analyses)."""
    tel = Telemetry(harness="cliff", mode=overlap.mode)
    col = tel.attach_trace()
    out, res = srm_sort(
        keys, srm, rng=cfg.seed + 17, overlap=overlap,
        telemetry=tel, faults=plan,
    )
    tel.finish()
    return out, res, analyze_collector(col)


def _bound_ms(analyses) -> float:
    """Busiest-lane lower bound, summed over the merge domains."""
    total = 0.0
    for a in analyses.values():
        busiest = max((lane.busy_ms for lane in a.lanes), default=0.0)
        total += busiest
    return total


def run_cliff(cfg: CliffSweepConfig) -> CliffReport:
    """Execute the sweep: one (or two) seeded sorts per grid point."""
    srm = SRMConfig.from_k(cfg.k, cfg.n_disks, cfg.block_size)
    rng = np.random.default_rng(cfg.seed)
    keys = rng.integers(0, 2**48, size=cfg.n_records, dtype=np.int64)
    reference = np.sort(keys)
    report = CliffReport(config=cfg)

    salt = 0
    for mode in cfg.modes:
        for depth in cfg.depths:
            for factor in cfg.factors:
                for n_stalls in cfg.stalls:
                    # Deterministic per-point fault seed (str hashing is
                    # process-randomized, so enumerate instead).
                    salt += 1
                    plan = _plan(cfg, factor, n_stalls, salt)
                    overlap = OverlapConfig(
                        mode=mode,
                        prefetch_depth=depth,
                        cpu_us_per_record=cfg.cpu_us_per_record,
                    )
                    out, res, analyses = _traced_sort(
                        keys, srm, cfg, overlap, plan
                    )
                    attr = combine_attribution(analyses.values())
                    attr = {c: round(v, 3) for c, v in attr.items() if v}
                    makespan = res.simulated_merge_ms
                    bound = _bound_ms(analyses)
                    point = CliffPoint(
                        mode=mode,
                        prefetch_depth=depth,
                        latency_factor=factor,
                        n_stalls=n_stalls,
                        makespan_ms=makespan,
                        cpu_busy_ms=sum(
                            r.cpu_busy_ms for r in res.overlap_reports
                        ),
                        read_stall_ms=sum(
                            r.read_stall_ms for r in res.overlap_reports
                        ),
                        write_stall_ms=sum(
                            r.write_stall_ms for r in res.overlap_reports
                        ),
                        io_busy_ms=sum(
                            r.io_busy_ms for r in res.overlap_reports
                        ),
                        disk_utilization=(
                            sum(
                                r.disk_utilization * r.makespan_ms
                                for r in res.overlap_reports
                            )
                            / makespan
                            if makespan
                            else 0.0
                        ),
                        bound_ms=bound,
                        overlap_gap_ms=makespan - bound,
                        dominant=max(attr, key=attr.get) if attr else "none",
                        attribution=attr,
                        exact=all(a.exact for a in analyses.values()),
                        sorted_ok=bool(np.array_equal(out, reference)),
                    )
                    if (
                        cfg.adaptive
                        and plan is not None
                        and mode != "none"
                    ):
                        plan2 = _plan(cfg, factor, n_stalls, salt)
                        adaptive = OverlapConfig(
                            mode=mode,
                            prefetch_depth=depth,
                            cpu_us_per_record=cfg.cpu_us_per_record,
                            latency=LatencyAwareConfig(),
                        )
                        a_out, a_res, _ = _traced_sort(
                            keys, srm, cfg, adaptive, plan2
                        )
                        point.adaptive_makespan_ms = a_res.simulated_merge_ms
                        point.adaptive_identical = bool(
                            np.array_equal(a_out, out)
                        )
                        point.improvement_pct = (
                            100.0
                            * (1.0 - point.adaptive_makespan_ms / makespan)
                            if makespan
                            else 0.0
                        )
                        point.depth_boosts = sum(
                            r.depth_boosts for r in a_res.overlap_reports
                        )
                        point.floor_issues = sum(
                            r.floor_issues for r in a_res.overlap_reports
                        )
                        point.slow_disks = tuple(
                            sorted(
                                {
                                    d
                                    for r in a_res.overlap_reports
                                    for d in r.slow_disks
                                }
                            )
                        )
                    report.points.append(point)
    return report


def render_cliff(report: CliffReport) -> str:
    """The human-readable grid: one row per point, gap and verdicts."""
    lines = [
        "cliff map: makespan vs straggler factor / stall density",
        f"  n={report.config.n_records} D={report.config.n_disks}"
        f" k={report.config.k} B={report.config.block_size}"
        f" cpu={report.config.cpu_us_per_record}us/rec"
        f" victim=disk{report.config.victim_disk}",
        "",
        f"{'mode':8s} {'depth':>5s} {'factor':>6s} {'stalls':>6s}"
        f" {'makespan':>12s} {'gap%':>6s} {'dominant':>9s}"
        f" {'adaptive':>12s} {'improve':>8s}",
    ]
    for p in report.points:
        adaptive = (
            f"{p.adaptive_makespan_ms:12.1f}"
            if p.adaptive_makespan_ms is not None
            else f"{'-':>12s}"
        )
        improve = (
            f"{p.improvement_pct:7.2f}%"
            if p.improvement_pct is not None
            else f"{'-':>8s}"
        )
        lines.append(
            f"{p.mode:8s} {p.prefetch_depth:5d} {p.latency_factor:6.1f}"
            f" {p.n_stalls:6d} {p.makespan_ms:12.1f} {p.gap_pct:6.1f}"
            f" {p.dominant:>9s} {adaptive} {improve}"
        )
    fails = report.failures()
    lines.append("")
    if fails:
        lines.append(f"FAIL ({len(fails)}):")
        lines.extend(f"  {f}" for f in fails)
    else:
        lines.append(
            "all points: output identical, attribution exact,"
            " adaptive no worse than fixed"
        )
    return "\n".join(lines)
