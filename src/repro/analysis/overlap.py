"""I/O–compute overlap model (the paper's "important in practice" claim).

SRM can issue a ``ParRead`` before any block it fetches begins
participating (Lemma 1), so reads overlap internal merging the way
DSM's double buffering does.  This module turns a merge schedule into
wall-clock estimates under two disciplines:

* **serial** — I/O and computation strictly alternate (no overlap):
  ``T = T_io_total + T_cpu_total``;
* **pipelined** — each read interval hides behind the computation of
  the blocks consumed in that interval (and vice versa):
  ``T = T_init + sum_i max(T_io_interval, T_cpu(gap_i))``.

The compute intervals come from the scheduler's measured
``depletion_gaps`` (blocks consumed between consecutive reads), so the
estimate reflects the *actual* interleaving of the schedule, not an
average.  Writes share the disks with reads; they are spread uniformly
across the read intervals, which matches SRM's steady-state behaviour
(one output stripe per ``D`` input blocks consumed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.events import OverlapReport
from ..core.schedule import ScheduleStats
from ..disks.timing import DiskTimingModel
from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class MakespanEstimate:
    """Wall-clock estimates of one merge under both disciplines."""

    serial_ms: float
    pipelined_ms: float
    io_ms: float
    cpu_ms: float

    @property
    def speedup(self) -> float:
        """Serial over pipelined time (1.0 = overlap buys nothing)."""
        return self.serial_ms / self.pipelined_ms if self.pipelined_ms else 1.0

    @property
    def overlap_efficiency(self) -> float:
        """How close the pipeline gets to the ``max(io, cpu)`` ideal."""
        ideal = max(self.io_ms, self.cpu_ms)
        return ideal / self.pipelined_ms if self.pipelined_ms else 1.0


def merge_makespan(
    stats: ScheduleStats,
    timing: DiskTimingModel,
    block_size: int,
    cpu_us_per_record: float,
) -> MakespanEstimate:
    """Estimate the merge's wall time with and without overlap.

    Parameters
    ----------
    stats:
        A completed schedule (must carry ``depletion_gaps``).
    timing:
        Disk service-time model (one parallel op = one block time).
    block_size:
        Records per block, for transfer and CPU time.
    cpu_us_per_record:
        Internal merge processing cost per record, in microseconds.
    """
    if cpu_us_per_record < 0:
        raise ConfigError(f"cpu cost must be >= 0, got {cpu_us_per_record}")
    if not stats.depletion_gaps:
        raise ConfigError("schedule carries no depletion gaps")
    t_io = timing.op_time_ms(block_size)
    cpu_block_ms = block_size * cpu_us_per_record / 1000.0

    n_writes = -(-stats.n_blocks // stats.n_disks)  # perfect write parallelism
    io_ms = (stats.total_reads + n_writes) * t_io
    cpu_ms = stats.n_blocks * cpu_block_ms
    serial = io_ms + cpu_ms

    # Pipelined: the initial load cannot overlap (nothing to compute
    # yet); afterwards each read interval carries its own I/O (the read
    # plus a pro-rata share of the writes) against the computation of
    # the blocks depleted in it.
    gaps = stats.depletion_gaps
    write_share = (
        n_writes / stats.merge_parreads if stats.merge_parreads else 0.0
    )
    interval_io = t_io * (1.0 + write_share)
    pipelined = stats.initial_reads * t_io + gaps[0] * cpu_block_ms
    for gap in gaps[1:]:
        pipelined += max(interval_io, gap * cpu_block_ms)
    return MakespanEstimate(
        serial_ms=serial, pipelined_ms=pipelined, io_ms=io_ms, cpu_ms=cpu_ms
    )


@dataclass(frozen=True, slots=True)
class OverlapGap:
    """Predicted-vs-executed overlap comparison for one merge.

    The analytical model (:func:`merge_makespan`) predicts a pipelined
    makespan from the schedule's depletion gaps; the discrete-event
    engine (:class:`~repro.core.events.OverlapEngine`) *executes* the
    overlap on per-disk queues.  The gap between the two is the model
    error this module previously could only guess at.
    """

    predicted_serial_ms: float
    predicted_pipelined_ms: float
    executed_ms: float

    @property
    def gap_ratio(self) -> float:
        """Executed over predicted-pipelined time (1.0 = model exact)."""
        if self.predicted_pipelined_ms == 0.0:
            return 1.0
        return self.executed_ms / self.predicted_pipelined_ms

    @property
    def executed_speedup(self) -> float:
        """Serial model time over executed time — the realized overlap win."""
        return (
            self.predicted_serial_ms / self.executed_ms
            if self.executed_ms
            else 1.0
        )


def overlap_gap(
    estimate: MakespanEstimate, report: OverlapReport
) -> OverlapGap:
    """Compare an analytical estimate with an engine-measured execution."""
    return OverlapGap(
        predicted_serial_ms=estimate.serial_ms,
        predicted_pipelined_ms=estimate.pipelined_ms,
        executed_ms=report.makespan_ms,
    )
