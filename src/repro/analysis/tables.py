"""Regeneration of the paper's Tables 1–4 and Figure 1 (§9.2–9.3).

Each ``tableN`` function returns a :class:`TableGrid` matching the
paper's layout; the ``PAPER_TABLEN`` constants hold the published
values for paper-vs-measured comparison in EXPERIMENTS.md and the
benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.layout import LayoutStrategy
from ..core.simulator import simulate_merge
from ..occupancy.classical import overhead_v
from ..rng import RngLike, ensure_rng, spawn
from ..workloads.partitions import random_partition_job
from .formulas import c_ratio
from .report import TableGrid

# -- published values -------------------------------------------------------

#: Table 1: worst-case-expectation overhead v(k, D) = C(kD, D)/k,
#: estimated by the authors with ball-throwing simulations.
PAPER_TABLE1 = TableGrid(
    ks=[5, 10, 20, 50, 100, 1000],
    ds=[5, 10, 50, 100, 1000],
    values=np.array(
        [
            [1.6, 1.7, 2.2, 2.3, 2.7],
            [1.4, 1.5, 1.8, 1.9, 2.2],
            [1.3, 1.4, 1.5, 1.6, 1.8],
            [1.2, 1.2, 1.3, 1.4, 1.5],
            [1.11, 1.16, 1.22, 1.26, 1.3],
            [1.04, 1.05, 1.08, 1.08, 1.1],
        ]
    ),
    title="Table 1: overhead v(k, D) from classical occupancy",
)

#: Table 2: C_SRM/C_DSM with B = 1000 and v from Table 1.
PAPER_TABLE2 = TableGrid(
    ks=[5, 10, 20, 50, 100, 1000],
    ds=[5, 10, 50, 100, 1000],
    values=np.array(
        [
            [0.71, 0.62, 0.51, 0.48, 0.46],
            [0.72, 0.66, 0.54, 0.50, 0.48],
            [0.75, 0.68, 0.56, 0.53, 0.49],
            [0.77, 0.71, 0.59, 0.55, 0.50],
            [0.78, 0.72, 0.61, 0.57, 0.51],
            [0.83, 0.77, 0.67, 0.63, 0.56],
        ]
    ),
    title="Table 2: performance ratio C_SRM/C_DSM (worst-case v)",
)

#: Table 3: average-case overhead v(k, D) from simulating SRM itself.
PAPER_TABLE3 = TableGrid(
    ks=[5, 10, 50],
    ds=[5, 10, 50],
    values=np.array(
        [
            [1.0, 1.0, 1.2],
            [1.00, 1.0, 1.1],
            [1.00, 1.00, 1.00],
        ]
    ),
    title="Table 3: overhead v(k, D) from SRM merge simulations",
)

#: Table 4: C'_SRM/C_DSM with v from the Table 3 simulations.
PAPER_TABLE4 = TableGrid(
    ks=[5, 10, 50],
    ds=[5, 10, 50],
    values=np.array(
        [
            [0.56, 0.47, 0.37],
            [0.61, 0.52, 0.40],
            [0.71, 0.63, 0.51],
        ]
    ),
    title="Table 4: performance ratio C'_SRM/C_DSM (average-case v)",
)

#: Block size used by the paper for all Table 2/4 formula evaluations.
PAPER_BLOCK_SIZE = 1000


# -- regeneration ------------------------------------------------------------


def table1(
    ks: list[int] | None = None,
    ds: list[int] | None = None,
    n_trials: int = 400,
    rng: RngLike = None,
) -> TableGrid:
    """Reproduce Table 1: ``v(k, D) = C(kD, D)/k`` by ball throwing."""
    from ..occupancy.classical import expected_max_occupancy

    ks = list(PAPER_TABLE1.ks) if ks is None else ks
    ds = list(PAPER_TABLE1.ds) if ds is None else ds
    gens = iter(spawn(rng, len(ks) * len(ds)))
    values = np.empty((len(ks), len(ds)))
    errors = np.empty((len(ks), len(ds)))
    for i, k in enumerate(ks):
        for j, d in enumerate(ds):
            est = expected_max_occupancy(k * d, d, n_trials=n_trials, rng=next(gens))
            values[i, j] = est.mean / k
            errors[i, j] = est.std_error / k
    return TableGrid(
        ks=ks, ds=ds, values=values, errors=errors, title=PAPER_TABLE1.title
    )


def table2(
    v_grid: TableGrid,
    block_size: int = PAPER_BLOCK_SIZE,
) -> TableGrid:
    """Reproduce Table 2 from a Table 1-style overhead grid."""
    values = np.empty_like(v_grid.values)
    for i, k in enumerate(v_grid.ks):
        for j, d in enumerate(v_grid.ds):
            values[i, j] = c_ratio(k, d, block_size, float(v_grid.values[i, j]))
    return TableGrid(
        ks=list(v_grid.ks), ds=list(v_grid.ds), values=values, title=PAPER_TABLE2.title
    )


def table3(
    ks: list[int] | None = None,
    ds: list[int] | None = None,
    blocks_per_run: int = 100,
    block_size: int = 8,
    n_trials: int = 1,
    rng: RngLike = None,
) -> TableGrid:
    """Reproduce Table 3: overhead from simulating the SRM merge itself.

    Each cell merges ``R = kD`` runs of ``blocks_per_run`` blocks drawn
    from the §9.3 uniform-partition distribution and reports the mean
    measured ``v`` over *n_trials* independent merges.

    The paper used ``L = 1000·B`` records per run and ``B`` around 1000;
    the schedule depends only on block boundaries, so a scaled-down
    ``B`` leaves ``v`` statistically unchanged (the paper itself varied
    ``B`` and ``L`` and reports insensitivity).  Defaults here are sized
    for interactive use; pass ``blocks_per_run=1000`` for paper scale.
    """
    ks = list(PAPER_TABLE3.ks) if ks is None else ks
    ds = list(PAPER_TABLE3.ds) if ds is None else ds
    gens = iter(spawn(rng, len(ks) * len(ds)))
    values = np.empty((len(ks), len(ds)))
    errors = np.zeros((len(ks), len(ds)))
    for i, k in enumerate(ks):
        for j, d in enumerate(ds):
            gen = next(gens)
            vs = []
            for _ in range(n_trials):
                job = random_partition_job(
                    k, d, blocks_per_run, block_size, rng=gen,
                    strategy=LayoutStrategy.RANDOMIZED,
                )
                vs.append(simulate_merge(job).overhead_v)
            values[i, j] = float(np.mean(vs))
            if n_trials > 1:
                errors[i, j] = float(np.std(vs, ddof=1) / np.sqrt(n_trials))
    return TableGrid(
        ks=ks,
        ds=ds,
        values=values,
        errors=errors if n_trials > 1 else None,
        title=PAPER_TABLE3.title,
    )


def table4(
    v_grid: TableGrid,
    block_size: int = PAPER_BLOCK_SIZE,
) -> TableGrid:
    """Reproduce Table 4 from a Table 3-style simulated overhead grid.

    Identical formula to Table 2; only the provenance of ``v`` differs
    (average-case simulation instead of worst-case occupancy).  Note the
    paper evaluates the ratio with ``B = 1000`` regardless of the
    simulation's internal block size.
    """
    grid = table2(v_grid, block_size)
    return TableGrid(
        ks=list(grid.ks), ds=list(grid.ds), values=grid.values, title=PAPER_TABLE4.title
    )


# -- Figure 1 -----------------------------------------------------------------


@dataclass(frozen=True)
class Figure1Result:
    """The Figure 1 reproduction: instances plus distribution summary."""

    dependent_instance: np.ndarray
    classical_instance: np.ndarray
    dependent_expected_max: float
    classical_expected_max: float

    @property
    def conjecture_holds(self) -> bool:
        """§7.2's conjecture: dependent <= classical expected maximum."""
        return self.dependent_expected_max <= self.classical_expected_max + 1e-9


def figure1(n_trials: int = 20_000, rng: RngLike = None) -> Figure1Result:
    """Reproduce Figure 1's instance (N_b=12, C=5, D=4) and back it with
    the exact expected maxima of both occupancy models."""
    from ..occupancy.dependent import (
        FIGURE1_CHAIN_LENGTHS,
        FIGURE1_N_BINS,
        figure1_classical_instance,
        figure1_dependent_instance,
    )
    from ..occupancy.exact import (
        exact_classical_expected_max,
        exact_dependent_expected_max,
    )

    dep = float(exact_dependent_expected_max(FIGURE1_CHAIN_LENGTHS, FIGURE1_N_BINS))
    cla = float(exact_classical_expected_max(12, FIGURE1_N_BINS))
    return Figure1Result(
        dependent_instance=figure1_dependent_instance(),
        classical_instance=figure1_classical_instance(),
        dependent_expected_max=dep,
        classical_expected_max=cla,
    )
