"""Hot-path performance harness (``repro bench``).

Times the three data-plane hot paths against their reference
implementations and *proves equivalence while doing so*:

* **merge** — full ``srm_sort`` with ``merger="losertree"`` (the
  vectorized batched data plane) vs. ``merger="heapq"`` (the reference
  loop).  Identical output records, per-merge :class:`ScheduleStats`,
  and disk-system I/O counters are asserted on every run.
* **run formation** — replacement selection with ``engine="block"``
  (array-at-a-time) vs. ``engine="record"`` (the heap oracle).
  Identical run contents and I/O counters are asserted.
* **writer** — :class:`~repro.core.writer.RunWriter` ring-buffer
  streaming throughput (no alternate implementation; tracked so
  regressions are visible).
* **backend** — the same sort on the in-RAM dict backend vs. the
  mmap slot-record backend at pinned layout rng; identical charged
  I/O is asserted, so the delta prices the storage layer alone.
* **parallel_merge** — serial loser-tree drain vs. the
  process-parallel Merge Path plane at W=1,2,4; bit-identical output
  and ParRead/flush schedule asserted on every row.

Results land in a JSON report (default ``BENCH_sort_throughput.json``)
with records/second, wall-clock, heap cycles, and speedups.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Callable

import numpy as np

from .core import SRMConfig, srm_sort
from .core.layout import LayoutStrategy
from .core.run_formation import form_runs_replacement_selection
from .core.writer import RunWriter
from .disks.files import StripedFile, StripedRun
from .disks.system import ParallelDiskSystem
from .errors import DataError
from .telemetry import Telemetry
from .telemetry.schema import (
    SCHED_BLOCKS_FLUSHED,
    SCHED_FLUSH_OPS,
    SCHED_INITIAL_READS,
    SCHED_MERGE_PARREADS,
    SCHEMA_VERSION,
)
from .workloads import uniform_permutation

#: Default scales: quick mode for CI smoke, full mode for the committed
#: report (full-mode run formation uses M >= 1e5 per the target spec).
QUICK = {
    "merge_records": 20_000,
    "rs_records": 30_000,
    "rs_memory": 10_000,
    "writer_records": 200_000,
    "pmerge_records": 120_000,
    "adaptive_records": 12_000,
}
FULL = {
    "merge_records": 200_000,
    "rs_records": 300_000,
    "rs_memory": 100_000,
    "writer_records": 2_000_000,
    "pmerge_records": 1_600_000,
    "adaptive_records": 40_000,
}


def _time(fn: Callable[[], Any]) -> tuple[float, Any]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _schedule_tuple(s) -> tuple:
    return (
        s.initial_reads,
        s.merge_parreads,
        s.blocks_read,
        s.flush_ops,
        s.blocks_flushed,
        s.n_blocks,
        s.max_mr_occupied,
    )


def _io_tuple(io) -> tuple:
    return (
        io.parallel_reads,
        io.parallel_writes,
        io.blocks_read,
        io.blocks_written,
        tuple(int(x) for x in io.reads_per_disk),
        tuple(int(x) for x in io.writes_per_disk),
    )


def bench_merge(n_records: int, k: int = 4, n_disks: int = 4,
                block_size: int = 64, seed: int = 2) -> dict:
    """Time ``srm_sort`` with both mergers; assert identical I/O + output."""
    keys = uniform_permutation(n_records, rng=seed)
    cfg = SRMConfig.from_k(k, n_disks, block_size)
    out: dict[str, dict] = {}
    baseline: dict[str, Any] = {}
    for merger in ("heapq", "losertree"):
        wall, (sorted_keys, res) = _time(
            lambda m=merger: srm_sort(keys, cfg, rng=seed + 1, merger=m)
        )
        sched = [_schedule_tuple(s) for s in res.merge_schedules]
        io = _io_tuple(res.io)
        rounds = res.system.channel_rounds
        if not baseline:
            baseline = {"keys": sorted_keys, "sched": sched, "io": io,
                        "rounds": rounds}
        else:
            if not np.array_equal(baseline["keys"], sorted_keys):
                raise DataError("merger equivalence violated: output records differ")
            if (baseline["sched"] != sched or baseline["io"] != io
                    or baseline["rounds"] != rounds):
                raise DataError("merger equivalence violated: I/O schedules differ")
        out[merger] = {
            "wall_s": round(wall, 6),
            "records_per_sec": round(n_records / wall),
            "heap_cycles": res.heap_cycles,
            "parallel_ios": res.total_parallel_ios,
        }
    out["speedup"] = round(
        out["losertree"]["records_per_sec"] / out["heapq"]["records_per_sec"], 3
    )
    out["params"] = {
        "n_records": n_records, "k": k, "n_disks": n_disks,
        "block_size": block_size, "seed": seed,
    }
    out["io_equivalent"] = True  # asserted above; a failure raises
    return out


def bench_run_formation(n_records: int, memory_records: int,
                        n_disks: int = 4, block_size: int = 64,
                        seed: int = 5) -> dict:
    """Time replacement selection with both engines; assert equivalence."""
    keys = uniform_permutation(n_records, rng=seed)
    out: dict[str, dict] = {}
    baseline: dict[str, Any] = {}
    for engine in ("record", "block"):
        system = ParallelDiskSystem(n_disks, block_size)
        infile = StripedFile.from_records(system, keys)
        before = system.stats.snapshot()
        wall, runs = _time(
            lambda s=system, f=infile, e=engine: form_runs_replacement_selection(
                s, f, memory_records, LayoutStrategy.RANDOMIZED,
                rng=seed + 1, engine=e,
            )
        )
        io = _io_tuple(system.stats.since(before))
        contents = [
            tuple(
                system.disks[a.disk].read(a.slot).keys.tobytes()
                for a in r.addresses
            )
            for r in runs
        ]
        if not baseline:
            baseline = {"io": io, "contents": contents, "n_runs": len(runs)}
        else:
            if baseline["contents"] != contents:
                raise DataError("engine equivalence violated: run contents differ")
            if baseline["io"] != io:
                raise DataError("engine equivalence violated: I/O counts differ")
        out[engine] = {
            "wall_s": round(wall, 6),
            "records_per_sec": round(n_records / wall),
            "runs_formed": len(runs),
        }
    out["speedup"] = round(
        out["block"]["records_per_sec"] / out["record"]["records_per_sec"], 3
    )
    out["params"] = {
        "n_records": n_records, "memory_records": memory_records,
        "n_disks": n_disks, "block_size": block_size, "seed": seed,
    }
    out["io_equivalent"] = True
    return out


def bench_writer(n_records: int, n_disks: int = 4, block_size: int = 64,
                 chunk: int = 96) -> dict:
    """Time ring-buffer streaming of a sorted stream through RunWriter."""
    system = ParallelDiskSystem(n_disks, block_size)
    keys = np.arange(n_records, dtype=np.int64)

    def run():
        w = RunWriter(system, run_id=0, start_disk=0)
        for i in range(0, n_records, chunk):
            w.append(keys[i : i + chunk])
        return w.finalize()

    wall, run_out = _time(run)
    assert run_out.n_records == n_records
    return {
        "wall_s": round(wall, 6),
        "records_per_sec": round(n_records / wall),
        "append_chunk": chunk,
        "max_buffered_blocks": 2 * n_disks,
        "params": {
            "n_records": n_records, "n_disks": n_disks, "block_size": block_size,
        },
    }


def bench_telemetry(n_records: int, k: int = 4, n_disks: int = 4,
                    block_size: int = 64, seed: int = 2,
                    repeats: int = 3) -> dict:
    """One telemetry-enabled sort: registry snapshot + enable overhead.

    The registry's canonical schema names (``sched.*``) are the same
    quantities :class:`~repro.core.schedule.ScheduleStats` reports, so
    the two accountings are cross-checked here — a drift between
    ``MergeScheduler.stats()`` and the metrics layer fails the bench.
    The disabled-mode wall-clock sits next to the enabled one so the
    near-zero-overhead claim is a measured number, not a promise.
    """
    keys = uniform_permutation(n_records, rng=seed)
    cfg = SRMConfig.from_k(k, n_disks, block_size)
    # Best-of-N per mode: a single sort is ~0.3 s, where scheduler noise
    # alone swings +-10%; the min is the honest cost floor of each mode.
    wall_off = min(
        _time(lambda: srm_sort(keys, cfg, rng=seed + 1))[0]
        for _ in range(repeats)
    )
    wall_on = float("inf")
    tel = res = None
    for _ in range(repeats):
        t = Telemetry(
            algo="srm", n_records=n_records, n_disks=n_disks,
            block_size=block_size, merge_order=cfg.merge_order, seed=seed,
        )
        wall, (_, r) = _time(
            lambda t=t: srm_sort(keys, cfg, rng=seed + 1, telemetry=t)
        )
        if wall < wall_on:
            wall_on, tel, res = wall, t, r
    tel.finish()
    snap = tel.registry.snapshot()
    expected = {
        SCHED_INITIAL_READS: sum(s.initial_reads for s in res.merge_schedules),
        SCHED_MERGE_PARREADS: sum(s.merge_parreads for s in res.merge_schedules),
        SCHED_FLUSH_OPS: sum(s.flush_ops for s in res.merge_schedules),
        SCHED_BLOCKS_FLUSHED: sum(s.blocks_flushed for s in res.merge_schedules),
    }
    for name, want in expected.items():
        got = snap[name]["value"]
        if got != want:
            raise DataError(
                f"telemetry drift: registry {name}={got} != "
                f"ScheduleStats sum {want}"
            )
    return {
        "schema": SCHEMA_VERSION,
        "wall_s_disabled": round(wall_off, 6),
        "wall_s_enabled": round(wall_on, 6),
        "enable_overhead_frac": round(wall_on / wall_off - 1.0, 4),
        "counters": {name: snap[name]["value"] for name in sorted(expected)},
        "n_metrics": len(snap),
        "consistent_with_schedule_stats": True,  # asserted above
        "params": {
            "n_records": n_records, "k": k, "n_disks": n_disks,
            "block_size": block_size, "seed": seed,
        },
    }


def bench_tracing(n_records: int, k: int = 4, n_disks: int = 4,
                  block_size: int = 64, seed: int = 2,
                  repeats: int = 3) -> dict:
    """What arming the causal trace ring costs, and what it proves.

    Three best-of-N timings of the same overlap-engine sort: telemetry
    off, telemetry on, telemetry + trace collector armed.  The armed
    run's trace is then attributed — the critical-path total must equal
    every merge domain's simulated makespan *exactly* (same float), so
    the bench doubles as an end-to-end exactness assertion.
    """
    from .analysis.critical_path import analyze_collector
    from .core.config import OverlapConfig

    keys = uniform_permutation(n_records, rng=seed)
    cfg = SRMConfig.from_k(k, n_disks, block_size)
    overlap = OverlapConfig(mode="full", prefetch_depth=2)
    wall_off = min(
        _time(lambda: srm_sort(keys, cfg, rng=seed + 1, overlap=overlap))[0]
        for _ in range(repeats)
    )
    wall_tel = float("inf")
    for _ in range(repeats):
        t = Telemetry(algo="srm")
        wall_tel = min(
            wall_tel,
            _time(
                lambda t=t: srm_sort(
                    keys, cfg, rng=seed + 1, overlap=overlap, telemetry=t
                )
            )[0],
        )
    wall_trace = float("inf")
    col = None
    for _ in range(repeats):
        t = Telemetry(algo="srm")
        c = t.attach_trace()
        wall, _out = _time(
            lambda t=t: srm_sort(
                keys, cfg, rng=seed + 1, overlap=overlap, telemetry=t
            )
        )
        if wall < wall_trace:
            wall_trace, col = wall, c
    analyses = analyze_collector(col)
    if not analyses:
        raise DataError("tracing bench: armed run produced no trace domains")
    for dom, a in analyses.items():
        if not a.exact or a.total_ms != a.makespan_ms:
            raise DataError(
                f"tracing bench: domain {dom} critical path {a.total_ms!r} "
                f"!= makespan {a.makespan_ms!r}"
            )
    return {
        "wall_s_telemetry_off": round(wall_off, 6),
        "wall_s_telemetry_on": round(wall_tel, 6),
        "wall_s_trace_armed": round(wall_trace, 6),
        "trace_overhead_frac": round(wall_trace / wall_tel - 1.0, 4),
        "trace_overhead_vs_off_frac": round(wall_trace / wall_off - 1.0, 4),
        "trace_records": col.emitted,
        "trace_dropped": col.dropped,
        "domains": len(analyses),
        "critical_path_exact": True,  # asserted above, every domain
        "params": {
            "n_records": n_records, "k": k, "n_disks": n_disks,
            "block_size": block_size, "seed": seed, "overlap": "full",
        },
    }


def bench_faults(n_records: int, k: int = 4, n_disks: int = 4,
                 block_size: int = 64, seed: int = 2) -> dict:
    """Cost of the fault-injected data path vs. the untouched fast path.

    Arming an injector reroutes every stripe through the per-block
    retry/checksum machinery, so this measures what resilience costs —
    and asserts that a transiently-failing sort still produces the
    fault-free output bit for bit.
    """
    from .faults import FaultPlan

    keys = uniform_permutation(n_records, rng=seed)
    cfg = SRMConfig.from_k(k, n_disks, block_size)
    wall_off, (out_off, res_off) = _time(
        lambda: srm_sort(keys, cfg, rng=seed + 1)
    )
    plan = FaultPlan(seed=seed, read_fail_p=0.02)
    wall_on, (out_on, res_on) = _time(
        lambda: srm_sort(keys, cfg, rng=seed + 1, faults=plan)
    )
    if not np.array_equal(out_off, out_on):
        raise DataError("fault path equivalence violated: outputs differ")
    stats = res_on.system.faults.stats.snapshot()
    # Same measurement for the write-path faults plus rotating parity:
    # what full redundancy (parity groups + torn-write repair) costs in
    # wall time and charged I/O, with the same bit-identity assertion.
    wplan = FaultPlan(
        seed=seed, write_fail_p=0.02, torn_write_p=0.01, redundancy="parity"
    )
    wall_par, (out_par, res_par) = _time(
        lambda: srm_sort(keys, cfg, rng=seed + 1, faults=wplan)
    )
    if not np.array_equal(out_off, out_par):
        raise DataError("parity path equivalence violated: outputs differ")
    pstats = res_par.system.faults.stats.snapshot()
    # Checksum throughput: the armed read path CRCs every sealed block,
    # so the zero-copy compute_checksum rate bounds detection overhead.
    from .disks.block import Block

    crc_keys = np.arange(1_000_000, dtype=np.int64)
    crc_blk = Block(keys=crc_keys, payloads=crc_keys)
    crc_reps = 5
    wall_crc, _ = _time(
        lambda: [crc_blk.compute_checksum() for _ in range(crc_reps)]
    )
    crc_mb_per_s = crc_reps * 2 * crc_keys.nbytes / wall_crc / 1e6
    return {
        "wall_s_fault_free": round(wall_off, 6),
        "wall_s_armed": round(wall_on, 6),
        "armed_overhead_frac": round(wall_on / wall_off - 1.0, 4),
        "records_per_sec_armed": round(n_records / wall_on),
        "retries": stats["retries"],
        "parallel_ios_fault_free": res_off.total_parallel_ios,
        "parallel_ios_armed": res_on.total_parallel_ios,
        "output_identical": True,  # asserted above
        "checksum_mb_per_s": round(crc_mb_per_s, 1),
        "parity": {
            "wall_s": round(wall_par, 6),
            "overhead_frac": round(wall_par / wall_off - 1.0, 4),
            "parallel_ios": res_par.total_parallel_ios,
            "io_overhead_frac": round(
                res_par.total_parallel_ios / res_off.total_parallel_ios - 1.0,
                4,
            ),
            "write_failures": pstats["write_failures"],
            "torn_writes_detected": pstats["torn_writes_detected"],
            "recovery_read_ios": pstats["recovery_read_ios"],
            "parity_blocks_written": pstats["parity_blocks_written"],
            "output_identical": True,  # asserted above
        },
        "params": {
            "n_records": n_records, "k": k, "n_disks": n_disks,
            "block_size": block_size, "seed": seed,
            "read_fail_p": plan.read_fail_p,
            "write_fail_p": wplan.write_fail_p,
            "torn_write_p": wplan.torn_write_p,
        },
    }


def bench_cluster(n_records: int, node_counts: tuple[int, ...] = (1, 2, 4),
                  k: int = 4, n_disks: int = 4, block_size: int = 64,
                  seed: int = 2) -> dict:
    """Scale-out table: simulated makespan vs. cluster size at fixed N.

    The same input is cluster-sorted at every P in *node_counts*; every
    row must produce output bit-identical to ``np.sort`` of the input
    (which is also what single-node SRM produces), so the table doubles
    as a cross-P equivalence check.  Makespan is the simulated per-phase
    critical path (max across nodes, plus link time), so the scaling
    column shows what the extra hardware buys once exchange costs are
    charged.
    """
    from .cluster import ClusterConfig, cluster_sort

    keys = uniform_permutation(n_records, rng=seed)
    expect = np.sort(keys)
    cfg = SRMConfig.from_k(k, n_disks, block_size)
    rows = []
    base_ms = None
    for p in node_counts:
        wall, (out, res) = _time(
            lambda p=p: cluster_sort(
                keys, ClusterConfig(n_nodes=p), cfg, rng=seed + 1
            )
        )
        if not np.array_equal(out, expect):
            raise DataError(f"cluster P={p} output differs from sort(input)")
        if base_ms is None:
            base_ms = res.makespan_ms
        rows.append({
            "n_nodes": p,
            "wall_s": round(wall, 6),
            "makespan_ms": round(res.makespan_ms, 1),
            "speedup_vs_p1": round(base_ms / res.makespan_ms, 3),
            "partition_skew": round(res.partition_skew, 4),
            "total_parallel_ios": res.total_parallel_ios,
            "max_node_parallel_ios": res.max_node_parallel_ios,
            "exchange_blocks": res.exchange.blocks_crossed,
            "link_ms": round(res.exchange.link_ms, 2),
        })
    return {
        "rows": rows,
        "output_identical_across_p": True,  # asserted above
        "params": {
            "n_records": n_records, "k": k, "n_disks": n_disks,
            "block_size": block_size, "seed": seed,
            "node_counts": list(node_counts),
        },
    }


def bench_backend(n_records: int, k: int = 4, n_disks: int = 4,
                  block_size: int = 64, seed: int = 2) -> dict:
    """Memory vs. mmap backend wall-clock for the same sort.

    Both runs pin the layout rng, so every charged I/O count must match
    exactly — what this section prices is purely the storage layer:
    slot-record encode/decode plus page-cache traffic against in-RAM
    dicts.  Output bit-identity and I/O equality are asserted.
    """
    keys = uniform_permutation(n_records, rng=seed)
    cfg = SRMConfig.from_k(k, n_disks, block_size)
    wall_mem, (out_mem, res_mem) = _time(
        lambda: srm_sort(keys, cfg, rng=seed + 1)
    )
    wall_mm, (out_mm, res_mm) = _time(
        lambda: srm_sort(keys, cfg, rng=seed + 1, backend="mmap")
    )
    if not np.array_equal(out_mem, out_mm):
        raise DataError("backend equivalence violated: output records differ")
    if _io_tuple(res_mem.io) != _io_tuple(res_mm.io):
        raise DataError("backend equivalence violated: I/O counters differ")
    bstats = res_mm.system.backend.stats()
    res_mm.system.close()
    return {
        "memory": {
            "wall_s": round(wall_mem, 6),
            "records_per_sec": round(n_records / wall_mem),
        },
        "mmap": {
            "wall_s": round(wall_mm, 6),
            "records_per_sec": round(n_records / wall_mm),
            "blocks_written": bstats["blocks_written"],
            "bytes_written": bstats["bytes_written"],
            "file_bytes": bstats["file_bytes"],
            "file_grows": bstats["file_grows"],
        },
        "mmap_overhead_frac": round(wall_mm / wall_mem - 1.0, 4),
        "io_equivalent": True,  # asserted above
        "params": {
            "n_records": n_records, "k": k, "n_disks": n_disks,
            "block_size": block_size, "seed": seed,
        },
    }


def bench_parallel_merge(n_records: int, worker_counts: tuple[int, ...] = (1, 2, 4),
                         n_runs: int = 16, n_disks: int = 8,
                         block_size: int = 512, seed: int = 3) -> dict:
    """Serial loser-tree drain vs. the process-parallel Merge Path plane.

    One R-way merge of pre-built runs, timed once serially and once per
    worker count.  Every parallel row must reproduce the serial plane
    exactly — output records, ScheduleStats, disk-system I/O counters —
    so the speedup column prices pure record movement, not a schedule
    change.

    The report records ``cpu_count``: worker processes need real cores
    to pay off, so on a single-core host every W > 1 row measures pure
    pool overhead and the speedup column reads below 1.  The identity
    assertions hold regardless.
    """
    from .core.merge import merge_runs
    from .core.parallel_merge import parallel_merge_runs
    from .disks.backends import MmapFileBackend

    per_run = n_records // n_runs

    def build(system):
        rng = np.random.default_rng(seed)
        return [
            StripedRun.from_sorted_keys(
                system,
                np.sort(rng.integers(-(2**60), 2**60, per_run)),
                run_id=r,
                start_disk=r % system.n_disks,
            )
            for r in range(n_runs)
        ]

    sys_s = ParallelDiskSystem(n_disks, block_size)
    runs_s = build(sys_s)
    before = sys_s.stats.snapshot()
    wall_s, res_s = _time(
        lambda: merge_runs(sys_s, runs_s, output_run_id=99, output_start_disk=0)
    )
    sched_ref = _schedule_tuple(res_s.schedule)
    io_ref = _io_tuple(sys_s.stats.since(before))
    keys_ref = res_s.output.read_all(sys_s)
    out: dict[str, Any] = {
        "serial": {
            "wall_s": round(wall_s, 6),
            "records_per_sec": round(n_records / wall_s),
        },
        "workers": [],
    }
    for w in worker_counts:
        sys_p = ParallelDiskSystem(
            n_disks, block_size, backend=MmapFileBackend()
        )
        runs_p = build(sys_p)
        before = sys_p.stats.snapshot()
        wall_w, res_p = _time(
            lambda s=sys_p, r=runs_p, w=w: parallel_merge_runs(
                s, r, output_run_id=99, output_start_disk=0, workers=w
            )
        )
        if _schedule_tuple(res_p.schedule) != sched_ref:
            raise DataError(f"parallel W={w}: ParRead/flush schedule differs")
        if _io_tuple(sys_p.stats.since(before)) != io_ref:
            raise DataError(f"parallel W={w}: I/O counters differ")
        if not np.array_equal(res_p.output.read_all(sys_p), keys_ref):
            raise DataError(f"parallel W={w}: output records differ")
        sys_p.close()
        out["workers"].append({
            "workers": w,
            "wall_s": round(wall_w, 6),
            "records_per_sec": round(n_records / wall_w),
            "speedup_vs_serial": round(wall_s / wall_w, 3),
        })
    out["schedule_identical"] = True  # asserted above, every row
    out["cpu_count"] = os.cpu_count()
    out["params"] = {
        "n_records": per_run * n_runs, "n_runs": n_runs,
        "n_disks": n_disks, "block_size": block_size, "seed": seed,
        "worker_counts": list(worker_counts),
    }
    return out


def bench_service(n_jobs: int = 8, tenant_counts: tuple[int, ...] = (2, 3),
                  policies: tuple[str, ...] = ("rr", "wfq", "srpt"),
                  k: int = 2, n_disks: int = 4, block_size: int = 16,
                  seed: int = 5) -> dict:
    """Multi-tenant contention table: shared farm vs. isolated serial.

    A fully backlogged batch of jobs is served once per (policy, tenant
    count).  Every row re-verifies the service's core guarantee — each
    tenant bit-identical to its solo run (output, schedules, I/O
    counters) — and prices the contention: aggregate throughput against
    the sum of isolated makespans (work conservation pins it at ~1.0),
    Jain fairness over weight-normalized per-tenant rounds, and p50/p95
    job makespan, which is where the policies actually differ.
    """
    from .core.config import SRMConfig as _SRMConfig
    from .service import run_arrival_script
    from .workloads import batch_arrivals

    cfg = _SRMConfig.from_k(k, n_disks, block_size)
    rows = []
    for n_tenants in tenant_counts:
        arrivals = batch_arrivals(
            n_jobs, n_tenants=n_tenants, min_records=400,
            max_records=1_600, rng=seed,
        )
        tenants = sorted({a.tenant for a in arrivals})
        weights = {t: (2.0 if i == 0 else 1.0) for i, t in enumerate(tenants)}
        n_records = sum(a.n_records for a in arrivals)
        for policy in policies:
            wall, result = _time(
                lambda policy=policy: run_arrival_script(
                    arrivals, cfg, policy=policy, tenant_weights=weights
                )
            )
            failures = result.verify_against_solo()
            if failures:
                raise DataError(
                    f"service identity violated ({policy}, {n_tenants} "
                    f"tenants): {failures[0]}"
                )
            pct = result.completion_percentiles()
            rows.append({
                "policy": policy,
                "n_tenants": n_tenants,
                "n_jobs": n_jobs,
                "wall_s": round(wall, 6),
                "makespan_ms": round(result.makespan_ms, 1),
                "busy_ms": round(result.busy_ms, 1),
                "isolated_total_ms": round(result.isolated_total_ms, 1),
                "throughput_vs_isolated": round(
                    result.throughput_vs_isolated(), 4
                ),
                "records_per_sim_s": round(
                    1000.0 * n_records / result.makespan_ms, 1
                ),
                "fairness_index": round(result.fairness_index(), 4),
                "p50_makespan_ms": round(pct["p50"], 1),
                "p95_makespan_ms": round(pct["p95"], 1),
            })
    return {
        "rows": rows,
        "identity_vs_solo": True,  # asserted above, every row
        "params": {
            "n_jobs": n_jobs, "tenant_counts": list(tenant_counts),
            "policies": list(policies), "k": k, "n_disks": n_disks,
            "block_size": block_size, "seed": seed,
        },
    }


def bench_latency_adaptive(n_records: int, k: int = 2, n_disks: int = 4,
                           block_size: int = 16, seed: int = 7) -> dict:
    """Latency-adaptive scheduling vs. the fixed policy under faults.

    Each scenario sorts the same input twice through the overlap engine
    — fixed §5.5 policy, then with :class:`LatencyAwareConfig` armed —
    under an identical seeded fault plan, and *proves the adaptive
    contract while timing it*: bit-identical output and a simulated
    makespan no worse than the fixed policy's are asserted on every
    row, so the improvement column is pure scheduling, not a changed
    sort.  The geometry is the balanced regime (per-record merge cost
    comparable to a block service), where read-ahead actually has
    latency to hide; see ``repro cliff`` for the full grid.
    """
    from .core.config import LatencyAwareConfig, OverlapConfig
    from .faults import FaultPlan
    from .faults.plan import StallWindow

    keys = uniform_permutation(n_records, rng=seed)
    cfg = SRMConfig.from_k(k, n_disks, block_size)
    cpu_us = 1000.0
    victim = 1 % n_disks
    scenarios = [
        ("straggler_d0", 0,
         FaultPlan(seed=seed + 1, latency_factors={victim: 4.0})),
        ("straggler_d1", 1,
         FaultPlan(seed=seed + 2, latency_factors={victim: 4.0})),
        ("stall_d0", 0,
         FaultPlan(seed=seed + 3, stalls=tuple(
             StallWindow(victim, 1_000.0 + 3_000.0 * i, 500.0)
             for i in range(4)
         ))),
    ]
    rows = []
    for name, depth, plan in scenarios:
        fixed_cfg = OverlapConfig(
            mode="full", prefetch_depth=depth, cpu_us_per_record=cpu_us
        )
        adaptive_cfg = OverlapConfig(
            mode="full", prefetch_depth=depth, cpu_us_per_record=cpu_us,
            latency=LatencyAwareConfig(),
        )
        wall_f, (out_f, res_f) = _time(
            lambda: srm_sort(
                keys, cfg, rng=seed + 17, overlap=fixed_cfg, faults=plan
            )
        )
        wall_a, (out_a, res_a) = _time(
            lambda: srm_sort(
                keys, cfg, rng=seed + 17, overlap=adaptive_cfg, faults=plan
            )
        )
        if not np.array_equal(out_f, out_a):
            raise DataError(
                f"latency-adaptive equivalence violated ({name}): "
                "outputs differ"
            )
        fixed_ms = res_f.simulated_merge_ms
        adaptive_ms = res_a.simulated_merge_ms
        if adaptive_ms > fixed_ms * (1.0 + 1e-9):
            raise DataError(
                f"latency-adaptive regression ({name}): adaptive makespan "
                f"{adaptive_ms} exceeds fixed {fixed_ms}"
            )
        rows.append({
            "scenario": name,
            "prefetch_depth": depth,
            "fixed_makespan_ms": round(fixed_ms, 1),
            "adaptive_makespan_ms": round(adaptive_ms, 1),
            "improvement_pct": round(
                100.0 * (1.0 - adaptive_ms / fixed_ms), 2
            ),
            "depth_boosts": sum(
                r.depth_boosts for r in res_a.overlap_reports
            ),
            "floor_issues": sum(
                r.floor_issues for r in res_a.overlap_reports
            ),
            "wall_s_fixed": round(wall_f, 6),
            "wall_s_adaptive": round(wall_a, 6),
            "output_identical": True,  # asserted above
        })
    return {
        "rows": rows,
        "output_identical": True,  # asserted above, every row
        "no_worse_than_fixed": True,  # asserted above, every row
        "params": {
            "n_records": n_records, "k": k, "n_disks": n_disks,
            "block_size": block_size, "seed": seed,
            "cpu_us_per_record": cpu_us, "latency_factor": 4.0,
            "victim_disk": victim,
        },
    }


def run_benchmarks(quick: bool = False) -> dict:
    """Run the full harness; returns the JSON-ready report."""
    scale = QUICK if quick else FULL
    report = {
        "benchmark": "repro bench (hot-path harness)",
        "mode": "quick" if quick else "full",
        "merge": bench_merge(scale["merge_records"]),
        "run_formation": bench_run_formation(
            scale["rs_records"], scale["rs_memory"]
        ),
        "writer": bench_writer(scale["writer_records"]),
        "telemetry": bench_telemetry(scale["merge_records"]),
        "tracing": bench_tracing(scale["merge_records"]),
        "faults": bench_faults(scale["merge_records"]),
        "backend": bench_backend(scale["merge_records"]),
        "parallel_merge": bench_parallel_merge(scale["pmerge_records"]),
        "cluster": bench_cluster(
            scale["merge_records"],
            node_counts=(1, 2, 4) if quick else (1, 2, 4, 8),
        ),
        "service": bench_service(
            n_jobs=6 if quick else 8,
            tenant_counts=(2,) if quick else (2, 3),
        ),
        "latency_adaptive": bench_latency_adaptive(
            scale["adaptive_records"]
        ),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="repro bench", description="hot-path performance harness"
    )
    p.add_argument("--quick", action="store_true",
                   help="reduced scale (CI smoke)")
    p.add_argument("--out", default="BENCH_sort_throughput.json",
                   help="report path (default: %(default)s)")
    p.add_argument("--min-merge-speedup", type=float, default=None,
                   help="fail unless losertree/heapq >= this ratio")
    p.add_argument("--min-rs-speedup", type=float, default=None,
                   help="fail unless block/record >= this ratio")
    p.add_argument("--min-pmerge-speedup", type=float, default=None,
                   help="fail unless the best parallel-merge worker row "
                        "reaches this speedup over the serial drain")
    args = p.parse_args(argv)

    report = run_benchmarks(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")

    m, rs = report["merge"], report["run_formation"]
    print(f"merge        losertree {m['losertree']['records_per_sec']:>10,} rec/s"
          f"  heapq {m['heapq']['records_per_sec']:>10,} rec/s"
          f"  speedup {m['speedup']:.2f}x")
    print(f"run formation    block {rs['block']['records_per_sec']:>10,} rec/s"
          f"  record {rs['record']['records_per_sec']:>10,} rec/s"
          f"  speedup {rs['speedup']:.2f}x")
    print(f"writer        {report['writer']['records_per_sec']:>10,} rec/s")
    t = report["telemetry"]
    print(f"telemetry     enable overhead {t['enable_overhead_frac']*100:+.1f}%"
          f"  ({t['n_metrics']} metrics, schema {t['schema']})")
    tr = report["tracing"]
    print(f"tracing       armed overhead {tr['trace_overhead_frac']*100:+.1f}%"
          f"  ({tr['trace_records']:,} records, {tr['domains']} domains, "
          f"critical path exact)")
    fl = report["faults"]
    print(f"faults        armed overhead {fl['armed_overhead_frac']*100:+.1f}%"
          f"  ({fl['retries']} retries, output identical)")
    pr = fl["parity"]
    print(f"parity        wall overhead {pr['overhead_frac']*100:+.1f}%"
          f"  io {pr['io_overhead_frac']*100:+.1f}%"
          f"  ({pr['torn_writes_detected']} tears repaired)")
    print(f"checksum      {fl['checksum_mb_per_s']:>10,.0f} MB/s (zero-copy CRC)")
    be = report["backend"]
    print(f"backend        mmap {be['mmap']['records_per_sec']:>10,} rec/s"
          f"  memory {be['memory']['records_per_sec']:>10,} rec/s"
          f"  overhead {be['mmap_overhead_frac']*100:+.1f}%")
    pm = report["parallel_merge"]
    for row in pm["workers"]:
        print(f"pmerge W={row['workers']:<3} {row['records_per_sec']:>10,} rec/s"
              f"  speedup {row['speedup_vs_serial']:.2f}x vs serial"
              f" ({pm['serial']['records_per_sec']:,} rec/s,"
              f" {pm['cpu_count']} cores)")
    for row in report["cluster"]["rows"]:
        print(f"cluster P={row['n_nodes']:<2}  makespan "
              f"{row['makespan_ms']:>10,.0f} ms"
              f"  speedup {row['speedup_vs_p1']:.2f}x"
              f"  skew {row['partition_skew']:.3f}"
              f"  link {row['link_ms']:.1f} ms")
    for row in report["service"]["rows"]:
        print(f"service {row['policy']:<5} T={row['n_tenants']}"
              f"  makespan {row['makespan_ms']:>9,.0f} ms"
              f"  thr/iso {row['throughput_vs_isolated']:.3f}"
              f"  fair {row['fairness_index']:.3f}"
              f"  p50/p95 {row['p50_makespan_ms']:,.0f}/"
              f"{row['p95_makespan_ms']:,.0f} ms")
    for row in report["latency_adaptive"]["rows"]:
        print(f"adaptive {row['scenario']:<13}"
              f" fixed {row['fixed_makespan_ms']:>9,.0f} ms"
              f"  adaptive {row['adaptive_makespan_ms']:>9,.0f} ms"
              f"  improve {row['improvement_pct']:+.2f}%"
              f"  (output identical)")
    print(f"report -> {args.out}")

    ok = True
    if args.min_merge_speedup is not None and m["speedup"] < args.min_merge_speedup:
        print(f"FAIL: merge speedup {m['speedup']} < {args.min_merge_speedup}",
              file=sys.stderr)
        ok = False
    if args.min_rs_speedup is not None and rs["speedup"] < args.min_rs_speedup:
        print(f"FAIL: run-formation speedup {rs['speedup']} < {args.min_rs_speedup}",
              file=sys.stderr)
        ok = False
    if args.min_pmerge_speedup is not None:
        best = max(r["speedup_vs_serial"] for r in pm["workers"])
        if best < args.min_pmerge_speedup:
            print(f"FAIL: parallel-merge speedup {best} < "
                  f"{args.min_pmerge_speedup}", file=sys.stderr)
            ok = False
    return 0 if ok else 1
