"""One-shot reproduction runner: every paper experiment, one call.

``run_all_experiments`` regenerates Tables 1–4 and Figure 1, compares
each against the published values, writes per-experiment reports (and a
combined summary) to a directory, and returns the structured results —
the library-level equivalent of ``pytest benchmarks/ --benchmark-only``
for users who want the numbers rather than the test harness.

CLI: ``python -m repro reproduce-all [--out DIR] [--full]``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from .analysis import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    Figure1Result,
    TableGrid,
    figure1,
    max_abs_deviation,
    render_comparison,
    table1,
    table2,
    table3,
    table4,
)
from .rng import RngLike


@dataclass(frozen=True, slots=True)
class ExperimentOutcome:
    """One regenerated experiment with its paper comparison."""

    name: str
    report: str
    max_deviation: float | None
    seconds: float

    @property
    def headline(self) -> str:
        dev = "" if self.max_deviation is None else (
            f"  max|Δ| = {self.max_deviation:.3f}"
        )
        return f"{self.name:<10} {self.seconds:6.1f}s{dev}"


@dataclass
class ReproductionReport:
    """All experiment outcomes plus the summary."""

    outcomes: list[ExperimentOutcome] = field(default_factory=list)

    def summary(self) -> str:
        lines = ["Paper reproduction summary", "=" * 26]
        lines += [o.headline for o in self.outcomes]
        return "\n".join(lines)

    @property
    def worst_deviation(self) -> float:
        devs = [o.max_deviation for o in self.outcomes if o.max_deviation is not None]
        return max(devs) if devs else 0.0


def _grid_outcome(
    name: str, paper: TableGrid, measured: TableGrid, t0: float
) -> ExperimentOutcome:
    return ExperimentOutcome(
        name=name,
        report=render_comparison(paper, measured),
        max_deviation=max_abs_deviation(paper, measured),
        seconds=time.perf_counter() - t0,
    )


def _figure1_outcome(f: Figure1Result, t0: float) -> ExperimentOutcome:
    lines = [
        "Figure 1 (N_b = 12, C = 5, D = 4)",
        f"(a) dependent placement : {[int(x) for x in f.dependent_instance]} "
        f"-> max {int(f.dependent_instance.max())} (paper: 4)",
        f"(b) classical placement : {[int(x) for x in f.classical_instance]} "
        f"-> max {int(f.classical_instance.max())} (paper: 5)",
        f"exact E[max] dependent = {f.dependent_expected_max:.4f}",
        f"exact E[max] classical = {f.classical_expected_max:.4f}",
        f"conjecture dependent <= classical: "
        f"{'holds' if f.conjecture_holds else 'VIOLATED'}",
    ]
    return ExperimentOutcome(
        name="figure1",
        report="\n".join(lines),
        max_deviation=None,
        seconds=time.perf_counter() - t0,
    )


def run_all_experiments(
    out_dir: str | Path | None = None,
    rng: RngLike = 1996,
    occupancy_trials: int = 400,
    blocks_per_run: int = 100,
    block_size: int = 8,
) -> ReproductionReport:
    """Regenerate every table and figure of the paper's evaluation.

    Parameters
    ----------
    out_dir:
        If given, write ``<name>.txt`` per experiment plus
        ``summary.txt``.
    occupancy_trials / blocks_per_run / block_size:
        Scale knobs (defaults are interactive-friendly; the paper used
        more trials and ``blocks_per_run = 1000``).
    """
    report = ReproductionReport()

    t0 = time.perf_counter()
    t1_grid = table1(n_trials=occupancy_trials, rng=rng)
    report.outcomes.append(_grid_outcome("table1", PAPER_TABLE1, t1_grid, t0))

    t0 = time.perf_counter()
    report.outcomes.append(
        _grid_outcome("table2", PAPER_TABLE2, table2(t1_grid), t0)
    )

    t0 = time.perf_counter()
    t3_grid = table3(
        blocks_per_run=blocks_per_run, block_size=block_size, rng=rng
    )
    report.outcomes.append(_grid_outcome("table3", PAPER_TABLE3, t3_grid, t0))

    t0 = time.perf_counter()
    report.outcomes.append(
        _grid_outcome("table4", PAPER_TABLE4, table4(t3_grid), t0)
    )

    t0 = time.perf_counter()
    report.outcomes.append(_figure1_outcome(figure1(), t0))

    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for o in report.outcomes:
            (out / f"{o.name}.txt").write_text(o.report + "\n")
        (out / "summary.txt").write_text(report.summary() + "\n")
    return report
