"""Process-parallel merge data plane via Merge Path co-rank partitioning.

The serial planes (:mod:`repro.core.losertree`) interleave two jobs in
one loop: *deciding* the §5.5 I/O schedule (ParReads, flushes — pure
block-boundary bookkeeping) and *moving records* (argsort + writer-ring
copies — the CPU-bound part PR 2 vectorized).  This module splits them:

1. **Ghost schedule drive** — replay the exact ParRead/flush/free
   stream of ``merge_loop_batched`` using only block metadata.  Drains
   never mutate the forecasting structure, so between two ParReads the
   galloping bound is constant; a resident block is fully consumed by a
   drain iff its last key precedes the bound under the ``(key, run)``
   tie-break (``last <= bound`` for ``run <= bound_run``, strict
   otherwise).  That decision needs no record data, so the ghost drive
   issues the bit-identical I/O schedule — same reads, same flushes,
   same frees in the same ``(last_key, run, block)`` order — without
   touching a single record.

2. **Merge Path co-rank partition** (Green, Odeh & Birk) — cut the
   merged output into ``W`` contiguous ranges of (near-)equal size.
   For each cut rank ``t`` a binary search over the int64 key domain
   finds the ``t``-th smallest ``(key, run, position)`` triple using
   per-run counts assembled from run metadata (``first_keys`` /
   ``last_keys``) plus at most one straddling-block probe per run —
   all uncharged metadata work, like the extent maps themselves.

3. **Worker drain** — each range's run segments are merged by a worker
   in a ``concurrent.futures`` process pool.  Workers reopen the mmap
   backend's disk files read-only and slice key/payload views straight
   out of the slot records (no block pickling; only file paths, slot
   tables and cut offsets cross the process boundary), then write their
   merged range into a disjoint region of a shared scratch file.

4. **Stitch** — the parent streams the scratch file through the
   ordinary :class:`~repro.core.writer.RunWriter`, so output stripes,
   forecast implants, write parallelism and the ``M_W = 2D`` discipline
   are byte-for-byte those of the serial plane.

``workers == 1`` runs the same partition + drain in-process (any
backend); ``workers > 1`` requires the mmap backend, since worker
processes share the data through the file system.
"""

from __future__ import annotations

import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..disks.backends.mmapfile import MmapFileBackend, SlotLayout, open_disk_flat
from ..disks.files import StripedRun
from ..disks.system import ParallelDiskSystem
from ..errors import ConfigError, DataError, ScheduleError
from ..telemetry import TELEMETRY_OFF
from ..telemetry.schema import (
    PMERGE_GHOST_ROUNDS,
    PMERGE_MERGES,
    PMERGE_PARTITION_PROBES,
    PMERGE_RANGES,
    PMERGE_RECORDS,
    PMERGE_WORKERS,
    EV_PMERGE_WORKER,
    SPAN_PMERGE,
    SPAN_PMERGE_PARTITION,
    SPAN_PMERGE_STITCH,
    SPAN_PMERGE_WORKERS,
)
from .job import MergeJob
from .merge import MergeResult, _check_forecast
from .schedule import MergeScheduler
from .writer import RunWriter

__all__ = ["parallel_merge_runs", "corank_cuts", "ghost_drive"]


# ---------------------------------------------------------------------------
# Stage 1: ghost schedule drive.
# ---------------------------------------------------------------------------


def ghost_drive(
    sched: MergeScheduler,
    runs: list[StripedRun],
    system: ParallelDiskSystem,
    free_inputs: bool = True,
) -> int:
    """Replay the batched drain's I/O schedule from block metadata only.

    Mirrors ``merge_loop_batched`` decision-for-decision: compute the
    galloping bound from the forecasting structure, retire every
    resident block whose records all precede it (firing depletions in
    ``(last_key, run, block)`` order, freeing input slots like the real
    loop), then demand-fetch the bound's block.  Record offsets inside
    straddling blocks never influence the scheduler, so the ParRead /
    flush / free stream is bit-identical to the serial data plane's.

    Returns the number of drive rounds (≈ merge ParReads + 1).
    """
    job = sched.job
    R = job.n_runs
    fds = sched.fds
    n_blocks = [job.blocks_in_run(r) for r in range(R)]
    rounds = 0
    while not sched.finished():
        rounds += 1
        bounds, valid = fds.min_keys_per_run()
        bounded = bool(valid.any())
        if bounded:
            idx = np.flatnonzero(valid)
            br = int(idx[bounds[idx].argmin()])
            bound_key = int(bounds[br])
        else:
            br = -1
            bound_key = 0

        depleted: list[tuple[int, int, int]] = []  # (last_key, run, block)
        leading = sched.leading
        for r in range(R):
            b = leading[r]
            while b < n_blocks[r] and sched.is_resident(r, b):
                last = int(job.last_keys[r][b])
                if bounded:
                    # (key, run) tie-break: records equal to the bound
                    # belong to runs at or before the bound's run.
                    consumed = last <= bound_key if r <= br else last < bound_key
                    if not consumed:
                        break
                depleted.append((last, r, b))
                b += 1

        depleted.sort()
        for _, r, b in depleted:
            if free_inputs:
                system.free(runs[r].addresses[b])
            sched.on_leading_depleted(r)

        if sched.finished():
            break
        if not bounded:  # pragma: no cover - finished() guards this
            raise ScheduleError("ghost drive stalled with no on-disk blocks")
        # Everything before the bound is consumed; the serial loop's
        # next action is the demand fetch of the bound's leading block.
        sched.ensure_resident(br, sched.leading[br])
    return rounds


# ---------------------------------------------------------------------------
# Stage 2: Merge Path co-rank partitioning.
# ---------------------------------------------------------------------------


class _RunIndex:
    """Rank queries over one run from metadata + cached block probes."""

    def __init__(self, system: ParallelDiskSystem, run: StripedRun) -> None:
        self.system = system
        self.run = run
        self.first = np.asarray(run.first_keys, dtype=np.int64)
        self.last = np.asarray(run.last_keys, dtype=np.int64)
        self.B = run.block_size
        self.n = run.n_records
        self.n_blocks = len(run.addresses)
        self._cache: dict[int, np.ndarray] = {}
        self.probes = 0

    def _block_keys(self, b: int) -> np.ndarray:
        keys = self._cache.get(b)
        if keys is None:
            # Uncharged metadata access, like the extent map itself: the
            # §5.5 schedule (replayed by the ghost drive) is untouched.
            keys = self.system.peek(self.run.addresses[b]).keys
            self._cache[b] = keys
            self.probes += 1
        return keys

    def count(self, kappa: int, side: str) -> int:
        """Records with key < *kappa* (side='left') or <= (side='right')."""
        cut = int(np.searchsorted(self.last, kappa, side=side))
        if cut >= self.n_blocks:
            return self.n
        # Blocks before `cut` are fully counted (only the run's final
        # block is partial, and it is at or after `cut` here).
        full = cut * self.B
        first = int(self.first[cut])
        if (side == "left" and first >= kappa) or (side == "right" and first > kappa):
            return full
        keys = self._block_keys(cut)
        return full + int(np.searchsorted(keys, kappa, side=side))


def corank_cuts(
    system: ParallelDiskSystem,
    runs: list[StripedRun],
    targets: list[int],
) -> tuple[list[list[int]], int]:
    """Per-run record cuts realizing each global output rank in *targets*.

    For rank ``t`` the returned row ``cuts[w]`` holds, per run, how many
    of its records fall among the first ``t`` records of the merged
    output under the global ``(key, run index, position)`` order — the
    co-rank intersection of Merge Path's cross-diagonal ``t``.

    Returns ``(cuts, probes)`` where *probes* counts straddling-block
    metadata reads (uncharged).
    """
    indexes = [_RunIndex(system, run) for run in runs]
    total = sum(ix.n for ix in indexes)
    lo_key = min(int(ix.first[0]) for ix in indexes)
    hi_key = max(int(ix.last[-1]) for ix in indexes)
    cuts: list[list[int]] = []
    for t in targets:
        if not 0 <= t <= total:
            raise DataError(f"cut rank {t} outside [0, {total}]")
        if t == 0:
            cuts.append([0] * len(indexes))
            continue
        if t == total:
            cuts.append([ix.n for ix in indexes])
            continue
        # Smallest key with count_le(key) >= t: the key of the t-th
        # smallest (key, run, pos) triple.
        lo, hi = lo_key, hi_key
        while lo < hi:
            mid = (lo + hi) // 2
            if sum(ix.count(mid, "right") for ix in indexes) >= t:
                hi = mid
            else:
                lo = mid + 1
        kappa = lo
        row = [ix.count(kappa, "left") for ix in indexes]
        # Distribute the remaining equal-kappa records in run order —
        # exactly how the merge's (key, run) tie-break emits them.
        remaining = t - sum(row)
        for r, ix in enumerate(indexes):
            if remaining <= 0:
                break
            group = ix.count(kappa, "right") - row[r]
            take = min(group, remaining)
            row[r] += take
            remaining -= take
        if remaining != 0:  # pragma: no cover - defended by the search
            raise ScheduleError(f"co-rank failed to realize rank {t}")
        cuts.append(row)
    return cuts, sum(ix.probes for ix in indexes)


# ---------------------------------------------------------------------------
# Stage 3: range drains (worker process + in-process fallback).
# ---------------------------------------------------------------------------


def _merge_range_worker(
    paths: list[str],
    layout: SlotLayout,
    run_tables: list[tuple[list[int], list[int], int]],
    lo_cuts: list[int],
    hi_cuts: list[int],
    has_payloads: bool,
    scratch_path: str,
    rows: int,
    total_records: int,
    out_offset: int,
) -> tuple[int, int, float]:
    """Merge one output range inside a worker process.

    Reopens the backend's per-disk files read-only, slices each run's
    ``[lo, hi)`` record segment as zero-copy views over the slot
    records, merges with a stable argsort (reproducing the global
    ``(key, run, pos)`` order within the range), and writes the result
    into this range's disjoint region of the shared scratch file.

    Returns ``(out_offset, records_merged, drain_seconds)`` — the drain
    time is the worker's own wall clock, reported back so the parent
    can emit per-worker spans.
    """
    drain_t0 = time.perf_counter()
    flats = [open_disk_flat(p) for p in paths]
    key_parts: list[np.ndarray] = []
    pay_parts: list[np.ndarray] = []
    B = layout.block_size
    for (disks, slots, n_records), lo, hi in zip(run_tables, lo_cuts, hi_cuts):
        if lo >= hi:
            continue
        b0, b1 = lo // B, (hi - 1) // B
        for b in range(b0, b1 + 1):
            flat = flats[disks[b]]
            base = slots[b] * layout.slot_words
            n = int(flat[base])
            s = lo - b * B if b == b0 else 0
            e = hi - b * B if b == b1 else n
            key_parts.append(flat[base + layout.key_off + s : base + layout.key_off + e])
            if has_payloads:
                pay_parts.append(
                    flat[base + layout.pay_off + s : base + layout.pay_off + e]
                )
    keys = np.concatenate(key_parts)
    order = np.argsort(keys, kind="stable")
    merged = keys[order]
    out = np.memmap(
        scratch_path, dtype=np.int64, mode="r+", shape=(rows, total_records)
    )
    out[0, out_offset : out_offset + merged.size] = merged
    if has_payloads:
        out[1, out_offset : out_offset + merged.size] = np.concatenate(pay_parts)[
            order
        ]
    # No msync: the parent reads the scratch region through the same
    # page cache, so flushing to stable storage would only cost time.
    return out_offset, int(merged.size), time.perf_counter() - drain_t0


def _emit_worker_spans(tel, drains: list[tuple[int, float]]) -> None:
    """Per-worker drain telemetry: one event and one wall-lane trace
    record per range.

    Drain times are the workers' own wall clocks, so the trace records
    land in a dedicated ``wall`` domain (declared inexact) that never
    mixes with — and never perturbs — the simulated timelines.  Trace
    determinism therefore holds only for the simulated domains; the
    determinism tests run with ``workers == 1``.
    """
    if not drains:
        return
    for i, (records, drain_s) in enumerate(drains):
        tel.event(
            EV_PMERGE_WORKER, worker=i, records=records,
            drain_s=round(drain_s, 6),
        )
    collector = getattr(tel, "trace", None)
    if collector is None:
        return
    dom = collector.new_domain("wall")
    last_end = 0.0
    for i, (records, drain_s) in enumerate(drains):
        end = drain_s * 1000.0
        collector.add(
            "compute", f"worker{i}", dom, 0.0, 0.0, end,
            attrs={"records": records},
        )
        last_end = max(last_end, end)
    collector.summary(dom, last_end, exact=False)


def _merge_range_inprocess(
    gathered: tuple[list[np.ndarray], list[np.ndarray]],
) -> tuple[np.ndarray, np.ndarray | None]:
    """Merge one range from pre-gathered per-run segments (any backend)."""
    key_parts, pay_parts = gathered
    keys = np.concatenate(key_parts)
    order = np.argsort(keys, kind="stable")
    merged = keys[order]
    pays = np.concatenate(pay_parts)[order] if pay_parts else None
    return merged, pays


def _gather_range(
    system: ParallelDiskSystem,
    runs: list[StripedRun],
    lo_cuts: list[int],
    hi_cuts: list[int],
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Collect each run's ``[lo, hi)`` segment views via uncharged peeks.

    Must run *before* the ghost drive frees input slots: holding the
    views keeps the in-memory backend's blocks alive, and for the mmap
    backend nothing overwrites the freed slots until the stitch stage
    (which runs only after every range is merged into copies).
    """
    key_parts: list[np.ndarray] = []
    pay_parts: list[np.ndarray] = []
    for r, run in enumerate(runs):
        lo, hi = lo_cuts[r], hi_cuts[r]
        if lo >= hi:
            continue
        B = run.block_size
        b0, b1 = lo // B, (hi - 1) // B
        for b in range(b0, b1 + 1):
            blk = system.peek(run.addresses[b])
            s = lo - b * B if b == b0 else 0
            e = hi - b * B if b == b1 else blk.keys.size
            key_parts.append(blk.keys[s:e])
            if blk.payloads is not None:
                pay_parts.append(blk.payloads[s:e])
    return key_parts, pay_parts


# ---------------------------------------------------------------------------
# Stage 4: the full parallel merge.
# ---------------------------------------------------------------------------


def parallel_merge_runs(
    system: ParallelDiskSystem,
    runs: list[StripedRun],
    output_run_id: int,
    output_start_disk: int,
    workers: int = 2,
    validate: bool = False,
    free_inputs: bool = True,
    telemetry=None,
) -> MergeResult:
    """Merge *runs* with ``workers`` processes; schedule-identical to serial.

    Drop-in counterpart of :func:`~repro.core.merge.merge_runs` for the
    demand path: same output records, same ParRead/flush schedule, same
    I/O counters and write stripes — only the record movement is fanned
    out across ``workers`` CPU cores.  ``workers > 1`` requires the
    system's mmap backend (worker processes share data through its
    files); ``workers == 1`` drains in-process on any backend.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if len(runs) < 2:
        raise DataError(f"a merge needs at least 2 runs, got {len(runs)}")
    if system.faults is not None:
        raise ConfigError(
            "the parallel merge plane requires a fault-free system: worker "
            "processes read raw slot bytes and would bypass the retry and "
            "checksum-repair ladder"
        )
    backend = system.backend
    use_pool = workers > 1
    if use_pool and not isinstance(backend, MmapFileBackend):
        raise ConfigError(
            f"workers={workers} needs the mmap storage backend so worker "
            f"processes can share the disk files; this system uses "
            f"{backend.kind!r} (construct it with backend='mmap' or pass "
            f"workers=1)"
        )

    job = MergeJob.from_striped_runs(runs, system.n_disks)
    start_stats = system.stats.snapshot()
    tel = telemetry if telemetry is not None else TELEMETRY_OFF
    span = tel.span(
        SPAN_PMERGE,
        system=system,
        n_runs=len(runs),
        n_blocks=job.n_blocks,
        n_disks=system.n_disks,
        workers=workers,
    )
    n_records = sum(r.n_records for r in runs)
    has_payloads = system.peek(runs[0].addresses[0]).payloads is not None
    rows = 2 if has_payloads else 1

    # ---- partition (before any input slot can be freed) -----------------
    part_span = tel.span(SPAN_PMERGE_PARTITION, system=system, workers=workers)
    targets = sorted({(n_records * w) // workers for w in range(1, workers)})
    targets = [t for t in targets if 0 < t < n_records]
    cut_rows, probes = corank_cuts(system, runs, targets)
    boundaries = [[0] * len(runs)] + cut_rows + [[r.n_records for r in runs]]
    ranges = [
        (boundaries[i], boundaries[i + 1]) for i in range(len(boundaries) - 1)
    ]
    ranges = [
        (lo, hi) for lo, hi in ranges if sum(hi) > sum(lo)
    ]  # duplicate-heavy inputs can collapse adjacent cuts
    part_span.set(ranges=len(ranges), probes=probes)
    part_span.close()

    gathered = None
    if not use_pool:
        gathered = [_gather_range(system, runs, lo, hi) for lo, hi in ranges]

    # ---- launch worker drains before the ghost drive ---------------------
    # Workers need only resolved slot tables and the backing files, both
    # fixed before any slot is freed (file bytes survive frees until the
    # stitch reuses them), so the pool crunches record movement while the
    # parent replays the I/O schedule — on multi-core hosts the ghost
    # drive costs no wall-clock at all.
    work_span = tel.span(
        SPAN_PMERGE_WORKERS, system=system, workers=workers, ranges=len(ranges)
    )
    scratch_path = None
    scratch = None
    pool = None
    futures = None
    merged_parts: list[tuple[np.ndarray, np.ndarray | None]] | None = None
    if use_pool:
        assert isinstance(backend, MmapFileBackend)
        layout = backend.layout
        paths = backend.file_paths()
        run_tables = [
            (
                [system.resolve(a).disk for a in run.addresses],
                [system.resolve(a).slot for a in run.addresses],
                run.n_records,
            )
            for run in runs
        ]
        fd, scratch_path = tempfile.mkstemp(
            prefix=f"pmerge-{output_run_id}-", suffix=".dat", dir=backend.workdir
        )
        os.close(fd)
        with open(scratch_path, "r+b") as f:
            f.truncate(rows * n_records * 8)
        offsets = np.cumsum([0] + [sum(hi) - sum(lo) for lo, hi in ranges])
        pool = ProcessPoolExecutor(max_workers=workers)
        futures = [
            pool.submit(
                _merge_range_worker,
                paths,
                layout,
                run_tables,
                lo,
                hi,
                has_payloads,
                scratch_path,
                rows,
                n_records,
                int(offsets[i]),
            )
            for i, (lo, hi) in enumerate(ranges)
        ]

    # ---- ghost schedule drive (all the charged input I/O) ---------------
    if validate:

        def on_read(ops: list[tuple[int, int, int]]) -> None:
            addrs = [runs[r].addresses[b] for r, b, _ in ops]
            blocks = system.read_stripe(addrs)
            for (r, b, _d), blk in zip(ops, blocks):
                _check_forecast(job, r, b, blk.forecast)

    else:
        # The schedule is driven entirely by job metadata; charge the
        # reads without decoding blocks nobody in this process will use.
        def on_read(ops: list[tuple[int, int, int]]) -> None:
            system.charge_read_stripe([runs[r].addresses[b] for r, b, _ in ops])

    try:
        sched = MergeScheduler(
            job, validate=validate, on_read=on_read, telemetry=telemetry
        )
        sched.initial_load()
        rounds = ghost_drive(sched, runs, system, free_inputs=free_inputs)
        if not sched.finished():
            raise ScheduleError("ghost drive ended with unexhausted runs")

        # ---- collect worker results ----------------------------------
        drains: list[tuple[int, float]] = []  # (records, drain_s) per range
        if use_pool:
            assert futures is not None
            results = [f.result() for f in futures]
            drains = [(size, drain_s) for _, size, drain_s in results]
            written = sum(size for _, size, _ in results)
            if written != n_records:
                raise ScheduleError(
                    f"workers merged {written} records, expected {n_records}"
                )
            scratch = np.memmap(
                scratch_path, dtype=np.int64, mode="r", shape=(rows, n_records)
            )
        else:
            assert gathered is not None
            merged_parts = []
            for g in gathered:
                t0 = time.perf_counter()
                part = _merge_range_inprocess(g)
                drains.append(
                    (int(part[0].size), time.perf_counter() - t0)
                )
                merged_parts.append(part)
        _emit_worker_spans(tel, drains)
    finally:
        if pool is not None:
            pool.shutdown()
    work_span.close()

    # ---- stitch through the ordinary writer ------------------------------
    stitch_span = tel.span(SPAN_PMERGE_STITCH, system=system)
    writer = RunWriter(
        system, output_run_id, output_start_disk, telemetry=telemetry
    )
    chunk = 64 * system.n_disks * system.block_size
    if use_pool:
        assert scratch is not None
        for i in range(0, n_records, chunk):
            j = min(i + chunk, n_records)
            writer.append(scratch[0, i:j], scratch[1, i:j] if has_payloads else None)
        del scratch
        os.unlink(scratch_path)
    else:
        assert merged_parts is not None
        for keys, pays in merged_parts:
            for i in range(0, keys.size, chunk):
                j = min(i + chunk, keys.size)
                writer.append(keys[i:j], pays[i:j] if pays is not None else None)
    output = writer.finalize()
    stitch_span.close()

    if output.n_records != n_records:
        raise ScheduleError(
            f"merged {output.n_records} records, expected {n_records}"
        )
    if validate and writer.max_buffered_blocks > 2 * system.n_disks:
        raise ScheduleError(
            f"output buffer used {writer.max_buffered_blocks} blocks,"
            f" exceeding M_W = 2D = {2 * system.n_disks}"
        )
    schedule = sched.stats()
    tel.counter(PMERGE_MERGES).inc()
    tel.counter(PMERGE_WORKERS).inc(workers)
    tel.counter(PMERGE_RANGES).inc(len(ranges))
    tel.counter(PMERGE_RECORDS).inc(n_records)
    tel.counter(PMERGE_PARTITION_PROBES).inc(probes)
    tel.counter(PMERGE_GHOST_ROUNDS).inc(rounds)
    span.set(
        initial_reads=schedule.initial_reads,
        merge_parreads=schedule.merge_parreads,
        flush_ops=schedule.flush_ops,
        blocks_flushed=schedule.blocks_flushed,
        max_mr_occupied=schedule.max_mr_occupied,
        ghost_rounds=rounds,
        ranges=len(ranges),
        partition_probes=probes,
    )
    span.close()
    return MergeResult(
        output=output,
        schedule=schedule,
        io=system.stats.since(start_stats),
        n_records=n_records,
        heap_cycles=rounds,
        overlap=None,
    )
