"""The forecasting data structure, FDS (paper §4, Definition 2).

``H_i[j]`` stores the smallest key in the *smallest block of run j on
disk i* — the chain-head key.  On every read the merger consults
``H_i`` to pick, for each disk ``i``, the run whose chain head has the
smallest key: that block is the "smallest block on disk i" and is what
``ParRead`` fetches.

Key provenance (why this implementation is faithful):  under cyclic
striping, the blocks of run ``r`` on disk ``i`` form the chain
``i0, i0 + D, i0 + 2D, ...`` and are always consumed chain-head first.
The initial block of the run implants the keys of blocks ``0..D-1`` —
one per chain — and every block ``b`` implants the key of block
``b + D``, i.e. of its chain successor.  So advancing a chain pointer
after reading its head reveals exactly the key the just-read block's
implant carries, and flushing a block re-exposes a key the merger had
already seen.  ``H`` therefore never contains information the real
forecast format would not provide; a cross-check against the on-disk
implanted tuples lives in the test suite.

``H`` is one ``D x R`` int64 matrix plus a boolean *alive* mask for
exhausted chains (keys may occupy the full int64 range, so no in-band
sentinel exists), and the merger's hot queries — the smallest block on a
disk, the global minimum, and each run's next on-disk key — are single
vectorized reductions (``argmin`` over a row, ``min`` over the matrix,
``min`` over a column) instead of Python loops with lazy heaps.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ScheduleError
from .job import MergeJob

#: Chain exhausted — sorts after every real key (public float view).
INF = math.inf

#: Filler stored in ``H`` entries whose chain is exhausted.  It is NOT a
#: reserved key — real keys may equal it — so every reduction consults
#: the alive mask; the value only makes masked ``np.where`` minima cheap.
INF_I64 = np.iinfo(np.int64).max


class ForecastStructure:
    """FDS plus the per-(run, disk) chain pointers it summarizes."""

    def __init__(self, job: MergeJob) -> None:
        self.job = job
        D = job.n_disks
        R = job.n_runs
        self.n_disks = D
        self.n_runs = R
        # Hot-path caches (profiling: chain_head_block dominates).
        self._n_blocks = [job.blocks_in_run(r) for r in range(R)]
        self._starts = [int(s) for s in job.start_disks]
        self._first_keys = [job.first_keys[r] for r in range(R)]
        # Chain pointer: next on-disk position within chain (run, disk).
        self._ptr: list[list[int]] = [[0] * D for _ in range(R)]
        # H[d, r]: key of chain head; _alive[d, r]: chain not exhausted.
        self._h = np.full((D, R), INF_I64, dtype=np.int64)
        self._alive = np.zeros((D, R), dtype=bool)
        for r in range(R):
            for d in range(D):
                self._refresh(r, d)

    # -- chain geometry ----------------------------------------------------

    def _chain_start(self, run: int, disk: int) -> int:
        return (disk - self._starts[run]) % self.n_disks

    def chain_head_block(self, run: int, disk: int) -> Optional[int]:
        """Block index of the chain head of (*run*, *disk*), if any."""
        b = self._chain_start(run, disk) + self._ptr[run][disk] * self.n_disks
        return b if b < self._n_blocks[run] else None

    def chain_position(self, run: int, block: int) -> tuple[int, int]:
        """The (disk, position-in-chain) of a given block of a run."""
        disk = self.job.disk_of(run, block)
        pos = (block - self._chain_start(run, disk)) // self.n_disks
        return disk, pos

    # -- H maintenance -----------------------------------------------------

    def _refresh(self, run: int, disk: int) -> None:
        """Recompute ``H[disk, run]`` from the chain pointer."""
        b = self.chain_head_block(run, disk)
        if b is None:
            self._h[disk, run] = INF_I64
            self._alive[disk, run] = False
        else:
            self._h[disk, run] = self._first_keys[run][b]
            self._alive[disk, run] = True

    def head_key(self, disk: int, run: int) -> float:
        """``H_i[j]`` — the FDS entry itself (:data:`INF` if exhausted)."""
        if not self._alive[disk, run]:
            return INF
        return int(self._h[disk, run])

    def smallest_block_on_disk(self, disk: int) -> Optional[tuple[float, int, int]]:
        """The smallest block on *disk*: ``(key, run, block)`` or ``None``.

        This is the block a ``ParRead`` fetches from *disk*.  Key ties
        resolve to the smallest run index (``argmin`` returns the first
        minimum, matching the old heap's ``(key, run)`` ordering).
        """
        idx = np.flatnonzero(self._alive[disk])
        if idx.size == 0:
            return None
        sub = self._h[disk, idx]
        run = int(idx[sub.argmin()])
        block = self.chain_head_block(run, disk)
        if block is None:  # pragma: no cover - defensive
            raise ScheduleError("FDS points at an exhausted chain")
        return int(self._h[disk, run]), run, block

    def global_min_key(self) -> float:
        """Smallest key of any on-disk block (the ``S_t`` minimum)."""
        if not self._alive.any():
            return INF
        return int(self._h[self._alive].min())

    def next_block_key_of_run(self, run: int) -> float:
        """Smallest on-disk key of *run*: ``min_i H_i[run]``.

        The merger uses this to learn the first key of a run's
        not-yet-resident leading block (Definition 1's "smallest block
        of the run").
        """
        col = self._alive[:, run]
        if not col.any():
            return INF
        return int(self._h[:, run][col].min())

    def min_keys_per_run(self) -> tuple[np.ndarray, np.ndarray]:
        """``min_i H_i[j]`` for every run ``j`` in one reduction.

        Returns ``(values, valid)``: an int64 array of per-run minima and
        a boolean mask of runs with at least one on-disk block.  Entries
        with ``valid`` unset are filler (:data:`INF_I64` is not a
        reserved key, so a mask — not a sentinel — signals exhaustion).
        This is the batched merger's galloping-bound query.
        """
        values = np.where(self._alive, self._h, INF_I64).min(axis=0)
        return values, self._alive.any(axis=0)

    # -- transitions ---------------------------------------------------------

    def advance(self, run: int, disk: int) -> None:
        """Chain head of (*run*, *disk*) was read; expose its successor.

        Models consuming the implanted key ``k_{r, b+D}`` of the block
        just read.
        """
        self._ptr[run][disk] += 1
        self._refresh(run, disk)

    def push_back(self, run: int, block: int) -> None:
        """A flushed *block* returns to its disk (§5.3 flush update).

        The block becomes its chain's head again; ``H`` gets its first
        key (which the merger knows — it read the block).
        """
        disk, pos = self.chain_position(run, block)
        if pos >= self._ptr[run][disk]:
            raise ScheduleError(
                f"flush of run {run} block {block}: chain pointer would move forward"
            )
        self._ptr[run][disk] = pos
        self._refresh(run, disk)

    def chain_pointer(self, run: int, disk: int) -> int:
        """Current chain position (used by validation)."""
        return self._ptr[run][disk]
