"""The SRM I/O scheduler (paper §5): ParRead, Flush, OutRank.

One implementation of the scheduling brain drives both execution paths:
the data-moving merger (:mod:`repro.core.merge`) attaches callbacks that
perform real disk I/O, while the fast simulator
(:mod:`repro.core.simulator`) runs it callback-free and only collects
counts.  Cross-validation of the two paths is therefore a test of the
*event streams* they feed, not of duplicated logic.

Scheduling model
----------------
Reads are *demand-paced*: a ``ParRead`` is issued when the merge is
about to consume a record whose block is not resident.  At that moment
the needed block is the smallest block on its disk (its first record is
the globally smallest unconsumed key, and every on-disk record is
unconsumed), so the very next ``ParRead`` — which by Definition 5
fetches the smallest block from *every* disk — brings it in; ``validate``
mode asserts this.  Consequently ``OutRank_t = 1`` at every stall and
the §5.5 case split reduces to:

* ``occupied(M_R) <= R``  →  plain ``ParRead`` (case 2a);
* ``occupied(M_R) = R + extra`` →  ``Flush_t(extra)`` then ``ParRead``
  (case 2c with ``OutRank_t = 1``); case 2b cannot arise on demand.

The general ``OutRank`` computation is still implemented (and used by
the optional eager-prefetch mode and by validation) so the §5.5 rules
are present in full.

Flushing (Definition 6) removes the highest-ranked (farthest-future)
non-leading resident blocks from ``M_R`` *with no I/O*: the scheduler
pushes their chains back so the forecasting structure offers them again,
exactly as if they had never been read.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ScheduleError
from ..memory import BufferPool
from ..telemetry import NULL_METRIC, TELEMETRY_OFF
from ..telemetry.schema import (
    ADAPTIVE_FLUSH_REDIRECTS,
    H_FLUSH_OCCUPANCY,
    H_FLUSH_OUTRANK,
    H_READ_WIDTH,
    SCHED_BLOCKS_FLUSHED,
    SCHED_FLUSH_OPS,
    SCHED_INITIAL_READS,
    SCHED_MERGE_PARREADS,
    occupancy_edges,
    read_width_edges,
)
from .forecasting import INF, ForecastStructure
from .job import MergeJob

#: A read instruction: (run, block, disk).
ReadOp = tuple[int, int, int]

#: Callback invoked once per parallel read with its block list.
ReadCallback = Callable[[list[ReadOp]], None]

#: Callback invoked once per flush with the evicted block list.
FlushCallback = Callable[[list[tuple[int, int]]], None]


@dataclass(frozen=True, slots=True)
class ScheduleStats:
    """I/O counts reported by a completed merge schedule.

    Attributes
    ----------
    initial_reads:
        ``I_0`` — parallel reads used by step 1 (loading the ``R``
        initial run blocks).
    merge_parreads:
        ``ParRead`` operations issued after step 1.
    blocks_read:
        Total blocks fetched, *including* re-reads of flushed blocks.
    flush_ops / blocks_flushed:
        ``Flush_t`` invocations and blocks they evicted.
    n_blocks:
        Distinct blocks across the job's runs.
    max_mr_occupied:
        High-water mark of ``M_R`` occupancy (must stay <= R + D).
    """

    initial_reads: int
    merge_parreads: int
    blocks_read: int
    flush_ops: int
    blocks_flushed: int
    n_blocks: int
    n_disks: int
    max_mr_occupied: int
    #: Blocks depleted before the first ParRead, between consecutive
    #: ParReads, and after the last one (length = merge_parreads + 1 for
    #: a finished schedule; mid-run snapshots omit the in-flight partial
    #: gap and have length merge_parreads).
    depletion_gaps: tuple[int, ...] = ()

    @property
    def total_reads(self) -> int:
        """All parallel read operations, step 1 included."""
        return self.initial_reads + self.merge_parreads

    @property
    def overhead_v(self) -> float:
        """Measured per-pass read overhead ``v`` (Tables 1 and 3).

        Ratio of parallel reads to the perfect-parallelism minimum
        ``n_blocks / D``.
        """
        return self.total_reads * self.n_disks / self.n_blocks


class MergeScheduler:
    """Executable §5.5 I/O schedule over a :class:`MergeJob`.

    Parameters
    ----------
    flush_cost:
        Optional latency-adaptive hook ``disk -> re-read cost (ms)``
        (the overlap engine passes its per-disk service-time EWMA).
        When set, :meth:`_flush` biases victim choice toward blocks
        that will be re-read from *cheap* disks instead of strictly
        evicting the highest keys; ``None`` (the default) keeps the
        Definition 6 eviction order bit-identical.
    """

    def __init__(
        self,
        job: MergeJob,
        validate: bool = False,
        on_read: Optional[ReadCallback] = None,
        on_flush: Optional[FlushCallback] = None,
        telemetry=None,
        flush_cost: Optional[Callable[[int], float]] = None,
    ) -> None:
        self.job = job
        self.validate = validate
        self.on_read = on_read
        self.on_flush = on_flush
        self.flush_cost = flush_cost
        #: Flush operations whose biased victim set differed from the
        #: Definition 6 highest-key choice (0 on the fixed path).
        self.flush_redirects = 0
        # Metric handles are resolved once here; with telemetry disabled
        # they are the shared no-op singleton, so the per-ParRead and
        # per-flush observe/inc calls below cost nothing.
        tel = telemetry if telemetry is not None else TELEMETRY_OFF
        self._m_initial_reads = tel.counter(SCHED_INITIAL_READS)
        self._m_parreads = tel.counter(SCHED_MERGE_PARREADS)
        self._m_flush_ops = tel.counter(SCHED_FLUSH_OPS)
        self._m_blocks_flushed = tel.counter(SCHED_BLOCKS_FLUSHED)
        self._h_read_width = tel.histogram(
            H_READ_WIDTH, read_width_edges(job.n_disks)
        )
        self._h_flush_occ = tel.histogram(
            H_FLUSH_OCCUPANCY, occupancy_edges(job.n_disks)
        )
        self._h_flush_rank = tel.histogram(
            H_FLUSH_OUTRANK, occupancy_edges(job.n_disks)
        )
        self._m_flush_redirects = (
            tel.counter(ADAPTIVE_FLUSH_REDIRECTS)
            if flush_cost is not None
            else NULL_METRIC
        )
        self.fds = ForecastStructure(job)
        self.pool = BufferPool(merge_order=job.n_runs, n_disks=job.n_disks)
        #: Current leading block index per run (Definition 1).
        self.leading = [0] * job.n_runs
        #: Residency of every not-fully-consumed block.
        self._resident: set[tuple[int, int]] = set()
        #: F_t — full non-leading resident blocks as (key, run, block),
        #: kept sorted by key for rank queries and flush selection.
        self._f: list[tuple[float, int, int]] = []
        # Counters.
        self.initial_reads = 0
        self.merge_parreads = 0
        self.blocks_read = 0
        self.flush_ops = 0
        self.blocks_flushed = 0
        self.max_mr_occupied = 0
        self._loaded = False
        #: Blocks depleted between consecutive ParReads — the compute
        #: intervals the overlap analysis (repro.analysis.overlap) uses.
        self.depletion_gaps: list[int] = []
        self._depletions_since_read = 0

    # -- queries ---------------------------------------------------------

    def is_resident(self, run: int, block: int) -> bool:
        """True if the block is currently in internal memory."""
        return (run, block) in self._resident

    def out_rank(self) -> int:
        """``OutRank_t``: rank of the smallest ``S_t`` block in ``F_t ∪ S_t``."""
        s_min = self.fds.global_min_key()
        if s_min == INF:
            raise ScheduleError("OutRank undefined: no blocks remain on disk")
        return bisect_left(self._f, (s_min, -1, -1)) + 1

    def stats(self) -> ScheduleStats:
        """Snapshot of the schedule's I/O counters.

        Side-effect-free and idempotent.  The depletions accumulated
        since the last ``ParRead`` form a *partial* gap: they are
        reported as the trailing entry of ``depletion_gaps`` only once
        the schedule has finished (when they are final by definition).
        Mid-run snapshots exclude them — the same depletions would
        otherwise be counted again inside the gap closed by the next
        ``ParRead``.
        """
        gaps = tuple(self.depletion_gaps)
        if self.finished():
            gaps += (self._depletions_since_read,)
        return ScheduleStats(
            initial_reads=self.initial_reads,
            merge_parreads=self.merge_parreads,
            blocks_read=self.blocks_read,
            flush_ops=self.flush_ops,
            blocks_flushed=self.blocks_flushed,
            n_blocks=self.job.n_blocks,
            n_disks=self.job.n_disks,
            max_mr_occupied=self.max_mr_occupied,
            depletion_gaps=gaps,
        )

    # -- step 1: initial load (§5.5 step 1) --------------------------------

    def initial_load(self) -> int:
        """Read block 0 of every run into ``M_L`` with parallel reads.

        The number of operations is the maximum number of initial blocks
        on any one disk — the classical occupancy cost ``I_0`` of §6.

        Returns ``I_0``.
        """
        if self._loaded:
            raise ScheduleError("initial_load called twice")
        self._loaded = True
        by_disk: dict[int, list[int]] = {}
        for r in range(self.job.n_runs):
            by_disk.setdefault(int(self.job.start_disks[r]), []).append(r)
        while by_disk:
            stripe: list[ReadOp] = []
            for d in list(by_disk):
                r = by_disk[d].pop()
                stripe.append((r, 0, d))
                if not by_disk[d]:
                    del by_disk[d]
            for r, b, d in stripe:
                self._resident.add((r, b))
                self.pool.load_leading()
                self.fds.advance(r, d)
            self.initial_reads += 1
            self.blocks_read += len(stripe)
            self._m_initial_reads.inc()
            self._h_read_width.observe(len(stripe))
            if self.on_read is not None:
                self.on_read(stripe)
        return self.initial_reads

    # -- demand path ---------------------------------------------------------

    def ensure_resident(self, run: int, block: int) -> int:
        """Bring (*run*, *block*) into memory; return parallel reads used.

        Called when the block's first record is about to become the next
        record of the merge.  Zero reads if it was prefetched; exactly
        one otherwise (asserted in ``validate`` mode).
        """
        if not self._loaded:
            raise ScheduleError("ensure_resident before initial_load")
        if block >= self.job.blocks_in_run(run):
            raise ScheduleError(f"run {run} has no block {block}")
        if self.is_resident(run, block):
            return 0
        # A demand fetch succeeds in exactly one ParRead: the needed
        # block's first record is the globally smallest unconsumed key,
        # so it is the minimal head on its disk and Definition 5 brings
        # it in.  If a single ParRead did not fetch it the forecast is
        # wedged (corrupted chain pointers, stale H entries) and more
        # reads cannot help — fail fast instead of issuing up to D+1.
        self._parread()
        if not self.is_resident(run, block):
            raise ScheduleError(
                f"wedged forecast: demand fetch of ({run}, {block}) "
                "was not satisfied by one ParRead"
            )
        return 1

    def maybe_prefetch(self) -> bool:
        """Optional eager mode: issue a ``ParRead`` if case 2a allows it.

        Returns True if a read was issued.  This never flushes, so it
        cannot cause churn; it models overlapping I/O with computation.
        """
        if not self.pool.can_read_without_flush():
            return False
        if self.fds.global_min_key() == INF:
            return False
        self._parread()
        return True

    # -- the §5.5 read/flush machinery -------------------------------------

    def _parread(self) -> None:
        """One scheduled parallel read, flushing first if §5.5 requires."""
        extra = self.pool.extra
        if extra > 0:
            out_rank = self.out_rank()
            if out_rank <= extra:
                self._h_flush_occ.observe(extra)
                self._h_flush_rank.observe(out_rank)
                self._flush(extra - out_rank + 1)
            # else: case 2b — read without flushing; the pool guarantees
            # R + D frames so the incoming <= D blocks still fit only if
            # occupancy allows.  On the demand path out_rank == 1 makes
            # this unreachable; eager callers avoid it via can_read_without_flush.

        reads: list[ReadOp] = []
        for d in range(self.job.n_disks):
            head = self.fds.smallest_block_on_disk(d)
            if head is None:
                continue
            key, run, block = head
            reads.append((run, block, d))
        if not reads:
            raise ScheduleError("ParRead issued with no blocks on any disk")

        for run, block, disk in reads:
            if self.validate and block < self.leading[run]:
                raise ScheduleError(
                    f"ParRead fetched already-consumed block ({run}, {block})"
                )
            self._resident.add((run, block))
            self.fds.advance(run, disk)
            if block == self.leading[run]:
                self.pool.load_leading()
            else:
                key = int(self.job.first_keys[run][block])
                insort(self._f, (key, run, block))
                self.pool.stage_read_into_mr(1)
        self.merge_parreads += 1
        self.blocks_read += len(reads)
        self._m_parreads.inc()
        self._h_read_width.observe(len(reads))
        self.depletion_gaps.append(self._depletions_since_read)
        self._depletions_since_read = 0
        self.max_mr_occupied = max(self.max_mr_occupied, self.pool.mr_occupied)
        if self.validate and len(self._f) != self.pool.mr_occupied:
            raise ScheduleError("F_t and M_R occupancy disagree")
        if self.on_read is not None:
            self.on_read(reads)

    def _select_flush_victims(self, n_blocks: int) -> list[tuple[int, int, int]]:
        """Cost-biased victim choice for the latency-adaptive policy.

        Three constraints bound the deviation from Definition 6:

        * Victims must form a *suffix* of each ``(run, disk)`` chain's
          resident blocks: ``push_back`` rewinds the chain pointer to
          the evicted block, so flushing an earlier block while a later
          one stays resident would make the forecast re-offer (and
          re-fetch) a block that is still in memory.
        * Candidates are drawn only from the ``n_blocks + D`` highest
          keys of ``F_t`` — the bias may reorder the far-future tail
          but never reach into blocks the merge needs soon.
        * A substitute victim must be *shielded* on its disk: some
          unfetched block there must precede it, else the eviction
          makes it the disk's very next fetch and the eager pump churns
          it straight back into memory.

        Within those bounds the greedy pick minimizes
        ``(re-read cost, -key)``; with uniform costs (no straggler
        classified) this reduces exactly to the Definition 6
        highest-key eviction.  If the constraints leave fewer than
        ``n_blocks`` candidates, the whole selection falls back to the
        default.

        Returns the victims in decreasing key order (the order
        ``push_back`` requires within each chain).
        """
        cost = self.flush_cost
        assert cost is not None
        # Chains keyed by (run, disk); _f is key-sorted and keys rise
        # with block index within a run, so each list ends at the
        # chain's farthest-future resident block — the only legal next
        # eviction for that chain.  A chain's global maximum always
        # ranks above its other members, so restricting to the key-tail
        # window keeps every represented chain's true tail inside it.
        window = self._f[-(n_blocks + self.job.n_disks):]
        chains: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
        for entry in window:
            _key, run, block = entry
            chains.setdefault((run, self.job.disk_of(run, block)), []).append(entry)
        heap: list[tuple[float, int, int, int, int]] = []
        for (run, disk), blocks in chains.items():
            key, _r, blk = blocks[-1]
            heap.append((cost(disk), -key, run, blk, disk))
        heapq.heapify(heap)
        default = self._f[-n_blocks:]
        default_set = set(default)
        chosen: list[tuple[int, int, int]] = []
        while heap and len(chosen) < n_blocks:
            _c, negkey, run, blk, disk = heapq.heappop(heap)
            entry = (-negkey, run, blk)
            if entry not in default_set:
                head = self.fds.smallest_block_on_disk(disk)
                if head is None or head[0] >= -negkey:
                    # Unshielded: nothing on this disk precedes the
                    # candidate, so evicting it schedules its own
                    # re-fetch next.  The suffix rule bars this chain's
                    # lower members too — drop the whole chain.
                    continue
            chosen.append(entry)
            rest = chains[(run, disk)]
            rest.pop()
            if rest:
                key, _r, nblk = rest[-1]
                heapq.heappush(heap, (cost(disk), -key, run, nblk, disk))
        if len(chosen) < n_blocks:
            return [self._f.pop() for _ in range(n_blocks)]
        chosen_set = set(chosen)
        if chosen_set != default_set:
            self.flush_redirects += 1
            self._m_flush_redirects.inc()
        self._f = [e for e in self._f if e not in chosen_set]
        chosen.sort(reverse=True)
        return chosen

    def _flush(self, n_blocks: int) -> None:
        """``Flush_t(n)``: evict the ``n`` highest-ranked blocks of ``F_t``.

        With a ``flush_cost`` hook attached, victim choice is biased by
        measured per-disk re-read cost (:meth:`_select_flush_victims`);
        otherwise the Definition 6 highest-key eviction runs unchanged.
        """
        if n_blocks <= 0:
            raise ScheduleError(f"Flush of {n_blocks} blocks")
        if n_blocks > len(self._f):
            raise ScheduleError(
                f"Flush of {n_blocks} blocks but only {len(self._f)} in F_t"
            )
        if self.flush_cost is not None:
            evicted = self._select_flush_victims(n_blocks)
        else:
            evicted = [self._f.pop() for _ in range(n_blocks)]  # decreasing key order
        for key, run, block in evicted:
            if self.validate and block <= self.leading[run]:
                raise ScheduleError(
                    f"flushed leading-or-consumed block ({run}, {block})"
                )
            self._resident.remove((run, block))
            self.fds.push_back(run, block)
        self.pool.flush(n_blocks)
        self.flush_ops += 1
        self.blocks_flushed += n_blocks
        self._m_flush_ops.inc()
        self._m_blocks_flushed.inc(n_blocks)
        if self.on_flush is not None:
            self.on_flush([(r, b) for _, r, b in evicted])

    # -- merge progress notifications ----------------------------------------

    def on_leading_depleted(self, run: int) -> None:
        """The last record of *run*'s leading block was consumed.

        Advances the leading pointer; if the new leading block is
        already resident it moves from ``M_R`` to ``M_L`` (§5.2 rule 1).
        """
        block = self.leading[run]
        if (run, block) not in self._resident:
            raise ScheduleError(f"depleted block ({run}, {block}) was not resident")
        self._depletions_since_read += 1
        self._resident.remove((run, block))
        self.pool.retire_leading()
        nxt = block + 1
        self.leading[run] = nxt
        if nxt < self.job.blocks_in_run(run) and (run, nxt) in self._resident:
            key = int(self.job.first_keys[run][nxt])
            idx = bisect_left(self._f, (key, run, nxt))
            if idx >= len(self._f) or self._f[idx] != (key, run, nxt):
                raise ScheduleError(
                    f"resident block ({run}, {nxt}) missing from F_t"
                )
            self._f.pop(idx)
            self.pool.promote_to_leading()

    def run_exhausted(self, run: int) -> bool:
        """True once every block of *run* has been consumed."""
        return self.leading[run] >= self.job.blocks_in_run(run)

    def finished(self) -> bool:
        """True once all runs are exhausted."""
        return all(
            self.leading[r] >= self.job.blocks_in_run(r)
            for r in range(self.job.n_runs)
        )
