"""Streaming output-run writer with perfect write parallelism (§5.1).

The merger appends sorted record slices; the writer cuts them into
blocks of ``B``, implants forecast keys, and emits full ``D``-block
stripes as single parallel writes.  SRM's output buffer ``M_W`` holds
``2D`` blocks because stripe ``j`` can only be written once stripe
``j+1``'s block first-keys are known (block ``i`` implants the key of
block ``i + D``).  The writer enforces exactly that discipline and
records its buffer high-water mark so tests can verify the ``2D`` bound.

Buffering is a preallocated ring of ``2 x (2·D·B)`` record frames — the
``M_W`` window plus one spare window, so an append can land while two
stripes are still materializing.  The read head only ever advances by
whole ``D·B``-record stripes and the capacity is a multiple of that
stride, so the current stripe and its lookahead are always *contiguous*
views into the ring: draining a stripe is zero-copy slicing, where the
old chunk-list buffer paid a ``pop(0)`` plus ``concatenate`` shuffle per
stripe.

Records may carry payloads: internally the ring is a 2-row matrix
(keys; payloads) so both columns flow through identical slicing.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..disks.block import NO_KEY, Block
from ..disks.files import StripedRun
from ..disks.striping import cyclic_disk
from ..disks.system import ParallelDiskSystem
from ..errors import DataError, ScheduleError
from ..telemetry import TELEMETRY_OFF
from ..telemetry.schema import H_WRITER_OCCUPANCY, writer_occupancy_edges


class RunWriter:
    """Accumulates merge output and writes a forecast-format striped run."""

    def __init__(
        self,
        system: ParallelDiskSystem,
        run_id: int,
        start_disk: int,
        on_write: Optional[Callable[[list[int]], None]] = None,
        telemetry=None,
    ) -> None:
        if not 0 <= start_disk < system.n_disks:
            raise DataError(
                f"start disk {start_disk} out of range for D={system.n_disks}"
            )
        self.system = system
        self.run_id = run_id
        self.start_disk = start_disk
        #: Callback invoked after every parallel write with the disks
        #: written (the overlap engine's write-behind hook).
        self.on_write = on_write
        D, B = system.n_disks, system.block_size
        self._stripe = D * B
        #: Ring capacity: two M_W windows of 2·D·B records each.
        self._cap = 4 * D * B
        #: Ring storage, allocated on first append once the row count
        #: (keys only, or keys + payloads) is known.
        self._buf: np.ndarray | None = None
        self._rows: int | None = None
        self._head = 0  # read position; always a multiple of D·B
        self._pending = 0
        self._next_block = 0
        self._addresses: list = []
        self._first_keys: list[int] = []
        self._last_keys: list[int] = []
        self._n_records = 0
        self._finalized = False
        #: High-water mark of buffered blocks (must stay <= 2D = |M_W|).
        self.max_buffered_blocks = 0
        self._last_appended: int | None = None
        tel = telemetry if telemetry is not None else TELEMETRY_OFF
        self._h_occupancy = tel.histogram(
            H_WRITER_OCCUPANCY, writer_occupancy_edges(D)
        )

    # -- ingest ----------------------------------------------------------

    def append(self, keys: np.ndarray, payloads: np.ndarray | None = None) -> None:
        """Append a sorted slice of output records (with optional payloads)."""
        if self._finalized:
            raise ScheduleError("append after finalize")
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        rows = 1 if payloads is None else 2
        if self._rows is None:
            self._rows = rows
            self._buf = np.empty((rows, self._cap), dtype=np.int64)
        elif self._rows != rows:
            raise DataError("payload presence must be consistent across appends")
        if payloads is not None:
            payloads = np.asarray(payloads, dtype=np.int64)
            if payloads.shape != keys.shape:
                raise DataError("payloads must align with keys")
        if self._last_appended is not None and keys[0] < self._last_appended:
            raise DataError("output records appended out of order")
        self._last_appended = int(keys[-1])
        self._n_records += keys.size

        buf = self._buf
        cap = self._cap
        window = 2 * self._stripe
        pos = 0
        n = keys.size
        B = self.system.block_size
        while pos < n:
            # Invariant on entry: _pending < 2·D·B, so at least one M_W
            # window of the ring is free.
            take = min(n - pos, cap - self._pending)
            tail = (self._head + self._pending) % cap
            first = min(take, cap - tail)
            buf[0, tail : tail + first] = keys[pos : pos + first]
            if payloads is not None:
                buf[1, tail : tail + first] = payloads[pos : pos + first]
            if take > first:
                wrap = take - first
                buf[0, :wrap] = keys[pos + first : pos + take]
                if payloads is not None:
                    buf[1, :wrap] = payloads[pos + first : pos + take]
            self._pending += take
            pos += take
            # Drain: stripe j is writable once stripes j and j+1 are both
            # fully materialized (2·D·B buffered records).
            while self._pending >= window:
                self._drain_stripe()
        # High-water is measured after draining: a stripe is written the
        # instant it becomes writable, so M_W never holds more than 2D
        # blocks at rest.
        self.max_buffered_blocks = max(self.max_buffered_blocks, -(-self._pending // B))

    def _drain_stripe(self) -> None:
        """Write the stripe at the ring head (zero-copy views)."""
        stride = self._stripe
        B = self.system.block_size
        self._h_occupancy.observe(-(-self._pending // B))
        h = self._head
        stripe = self._buf[:, h : h + stride]
        la = (h + stride) % self._cap
        lookahead = self._buf[:, la : la + stride]
        self._write_stripe(stripe, lookahead=lookahead)
        self._head = la
        self._pending -= stride

    # -- emit ----------------------------------------------------------------

    def _emit(self, writes: list) -> None:
        """Perform one parallel write and fire the ``on_write`` hook.

        On a fault-armed system ``write_stripe`` runs each block through
        the write retry ladder (transient write failures, torn writes,
        breaker escalation) and may append separately-charged parity
        rounds; the writer itself never needs to know — the addresses it
        allocated stay valid through any relocation.
        """
        disks = self.system.write_stripe(writes)
        if self.on_write is not None:
            # write_stripe reports the *physical* disks written (they
            # differ from the allocated addresses in degraded mode).
            self.on_write(disks)

    def _write_stripe(self, stripe: np.ndarray, lookahead: np.ndarray) -> None:
        """Write one full stripe; *lookahead* is the next stripe's data."""
        D, B = self.system.n_disks, self.system.block_size
        writes = []
        for m in range(D):
            index = self._next_block + m
            data = stripe[:, m * B : (m + 1) * B]
            if index == 0:
                # Initial block: keys of blocks 0..D-1, i.e. of this stripe.
                fc = tuple(int(stripe[0, j * B]) for j in range(D))
            else:
                # Key of block index + D, i.e. the lookahead stripe's m-th.
                fc = (int(lookahead[0, m * B]),)
            writes.append(self._emit_block(index, data, fc))
        self._emit(writes)
        self._next_block += D

    def _emit_block(
        self, index: int, data: np.ndarray, forecast: tuple[float, ...]
    ):
        addr = self.system.allocate(
            cyclic_disk(self.start_disk, index, self.system.n_disks)
        )
        self._addresses.append(addr)
        self._first_keys.append(int(data[0, 0]))
        self._last_keys.append(int(data[0, -1]))
        # Copy out of the ring: the frames behind these views are reused
        # by later appends, but the Block lives on disk indefinitely.
        block = Block(
            keys=data[0].copy(),
            run_id=self.run_id,
            index=index,
            forecast=forecast,
            payloads=data[1].copy() if data.shape[0] == 2 else None,
        )
        return (addr, block)

    def finalize(self) -> StripedRun:
        """Flush remaining buffered blocks and return the finished run."""
        if self._finalized:
            raise ScheduleError("finalize called twice")
        self._finalized = True
        if self._n_records == 0:
            raise DataError("cannot finalize an empty run")
        D, B = self.system.n_disks, self.system.block_size
        # Linearize the ring tail (at most one wrap) into one matrix.
        if self._buf is None or self._pending == 0:
            tail = np.empty((self._rows or 1, 0), dtype=np.int64)
        else:
            h, cap, pend = self._head, self._cap, self._pending
            first = min(pend, cap - h)
            if first == pend:
                tail = self._buf[:, h : h + pend]
            else:
                tail = np.concatenate(
                    [self._buf[:, h:cap], self._buf[:, : pend - first]], axis=1
                )
        self._pending = 0
        # Remaining blocks, the last possibly partial.
        blocks = [tail[:, i : i + B] for i in range(0, tail.shape[1], B)]
        if blocks:
            self._h_occupancy.observe(len(blocks))
        total_blocks = self._next_block + len(blocks)

        def key_of(index: int) -> float:
            # Only future (tail) blocks are ever asked for.
            off = index - self._next_block
            return int(blocks[off][0, 0]) if 0 <= off < len(blocks) else NO_KEY

        writes = []
        for m, data in enumerate(blocks):
            index = self._next_block + m
            if index == 0:
                fc = tuple(key_of(j) for j in range(D))
            else:
                fc = (key_of(index + D),)
            writes.append(self._emit_block(index, data, fc))
            if len(writes) == D:
                self._emit(writes)
                writes = []
        if writes:
            self._emit(writes)
        self._next_block = total_blocks
        self._buf = None
        return StripedRun(
            run_id=self.run_id,
            start_disk=self.start_disk,
            addresses=self._addresses,
            n_records=self._n_records,
            block_size=B,
            first_keys=np.asarray(self._first_keys, dtype=np.int64),
            last_keys=np.asarray(self._last_keys, dtype=np.int64),
        )
